"""Unit tests for WG-Log instance graphs and schemas."""

import pytest

from repro.errors import SchemaError
from repro.wglog import InstanceGraph, SlotDecl, WGSchema


def site_instance() -> InstanceGraph:
    inst = InstanceGraph()
    home = inst.add_entity("Page", "home")
    about = inst.add_entity("Page", "about")
    inst.add_slot(home, "title", "Home")
    inst.add_slot(home, "hits", 42)
    inst.relate(home, about, "link")
    return inst


def site_schema() -> WGSchema:
    schema = WGSchema()
    schema.entity("Page", SlotDecl("title", "string"), SlotDecl("hits", "int"))
    schema.relation("Page", "link", "Page")
    return schema


class TestInstanceGraph:
    def test_entities_and_labels(self):
        inst = site_instance()
        assert set(inst.entities()) == {"home", "about"}
        assert inst.entities("Page") == ["home", "about"]
        assert inst.label("home") == "Page"
        assert inst.entity_count() == 2

    def test_duplicate_entity_id_rejected(self):
        inst = site_instance()
        with pytest.raises(KeyError):
            inst.add_entity("Page", "home")

    def test_auto_ids(self):
        inst = InstanceGraph()
        a = inst.add_entity("X")
        b = inst.add_entity("X")
        assert a != b

    def test_slots(self):
        inst = site_instance()
        assert inst.slot_value("home", "title") == "Home"
        assert inst.slot_value("home", "missing") is None
        assert inst.slots("home") == {"title": "Home", "hits": 42}

    def test_slot_on_unknown_entity_rejected(self):
        with pytest.raises(KeyError):
            site_instance().add_slot("zzz", "a", 1)

    def test_slots_not_entities(self):
        inst = site_instance()
        assert all(not inst.is_slot(e) for e in inst.entities())
        slot_nodes = [n for n in inst.graph.nodes() if inst.is_slot(n)]
        assert len(slot_nodes) == 2

    def test_relationships(self):
        inst = site_instance()
        assert inst.has_relationship("home", "about", "link")
        assert not inst.has_relationship("about", "home", "link")
        rels = inst.relationships("home")
        assert len(rels) == 1 and rels[0].label == "link"

    def test_relationship_edges_exclude_slots(self):
        inst = site_instance()
        labels = [e.label for e in inst.relationship_edges()]
        assert labels == ["link"]

    def test_slot_cannot_relate(self):
        inst = site_instance()
        slot_node = next(n for n in inst.graph.nodes() if inst.is_slot(n))
        with pytest.raises(ValueError):
            inst.relate(slot_node, "home", "x")

    def test_copy_independent(self):
        inst = site_instance()
        clone = inst.copy()
        clone.add_entity("Page", "extra")
        assert "extra" not in inst.graph
        fresh = clone.add_entity("Page")
        assert fresh not in inst.graph

    def test_describe_smoke(self):
        text = site_instance().describe()
        assert "home: Page" in text and "home -link-> about" in text


class TestSlotDecl:
    def test_type_checking(self):
        assert SlotDecl("a", "string").accepts("x")
        assert not SlotDecl("a", "string").accepts(5)
        assert SlotDecl("a", "int").accepts(5)
        assert not SlotDecl("a", "int").accepts(True)
        assert SlotDecl("a", "float").accepts(2.5)
        assert SlotDecl("a", "float").accepts(2)
        assert SlotDecl("a", "bool").accepts(True)
        assert SlotDecl("a", "any").accepts(object())

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            SlotDecl("a", "date")


class TestWGSchema:
    def test_conformant_instance(self):
        assert site_schema().conform(site_instance()) == []

    def test_duplicate_entity_rejected(self):
        schema = site_schema()
        with pytest.raises(SchemaError):
            schema.entity("Page")

    def test_relation_endpoints_must_exist(self):
        schema = WGSchema().entity("A")
        with pytest.raises(SchemaError):
            schema.relation("A", "x", "B")

    def test_undeclared_entity_type(self):
        inst = site_instance()
        inst.add_entity("Alien", "a1")
        violations = site_schema().conform(inst)
        assert any("undeclared type" in v for v in violations)

    def test_undeclared_slot(self):
        inst = site_instance()
        inst.add_slot("home", "color", "red")
        violations = site_schema().conform(inst)
        assert any("undeclared slot" in v for v in violations)

    def test_slot_type_violation(self):
        inst = site_instance()
        inst.add_slot("about", "hits", "many")
        violations = site_schema().conform(inst)
        assert any("is not a int" in v for v in violations)

    def test_required_slot(self):
        schema = WGSchema().entity("P", SlotDecl("title", "string", required=True))
        inst = InstanceGraph()
        inst.add_entity("P", "p1")
        violations = schema.conform(inst)
        assert any("missing required slot" in v for v in violations)

    def test_undeclared_relation(self):
        inst = site_instance()
        inst.relate("about", "home", "secret")
        violations = site_schema().conform(inst)
        assert any("secret" in v for v in violations)

    def test_relation_queries(self):
        schema = site_schema()
        assert schema.allows_relation("Page", "link", "Page")
        assert not schema.allows_relation("Page", "x", "Page")
        assert len(schema.relations_from("Page")) == 1

    def test_describe_smoke(self):
        text = site_schema().describe()
        assert "entity Page" in text
        assert "Page -link-> Page" in text
