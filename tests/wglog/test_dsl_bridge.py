"""Unit tests for the WG-Log DSL and the XML bridge."""

import pytest

from repro.errors import BridgeError, QuerySyntaxError
from repro.ssd import parse_document, serialize
from repro.wglog import (
    Color,
    InstanceGraph,
    apply_rule,
    document_to_instance,
    instance_to_document,
    parse_rule,
    parse_wglog,
    query,
)


class TestDslSchema:
    def test_schema_block(self):
        schema, rules = parse_wglog(
            """
            schema {
              entity Document { title: string required, size: int }
              entity Index
              relation Index -index-> Document
            }
            rule q { match { d: Document } }
            """
        )
        assert schema.has_entity("Document")
        assert schema.slot_decl("Document", "title").required
        assert schema.slot_decl("Document", "size").value_type == "int"
        assert schema.allows_relation("Index", "index", "Document")
        assert len(rules) == 1

    def test_no_rules_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_wglog("schema { entity A }")


class TestDslRules:
    def test_nodes_and_edges(self):
        rule = parse_rule(
            "rule r { match { a: Doc  b: *  a -link-> b } }"
        )
        assert rule.nodes["a"].label == "Doc"
        assert rule.nodes["b"].label is None
        assert len(rule.red_edges()) == 1

    def test_implicit_nodes_from_edges(self):
        rule = parse_rule("rule r { match { a -link-> b } }")
        assert set(rule.nodes) == {"a", "b"}
        assert all(n.label is None for n in rule.nodes.values())

    def test_crossed_edge(self):
        rule = parse_rule(
            "rule r { match { d: Doc  no i -index-> d } construct { d.root = 'y' } }"
        )
        crossed = [e for e in rule.red_edges() if e.crossed]
        assert len(crossed) == 1

    def test_path_edge(self):
        rule = parse_rule("rule r { match { a: Doc b: Doc a -link*-> b } }")
        assert rule.red_edges()[0].path

    def test_any_label_path_edge(self):
        rule = parse_rule("rule r { match { a: Doc b: Doc a -_*-> b } }")
        edge = rule.red_edges()[0]
        assert edge.path and edge.label == ""

    def test_any_label_requires_path(self):
        with pytest.raises(QuerySyntaxError, match="path edge"):
            parse_rule("rule r { match { a: Doc b: Doc a -_-> b } }")

    def test_green_parts(self):
        rule = parse_rule(
            """
            rule r {
              match { d: Doc }
              construct {
                n: Note
                n -about-> d
                n.kind = 'auto'
                n.title = d.title
              }
            }
            """
        )
        assert rule.nodes["n"].color is Color.GREEN
        assert len(rule.green_edges()) == 1
        literal, copied = rule.slot_assertions
        assert literal.value == "auto"
        assert copied.from_node == "d" and copied.from_slot == "title"

    def test_collector(self):
        rule = parse_rule(
            "rule r { match { d: Doc } construct { l: List collect  l -m-> d } }"
        )
        assert rule.nodes["l"].collector

    def test_where_clause(self):
        rule = parse_rule(
            "rule r { match { d: Doc } where d.size > 10 and name(d) = 'Doc' }"
        )
        assert len(rule.conditions) == 1

    def test_rule_name_optional(self):
        named = parse_rule("rule myname { match { d: Doc } }")
        assert named.name == "myname"
        _, rules = parse_wglog("rule { match { d: Doc } }")
        assert rules[0].name is None

    @pytest.mark.parametrize(
        "source",
        [
            "rule r { construct { d: Doc } }",           # no match block
            "rule r { match { } construct { a -x-> b } }",  # green edge undeclared
            "rule r { match { d: } }",
            "rule r { match { d: Doc } where d ~ 5 }",
            "rule r { match { no d: Doc } }",
            "rule r { match { d: Doc } } trailing",
        ],
    )
    def test_syntax_errors(self, source):
        with pytest.raises((QuerySyntaxError, Exception)):
            parse_rule(source)

    def test_end_to_end(self):
        inst = InstanceGraph()
        h = inst.add_entity("Page", "h")
        a = inst.add_entity("Page", "a")
        inst.relate(h, a, "link")
        inst.add_slot(a, "title", "About")
        rule = parse_rule(
            """
            rule back {
              match { x: Page  y: Page  x -link-> y }
              construct { y -backlink-> x }
            }
            """
        )
        apply_rule(inst, rule)
        assert inst.has_relationship("a", "h", "backlink")


class TestBridge:
    def doc(self):
        return parse_document(
            '<site><page id="p1" title="Home">welcome'
            '<link ref="p2"/></page><page id="p2" title="About"/></site>'
        )

    def test_document_to_instance_structure(self):
        inst, mapping = document_to_instance(self.doc())
        assert len(inst.entities("page")) == 2
        assert len(inst.entities("site")) == 1
        assert len(inst.entities("link")) == 1

    def test_slots_from_attributes_and_text(self):
        inst, mapping = document_to_instance(self.doc())
        doc = self.doc()
        # find the p1 entity via a query
        pages = [
            e for e in inst.entities("page") if inst.slot_value(e, "id") == "p1"
        ]
        assert len(pages) == 1
        assert inst.slot_value(pages[0], "title") == "Home"
        assert inst.slot_value(pages[0], "text") == "welcome"

    def test_child_edges(self):
        inst, _ = document_to_instance(self.doc())
        site = inst.entities("site")[0]
        assert len(inst.relationships(site, "child")) == 2

    def test_idref_edges(self):
        inst, _ = document_to_instance(self.doc())
        links = inst.entities("link")
        targets = inst.relationships(links[0], "ref")
        assert len(targets) == 1
        assert inst.slot_value(targets[0].target, "id") == "p2"

    def test_reference_resolution_optional(self):
        inst, _ = document_to_instance(self.doc(), reference_attributes=False)
        links = inst.entities("link")
        assert inst.relationships(links[0], "ref") == []

    def test_element_map_alignment(self):
        doc = self.doc()
        inst, mapping = document_to_instance(doc)
        for element in doc.iter():
            assert inst.label(mapping[id(element)]) == element.tag

    def test_bridge_empty_document_rejected(self):
        from repro.ssd.model import Document

        with pytest.raises(BridgeError):
            document_to_instance(Document())

    def test_instance_to_document_round_trip(self):
        doc = self.doc()
        inst, mapping = document_to_instance(doc)
        site = inst.entities("site")[0]
        back = instance_to_document(inst, site)
        assert back.root.tag == "site"
        assert len(back.root.find_all("page")) == 2
        titles = sorted(p.get("title") for p in back.root.find_all("page"))
        assert titles == ["About", "Home"]

    def test_instance_to_document_text_slot(self):
        inst = InstanceGraph()
        p = inst.add_entity("p", "p")
        inst.add_slot(p, "text", "hello")
        doc = instance_to_document(inst, p)
        assert serialize(doc) == "<p>hello</p>"

    def test_instance_to_document_cycle_detected(self):
        inst = InstanceGraph()
        a = inst.add_entity("a", "a")
        b = inst.add_entity("b", "b")
        inst.relate(a, b, "child")
        inst.relate(b, a, "child")
        with pytest.raises(BridgeError):
            instance_to_document(inst, a)

    def test_unknown_root_rejected(self):
        with pytest.raises(BridgeError):
            instance_to_document(InstanceGraph(), "zzz")

    def test_query_bridged_document(self):
        # the same data queried through WG-Log after bridging
        inst, _ = document_to_instance(self.doc())
        rule = parse_rule(
            """
            rule pages {
              match { s: site  p: page  s -child-> p }
              where p.title = 'Home'
            }
            """
        )
        matches = query(rule, inst)
        assert len(matches) == 1
