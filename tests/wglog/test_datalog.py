"""Tests for the WG-Log → Datalog pretty-printer."""

import pytest

from repro.wglog import RuleGraph, parse_rule
from repro.wglog.datalog import to_datalog


def render(source: str) -> str:
    return to_datalog(parse_rule(source))


class TestBodies:
    def test_nodes_and_edges(self):
        text = render("rule r { match { a: Doc  b: Doc  a -link-> b } }")
        assert "node(A, 'Doc')" in text
        assert "edge(A, 'link', B)" in text

    def test_pure_query_gets_answer_head(self):
        text = render("rule q { match { a: Doc } }")
        assert text.startswith("q(A) :-")

    def test_unnamed_rule_defaults(self):
        rule = RuleGraph()
        rule.red("x", "Doc")
        assert to_datalog(rule).startswith("query(X) :-")

    def test_wildcard_contributes_no_node_atom(self):
        text = render("rule q { match { a: *  b: Doc  a -link-> b } }")
        assert "node(A" not in text
        assert "edge(A, 'link', B)" in text

    def test_path_edge_renders_path_predicate(self):
        text = render("rule q { match { a: Doc  b: Doc  a -link*-> b } }")
        assert "path(A, 'link', B)" in text

    def test_pairwise_negation(self):
        text = render(
            "rule q { match { a: Doc  b: Doc  a -index-> b  no a -link-> b } }"
        )
        assert "not edge(A, 'link', B)" in text

    def test_forall_negation_wraps_fragment(self):
        text = render(
            """
            rule q {
              match { d: Doc  s: Doc  no s -index-> d }
              construct { d.root = 'y' }
            }
            """
        )
        assert "not (edge(S, 'index', D), node(S, 'Doc'))" in text

    def test_conditions(self):
        text = render(
            "rule q { match { d: Doc } where d.size > 3 and name(d) = 'Doc' }"
        )
        assert "slot_of(D, 'size') > 3" in text
        assert "label_of(D) = 'Doc'" in text

    def test_regex_condition(self):
        text = render("rule q { match { d: Doc } where d.title ~ /A.*/ }")
        assert "match(slot_of(D, 'title'), 'A.*')" in text

    def test_disjunctive_condition(self):
        text = render(
            "rule q { match { d: Doc } where d.size > 3 or d.size < 1 }"
        )
        assert " ; " in text


class TestHeads:
    def test_green_edge_head(self):
        text = render(
            "rule r { match { a: Doc  b: Doc  a -x-> b } construct { a -y-> b } }"
        )
        assert text.startswith("edge(A, 'y', B) :-")

    def test_multiple_heads_share_body(self):
        text = render(
            """
            rule r {
              match { a: Doc }
              construct { n: Note  n -about-> a  a.seen = 'y' }
            }
            """
        )
        lines = text.split("\n")
        assert len(lines) == 3
        bodies = {line.split(":-")[1] for line in lines}
        assert len(bodies) == 1

    def test_slot_head_with_copied_value(self):
        text = render(
            """
            rule r {
              match { s: Doc  t: Doc  s -link-> t }
              construct { t.title = s.title }
            }
            """
        )
        assert "slot(T, 'title', slot_of(S, 'title'))" in text

    def test_collector_annotated(self):
        text = render(
            "rule r { match { d: Doc } construct { l: List collect  l -m-> d } }"
        )
        assert "collector" in text
