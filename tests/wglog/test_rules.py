"""Unit tests for WG-Log rule graphs, matching and semantics."""

import pytest

from repro.engine import EvalStats
from repro.errors import EvaluationError, QueryStructureError, SchemaError
from repro.wglog import (
    Color,
    InstanceGraph,
    RuleEdge,
    RuleGraph,
    RuleNode,
    SlotDecl,
    WGSchema,
    apply_program,
    apply_rule,
    check_against_schema,
    embeddings,
    query,
    satisfies,
)
from repro.xmlgl import attr, cmp  # condition helpers are shared


def library() -> InstanceGraph:
    """A small site: an index document pointing at content documents."""
    inst = InstanceGraph()
    idx = inst.add_entity("Doc", "idx")
    a = inst.add_entity("Doc", "a")
    b = inst.add_entity("Doc", "b")
    c = inst.add_entity("Doc", "c")
    inst.relate(idx, a, "index")
    inst.relate(idx, b, "index")
    inst.relate(a, c, "link")
    inst.add_slot(a, "title", "Alpha")
    inst.add_slot(b, "title", "Beta")
    inst.add_slot(a, "size", 10)
    inst.add_slot(b, "size", 99)
    return inst


class TestRuleGraphStructure:
    def test_duplicate_node_rejected(self):
        rule = RuleGraph()
        rule.red("x", "Doc")
        with pytest.raises(QueryStructureError):
            rule.red("x", "Doc")

    def test_edge_endpoints_checked(self):
        rule = RuleGraph()
        rule.red("x", "Doc")
        with pytest.raises(QueryStructureError):
            rule.match_edge("x", "nope", "link")

    def test_red_edge_cannot_touch_green(self):
        rule = RuleGraph()
        rule.red("x", "Doc")
        rule.green("g", "Doc")
        with pytest.raises(QueryStructureError):
            rule.match_edge("x", "g", "link")

    def test_crossed_green_rejected(self):
        rule = RuleGraph()
        rule.red("x", "Doc")
        rule.red("y", "Doc")
        with pytest.raises(QueryStructureError):
            rule.add_edge(RuleEdge("x", "y", "l", Color.GREEN, crossed=True))

    def test_collector_must_be_green(self):
        with pytest.raises(QueryStructureError):
            RuleGraph().add_node(RuleNode("c", "L", Color.RED, collector=True))

    def test_collector_needs_outgoing(self):
        rule = RuleGraph()
        rule.red("x", "Doc")
        rule.green("c", "List", collector=True)
        with pytest.raises(QueryStructureError):
            rule.validate()

    def test_collector_must_point_at_red(self):
        rule = RuleGraph()
        rule.red("x", "Doc")
        rule.green("c", "List", collector=True)
        rule.green("g", "Doc")
        rule.derive_edge("c", "g", "member")
        with pytest.raises(QueryStructureError):
            rule.validate()

    def test_slot_assertion_shape(self):
        rule = RuleGraph()
        rule.red("x", "Doc")
        with pytest.raises(QueryStructureError):
            rule.assert_slot("x", "a")  # neither value nor from_node
        with pytest.raises(QueryStructureError):
            rule.assert_slot("x", "a", value=1, from_node="x")
        with pytest.raises(QueryStructureError):
            rule.assert_slot("nope", "a", value=1)

    def test_rule_without_red_part_rejected(self):
        rule = RuleGraph()
        rule.green("g", "Doc")
        with pytest.raises(QueryStructureError):
            rule.validate()

    def test_is_query(self):
        rule = RuleGraph()
        rule.red("x", "Doc")
        assert rule.is_query()
        rule.assert_slot("x", "seen", value="y")
        assert not rule.is_query()

    def test_describe_smoke(self):
        rule = RuleGraph()
        rule.red("x", "Doc")
        rule.red("y", None)
        rule.match_edge("x", "y", "link", crossed=True)
        rule.green("g", "Doc")
        rule.assert_slot("g", "t", value="v")
        text = rule.describe()
        assert "[Doc](x)" in text and "=/=>" in text and ":= 'v'" in text


class TestEmbeddings:
    def test_single_node(self):
        rule = RuleGraph()
        rule.red("d", "Doc")
        assert len(embeddings(rule, library())) == 4

    def test_wildcard_excludes_slots(self):
        rule = RuleGraph()
        rule.red("x", None)
        assert len(embeddings(rule, library())) == 4

    def test_edge_pattern(self):
        rule = RuleGraph()
        rule.red("i", "Doc")
        rule.red("d", "Doc")
        rule.match_edge("i", "d", "index")
        pairs = {(b["i"], b["d"]) for b in embeddings(rule, library())}
        assert pairs == {("idx", "a"), ("idx", "b")}

    def test_homomorphic_default(self):
        inst = InstanceGraph()
        x = inst.add_entity("D", "x")
        inst.relate(x, x, "self")
        rule = RuleGraph()
        rule.red("a", "D")
        rule.red("b", "D")
        rule.match_edge("a", "b", "self")
        assert len(embeddings(rule, inst)) == 1
        assert len(embeddings(rule, inst, injective=True)) == 0

    def test_path_edge(self):
        rule = RuleGraph()
        rule.red("s", "Doc")
        rule.red("t", "Doc")
        rule.match_edge("s", "t", "", path=True)  # empty label: any edge chain
        pairs = {(b["s"], b["t"]) for b in embeddings(rule, library())}
        # idx reaches a, b, c; a reaches c
        assert pairs == {("idx", "a"), ("idx", "b"), ("idx", "c"), ("a", "c")}

    def test_path_edge_label_restricted(self):
        rule = RuleGraph()
        rule.red("s", "Doc")
        rule.red("t", "Doc")
        rule.match_edge("s", "t", "index", path=True)
        pairs = {(b["s"], b["t"]) for b in embeddings(rule, library())}
        assert pairs == {("idx", "a"), ("idx", "b")}

    def test_conditions_on_slots(self):
        rule = RuleGraph()
        rule.red("d", "Doc")
        rule.add_condition(cmp(">", attr("d", "size"), 50))
        assert [b["d"] for b in embeddings(rule, library())] == ["b"]

    def test_name_condition(self):
        from repro.xmlgl import name_of

        rule = RuleGraph()
        rule.red("x", None)
        rule.add_condition(cmp("=", name_of("x"), "Doc"))
        assert len(embeddings(rule, library())) == 4

    def test_stats(self):
        rule = RuleGraph()
        rule.red("d", "Doc")
        stats = EvalStats()
        embeddings(rule, library(), stats=stats)
        assert stats.bindings_produced == 4


class TestNegation:
    def test_pairwise_negation(self):
        # pairs of documents with an index edge but no link edge
        rule = RuleGraph()
        rule.red("x", "Doc")
        rule.red("y", "Doc")
        rule.match_edge("x", "y", "index")
        rule.match_edge("x", "y", "link", crossed=True)
        pairs = {(b["x"], b["y"]) for b in embeddings(rule, library())}
        assert pairs == {("idx", "a"), ("idx", "b")}

    def test_forall_negation_incoming(self):
        # documents nothing points at with an index edge (GraphLog root rule)
        rule = RuleGraph()
        rule.red("d", "Doc")
        rule.red("i", "Doc")
        rule.match_edge("i", "d", "index", crossed=True)
        rule.assert_slot("d", "root", value="yes")  # anchors d
        docs = {b["d"] for b in embeddings(rule, library())}
        assert docs == {"idx", "c"}

    def test_forall_negation_outgoing(self):
        # documents with no outgoing link
        rule = RuleGraph()
        rule.red("d", "Doc")
        rule.red("t", None)
        rule.match_edge("d", "t", "link", crossed=True)
        rule.assert_slot("d", "leaf", value="yes")
        docs = {b["d"] for b in embeddings(rule, library())}
        assert docs == {"idx", "b", "c"}

    def test_unanchored_negation_rejected(self):
        rule = RuleGraph()
        rule.red("x", "Doc")
        rule.red("y", "Doc")
        rule.match_edge("x", "y", "link", crossed=True)
        with pytest.raises(QueryStructureError, match="anchor"):
            embeddings(rule, library())

    def test_negated_fragment_with_structure(self):
        # docs with no index edge from something that itself has a title slot
        # fragment: i (with condition disallowed) -> use slot via structure:
        # i -index-> d crossed, i -link-> z  (fragment includes z)
        inst = library()
        rule = RuleGraph()
        rule.red("d", "Doc")
        rule.red("i", "Doc")
        rule.red("z", "Doc")
        rule.match_edge("i", "d", "index", crossed=True)
        rule.match_edge("i", "z", "link")
        rule.assert_slot("d", "mark", value="1")
        # i has a link edge (fragment structure): only 'a' links, and 'a'
        # indexes nothing, so no doc is excluded.
        docs = {b["d"] for b in embeddings(rule, inst)}
        assert docs == {"idx", "a", "b", "c"}


class TestSchemaChecking:
    def schema(self) -> WGSchema:
        s = WGSchema()
        s.entity("Doc", SlotDecl("title", "string"), SlotDecl("size", "int"))
        s.relation("Doc", "index", "Doc")
        s.relation("Doc", "link", "Doc")
        return s

    def test_conformant_rule_passes(self):
        rule = RuleGraph()
        rule.red("i", "Doc")
        rule.red("d", "Doc")
        rule.match_edge("i", "d", "index")
        check_against_schema(rule, self.schema())

    def test_undeclared_label_rejected(self):
        rule = RuleGraph()
        rule.red("x", "Monument")
        with pytest.raises(SchemaError, match="Monument"):
            embeddings(rule, library(), schema=self.schema())

    def test_undeclared_relation_rejected(self):
        rule = RuleGraph()
        rule.red("a", "Doc")
        rule.red("b", "Doc")
        rule.match_edge("a", "b", "cites")
        with pytest.raises(SchemaError, match="cites"):
            check_against_schema(rule, self.schema())

    def test_wildcards_skip_schema_check(self):
        rule = RuleGraph()
        rule.red("a", None)
        rule.red("b", "Doc")
        rule.match_edge("a", "b", "anything")
        check_against_schema(rule, self.schema())

    def test_path_edges_skip_relation_check(self):
        rule = RuleGraph()
        rule.red("a", "Doc")
        rule.red("b", "Doc")
        rule.match_edge("a", "b", "whatever", path=True)
        check_against_schema(rule, self.schema())


class TestGenerativeSemantics:
    def sibling_rule(self) -> RuleGraph:
        rule = RuleGraph()
        rule.red("d1", "Doc")
        rule.red("d2", "Doc")
        rule.red("i", "Doc")
        rule.match_edge("i", "d1", "index")
        rule.match_edge("i", "d2", "index")
        rule.derive_edge("d1", "d2", "sibling")
        return rule

    def test_apply_derives_edges(self):
        inst = library()
        additions = apply_rule(inst, self.sibling_rule())
        assert additions == 4  # (a,a) (a,b) (b,a) (b,b)
        assert inst.has_relationship("a", "b", "sibling")

    def test_apply_injective_skips_self_pairs(self):
        inst = library()
        additions = apply_rule(inst, self.sibling_rule(), injective=True)
        assert additions == 2
        assert not inst.has_relationship("a", "a", "sibling")

    def test_apply_idempotent(self):
        inst = library()
        apply_rule(inst, self.sibling_rule())
        assert apply_rule(inst, self.sibling_rule()) == 0

    def test_satisfies_before_and_after(self):
        inst = library()
        rule = self.sibling_rule()
        assert not satisfies(inst, rule)
        apply_rule(inst, rule)
        assert satisfies(inst, rule)

    def test_slot_assertion_literal(self):
        inst = library()
        rule = RuleGraph()
        rule.red("d", "Doc")
        rule.red("i", "Doc")
        rule.match_edge("i", "d", "index")
        rule.assert_slot("d", "indexed", value=True)
        apply_rule(inst, rule)
        assert inst.slot_value("a", "indexed") is True
        assert inst.slot_value("c", "indexed") is None

    def test_slot_assertion_copied(self):
        inst = library()
        rule = RuleGraph()
        rule.red("s", "Doc")
        rule.red("t", "Doc")
        rule.match_edge("s", "t", "link")
        rule.assert_slot("t", "from_title", from_node="s", from_slot="title")
        apply_rule(inst, rule)
        assert inst.slot_value("c", "from_title") == "Alpha"

    def test_slot_copy_missing_source_raises(self):
        inst = library()
        rule = RuleGraph()
        rule.red("s", "Doc")
        rule.red("t", "Doc")
        rule.match_edge("s", "t", "index")
        rule.assert_slot("t", "x", from_node="s", from_slot="title")
        with pytest.raises(EvaluationError, match="absent"):
            apply_rule(inst, rule)  # idx has no title slot

    def test_green_node_created_per_embedding(self):
        inst = library()
        rule = RuleGraph()
        rule.red("d", "Doc")
        rule.red("i", "Doc")
        rule.match_edge("i", "d", "index")
        rule.green("n", "Note")
        rule.derive_edge("n", "d", "about")
        apply_rule(inst, rule)
        assert len(inst.entities("Note")) == 2

    def test_green_node_needs_label(self):
        inst = library()
        rule = RuleGraph()
        rule.red("d", "Doc")
        rule.green("g", None)
        rule.derive_edge("g", "d", "x")
        with pytest.raises(EvaluationError, match="label"):
            apply_rule(inst, rule)

    def test_collector_single_node(self):
        inst = library()
        rule = RuleGraph()
        rule.red("d", "Doc")
        rule.green("lst", "DocList", collector=True)
        rule.derive_edge("lst", "d", "member")
        apply_rule(inst, rule)
        lists = inst.entities("DocList")
        assert len(lists) == 1
        assert len(inst.relationships(lists[0], "member")) == 4

    def test_collector_idempotent(self):
        inst = library()
        rule = RuleGraph()
        rule.red("d", "Doc")
        rule.green("lst", "DocList", collector=True)
        rule.derive_edge("lst", "d", "member")
        apply_rule(inst, rule)
        assert apply_rule(inst, rule) == 0
        assert len(inst.entities("DocList")) == 1

    def test_collector_extends_after_growth(self):
        inst = library()
        rule = RuleGraph()
        rule.red("d", "Doc")
        rule.green("lst", "DocList", collector=True)
        rule.derive_edge("lst", "d", "member")
        apply_rule(inst, rule)
        inst.add_entity("Doc", "new")
        apply_rule(inst, rule)
        lists = inst.entities("DocList")
        assert len(lists) == 1
        assert len(inst.relationships(lists[0], "member")) == 5


class TestPrograms:
    def test_fixpoint_transitive_closure(self):
        # reach edges: closure of link
        inst = InstanceGraph()
        for name in "abcd":
            inst.add_entity("N", name)
        inst.relate("a", "b", "link")
        inst.relate("b", "c", "link")
        inst.relate("c", "d", "link")
        base = RuleGraph()
        base.red("x", "N")
        base.red("y", "N")
        base.match_edge("x", "y", "link")
        base.derive_edge("x", "y", "reach")
        step = RuleGraph()
        step.red("x", "N")
        step.red("y", "N")
        step.red("z", "N")
        step.match_edge("x", "y", "reach")
        step.match_edge("y", "z", "link")
        step.derive_edge("x", "z", "reach")
        apply_program(inst, [base, step])
        assert inst.has_relationship("a", "d", "reach")
        assert sum(1 for e in inst.relationship_edges() if e.label == "reach") == 6

    def test_fixpoint_guard(self):
        # unsafe rule: every N spawns a new N forever
        inst = InstanceGraph()
        inst.add_entity("N", "seed")
        runaway = RuleGraph()
        runaway.red("x", "N")
        runaway.green("g", "N")
        runaway.derive_edge("g", "x", "made_from")
        with pytest.raises(EvaluationError, match="fixpoint"):
            apply_program(inst, [runaway], max_rounds=5)

    def test_stratified_negation(self):
        # mark leaves, then propagate: rules applied in order converge
        inst = InstanceGraph()
        for name in "abc":
            inst.add_entity("N", name)
        inst.relate("a", "b", "link")
        inst.relate("b", "c", "link")
        leaf = RuleGraph()
        leaf.red("x", "N")
        leaf.red("t", "N")
        leaf.match_edge("x", "t", "link", crossed=True)
        leaf.assert_slot("x", "leaf", value="yes")
        apply_program(inst, [leaf])
        assert inst.slot_value("c", "leaf") == "yes"
        assert inst.slot_value("a", "leaf") is None

    def test_query_shortcut(self):
        rule = RuleGraph()
        rule.red("d", "Doc")
        assert len(query(rule, library())) == 4
