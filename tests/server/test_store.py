"""DocumentStore: named, immutable versions with latest/pinned lookup."""

import pytest

from repro.errors import ReproError, XmlSyntaxError
from repro.server import DocumentStore, UnknownDocument
from repro.ssd import parse_document


def _doc(tag):
    return parse_document(f"<{tag}><x/></{tag}>")


class TestVersioning:
    def test_versions_count_up_from_one(self):
        store = DocumentStore()
        assert store.add("d", _doc("a")).version == 1
        assert store.add("d", _doc("b")).version == 2
        assert store.add("other", _doc("c")).version == 1

    def test_latest_and_pinned_lookup(self):
        store = DocumentStore()
        store.add("d", _doc("a"))
        store.add("d", _doc("b"))
        assert store.get("d").document.root.tag == "b"
        assert store.get("d", 1).document.root.tag == "a"
        assert store.get("d", 2).document.root.tag == "b"

    def test_old_versions_are_immutable_objects(self):
        store = DocumentStore()
        first = store.add("d", _doc("a"))
        store.add("d", _doc("b"))
        assert store.get("d", 1) is first


class TestLookupErrors:
    def test_unknown_name(self):
        store = DocumentStore()
        with pytest.raises(UnknownDocument):
            store.get("missing")

    def test_unknown_version(self):
        store = DocumentStore()
        store.add("d", _doc("a"))
        with pytest.raises(UnknownDocument, match="no version 7"):
            store.get("d", 7)

    def test_unnamed_lookup_needs_exactly_one_document(self):
        store = DocumentStore()
        with pytest.raises(UnknownDocument):
            store.get()
        store.add("d", _doc("a"))
        assert store.get().name == "d"
        store.add("e", _doc("b"))
        with pytest.raises(UnknownDocument):
            store.get()

    def test_empty_name_rejected(self):
        with pytest.raises(ReproError):
            DocumentStore().add("", _doc("a"))


class TestAdminViews:
    def test_add_xml_parses(self):
        store = DocumentStore()
        stored = store.add_xml("d", "<r><x/><y/></r>")
        assert stored.nodes == 3
        with pytest.raises(XmlSyntaxError):
            store.add_xml("d", "<r><unclosed></r>")

    def test_describe_lists_names_and_versions(self):
        store = DocumentStore()
        store.add("d", _doc("a"))
        store.add("d", _doc("b"))
        store.add("e", _doc("c"))
        listing = store.describe()
        assert [entry["name"] for entry in listing] == ["d", "e"]
        assert listing[0]["latest"] == 2
        assert [v["version"] for v in listing[0]["versions"]] == [1, 2]
        assert len(store) == 2
        assert store.names() == ["d", "e"]
