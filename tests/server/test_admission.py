"""Admission control: gate units and multi-tenant behaviour under load.

The service-level tests make concurrency deterministic with the fault
injector: a ``delay_ms`` rule at the ``match`` span site holds admitted
evaluations inside the executor long enough for concurrent requests to
pile up against the tenant's slots — no sleeps-and-hope scheduling.
"""

import asyncio
import threading

import pytest

from repro.engine.faults import FaultInjector, FaultRule, inject
from repro.server import ServerConfig, ServiceClient, TenantConfig
from repro.server.admission import AdmissionRejected, TenantGate
from repro.server.client import ServiceError

from .conftest import COUNT_QUERY, RECENT_QUERY


def _gate(max_concurrency=1, max_queue=1):
    return TenantGate(
        TenantConfig(
            name="t", max_concurrency=max_concurrency, max_queue=max_queue
        )
    )


class TestTenantGateUnit:
    def test_admits_under_cap(self):
        async def scenario():
            gate = _gate(max_concurrency=2)
            await gate.acquire()
            await gate.acquire()
            assert gate.running == 2 and gate.queued == 0
            gate.release()
            gate.release()
            assert gate.running == 0
            return gate.snapshot()

        snap = asyncio.run(scenario())
        assert snap["admitted"] == 2 and snap["completed"] == 2

    def test_queues_then_drains_fifo(self):
        async def scenario():
            gate = _gate(max_concurrency=1, max_queue=2)
            await gate.acquire()
            order = []

            async def waiter(tag):
                await gate.acquire()
                order.append(tag)

            first = asyncio.ensure_future(waiter("first"))
            await asyncio.sleep(0)
            second = asyncio.ensure_future(waiter("second"))
            await asyncio.sleep(0)
            assert gate.queued == 2 and order == []
            gate.release()
            await asyncio.sleep(0)
            assert order == ["first"]
            gate.release()
            await asyncio.sleep(0)
            assert order == ["first", "second"]
            await asyncio.gather(first, second)
            return gate.snapshot()

        snap = asyncio.run(scenario())
        assert snap["queued_total"] == 2 and snap["queue_peak"] == 2

    def test_rejects_when_queue_full(self):
        async def scenario():
            gate = _gate(max_concurrency=1, max_queue=0)
            await gate.acquire()
            with pytest.raises(AdmissionRejected):
                await gate.acquire()
            gate.release()
            # a freed slot admits again
            await gate.acquire()
            return gate.snapshot()

        snap = asyncio.run(scenario())
        assert snap["rejected"] == 1 and snap["admitted"] == 2

    def test_cancelled_waiter_leaves_the_queue(self):
        async def scenario():
            gate = _gate(max_concurrency=1, max_queue=4)
            await gate.acquire()
            task = asyncio.ensure_future(gate.acquire())
            await asyncio.sleep(0)
            assert gate.queued == 1
            task.cancel()
            await asyncio.sleep(0)
            assert gate.queued == 0
            gate.release()
            assert gate.running == 0  # no phantom promotion

        asyncio.run(scenario())

    def test_error_counter(self):
        async def scenario():
            gate = _gate()
            await gate.acquire()
            gate.release(error=True)
            return gate.snapshot()

        snap = asyncio.run(scenario())
        assert snap["errors"] == 1 and snap["completed"] == 1


def _slow_matches(delay_ms, fires):
    """An injector that delays the first ``fires`` match-site arrivals."""
    return FaultInjector(
        seed=0,
        rules=[FaultRule(site="match", delay_ms=delay_ms, max_fires=fires)],
    )


class TestServiceAdmission:
    def test_overflow_rejected_with_429(
        self, bib_store, server_factory, client_factory
    ):
        config = ServerConfig(
            port=0,
            max_workers=4,
            tenants=(
                TenantConfig(name="tight", max_concurrency=1, max_queue=0),
            ),
        )
        server = server_factory(config, bib_store)
        statuses = []
        lock = threading.Lock()

        def one_query():
            client = ServiceClient(port=server.port)
            try:
                client.query(RECENT_QUERY, tenant="tight")
                with lock:
                    statuses.append(200)
            except ServiceError as error:
                with lock:
                    statuses.append(error.status)
            finally:
                client.close()

        with inject(_slow_matches(delay_ms=400, fires=8)):
            threads = [threading.Thread(target=one_query) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert statuses.count(200) >= 1
        assert statuses.count(429) >= 1
        assert statuses.count(200) + statuses.count(429) == 4
        admission = client_factory(server).metrics()["tenants"]["tight"][
            "admission"
        ]
        assert admission["rejected"] == statuses.count(429)
        assert admission["completed"] == statuses.count(200)
        assert admission["running"] == 0 and admission["queued"] == 0

    def test_queue_absorbs_burst_and_drains(
        self, bib_store, server_factory, client_factory
    ):
        config = ServerConfig(
            port=0,
            max_workers=4,
            tenants=(
                TenantConfig(name="queued", max_concurrency=1, max_queue=16),
            ),
        )
        server = server_factory(config, bib_store)
        outcomes = []
        lock = threading.Lock()

        def one_query():
            client = ServiceClient(port=server.port)
            try:
                payload = client.query(COUNT_QUERY, tenant="queued")
                with lock:
                    outcomes.append(payload["ok"])
            finally:
                client.close()

        with inject(_slow_matches(delay_ms=100, fires=6)):
            threads = [threading.Thread(target=one_query) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert outcomes == [True] * 6  # nobody rejected: the queue absorbed
        admission = client_factory(server).metrics()["tenants"]["queued"][
            "admission"
        ]
        assert admission["rejected"] == 0
        assert admission["completed"] == 6
        assert admission["queued_total"] >= 1  # the burst really queued
        assert admission["queued"] == 0  # and fully drained

    def test_tenant_budget_isolation(
        self, bib_store, server_factory, client_factory
    ):
        config = ServerConfig(
            port=0,
            max_workers=4,
            tenants=(
                TenantConfig(name="doomed", deadline_ms=0.0),
                TenantConfig(name="unbounded"),
            ),
        )
        server = server_factory(config, bib_store)
        client = client_factory(server)
        # the doomed tenant's template deadline trips every query...
        with pytest.raises(ServiceError) as excinfo:
            client.query(RECENT_QUERY, tenant="doomed")
        assert excinfo.value.status == 408
        # ...while the unbounded tenant is untouched, before and after
        for _ in range(2):
            assert client.query(RECENT_QUERY, tenant="unbounded")["ok"]
        tenants = client.metrics()["tenants"]
        assert tenants["doomed"]["admission"]["errors"] == 1
        assert tenants["doomed"]["engine"]["errors"] == 1
        assert tenants["unbounded"]["admission"]["errors"] == 0
        assert tenants["unbounded"]["engine"]["queries"] == 2
        assert tenants["unbounded"]["engine"]["errors"] == 0

    def test_request_budget_only_tightens(
        self, bib_store, server_factory, client_factory
    ):
        config = ServerConfig(
            port=0,
            tenants=(TenantConfig(name="capped", max_work=1),),
        )
        server = server_factory(config, bib_store)
        client = client_factory(server)
        # asking for a *looser* budget cannot escape the tenant template
        with pytest.raises(ServiceError) as excinfo:
            client.query(
                RECENT_QUERY, tenant="capped",
                budget={"max_work": 10_000_000},
            )
        assert excinfo.value.status == 408
        # a tighter request budget applies to an unlimited tenant
        with pytest.raises(ServiceError) as excinfo:
            client.query(RECENT_QUERY, budget={"max_work": 1})
        assert excinfo.value.status == 408
        # and the partial policy downgrades the trip to a truncated 200
        payload = client.query(
            RECENT_QUERY,
            budget={"max_bindings": 1, "on_limit": "partial"},
        )
        assert payload["ok"] and payload["stats"]["truncated"]

    def test_unknown_tenant_is_404(
        self, bib_store, server_factory, client_factory
    ):
        server = server_factory(store=bib_store)
        client = client_factory(server)
        with pytest.raises(ServiceError) as excinfo:
            client.query(COUNT_QUERY, tenant="nope")
        assert excinfo.value.status == 404
