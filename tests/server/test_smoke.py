"""The CI smoke check must also pass as an in-suite test."""

from repro.server.smoke import run_smoke


def test_smoke_runs_clean():
    run_smoke(verbose=False)
