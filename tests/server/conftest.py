"""Shared fixtures for the query-service suite.

``server_factory`` starts a :class:`BackgroundServer` per call and stops
every one at teardown (drained executor, no leaked threads between
tests); ``client_factory`` opens keep-alive :class:`ServiceClient`\\ s and
closes them likewise.
"""

import pytest

from repro.server import (
    BackgroundServer,
    DocumentStore,
    ServerConfig,
    ServiceClient,
)
from repro.ssd import parse_document

BIB_XML = (
    "<bib>"
    "<book year='1994'><title>TCP/IP Illustrated</title>"
    "<author><last>Stevens</last></author><price>65.95</price></book>"
    "<book year='2000'><title>Data on the Web</title>"
    "<author><last>Abiteboul</last></author><price>39.95</price></book>"
    "<book year='1999'><title>Economics of Tech</title>"
    "<author><last>Shapiro</last></author><price>129.95</price></book>"
    "</bib>"
)

RECENT_QUERY = (
    "query { book as B { @year as Y } where Y >= 1999 } "
    "construct { recent { B } }"
)

COUNT_QUERY = "query { book as B } construct { r { count(B) } }"


@pytest.fixture
def bib_store():
    store = DocumentStore()
    store.add("bib", parse_document(BIB_XML))
    return store


@pytest.fixture
def server_factory():
    servers = []

    def factory(config=None, store=None):
        if config is None:
            config = ServerConfig(port=0, max_workers=4)
        server = BackgroundServer(config, store=store).start()
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.stop()


@pytest.fixture
def client_factory():
    clients = []

    def factory(server):
        client = ServiceClient(port=server.port)
        clients.append(client)
        return client

    yield factory
    for client in clients:
        client.close()
