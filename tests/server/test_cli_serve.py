"""``repro serve`` end to end as a real subprocess.

Starts the CLI on an ephemeral port, parses the announced address off
stdout (the startup contract), queries it through the client, shuts it
down over HTTP and asserts a clean exit.
"""

import os
import re
import subprocess
import sys
import time

from repro.server import ServiceClient

from .conftest import BIB_XML, COUNT_QUERY


def test_serve_subprocess_roundtrip(tmp_path):
    document = tmp_path / "bib.xml"
    document.write_text(BIB_XML)
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--document", f"bib={document}",
            "--tenant", "cli,max_concurrency=2,max_queue=4",
            "--max-workers", "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        line = process.stdout.readline()
        match = re.search(r"listening on [\d.]+:(\d+)", line)
        assert match, f"no startup line announced a port: {line!r}"
        port = int(match.group(1))

        client = ServiceClient(port=port)
        try:
            deadline = time.monotonic() + 10.0
            while True:
                try:
                    if client.healthz()["status"] == "ok":
                        break
                except OSError:
                    pass
                assert time.monotonic() < deadline, "healthz never ready"
                time.sleep(0.05)
            payload = client.query(COUNT_QUERY, tenant="cli")
            assert payload["ok"] and "3" in payload["result"]
            client.shutdown()
        finally:
            client.close()

        assert process.wait(timeout=15) == 0, process.stderr.read()
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
