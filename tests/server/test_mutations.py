"""The mutation + subscription endpoint surface and head semantics."""

import threading

import pytest

from repro.server import DocumentStore
from repro.server.client import ServiceError
from repro.ssd import parse_document

from .conftest import BIB_XML, COUNT_QUERY

NEW_BOOK = (
    "<book year='2001'><title>Fresh</title>"
    "<author><last>New</last></author><price>10.00</price></book>"
)

WATCH_QUERY = (
    "query { book as B { @year as Y } } construct { hits { B } }"
)


def insert_op(xml=NEW_BOOK, index=None):
    op = {"op": "insert", "parent": [], "xml": xml}
    if index is not None:
        op["index"] = index
    return op


class TestMutateEndpoint:
    def test_commit_reports_revision_and_work(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        committed = client.mutate("bib", [insert_op()])
        assert committed["revision"] == 1
        assert committed["applied"] == 1
        assert committed["structural"]
        assert committed["nodes_added"] > 0
        assert committed["document"]["head"] is True

    def test_versionless_queries_see_the_head(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        before = client.query(COUNT_QUERY, document="bib")
        client.mutate("bib", [insert_op()])
        after = client.query(COUNT_QUERY, document="bib")
        assert "3" in before["result"] and "4" in after["result"]
        assert after["document"]["head"] is True

    def test_pinned_versions_stay_frozen(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        client.mutate("bib", [insert_op()])
        pinned = client.query(COUNT_QUERY, document="bib", version=1)
        assert "3" in pinned["result"]
        assert pinned["document"]["head"] is False

    def test_head_shows_in_document_listing(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        client.mutate("bib", [insert_op()])
        [entry] = client.documents()["documents"]
        assert entry["head"]["head"] is True
        assert entry["head"]["nodes"] > entry["versions"][0]["nodes"]

    def test_invalid_ops_are_422_and_atomic(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        with pytest.raises(ServiceError) as excinfo:
            client.mutate(
                "bib", [insert_op(), {"op": "delete", "target": [99]}]
            )
        assert excinfo.value.status == 422
        assert excinfo.value.payload["error"]["type"] == "MutationError"
        # The valid eager op must not have leaked into the head.
        assert "3" in client.query(COUNT_QUERY, document="bib")["result"]

    def test_unknown_document_is_404(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        with pytest.raises(ServiceError) as excinfo:
            client.mutate("nope", [insert_op()])
        assert excinfo.value.status == 404

    def test_ops_must_be_a_list(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        with pytest.raises(ServiceError) as excinfo:
            client.request("POST", "/documents/bib/mutate", {"ops": "x"})
        assert excinfo.value.status == 400


class TestSubscriptionEndpoints:
    def test_subscribe_mutate_poll(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        sub = client.subscribe(WATCH_QUERY, document="bib")
        assert sub["rows"] == 3
        client.mutate("bib", [insert_op()])
        drained = client.deltas(sub["id"])
        assert drained["revision"] == 1
        [delta] = drained["deltas"]
        assert len(delta["added"]) == 1 and delta["removed"] == []
        assert delta["added"][0]["B"]["kind"] == "element"
        assert "Fresh" in delta["added"][0]["B"]["xml"]
        # Drained means drained.
        assert client.deltas(sub["id"])["deltas"] == []

    def test_footprint_skips_irrelevant_mutations(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        sub = client.subscribe(WATCH_QUERY, document="bib")
        client.mutate(
            "bib",
            [{"op": "insert", "parent": [], "xml": "<journal/>"}],
        )
        assert client.deltas(sub["id"])["deltas"] == []

    def test_long_poll_delivers_concurrent_commit(
        self, bib_store, server_factory, client_factory
    ):
        server = server_factory(store=bib_store)
        poller = client_factory(server)
        mutator = client_factory(server)
        sub = poller.subscribe(WATCH_QUERY, document="bib")
        outcome = {}

        def poll():
            outcome["drained"] = poller.deltas(sub["id"], timeout_s=10.0)

        thread = threading.Thread(target=poll)
        thread.start()
        mutator.mutate("bib", [insert_op()])
        thread.join(timeout=15.0)
        assert not thread.is_alive()
        assert len(outcome["drained"]["deltas"]) == 1

    def test_long_poll_timeout_returns_empty(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        sub = client.subscribe(WATCH_QUERY, document="bib")
        assert client.deltas(sub["id"], timeout_s=0.05)["deltas"] == []

    def test_unsubscribe_then_404(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        sub = client.subscribe(WATCH_QUERY, document="bib")
        assert client.unsubscribe(sub["id"])["closed"]
        with pytest.raises(ServiceError) as excinfo:
            client.deltas(sub["id"])
        assert excinfo.value.status == 404

    def test_unknown_subscription_is_404(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        with pytest.raises(ServiceError) as excinfo:
            client.deltas("sub-999999")
        assert excinfo.value.status == 404

    def test_reload_supersedes_head_and_subscriptions(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        sub = client.subscribe(WATCH_QUERY, document="bib")
        client.mutate("bib", [insert_op()])
        client.deltas(sub["id"])
        # A fresh load wins over the mutated head: queries see version 2,
        # and the head's subscriptions are torn down.
        client.add_document("bib", BIB_XML)
        after = client.query(COUNT_QUERY, document="bib")
        assert "3" in after["result"]
        assert after["document"] == {
            "name": "bib", "version": 2, "head": False,
        }
        with pytest.raises(ServiceError) as excinfo:
            client.deltas(sub["id"])
        assert excinfo.value.status == 404


class TestStoreHeadSemantics:
    def test_head_is_forked_copy(self):
        store = DocumentStore()
        store.add("d", parse_document("<r><a/></r>"))
        frozen = store.get("d", version=1)
        head = store.head("d")
        assert head.document is not frozen.document
        assert head.head and not frozen.head
        assert store.head("d") is head  # second call: same fork

    def test_versionless_get_prefers_head(self):
        store = DocumentStore()
        store.add("d", parse_document("<r/>"))
        assert not store.get("d").head
        head = store.head("d")
        assert store.get("d") is head
        assert store.get("d", version=1).head is False

    def test_add_supersedes_head(self):
        store = DocumentStore()
        store.add("d", parse_document("<r/>"))
        head = store.head("d")
        store.add("d", parse_document("<r><b/></r>"))
        assert store.pop_superseded_head() is head
        assert store.pop_superseded_head() is None
        assert store.get("d").version == 2
        assert not store.get("d").head
