"""The HTTP endpoint surface: routing, payloads, status mapping."""

import pytest

from repro.server import DocumentStore, ServerConfig, TenantConfig
from repro.server.client import ServiceError
from repro.server.service import PreparedQuery, canonical_digest
from repro.session import QuerySession
from repro.ssd import parse_document, serialize

from .conftest import BIB_XML, COUNT_QUERY, RECENT_QUERY


class TestHealthAndRouting:
    def test_healthz(self, bib_store, server_factory, client_factory):
        client = client_factory(server_factory(store=bib_store))
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["documents"] == 1
        assert "public" in health["tenants"]
        assert health["uptime_s"] >= 0

    def test_unknown_route_404_wrong_method_405(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        with pytest.raises(ServiceError) as excinfo:
            client.request("GET", "/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.request("GET", "/query")
        assert excinfo.value.status == 405

    def test_malformed_json_body_is_400(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        client._conn.request(
            "POST", "/query", body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = client._conn.getresponse()
        response.read()
        assert response.status == 400


class TestQueryEndpoint:
    def test_result_byte_identical_to_direct_run(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        payload = client.query(RECENT_QUERY, document="bib")
        direct = QuerySession(parse_document(BIB_XML)).run(RECENT_QUERY)
        assert payload["ok"]
        assert payload["result"] == serialize(direct.root)
        assert payload["tenant"] == "public"
        assert payload["document"] == {
            "name": "bib", "version": 1, "head": False,
        }

    def test_unnamed_document_shorthand(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        assert client.query(COUNT_QUERY)["ok"]

    def test_version_pinning(self, server_factory, client_factory):
        store = DocumentStore()
        store.add_xml("d", "<r><item/></r>")
        store.add_xml("d", "<r><item/><item/><item/></r>")
        client = client_factory(server_factory(store=store))
        query = "query { item as I } construct { n { count(I) } }"
        latest = client.query(query, document="d")
        pinned = client.query(query, document="d", version=1)
        assert "3" in latest["result"]
        assert "1" in pinned["result"]

    def test_parse_error_is_400(self, bib_store, server_factory, client_factory):
        client = client_factory(server_factory(store=bib_store))
        with pytest.raises(ServiceError) as excinfo:
            client.query("query { book as } construct }{")
        assert excinfo.value.status == 400
        assert excinfo.value.payload["error"]["type"] == "QuerySyntaxError"

    def test_unknown_document_is_404(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        with pytest.raises(ServiceError) as excinfo:
            client.query(COUNT_QUERY, document="missing")
        assert excinfo.value.status == 404

    def test_query_and_prepared_are_mutually_exclusive(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        with pytest.raises(ServiceError) as excinfo:
            client.request("POST", "/query", {"document": "bib"})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.request(
                "POST", "/query",
                {"query": COUNT_QUERY, "prepared": "abc", "document": "bib"},
            )
        assert excinfo.value.status == 400

    def test_bad_budget_fields_are_400(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        with pytest.raises(ServiceError) as excinfo:
            client.query(COUNT_QUERY, budget={"max_wrk": 5})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.query(COUNT_QUERY, budget={"max_work": "lots"})
        assert excinfo.value.status == 400


class TestPreparedQueries:
    def test_prepare_then_execute(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        prepared = client.prepare(RECENT_QUERY)
        assert prepared["params"] == []
        payload = client.query(prepared=prepared["digest"])
        direct = QuerySession(parse_document(BIB_XML)).run(RECENT_QUERY)
        assert payload["result"] == serialize(direct.root)

    def test_canonical_digest_shared_across_equal_texts(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        spaced = RECENT_QUERY.replace(" { ", "  {  ")
        first = client.prepare(RECENT_QUERY)
        second = client.prepare(spaced)
        assert first["digest"] == second["digest"]
        assert first["digest"] == canonical_digest(RECENT_QUERY)

    def test_parameter_substitution(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        template = (
            "query { book as B { @year as Y } where Y >= ${year} } "
            "construct { hits { B } }"
        )
        prepared = client.prepare(template)
        assert prepared["params"] == ["year"]
        for year, expected in ((1999, 2), (1994, 3), (2001, 0)):
            payload = client.query(
                prepared=prepared["digest"], params={"year": year}
            )
            assert payload["stats"]["bindings_produced"] == expected

    def test_missing_and_extra_params_rejected(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        prepared = client.prepare(
            "query { book as B { @year as Y } where Y >= ${year} } "
            "construct { hits { B } }"
        )
        with pytest.raises(ServiceError) as excinfo:
            client.query(prepared=prepared["digest"])
        assert excinfo.value.status == 422
        with pytest.raises(ServiceError) as excinfo:
            client.query(
                prepared=prepared["digest"],
                params={"year": 1999, "bogus": 1},
            )
        assert excinfo.value.status == 422

    def test_unknown_digest_is_404(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        with pytest.raises(ServiceError) as excinfo:
            client.query(prepared="deadbeef")
        assert excinfo.value.status == 404

    def test_unparseable_template_rejected_at_prepare(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        with pytest.raises(ServiceError) as excinfo:
            client.prepare("query { ${x} oops")
        assert excinfo.value.status == 400

    def test_string_param_quoting(self):
        prepared = PreparedQuery(
            digest="d", text="where T = ${t}", params=("t",)
        )
        assert prepared.substitute({"t": "plain"}) == 'where T = "plain"'
        assert prepared.substitute({"t": 'has "quotes"'}) == (
            "where T = 'has \"quotes\"'"
        )
        with pytest.raises(Exception, match="both quote characters"):
            prepared.substitute({"t": "has \"both\" 'kinds'"})
        with pytest.raises(Exception, match="boolean"):
            prepared.substitute({"t": True})


class TestDocumentsEndpoint:
    def test_admin_add_creates_new_version(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        stored = client.add_document("bib", "<bib><book year='2020'/></bib>")
        assert stored["version"] == 2
        listing = client.documents()["documents"]
        assert listing[0]["latest"] == 2
        # latest now sees one book; pinned v1 still the original three
        query = "query { book as B } construct { n { count(B) } }"
        assert "1" in client.query(query, document="bib")["result"]
        assert "3" in client.query(query, document="bib", version=1)["result"]

    def test_bad_xml_is_400(self, bib_store, server_factory, client_factory):
        client = client_factory(server_factory(store=bib_store))
        with pytest.raises(ServiceError) as excinfo:
            client.add_document("bad", "<r><oops></r>")
        assert excinfo.value.status == 400


class TestBatchEndpoint:
    def test_thread_batch(self, bib_store, server_factory, client_factory):
        client = client_factory(server_factory(store=bib_store))
        payload = client.batch([RECENT_QUERY, COUNT_QUERY])
        assert [row["ok"] for row in payload["rows"]] == [True, True]
        direct = QuerySession(parse_document(BIB_XML))
        assert payload["rows"][0]["result"] == serialize(
            direct.run(RECENT_QUERY).root
        )

    def test_process_batch(self, bib_store, server_factory, client_factory):
        client = client_factory(server_factory(store=bib_store))
        payload = client.batch([RECENT_QUERY, COUNT_QUERY], executor="process")
        assert [row["ok"] for row in payload["rows"]] == [True, True]
        direct = QuerySession(parse_document(BIB_XML))
        assert payload["rows"][0]["result"] == serialize(
            direct.run(RECENT_QUERY).root
        )

    def test_batch_rows_carry_errors_without_failing_the_batch(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        payload = client.batch(
            [RECENT_QUERY, COUNT_QUERY],
            budget={"max_work": 1, "on_limit": "raise"},
        )
        assert all(not row["ok"] for row in payload["rows"])
        assert all(
            row["error"]["type"] in ("BudgetExceeded", "DeadlineExceeded")
            for row in payload["rows"]
        )


class TestMetricsEndpoint:
    def test_totals_match_observed_successes_and_errors(
        self, bib_store, server_factory, client_factory
    ):
        client = client_factory(server_factory(store=bib_store))
        ok_count, err_count = 4, 2
        for _ in range(ok_count):
            assert client.query(COUNT_QUERY)["ok"]
        for _ in range(err_count):
            with pytest.raises(ServiceError):
                client.query(COUNT_QUERY, budget={"max_work": 1})
        metrics = client.metrics()
        engine = metrics["engine"]
        assert engine["queries"] == ok_count + err_count
        assert engine["errors"] == err_count  # the run() finally-fix, end to end
        assert engine["governance"]["budget_exceeded"] == err_count
        tenant = metrics["tenants"]["public"]
        assert tenant["engine"]["queries"] == ok_count + err_count
        assert tenant["engine"]["errors"] == err_count
        assert tenant["admission"]["completed"] == ok_count + err_count
        assert tenant["admission"]["errors"] == err_count


class TestShutdown:
    def test_shutdown_endpoint_reports_and_drains(
        self, bib_store, server_factory, client_factory
    ):
        server = server_factory(store=bib_store)
        client = client_factory(server)
        assert client.query(COUNT_QUERY)["ok"]
        assert client.shutdown()["status"] == "shutting-down"
        server.stop()


class TestServerConfigValidation:
    def test_duplicate_tenants_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ServerConfig(
                tenants=(TenantConfig(name="a"), TenantConfig(name="a"))
            )

    def test_roster_always_has_default(self):
        roster = ServerConfig(tenants=(TenantConfig(name="a"),)).tenant_roster()
        assert {tenant.name for tenant in roster} == {"a", "public"}
        explicit = ServerConfig(
            tenants=(TenantConfig(name="public", max_work=5),)
        ).tenant_roster()
        assert len(explicit) == 1 and explicit[0].max_work == 5

    def test_tenant_spec_parsing(self):
        tenant = TenantConfig.from_spec(
            "analytics,max_concurrency=2,deadline_ms=100.5,on_limit=partial"
        )
        assert tenant.name == "analytics"
        assert tenant.max_concurrency == 2
        assert tenant.deadline_ms == 100.5
        assert tenant.on_limit == "partial"
        with pytest.raises(ValueError):
            TenantConfig.from_spec("t,bogus_key=1")
        with pytest.raises(ValueError):
            TenantConfig.from_spec("t,max_queue")
