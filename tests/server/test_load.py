"""The acceptance load test: 50 concurrent clients × 20 queries each.

Every response must be byte-identical to a direct ``QuerySession.run``
over the same document, per-tenant budget enforcement must be observable
in ``/metrics``, and *no error may be dropped from the counts* — the
end-to-end proof of the ``run()`` error-path metrics fix.
"""

import threading

import pytest

from repro.server import ServerConfig, ServiceClient, TenantConfig
from repro.server.client import ServiceError
from repro.session import QuerySession
from repro.ssd import parse_document, serialize

from .conftest import BIB_XML

CLIENTS = 50
QUERIES_PER_CLIENT = 20

#: Distinct query texts, cycled across the run so the plan cache is
#: exercised under real contention (not one degenerate hot entry).
QUERY_POOL = [
    "query { book as B { @year as Y } where Y >= 1999 } "
    "construct { recent { B } }",
    "query { book as B } construct { r { count(B) } }",
    "query { book as B { title as T } } construct { titles { T } }",
    "query { book as B { @year as Y } where Y < 1999 } "
    "construct { old { B } }",
    "query { book as B { author { last as L } } } "
    "construct { names { L } }",
]


@pytest.mark.slow
def test_load_byte_identical_and_no_dropped_errors(bib_store, server_factory):
    expected = {}
    reference = QuerySession(parse_document(BIB_XML))
    for query in QUERY_POOL:
        root = reference.run(query).root
        expected[query] = serialize(root)

    config = ServerConfig(
        port=0,
        max_workers=8,
        tenants=(
            TenantConfig(name="load", max_concurrency=16, max_queue=2000),
        ),
    )
    server = server_factory(config, bib_store)

    mismatches = []
    statuses = []
    lock = threading.Lock()

    def one_client(client_index):
        client = ServiceClient(port=server.port, timeout=60.0)
        local_statuses = []
        local_mismatches = []
        try:
            for i in range(QUERIES_PER_CLIENT):
                query = QUERY_POOL[(client_index + i) % len(QUERY_POOL)]
                if i == QUERIES_PER_CLIENT - 1:
                    # the error phase: every client ends on one budget trip,
                    # so exactly CLIENTS errors must appear in /metrics
                    try:
                        client.query(
                            query, tenant="load", budget={"max_work": 1}
                        )
                        local_statuses.append("unexpected-ok")
                    except ServiceError as error:
                        local_statuses.append(error.status)
                else:
                    payload = client.query(query, tenant="load")
                    local_statuses.append(200)
                    if payload["result"] != expected[query]:
                        local_mismatches.append((query, payload["result"]))
        finally:
            client.close()
        with lock:
            statuses.extend(local_statuses)
            mismatches.extend(local_mismatches)

    threads = [
        threading.Thread(target=one_client, args=(index,))
        for index in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    total = CLIENTS * QUERIES_PER_CLIENT
    successes = total - CLIENTS
    assert len(statuses) == total
    assert mismatches == []
    assert statuses.count(200) == successes
    assert statuses.count(408) == CLIENTS  # every budget trip surfaced

    client = ServiceClient(port=server.port)
    try:
        metrics = client.metrics()
    finally:
        client.close()
    tenant = metrics["tenants"]["load"]
    # admission saw every request; nothing rejected at this queue depth
    assert tenant["admission"]["completed"] == total
    assert tenant["admission"]["rejected"] == 0
    assert tenant["admission"]["running"] == 0
    assert tenant["admission"]["queued"] == 0
    # no dropped error counts, service-wide and per tenant
    assert tenant["admission"]["errors"] == CLIENTS
    assert tenant["engine"]["queries"] == total
    assert tenant["engine"]["errors"] == CLIENTS
    assert metrics["engine"]["queries"] == total
    assert metrics["engine"]["errors"] == CLIENTS
    assert metrics["engine"]["governance"]["budget_exceeded"] == CLIENTS
