"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main

RULE = """
query { book as B { @year as Y  title as T } where Y >= 1995 }
construct { recent { entry for B { value Y copy T } } }
"""
DATA = (
    '<bib><book year="2000"><title>New</title></book>'
    '<book year="1990"><title>Old</title></book></bib>'
)
WG_RULES = """
rule pairs { match { b: book  t: title  b -child-> t } }
rule mark {
  match { b: book }
  construct { b.seen = 'yes' }
}
"""
DTD = """
<!ELEMENT bib (book*)>
<!ELEMENT book (title)>
<!ATTLIST book year CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
"""


@pytest.fixture
def files(tmp_path):
    paths = {}
    for name, content in (
        ("rule.xgl", RULE),
        ("data.xml", DATA),
        ("rules.wgl", WG_RULES),
        ("schema.dtd", DTD),
        ("bad.xml", '<bib><book><title>t</title></book></bib>'),
    ):
        path = tmp_path / name
        path.write_text(content)
        paths[name] = str(path)
    paths["tmp"] = tmp_path
    return paths


def run(argv):
    out = io.StringIO()
    status = main(argv, out=out)
    return status, out.getvalue()


class TestXmlglCommand:
    def test_runs_rule(self, files):
        status, output = run(["xmlgl", files["rule.xgl"], files["data.xml"]])
        assert status == 0
        assert "<title>New</title>" in output
        assert "Old" not in output

    def test_compact(self, files):
        status, output = run(
            ["xmlgl", files["rule.xgl"], files["data.xml"], "--compact"]
        )
        assert status == 0
        assert output.count("\n") == 1

    def test_named_sources(self, files, tmp_path):
        rule = tmp_path / "multi.xgl"
        rule.write_text(
            "query docs { book as B { title as T } } construct { r { collect T } }"
        )
        status, output = run(
            ["xmlgl", str(rule), "--source", f"docs={files['data.xml']}"]
        )
        assert status == 0 and "<title>" in output

    def test_bad_source_spec(self, files):
        status, _ = run(["xmlgl", files["rule.xgl"], "--source", "nopath"])
        assert status == 2

    def test_missing_document(self, files):
        status, _ = run(["xmlgl", files["rule.xgl"]])
        assert status == 2

    def test_missing_file(self, files):
        status, _ = run(["xmlgl", "/nonexistent.xgl", files["data.xml"]])
        assert status == 2

    def test_syntax_error_reported(self, files, tmp_path):
        bad = tmp_path / "bad.xgl"
        bad.write_text("query { !!! }")
        status, _ = run(["xmlgl", str(bad), files["data.xml"]])
        assert status == 2


class TestWglogCommand:
    def test_query_mode(self, files):
        status, output = run(["wglog", files["rules.wgl"], files["data.xml"]])
        assert status == 0
        assert "rule pairs: 2 matches" in output

    def test_apply_mode(self, files):
        status, output = run(
            ["wglog", files["rules.wgl"], files["data.xml"], "--apply"]
        )
        assert status == 0
        assert "# additions:" in output
        assert "seen='yes'" in output


class TestRenderCommand:
    def test_ascii_to_stdout(self, files):
        status, output = run(["render", files["rule.xgl"]])
        assert status == 0
        assert "book" in output and "#" in output

    def test_svg_to_file(self, files):
        target = files["tmp"] / "out.svg"
        status, output = run(["render", files["rule.xgl"], "-o", str(target)])
        assert status == 0
        assert target.read_text().startswith("<svg")

    def test_wglog_rendering(self, files):
        status, output = run(["render", files["rules.wgl"], "--lang", "wglog"])
        assert status == 0
        assert "book" in output


class TestValidateCommand:
    def test_valid_document(self, files):
        status, output = run(
            ["validate", files["data.xml"], "--dtd", files["schema.dtd"]]
        )
        assert status == 0
        assert "# 0 violation(s)" in output

    def test_invalid_document_nonzero_exit(self, files):
        status, output = run(
            ["validate", files["bad.xml"], "--dtd", files["schema.dtd"]]
        )
        assert status == 1
        assert "year" in output

    def test_as_xmlgl_schema(self, files):
        status, output = run(
            [
                "validate", files["bad.xml"],
                "--dtd", files["schema.dtd"], "--as-xmlgl",
            ]
        )
        assert status == 1


class TestCompareCommand:
    def test_report(self, files):
        status, output = run(["compare", "--entries", "10", "--seed", "1"])
        assert status == 0
        assert "XML-GL" in output and "AGREE" in output


class TestInferCommand:
    def test_xmlgl_schema_output(self, files):
        status, output = run(["infer", files["data.xml"]])
        assert status == 0
        assert "root bib" in output
        assert "book -> title" in output

    def test_dtd_output(self, files):
        status, output = run(["infer", files["data.xml"], "--dtd"])
        assert status == 0
        assert "<!ELEMENT" in output

    def test_wglog_output(self, files):
        status, output = run(["infer", files["data.xml"], "--wglog"])
        assert status == 0
        assert "entity book" in output
        assert "-child->" in output

    def test_multiple_documents(self, files, tmp_path):
        other = tmp_path / "other.xml"
        other.write_text("<bib><book year='1'><title>t</title></book></bib>")
        status, output = run(["infer", files["data.xml"], str(other)])
        assert status == 0


class TestFmtCommand:
    def test_xmlgl_canonical(self, files):
        status, output = run(["fmt", files["rule.xgl"]])
        assert status == 0
        assert "query {" in output and "construct {" in output
        # canonical form is a fixpoint: formatting it again is identical
        import tempfile, os
        with tempfile.NamedTemporaryFile("w", suffix=".xgl", delete=False) as f:
            f.write(output)
            path = f.name
        try:
            status2, output2 = run(["fmt", path])
        finally:
            os.unlink(path)
        assert status2 == 0 and output2 == output

    def test_wglog_canonical(self, files):
        status, output = run(["fmt", files["rules.wgl"], "--lang", "wglog"])
        assert status == 0
        assert "match {" in output


class TestRunCommand:
    def test_runs_like_xmlgl(self, files):
        status, output = run(["run", files["rule.xgl"], files["data.xml"]])
        assert status == 0
        assert "<title>New</title>" in output

    def test_trace_prints_span_tree_to_stderr(self, files, capsys):
        status, output = run(
            ["run", files["rule.xgl"], files["data.xml"], "--trace"]
        )
        assert status == 0
        assert "<title>New</title>" in output
        err = capsys.readouterr().err
        assert "match" in err and "construct" in err

    def test_explain_replaces_result(self, files):
        status, output = run(
            ["run", files["rule.xgl"], files["data.xml"], "--explain"]
        )
        assert status == 0
        assert output.startswith("EXPLAIN")
        assert "<recent>" not in output

    def test_records_into_global_registry(self, files):
        from repro.engine.metrics import global_registry

        before = global_registry.queries
        status, _ = run(["run", files["rule.xgl"], files["data.xml"]])
        assert status == 0
        assert global_registry.queries == before + 1

    def test_metrics_flag_prints_snapshot(self, files, capsys):
        status, _ = run(
            ["run", files["rule.xgl"], files["data.xml"], "--metrics"]
        )
        assert status == 0
        err = capsys.readouterr().err
        import json

        assert json.loads(err)["queries"] >= 1

    def test_missing_document(self, files):
        status, _ = run(["run", files["rule.xgl"]])
        assert status == 2


class TestExplainCommand:
    def test_explains_with_document(self, files):
        status, output = run(["explain", files["rule.xgl"], files["data.xml"]])
        assert status == 0
        assert output.startswith("EXPLAIN")
        assert "fragment" in output
        assert "pools" in output

    def test_no_document_uses_synthetic_workload(self, files):
        status, output = run(["explain", files["rule.xgl"]])
        assert status == 0
        assert "built-in bibliography" in output

    def test_json_round_trips(self, files):
        import json

        status, output = run(
            ["explain", files["rule.xgl"], files["data.xml"], "--format", "json"]
        )
        assert status == 0
        payload = json.loads(output)
        assert payload["graphs"][0]["fragments"]

    def test_shipped_example_join_query(self):
        # the acceptance path: the committed FIG-Q3 example must explain
        # against the synthetic workload; forcing the pipeline shows the
        # join forest and the pre/post semi-join pool sizes
        status, output = run(
            ["explain", "examples/fig_q3_join.xgl", "--engine", "pipeline"]
        )
        assert status == 0
        assert "join forest" in output
        assert "semi-join" in output
        assert "->" in output

    def test_shipped_example_adaptive_default(self):
        # under the adaptive default the same example reports per-fragment
        # cost decisions and the plan-cache outcome
        status, output = run(["explain", "examples/fig_q3_join.xgl"])
        assert status == 0
        assert "engine: adaptive" in output
        assert "plan: " in output

    def test_missing_file(self):
        status, _ = run(["explain", "/nonexistent.xgl"])
        assert status == 2


class TestWatchCommand:
    WATCH_RULE = (
        "query { book as B { title as T } } construct { r { collect T } }"
    )

    def setup_files(self, tmp_path, edits):
        import json

        rule = tmp_path / "watch.xgl"
        rule.write_text(self.WATCH_RULE)
        doc = tmp_path / "watch.xml"
        doc.write_text(DATA)
        script = tmp_path / "edits.json"
        script.write_text(json.dumps(edits))
        return str(rule), str(doc), str(script)

    def test_prints_deltas_per_batch(self, tmp_path):
        rule, doc, script = self.setup_files(
            tmp_path,
            [
                [{"op": "insert", "parent": [],
                  "xml": "<book><title>Third</title></book>"}],
                [{"op": "delete", "target": [0]}],
            ],
        )
        status, output = run(["watch", rule, doc, "--edits", script])
        assert status == 0
        assert "# initial rows: 2" in output
        assert "rev 1: +1 -0" in output
        assert "Third" in output
        assert "rev 2: +0 -1" in output
        assert "# final rows: 2" in output

    def test_irrelevant_batches_produce_no_delta_lines(self, tmp_path, capsys):
        rule, doc, script = self.setup_files(
            tmp_path,
            [[{"op": "insert", "parent": [], "xml": "<journal/>"}]],
        )
        status, output = run(["watch", rule, doc, "--edits", script, "--stats"])
        assert status == 0
        assert "rev" not in output.replace("rows", "")
        stderr = capsys.readouterr().err
        assert "no delta" in stderr
        assert "1 skips" in stderr

    def test_bad_script_shape_is_usage_error(self, tmp_path, capsys):
        rule, doc, script = self.setup_files(tmp_path, [])
        (tmp_path / "edits.json").write_text('{"not": "a list"}')
        status, _ = run(["watch", rule, doc, "--edits", script])
        assert status == 2
