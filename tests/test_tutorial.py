"""The tutorial's snippets, executed — docs/TUTORIAL.md cannot rot."""

import pytest

from repro.ssd import parse_document
from repro.wglog import (
    apply_program,
    apply_rule,
    document_to_instance,
    parse_wglog,
)
from repro.wglog import parse_rule as wg_rule
from repro.wglog.semantics import query
from repro.xmlgl import evaluate_rule
from repro.xmlgl.dsl import parse_rule


@pytest.fixture
def doc():
    return parse_document(
        """
<bib>
  <book year="2000" id="b1">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <price>39.95</price>
  </book>
  <book year="1994" id="b2" cites="b1">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <price>65.95</price>
  </book>
</bib>"""
    )


class TestXmlglSteps:
    def test_step1_box_and_triangle(self, doc):
        rule = parse_rule(
            "query { book as B } construct { result { collect B } }"
        )
        assert len(evaluate_rule(rule, doc).find_all("book")) == 2

    def test_step2_arcs_and_circles(self, doc):
        rule = parse_rule(
            """
            query { book as B { @year as Y  title as T } }
            construct { result { collect T } }
            """
        )
        assert len(evaluate_rule(rule, doc).find_all("title")) == 2

    def test_step3_predicates(self, doc):
        rule = parse_rule(
            "query { book as B { @year as Y  title as T } where Y >= 1995 }"
            " construct { result { collect T } }"
        )
        result = evaluate_rule(rule, doc)
        assert [t.text_content() for t in result.find_all("title")] == [
            "Data on the Web"
        ]

    def test_step4_restructuring(self, doc):
        rule = parse_rule(
            """
            query { book as B { @year as Y  title as T  price as P { text as PT } } }
            construct {
              report {
                n { count(B) }
                cheapest { min(PT) }
                by-year { year for Y sortby Y { value Y  books { collect T } } }
              }
            }
            """
        )
        report = evaluate_rule(rule, doc)
        assert report.find("n").text_content() == "2"
        assert report.find("cheapest").text_content() == "39.95"
        years = [
            y.immediate_text() for y in report.find("by-year").find_all("year")
        ]
        assert years == ["1994", "2000"]

    def test_step5_negation_and_depth(self, doc):
        rule = parse_rule(
            """
            query { root bib { book as B { not publisher as PU  deep last as L } } }
            construct { result { collect L } }
            """
        )
        lasts = evaluate_rule(rule, doc).find_all("last")
        assert sorted(l.text_content() for l in lasts) == ["Abiteboul", "Stevens"]


class TestWglogSteps:
    def test_step1_red_query(self, doc):
        instance, _ = document_to_instance(doc)
        titles = query(
            wg_rule("rule q { match { b: book  t: title  b -child-> t } }"),
            instance,
        )
        assert len(titles) == 2

    def test_step2_conditions(self, doc):
        instance, _ = document_to_instance(doc)
        recent = query(
            wg_rule("rule q { match { b: book } where b.year >= 1995 }"),
            instance,
        )
        assert len(recent) == 1

    def test_step3_derivation(self, doc):
        instance, _ = document_to_instance(doc)
        apply_rule(
            instance,
            wg_rule(
                """
                rule backcite {
                  match { a: book  b: book  a -cites-> b }
                  construct { b -cited_by-> a }
                }
                """
            ),
        )
        edges = [e for e in instance.relationship_edges() if e.label == "cited_by"]
        assert len(edges) == 1

    def test_step4_recursion(self, doc):
        instance, _ = document_to_instance(doc)
        _, closure = parse_wglog(
            """
            rule base { match { a: book  b: book  a -cites-> b }
                        construct { a -reaches-> b } }
            rule step { match { a: book  b: book  c: book
                                a -reaches-> b  b -cites-> c }
                        construct { a -reaches-> c } }
            """
        )
        apply_program(instance, closure)
        reaches = [e for e in instance.relationship_edges() if e.label == "reaches"]
        assert len(reaches) == 1  # b2 -> b1 only (no longer chains here)

    def test_step5_forall_negation(self, doc):
        instance, _ = document_to_instance(doc)
        apply_rule(
            instance,
            wg_rule(
                """
                rule roots {
                  match { b: book  o: book  no o -cites-> b }
                  construct { b.uncited = 'yes' }
                }
                """
            ),
        )
        uncited = [
            b
            for b in instance.entities("book")
            if instance.slot_value(b, "uncited") == "yes"
        ]
        assert len(uncited) == 1  # b2 is cited by nobody... b1 is cited


class TestExecOptionsStep:
    """§6: one frozen bundle, derived per call — and never a warning."""

    def test_step6_exec_options_bundle(self, doc):
        import warnings
        from dataclasses import replace

        from repro import ExecOptions, QuerySession

        query = "query { book as B } construct { result { collect B } }"
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session = QuerySession(doc, options=ExecOptions(engine="pipeline"))
            session.run(query)
            assert session.current().trace is None
            session.run(query, options=replace(session.defaults, trace=True))
            assert session.current().trace is not None
        assert session.defaults.engine == "pipeline"


class TestObservabilitySteps:
    def test_step7_plan_cache_snippet(self, doc):
        from repro.engine.cache import DocumentIndexCache
        from repro.engine.plan_cache import PlanCache
        from repro.session import QuerySession

        query = "query { book as B } construct { result { collect B } }"
        session = QuerySession(
            doc, indexes=DocumentIndexCache(), plans=PlanCache()
        )
        session.run(query)
        session.run(query)
        assert session.current().stats.plan_cache_hits == 1
        assert session.explain(query).plan_source == "cached"
        assert session.metrics().snapshot()["plan_cache_hit_rate"] > 0


class TestRewriteSteps:
    """§9: the redundant drawing really shrinks and stays equivalent."""

    SOURCE = (
        "query { root report as R { deep para as P  deep para as P2  "
        "deep * as W } where 1 = 1 } construct { result { collect P } }"
    )

    def test_step9_redundant_example_shrinks(self):
        from repro import RewriteReport, rewrite_rule

        rewritten, report = rewrite_rule(parse_rule(self.SOURCE))
        assert isinstance(report, RewriteReport)
        assert report.describe() == "merged=1 pruned=1 dropped=1"
        assert set(rewritten.queries[0].nodes) == {"R", "P"}

    def test_step9_no_rewrite_escape_hatch(self):
        from repro import MatchOptions
        from repro.explain import explain

        report = parse_document("<report><para>x</para></report>")
        rule = parse_rule(self.SOURCE)
        on = explain(rule, report)
        off = explain(rule, report, options=MatchOptions(rewrite=False))
        assert on.rewrites == "merged=1 pruned=1 dropped=1"
        assert off.rewrites == "off"
        assert "rewrites:" in on.render_text()

    def test_step9_contains_oracle(self):
        from repro import contains

        deep = parse_rule(
            "query { report as R { deep para as P } } "
            "construct { r { copy P } }"
        ).queries[0]
        direct = parse_rule(
            "query { report as R { para as P } } "
            "construct { r { copy P } }"
        ).queries[0]
        assert contains(deep, direct) and not contains(direct, deep)


class TestShardingSteps:
    """§10: columnar counters in EXPLAIN, process-executor batch contract."""

    def test_step10_explain_shows_columnar_fragments(self, doc):
        from repro.explain import explain

        join = parse_rule(
            "query { book as B  * as C { title as T } where B.cites = C.id }"
            " construct { r { collect T } }"
        )
        report = explain(join, doc)
        assert report.stats.extra.get("columnar_fragments", 0) >= 1
        assert "work:" in report.render_text()

    def test_step10_process_batch_contract(self, doc):
        from dataclasses import replace

        from repro.engine.limits import QueryBudget
        from repro.session import QuerySession

        session = QuerySession(doc)
        rows = session.run_batch(
            [
                "query { book as B } construct { all { collect B } }",
                "query { book as B { @year as Y } where Y >= 1995 }"
                " construct { recent { collect B } }",
            ],
            executor="process",
            max_workers=2,
            options=replace(
                session.defaults, budget=QueryBudget(deadline_ms=60_000)
            ),
        )
        assert [r.index for r in rows] == [0, 1]
        assert all(r.error is None for r in rows)
        assert rows[0].stats.bindings_produced >= rows[1].stats.bindings_produced


class TestQueryServiceSteps:
    """§11 — the query service snippets, executed against a live server."""

    XML = (
        "<bib>"
        "<book year='2000' id='b1'><title>Data on the Web</title></book>"
        "<book year='1994' id='b2'><title>TCP/IP Illustrated</title></book>"
        "</bib>"
    )

    @pytest.fixture
    def served(self):
        from repro.server import BackgroundServer, DocumentStore, ServerConfig
        from repro.server import ServiceClient, TenantConfig

        store = DocumentStore()
        store.add_xml("bib", self.XML)
        config = ServerConfig(
            port=0,
            tenants=(
                TenantConfig(name="analytics", max_concurrency=2, max_queue=8),
            ),
        )
        with BackgroundServer(config, store=store) as server:
            client = ServiceClient(port=server.port)
            try:
                yield client
            finally:
                client.close()

    def test_step11_query_matches_direct_run(self, served):
        from repro.session import QuerySession
        from repro.ssd import parse_document, serialize

        text = (
            "query { book as B { @year as Y } where Y >= 1999 }"
            " construct { recent { B } }"
        )
        assert served.healthz()["status"] == "ok"
        payload = served.query(text, document="bib", tenant="analytics")
        direct = QuerySession(parse_document(self.XML)).run(text)
        assert payload["ok"]
        assert payload["result"] == serialize(direct.root)

    def test_step11_prepared_query_with_params(self, served):
        prepared = served.prepare(
            "query { book as B { @year as Y } where Y >= ${year} }"
            " construct { hits { B } }"
        )
        assert prepared["params"] == ["year"]
        payload = served.query(
            prepared=prepared["digest"], params={"year": 1999}
        )
        assert payload["stats"]["bindings_produced"] == 1

    def test_step11_partial_budget_overlay(self, served):
        payload = served.query(
            "query { book as B } construct { all { collect B } }",
            budget={"max_bindings": 1, "on_limit": "partial"},
        )
        assert payload["ok"] and payload["stats"]["truncated"]

    def test_step11_metrics_count_errors_exactly(self, served):
        from repro.server.client import ServiceError

        served.query("query { book as B } construct { r { count(B) } }")
        with pytest.raises(ServiceError) as excinfo:
            served.query(
                "query { book as B } construct { r { count(B) } }",
                budget={"max_work": 1},
            )
        assert excinfo.value.status == 408
        engine = served.metrics()["engine"]
        assert engine["queries"] == 2 and engine["errors"] == 1


class TestMutationSteps:
    """§12 — mutation batches and continuous queries, as printed."""

    def make(self):
        from repro import QuerySession

        doc = parse_document(
            "<bib><book year='2000'><title>Data on the Web</title></book></bib>"
        )
        session = QuerySession(doc)
        subscription = session.subscribe(
            "query { book as B { @year as Y } } construct { hits { B } }"
        )
        return doc, session, subscription

    def test_step12_batch_commit_and_delta(self):
        from repro import MutationBatch
        from repro.ssd.model import Element, Text

        doc, session, subscription = self.make()
        assert len(subscription.rows()) == 1

        book = Element("book", attributes={"year": "1994"})
        title = Element("title")
        title.append(Text("TCP/IP Illustrated"))
        book.append(title)

        result = session.mutate(
            MutationBatch()
            .insert_subtree(doc.root, book)
            .update_attribute(doc.root.child_elements()[0], "year", "2001")
        )
        assert (result.doc_revision, result.applied) == (1, 2)

        [delta] = subscription.poll()
        assert delta.revision == 1
        assert (len(delta.added), len(delta.removed)) == (2, 1)
        assert len(subscription.rows()) == 2

    def test_step12_atomic_validation(self):
        from repro import MutationBatch
        from repro.engine.mutate import MutationError
        from repro.ssd.model import Element

        doc, session, subscription = self.make()
        with pytest.raises(MutationError):
            session.mutate(
                MutationBatch()
                .insert_subtree(doc.root, Element("book"))
                .delete_subtree(doc.root)
            )
        assert len(doc.root.child_elements()) == 1  # nothing leaked
        assert subscription.poll() == []

    def test_step12_footprint_skips_unobservable_edits(self):
        from repro import MutationBatch
        from repro.ssd.model import Element, Text

        doc, session, subscription = self.make()
        evals = subscription.evals
        note = Element("note")
        note.append(Text("margin scribble"))
        session.mutate(
            MutationBatch().insert_subtree(doc.root.child_elements()[0], note)
        )
        assert subscription.poll() == []
        assert subscription.evals == evals and subscription.skips == 1
