"""Smoke test for the benchmark runner (tiny sizes, one repeat)."""

import json

from repro.bench_smoke import (
    QUERIES,
    check_adaptive,
    check_baseline,
    main,
    measure_plan_cache,
    run_suite,
)


def test_run_suite_shape_and_agreement():
    report = run_suite(bib_entries=30, sections_depth=4, repeat=1)
    assert set(report["queries"]) == {name for name, *_ in QUERIES}
    for entry in report["queries"].values():
        assert entry["indexed"]["bindings"] == entry["naive"]["bindings"]
        assert entry["pipeline"]["bindings"] == entry["indexed"]["bindings"]
        assert entry["adaptive"]["bindings"] == entry["indexed"]["bindings"]
        assert entry["work_ratio"] >= 1.0
        assert entry["indexed"]["seconds"] > 0
        assert entry["pipeline"]["seconds"] > 0
        assert entry["adaptive"]["seconds"] > 0
        assert entry["adaptive_overhead"] > 0


def test_descendant_heavy_work_reduction():
    report = run_suite(bib_entries=30, sections_depth=4, repeat=1)
    heavy = [e for e in report["queries"].values() if e["descendant_heavy"]]
    assert heavy
    for entry in heavy:
        assert entry["work_ratio"] >= 2.0


def test_join_heavy_pipeline_work_reduction():
    report = run_suite(bib_entries=30, sections_depth=4, repeat=1)
    joins = [e for e in report["queries"].values() if e["join_heavy"]]
    assert joins
    for entry in joins:
        # the semi-join plan replaces per-candidate search with wholesale
        # set operations; its residual work is a fraction of backtracking's
        assert entry["pipeline_work_ratio"] <= 0.5


def test_check_baseline_flags_only_regressions():
    report = run_suite(bib_entries=20, sections_depth=4, repeat=1)
    assert check_baseline(report, report) == []
    worse = json.loads(json.dumps(report))
    name = next(iter(worse["queries"]))
    worse["queries"][name]["indexed"]["work"] *= 10
    warnings = check_baseline(worse, report)
    assert len(warnings) == 1
    assert name in warnings[0]
    # missing queries in either report never trip the check
    del worse["queries"][name]
    assert check_baseline(worse, report) == []


def test_main_writes_json(tmp_path, capsys):
    out = tmp_path / "bench.json"
    # best-of-3 timing: the adaptive gate compares wall times, and a
    # single-sample run of microsecond queries can flake on one
    # scheduler hiccup
    args = [
        "-o", str(out),
        "--bib-entries", "20",
        "--sections-depth", "4",
        "--repeat", "3",
    ]
    assert main(args) == 0
    report = json.loads(out.read_text())
    assert report["schema_version"] == 3
    assert "history" not in report
    out_text = capsys.readouterr().out
    assert "worst work ratio" in out_text
    assert "worst pipeline speedup" in out_text

    # a second run with --append-history and --baseline carries history
    # forward and reports no regressions against itself
    assert main(args + ["--baseline", str(out), "--append-history"]) == 0
    report2 = json.loads(out.read_text())
    assert len(report2["history"]) == 1
    assert "timestamp" in report2["history"][0]
    assert "no work regressions" in capsys.readouterr().out
    assert main(args + ["--baseline", str(out), "--append-history"]) == 0
    report3 = json.loads(out.read_text())
    assert len(report3["history"]) == 2


def test_check_adaptive_flags_only_real_violations():
    report = run_suite(bib_entries=20, sections_depth=4, repeat=1)
    # the gate is count-stable: fabricate a clear violation and a clear pass.
    # Pin every query to parity first — a repeat=1 report carries real timing
    # noise, and a genuine borderline violation would skew the counts.
    rigged = json.loads(json.dumps(report))
    for noisy in rigged["queries"].values():
        noisy["adaptive"]["seconds"] = min(
            noisy["pipeline"]["seconds"], noisy["indexed"]["seconds"]
        )
    assert check_adaptive(rigged) == []
    name = next(iter(rigged["queries"]))
    entry = rigged["queries"][name]
    best = min(entry["pipeline"]["seconds"], entry["indexed"]["seconds"])
    entry["adaptive"]["seconds"] = best * 10 + 1.0
    violations = check_adaptive(rigged)
    assert len(violations) == 1
    assert name in violations[0]
    entry["adaptive"]["seconds"] = best  # at parity: never a violation
    assert check_adaptive(rigged) == []
    # missing adaptive column (old reports) never trips the gate
    del entry["adaptive"]
    assert check_adaptive(rigged) == []


def test_plan_cache_block_asserts_counters():
    block = measure_plan_cache(repeat=2, bib_entries=20)
    assert block["query"] == "fig_q3/join"
    assert block["cold_seconds"] > 0
    assert block["warm_seconds"] > 0
    assert block["speedup"] > 0


def test_rewrite_block_asserts_shrink_and_work_ratio():
    from repro.bench_smoke import measure_rewrite
    from repro.workloads import nested_sections

    block = measure_rewrite(
        nested_sections(depth=4, fanout=2, seed=0), repeat=1
    )
    assert block["query"] == "rewrite/redundant"
    assert block["fragments_removed"] >= 1
    assert block["results_identical"] is True
    # the acceptance bar: evaluating the drawing verbatim must cost more
    # than twice the rewritten rule's work
    assert block["work_ratio"] > 2.0
    assert block["rewrites"] == "merged=1 pruned=1 dropped=1"


def test_report_carries_rewrite_block():
    report = run_suite(bib_entries=20, sections_depth=4, repeat=1)
    assert report["rewrite"]["work_ratio"] > 2.0


def test_report_carries_tracing_guard_block():
    report = run_suite(bib_entries=20, sections_depth=4, repeat=1)
    tracing = report["tracing"]
    assert tracing["query"] == "fig_q3/join"
    assert tracing["counters_identical"] is True
    assert tracing["bindings"] > 0
    assert tracing["disabled_seconds"] > 0
    assert tracing["traced_seconds"] > 0
    assert tracing["overhead_ratio"] > 0


def test_tracing_guard_fails_hard_when_counters_diverge(monkeypatch):
    from repro import bench_smoke
    from repro.engine.index import DocumentIndex
    from repro.engine.stats import EvalStats
    from repro.workloads import bibliography
    from repro.xmlgl.dsl import parse_rule

    graph = parse_rule(
        "query { book as B { title as T } } construct { r { collect T } }"
    ).queries[0]
    document = bibliography(10, seed=0)
    index = DocumentIndex(document)

    real_match = bench_smoke.match

    def skewed_match(graph, document, options=None, index=None, stats=None):
        result = real_match(
            graph, document, options=options, index=index, stats=stats
        )
        if options is not None and options.trace and stats is not None:
            stats.candidates_tried += 1  # tracing "steering" the engine
        return result

    monkeypatch.setattr(bench_smoke, "match", skewed_match)
    import pytest

    with pytest.raises(AssertionError, match="work counters"):
        bench_smoke.measure_tracing_overhead(graph, document, index, repeat=1)


def test_report_carries_columnar_block():
    report = run_suite(bib_entries=30, sections_depth=4, repeat=1)
    block = report["columnar"]
    assert block["results_identical"] is True
    assert block["backend"] in ("python", "numpy")
    assert block["tuple_fragment_seconds"] > 0
    assert block["columnar_fragment_seconds"] > 0
    assert block["fragment_speedup"] > 0
    assert "scaling" not in report  # off unless workers > 1


def test_incremental_block_work_ratio_and_oracle():
    from repro.bench_smoke import measure_incremental

    block = measure_incremental(bib_entries=20, edits=150)
    assert block["edits"] == 150
    assert block["rows_match_scratch"] is True
    assert block["evals"] + block["skips"] == block["edits"] + 1
    assert block["skips"] > 0  # footprint filter provably pruned work
    assert block["incremental_work"] > 0
    assert block["rebuild_work"] > block["incremental_work"]
    # the acceptance bar: gap-label maintenance must beat rebuild-per-edit
    # by a wide margin even on a tiny document
    assert block["work_ratio"] >= 5.0
    assert block["maintenance_counters"]["dense_rebuilds"] == 0


def test_report_carries_incremental_block():
    report = run_suite(bib_entries=20, sections_depth=4, repeat=1)
    block = report["incremental"]
    assert block["edits"] == 200  # 10 * bib_entries, capped at 1000
    assert block["work_ratio"] >= 5.0
    assert block["rows_match_scratch"] is True


def test_scaling_block_and_gates(tmp_path, capsys):
    from repro.bench_smoke import measure_scaling

    block = measure_scaling(workers=2, corpus_documents=4, bib_entries=10)
    assert block["results_identical"] is True
    assert block["workers"] == 2 and block["corpus_documents"] == 4
    assert block["single_seconds"] > 0 and block["sharded_seconds"] > 0
    assert len(block["shard_seconds"]) <= 2
    assert block["merge_seconds"] >= 0
    # an impossible scaling floor must fail the run via --gate-scaling
    out = tmp_path / "bench.json"
    args = [
        "-o", str(out),
        "--bib-entries", "20",
        "--sections-depth", "4",
        "--repeat", "3",
    ]
    assert main(args + ["--gate-scaling", "1000"]) == 1
    assert "--gate-scaling given but --workers not set" in capsys.readouterr().out
    assert main(args + ["--gate-incremental", "1000000"]) == 1
    assert "incremental maintenance work ratio" in capsys.readouterr().out
    assert main(args + ["--gate-columnar", "0.0001", "--gate-incremental", "5.0"]) == 0
