"""Smoke test for the benchmark runner (tiny sizes, one repeat)."""

import json

from repro.bench_smoke import QUERIES, main, run_suite


def test_run_suite_shape_and_agreement():
    report = run_suite(bib_entries=30, sections_depth=4, repeat=1)
    assert set(report["queries"]) == {name for name, *_ in QUERIES}
    for entry in report["queries"].values():
        assert entry["indexed"]["bindings"] == entry["naive"]["bindings"]
        assert entry["work_ratio"] >= 1.0
        assert entry["indexed"]["seconds"] > 0


def test_descendant_heavy_work_reduction():
    report = run_suite(bib_entries=30, sections_depth=4, repeat=1)
    heavy = [e for e in report["queries"].values() if e["descendant_heavy"]]
    assert heavy
    for entry in heavy:
        assert entry["work_ratio"] >= 2.0


def test_main_writes_json(tmp_path, capsys):
    out = tmp_path / "bench.json"
    assert (
        main(
            [
                "-o",
                str(out),
                "--bib-entries",
                "20",
                "--sections-depth",
                "4",
                "--repeat",
                "1",
            ]
        )
        == 0
    )
    report = json.loads(out.read_text())
    assert report["schema_version"] == 1
    assert "worst work ratio" in capsys.readouterr().out
