"""Tests for the unparser round trips (AST → DSL → AST)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QueryStructureError
from repro.ssd import parse_document, serialize
from repro.wglog import parse_rule as parse_wg_rule
from repro.wglog import parse_wglog
from repro.wglog.unparse import unparse_rule as unparse_wg
from repro.wglog.unparse import unparse_schema, unparse_wglog
from repro.xmlgl import QueryBuilder, evaluate_program, evaluate_rule
from repro.xmlgl.dsl import parse_program, parse_rule
from repro.xmlgl.unparse import unparse_program, unparse_rule

FULL_XMLGL = """
query src {
  root bib as R {
    book as B {
      @year as Y
      not @id = "zzz" as I
      title as T { text ~ /.*/ as TT }
      deep author as A
      not cdrom as C
      ord isbn as ISBN
      or { publisher as P | editor as E }
    }
  }
  where Y >= 1995 and TT ~ /X.*/
}
construct {
  result(version = "1", y = $Y) {
    entry for B sortby Y {
      copy T
      collect A shallow
      text "lit"
      value Y
      group Y { g }
      count(B)
    }
  }
}
"""

FULL_WGLOG = """
rule full {
  match {
    a: Doc
    b: Doc
    x: *
    a -link-> b
    a -cites*-> b
    no x -index-> a
    c -_*-> a
  }
  construct {
    lst: List collect
    lst -member-> a
    n: Note
    n -about-> b
    a -sib-> b
    n.kind = 'auto'
    n.size = 5
    n.title = a.title
  }
  where a.size > 3 and name(b) = 'Doc'
}
"""


class TestXmlglUnparse:
    def test_round_trip_structure(self):
        rule = parse_rule(FULL_XMLGL)
        text = unparse_rule(rule)
        back = parse_rule(text)
        original, rebuilt = rule.queries[0], back.queries[0]
        assert set(original.nodes) == set(rebuilt.nodes)
        assert original.source == rebuilt.source
        assert {
            (e.parent, e.child, e.deep, e.ordered, e.negated)
            for e in original.all_edges()
        } == {
            (e.parent, e.child, e.deep, e.ordered, e.negated)
            for e in rebuilt.all_edges()
        }
        assert len(rebuilt.or_groups) == 1
        assert [str(c) for c in rebuilt.conditions] == [
            str(c) for c in original.conditions
        ]

    def test_round_trip_evaluation(self):
        doc = parse_document(
            '<bib><book year="1999" id="a"><title>Xml</title>'
            "<author>A</author><isbn>1</isbn><publisher>P</publisher></book></bib>"
        )
        rule = parse_rule(FULL_XMLGL)
        back = parse_rule(unparse_rule(rule))
        assert serialize(evaluate_rule(rule, {"src": doc})) == serialize(
            evaluate_rule(back, {"src": doc})
        )

    def test_canonical_fixpoint(self):
        # unparse(parse(unparse(x))) == unparse(x)
        rule = parse_rule(FULL_XMLGL)
        once = unparse_rule(rule)
        twice = unparse_rule(parse_rule(once))
        assert once == twice

    def test_program_round_trip(self):
        program = parse_program(
            """
            chained
            rule a { query { x as X } construct { r1 { collect X } } }
            rule b { query a { r1 as R } construct { r2 { count(R) } } }
            """
        )
        back = parse_program(unparse_program(program))
        assert back.chained
        assert [r.name for r in back.rules] == ["a", "b"]

    def test_shared_node_rejected(self):
        q = QueryBuilder()
        a = q.box("a", id="A")
        b = q.box("b", id="B")
        shared = q.box("c", id="C")
        q.contains(a, shared)
        q.contains(b, shared)
        from repro.xmlgl import Rule, collect, elem

        rule = Rule([q.graph()], elem("r", collect("C")))
        with pytest.raises(QueryStructureError, match="shared"):
            unparse_rule(rule)


class TestWglogUnparse:
    def test_round_trip(self):
        rule = parse_wg_rule(FULL_WGLOG)
        back = parse_wg_rule(unparse_wg(rule))
        assert back.describe() == rule.describe()
        assert back.name == rule.name

    def test_canonical_fixpoint(self):
        rule = parse_wg_rule(FULL_WGLOG)
        once = unparse_wg(rule)
        assert unparse_wg(parse_wg_rule(once)) == once

    def test_schema_round_trip(self):
        schema, rules = parse_wglog(
            """
            schema {
              entity Doc { title: string required, size: int }
              entity Index
              relation Index -index-> Doc
            }
            rule q { match { d: Doc } }
            """
        )
        text = unparse_wglog(schema, rules)
        schema2, rules2 = parse_wglog(text)
        assert schema2.describe() == schema.describe()
        assert rules2[0].describe() == rules[0].describe()


# -- property: random built rules survive the round trip -------------------------

TAGS = ["a", "b", "c"]


@st.composite
def random_rules(draw):
    q = QueryBuilder()
    ids = [q.box(draw(st.sampled_from(TAGS + [None])), id="N0",
                 anchored=draw(st.booleans()))]
    for index in range(1, draw(st.integers(1, 4))):
        parent = draw(st.sampled_from(ids))
        kind = draw(st.sampled_from(["element", "attr", "text", "neg"]))
        node_id = f"N{index}"
        if kind == "element":
            ids.append(
                q.box(draw(st.sampled_from(TAGS + [None])), id=node_id,
                      parent=parent, deep=draw(st.booleans()))
            )
        elif kind == "attr":
            q.attribute(parent, draw(st.sampled_from(["k", "m"])), id=node_id,
                        value=draw(st.sampled_from(["1", None])))
        elif kind == "text":
            q.text(parent, id=node_id, value=draw(st.sampled_from(["t", None])))
        else:
            q.negate(parent, q.box(draw(st.sampled_from(TAGS)), id=node_id))
    from repro.xmlgl import Rule, collect, elem

    return Rule([q.graph()], elem("out", collect("N0")))


class TestUnparseProperty:
    @given(random_rules())
    @settings(max_examples=80, deadline=None)
    def test_xmlgl_round_trip(self, rule):
        back = parse_rule(unparse_rule(rule))
        original, rebuilt = rule.queries[0], back.queries[0]
        assert set(original.nodes) == set(rebuilt.nodes)
        assert {
            (e.parent, e.child, e.deep, e.negated) for e in original.edges
        } == {
            (e.parent, e.child, e.deep, e.negated) for e in rebuilt.edges
        }
