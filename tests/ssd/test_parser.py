"""Unit tests for the XML lexer and parser."""

import pytest

from repro.errors import XmlSyntaxError
from repro.ssd import Comment, Text, parse_document, parse_fragment, serialize
from repro.ssd.lexer import Lexer, TokenType, unescape
from repro.ssd.model import ProcessingInstruction


class TestLexer:
    def test_simple_tags(self):
        tokens = list(Lexer("<a><b/></a>").tokens())
        kinds = [t.type for t in tokens]
        assert kinds == [
            TokenType.START_TAG,
            TokenType.START_TAG,
            TokenType.END_TAG,
            TokenType.EOF,
        ]
        assert tokens[1].self_closing

    def test_attributes(self):
        token = Lexer('<a x="1" y=\'two\'>').next_token()
        assert token.attributes == {"x": "1", "y": "two"}

    def test_attribute_entities(self):
        token = Lexer('<a t="&lt;&amp;&quot;">').next_token()
        assert token.attributes["t"] == '<&"'

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(XmlSyntaxError):
            Lexer('<a x="1" x="2">').next_token()

    def test_attribute_value_normalisation(self):
        # literal whitespace normalises to spaces (XML 1.0)...
        token = Lexer('<a t="x\ny\tz">').next_token()
        assert token.attributes["t"] == "x y z"

    def test_attribute_charref_whitespace_preserved(self):
        # ...but character references keep theirs
        token = Lexer('<a t="x&#10;y">').next_token()
        assert token.attributes["t"] == "x\ny"

    def test_unquoted_attribute_rejected(self):
        with pytest.raises(XmlSyntaxError):
            Lexer("<a x=1>").next_token()

    def test_lt_in_attribute_rejected(self):
        with pytest.raises(XmlSyntaxError):
            Lexer('<a x="a<b">').next_token()

    def test_text_entities(self):
        lexer = Lexer("a &amp; b &#65;&#x42;")
        token = lexer.next_token()
        assert token.value == "a & b AB"

    def test_unknown_entity(self):
        with pytest.raises(XmlSyntaxError):
            Lexer("&nope;").next_token()

    def test_unterminated_entity(self):
        with pytest.raises(XmlSyntaxError):
            Lexer("&amp").next_token()

    def test_comment(self):
        token = Lexer("<!-- hi -->").next_token()
        assert token.type is TokenType.COMMENT
        assert token.value == " hi "

    def test_double_dash_in_comment_rejected(self):
        with pytest.raises(XmlSyntaxError):
            Lexer("<!-- a -- b -->").next_token()

    def test_cdata(self):
        token = Lexer("<![CDATA[<raw> & text]]>").next_token()
        assert token.type is TokenType.CDATA
        assert token.value == "<raw> & text"

    def test_pi(self):
        token = Lexer("<?php echo 1; ?>").next_token()
        assert token.type is TokenType.PI
        assert token.value == "php"
        assert token.data == "echo 1;"

    def test_doctype_with_internal_subset(self):
        token = Lexer("<!DOCTYPE bib [<!ELEMENT bib ANY>]>").next_token()
        assert token.type is TokenType.DOCTYPE
        assert token.value == "bib"
        assert "<!ELEMENT bib ANY>" in token.data

    def test_position_tracking(self):
        lexer = Lexer("<a>\n  <b bad>")
        lexer.next_token()
        lexer.next_token()  # whitespace text
        with pytest.raises(XmlSyntaxError) as exc:
            lexer.next_token()
        assert exc.value.line == 2

    def test_cdata_close_in_text_rejected(self):
        with pytest.raises(XmlSyntaxError):
            Lexer("a ]]> b").next_token()

    def test_unescape_passthrough(self):
        assert unescape("plain") == "plain"


class TestParser:
    def test_round_trip(self):
        source = '<bib><book year="1999"><title>Data &amp; Web</title></book></bib>'
        assert serialize(parse_document(source)) == source

    def test_nested_structure(self):
        doc = parse_document("<a><b><c/></b><b/></a>")
        assert [e.tag for e in doc.iter()] == ["a", "b", "c", "b"]

    def test_text_preserved_inside_root(self):
        doc = parse_document("<p>  spaced  </p>")
        assert doc.root.text_content() == "  spaced  "

    def test_cdata_becomes_text(self):
        doc = parse_document("<p><![CDATA[<b>]]></p>")
        text = doc.root.children[0]
        assert isinstance(text, Text) and text.is_cdata
        assert doc.root.text_content() == "<b>"

    def test_comments_and_pis_kept(self):
        doc = parse_document("<?xml version='1.0'?><!--pre--><r><!--in--><?app data?></r>")
        assert isinstance(doc.children[0], Comment)
        assert isinstance(doc.root.children[0], Comment)
        assert isinstance(doc.root.children[1], ProcessingInstruction)

    def test_doctype_recorded(self):
        doc = parse_document("<!DOCTYPE r [<!ELEMENT r ANY>]><r/>")
        assert doc.doctype_name == "r"
        assert "ELEMENT" in doc.doctype_internal

    def test_mismatched_tags(self):
        with pytest.raises(XmlSyntaxError) as exc:
            parse_document("<a><b></a></b>")
        assert "mismatched" in str(exc.value)

    def test_unclosed_element(self):
        with pytest.raises(XmlSyntaxError) as exc:
            parse_document("<a><b>")
        assert "unclosed" in str(exc.value)

    def test_multiple_roots_rejected(self):
        with pytest.raises(XmlSyntaxError):
            parse_document("<a/><b/>")

    def test_no_root_rejected(self):
        with pytest.raises(XmlSyntaxError):
            parse_document("<!--only a comment-->")

    def test_text_outside_root_rejected(self):
        with pytest.raises(XmlSyntaxError):
            parse_document("<a/>text")

    def test_whitespace_outside_root_allowed(self):
        doc = parse_document("  <a/>\n  ")
        assert doc.root.tag == "a"

    def test_stray_end_tag(self):
        with pytest.raises(XmlSyntaxError):
            parse_document("</a>")

    def test_late_xml_declaration_rejected(self):
        with pytest.raises(XmlSyntaxError):
            parse_document("<!--x--><?xml version='1.0'?><a/>")

    def test_doctype_after_root_rejected(self):
        with pytest.raises(XmlSyntaxError):
            parse_document("<a/><!DOCTYPE a>")

    def test_fragment(self):
        wrapper = parse_fragment("<x/>text<y/>")
        assert [c.tag for c in wrapper.child_elements()] == ["x", "y"]
        assert wrapper.text_content() == "text"

    def test_empty_fragment(self):
        assert parse_fragment("").children == []
