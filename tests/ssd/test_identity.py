"""Unit tests for the ID/IDREF identity overlay."""

import pytest

from repro.errors import ValidationError
from repro.ssd import IdentityIndex, parse_document


def site() -> str:
    return (
        '<site>'
        '<page id="home"><link ref="about"/><link ref="products"/></page>'
        '<page id="about"><link ref="home"/></page>'
        '<page id="products" related="home about"/>'
        '</site>'
    )


class TestIdentityIndex:
    def test_element_by_id(self):
        doc = parse_document(site())
        idx = IdentityIndex(doc)
        assert idx.element_by_id("about").get("id") == "about"
        assert idx.element_by_id("missing") is None

    def test_ids_enumeration(self):
        idx = IdentityIndex(parse_document(site()))
        assert set(idx.ids()) == {"home", "about", "products"}

    def test_single_refs_resolved(self):
        idx = IdentityIndex(parse_document(site()))
        targets = {e.target.get("id") for e in idx.edges() if e.source.tag == "link"}
        assert targets == {"home", "about", "products"}

    def test_idrefs_list_resolved(self):
        idx = IdentityIndex(
            parse_document(site()), idrefs_attributes={"related"}
        )
        products = idx.element_by_id("products")
        outgoing = idx.references_from(products)
        assert {e.target.get("id") for e in outgoing} == {"home", "about"}

    def test_references_to(self):
        idx = IdentityIndex(parse_document(site()))
        home = idx.element_by_id("home")
        assert len(idx.references_to(home)) == 1

    def test_dangling_ref_collected(self):
        doc = parse_document('<r><a id="1"/><b ref="nope"/></r>')
        idx = IdentityIndex(doc)
        assert len(idx.dangling_refs) == 1
        assert idx.dangling_refs[0][2] == "nope"

    def test_dangling_ref_strict_raises(self):
        doc = parse_document('<r><b ref="nope"/></r>')
        with pytest.raises(ValidationError):
            IdentityIndex(doc, strict=True)

    def test_duplicate_id_collected(self):
        doc = parse_document('<r><a id="x"/><b id="x"/></r>')
        idx = IdentityIndex(doc)
        assert idx.duplicate_ids == ["x"]
        # First declaration wins.
        assert idx.element_by_id("x").tag == "a"

    def test_duplicate_id_strict_raises(self):
        doc = parse_document('<r><a id="x"/><b id="x"/></r>')
        with pytest.raises(ValidationError):
            IdentityIndex(doc, strict=True)

    def test_custom_attribute_names(self):
        doc = parse_document('<r><a key="k1"/><b points="k1"/></r>')
        idx = IdentityIndex(
            doc, id_attributes={"key"}, idref_attributes={"points"}
        )
        assert len(idx.edges()) == 1
