"""Unit tests for the path-expression engine."""

import pytest

from repro.errors import QuerySyntaxError
from repro.ssd import parse_document
from repro.ssd.paths import evaluate_path, parse_path


@pytest.fixture
def doc():
    return parse_document(
        '<bib>'
        '<book year="1994"><title>TCP</title><author><last>Stevens</last></author></book>'
        '<book year="2000"><title>Web</title></book>'
        '<article><title>GQL</title></article>'
        '</bib>'
    )


def tags(elements):
    return [e.tag for e in elements]


class TestParsing:
    def test_simple(self):
        path = parse_path("/bib/book")
        assert path.absolute
        assert [s.axis for s in path.steps] == ["child", "child"]

    def test_descendant(self):
        path = parse_path("//last")
        assert path.steps[0].axis == "descendant"

    def test_wildcard(self):
        assert parse_path("/bib/*").steps[1].tag is None

    def test_predicates(self):
        path = parse_path("/bib/book[@year='2000'][title]")
        predicates = path.steps[1].predicates
        assert predicates[0].kind == "attr" and predicates[0].value == "2000"
        assert predicates[1].kind == "child"

    def test_round_trip_str(self):
        for source in (
            "/bib/book[@year='2000']",
            "//book[not(author)]",
            "/bib//last",
            "book[text()='x']",
        ):
            assert str(parse_path(source)) == source

    @pytest.mark.parametrize(
        "bad", ["", "/", "/bib/[x]", "/bib/book[@year=2000]", "/bib/book[", "a b"]
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_path(bad)


class TestEvaluation:
    def test_absolute_child_chain(self, doc):
        assert tags(evaluate_path("/bib/book/title", doc)) == ["title", "title"]

    def test_root_must_match(self, doc):
        assert evaluate_path("/zzz/book", doc) == []

    def test_descendant_from_root(self, doc):
        assert tags(evaluate_path("//last", doc)) == ["last"]

    def test_descendant_includes_root_level(self, doc):
        assert len(evaluate_path("//bib", doc)) == 1

    def test_wildcard_step(self, doc):
        assert tags(evaluate_path("/bib/*", doc)) == ["book", "book", "article"]

    def test_attr_predicate(self, doc):
        result = evaluate_path("/bib/book[@year='2000']/title", doc)
        assert [e.text_content() for e in result] == ["Web"]

    def test_attr_existence(self, doc):
        assert len(evaluate_path("/bib/*[@year]", doc)) == 2

    def test_text_predicate(self, doc):
        assert len(evaluate_path("//title[text()='TCP']", doc)) == 1
        assert len(evaluate_path("//title[text()]", doc)) == 3

    def test_child_predicate(self, doc):
        assert len(evaluate_path("/bib/book[author]", doc)) == 1

    def test_nested_child_predicate(self, doc):
        assert len(evaluate_path("/bib/book[author[last]]", doc)) == 1

    def test_negated_predicate(self, doc):
        assert len(evaluate_path("/bib/book[not(author)]", doc)) == 1
        assert len(evaluate_path("/bib/*[not(@year)]", doc)) == 1

    def test_relative_from_element(self, doc):
        book = doc.root.find("book")
        assert tags(evaluate_path("author/last", book)) == ["last"]

    def test_document_order_and_uniqueness(self, doc):
        result = evaluate_path("//title", doc)
        positions = [
            [e for e in doc.iter()].index(t) for t in result
        ]
        assert positions == sorted(positions)
        assert len({id(e) for e in result}) == len(result)

    def test_empty_document(self):
        from repro.ssd.model import Document

        assert evaluate_path("//a", Document()) == []

    def test_string_or_parsed_equivalent(self, doc):
        parsed = parse_path("//title")
        assert evaluate_path(parsed, doc) == evaluate_path("//title", doc)
