"""Unit tests for the node model."""

import pytest

from repro.ssd import Comment, Document, E, Element, PI, Text, document
from repro.ssd.model import ProcessingInstruction


def sample() -> Document:
    return document(
        E(
            "bib",
            E("book", {"year": "1999"}, E("title", "Data on the Web")),
            E("book", {"year": "2000"}, E("title", "XML Handbook")),
        )
    )


class TestElement:
    def test_tag_required(self):
        with pytest.raises(ValueError):
            Element("")

    def test_append_string_becomes_text(self):
        e = Element("p")
        node = e.append("hello")
        assert isinstance(node, Text)
        assert e.text_content() == "hello"

    def test_append_sets_parent(self):
        parent = Element("a")
        child = Element("b")
        parent.append(child)
        assert child.parent is parent

    def test_append_rejects_attached_node(self):
        parent = Element("a")
        child = Element("b")
        parent.append(child)
        other = Element("c")
        with pytest.raises(ValueError):
            other.append(child)

    def test_insert_orders_children(self):
        e = Element("r")
        e.append(Element("b"))
        e.insert(0, Element("a"))
        assert [c.tag for c in e.child_elements()] == ["a", "b"]

    def test_remove_detaches(self):
        parent = Element("a")
        child = parent.append(Element("b"))
        parent.remove(child)
        assert child.parent is None
        assert parent.children == []

    def test_find_and_find_all(self):
        root = sample().root
        assert root.find("book").get("year") == "1999"
        assert len(root.find_all("book")) == 2
        assert root.find("missing") is None

    def test_iter_with_tag(self):
        doc = sample()
        titles = list(doc.iter("title"))
        assert [t.text_content() for t in titles] == ["Data on the Web", "XML Handbook"]

    def test_iter_document_order(self):
        doc = sample()
        tags = [e.tag for e in doc.iter()]
        assert tags == ["bib", "book", "title", "book", "title"]

    def test_attributes(self):
        e = Element("x", {"a": "1"})
        e.set("b", "2")
        assert e.get("a") == "1"
        assert e.get("z", "dflt") == "dflt"

    def test_immediate_text_excludes_descendants(self):
        e = E("p", "a", E("b", "inner"), "c")
        assert e.immediate_text() == "ac"
        assert e.text_content() == "ainnerc"

    def test_size(self):
        assert sample().size() == 5 + 2  # 5 elements + 2 text nodes

    def test_structural_equality(self):
        assert sample().root.equals(sample().root)

    def test_equality_ignores_comments(self):
        a = E("x", E("y"))
        b = E("x", Comment("noise"), E("y"))
        assert a.equals(b)

    def test_inequality_on_attributes(self):
        assert not E("x", {"a": "1"}).equals(E("x", {"a": "2"}))

    def test_inequality_on_child_order(self):
        a = E("x", E("p"), E("q"))
        b = E("x", E("q"), E("p"))
        assert not a.equals(b)

    def test_copy_is_deep_and_detached(self):
        original = sample().root
        clone = original.copy()
        assert clone.parent is None
        assert clone.equals(original)
        clone.find("book").set("year", "1234")
        assert original.find("book").get("year") == "1999"


class TestNodeNavigation:
    def test_ancestors(self):
        doc = sample()
        title = next(doc.iter("title"))
        assert [a.tag for a in title.ancestors()] == ["book", "bib"]

    def test_document_property(self):
        doc = sample()
        title = next(doc.iter("title"))
        assert title.document is doc
        assert Element("loose").document is None

    def test_root_element(self):
        doc = sample()
        title = next(doc.iter("title"))
        assert title.root_element().tag == "bib"


class TestDocument:
    def test_single_root_enforced(self):
        doc = Document(Element("a"))
        with pytest.raises(ValueError):
            doc.append(Element("b"))

    def test_no_nonwhitespace_text(self):
        doc = Document()
        doc.append(Text("   \n"))
        with pytest.raises(ValueError):
            doc.append(Text("text"))

    def test_prolog_nodes(self):
        doc = Document()
        doc.append(Comment("header"))
        doc.append(PI("xml-stylesheet", 'href="x.css"'))
        doc.append(Element("root"))
        assert doc.root.tag == "root"
        assert isinstance(doc.children[0], Comment)
        assert isinstance(doc.children[1], ProcessingInstruction)

    def test_copy_preserves_doctype(self):
        doc = sample()
        doc.doctype_name = "bib"
        clone = doc.copy()
        assert clone.doctype_name == "bib"
        assert clone.equals(doc)

    def test_equals(self):
        assert sample().equals(sample())
        other = sample()
        other.root.find("book").set("year", "1")
        assert not sample().equals(other)


class TestTextAndFriends:
    def test_text_equality(self):
        assert Text("a").equals(Text("a"))
        assert not Text("a").equals(Text("b"))
        assert not Text("a").equals(Comment("a"))

    def test_comment_copy(self):
        c = Comment("note")
        assert c.copy().equals(c)

    def test_pi_equality(self):
        assert PI("t", "d").equals(PI("t", "d"))
        assert not PI("t", "d").equals(PI("t", "e"))

    def test_repr_smoke(self):
        assert "Text" in repr(Text("x" * 50))
        assert "Element" in repr(Element("a"))
        assert "Document" in repr(sample())
