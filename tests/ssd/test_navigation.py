"""Unit tests for navigation axes."""

from repro.ssd import E, document, parse_document
from repro.ssd import navigation as nav


def sample():
    return parse_document(
        "<a><b><d/><e>t</e></b><c/><b2/></a>"
    )


class TestAxes:
    def test_children(self):
        doc = sample()
        assert [c.tag for c in nav.child_elements(doc.root)] == ["b", "c", "b2"]

    def test_children_of_document(self):
        doc = sample()
        assert [c.tag for c in nav.child_elements(doc)] == ["a"]

    def test_children_of_text_is_empty(self):
        doc = parse_document("<a>t</a>")
        text = doc.root.children[0]
        assert list(nav.children(text)) == []

    def test_descendants_document_order(self):
        doc = sample()
        tags = [e.tag for e in nav.descendant_elements(doc.root)]
        assert tags == ["b", "d", "e", "c", "b2"]

    def test_descendant_or_self(self):
        doc = sample()
        tags = [e.tag for e in nav.descendant_or_self_elements(doc.root)]
        assert tags[0] == "a"
        assert len(tags) == 6

    def test_parent_element(self):
        doc = sample()
        b = doc.root.find("b")
        assert nav.parent_element(b) is doc.root
        assert nav.parent_element(doc.root) is None

    def test_ancestors(self):
        doc = sample()
        d = next(doc.iter("d"))
        assert [a.tag for a in nav.ancestors(d)] == ["b", "a"]

    def test_following_siblings(self):
        doc = sample()
        b = doc.root.find("b")
        assert [s.tag for s in nav.following_siblings(b)] == ["c", "b2"]

    def test_preceding_siblings(self):
        doc = sample()
        b2 = doc.root.find("b2")
        assert [s.tag for s in nav.preceding_siblings(b2)] == ["c", "b"]

    def test_document_order_includes_text(self):
        doc = sample()
        names = [
            getattr(n, "tag", "#text") for n in nav.document_order(doc.root)
        ]
        assert names == ["a", "b", "d", "e", "#text", "c", "b2"]

    def test_document_position_monotone(self):
        doc = sample()
        positions = [nav.document_position(e) for e in doc.iter()]
        assert positions == sorted(positions)
        assert len(set(positions)) == len(positions)

    def test_document_position_detached(self):
        loose = E("x", E("y"))
        y = loose.find("y")
        assert nav.document_position(loose) == 0
        assert nav.document_position(y) == 1

    def test_depth(self):
        doc = sample()
        d = next(doc.iter("d"))
        assert nav.depth(doc.root) == 0
        assert nav.depth(d) == 2
