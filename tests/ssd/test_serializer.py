"""Unit tests for serialization and pretty printing."""

from repro.ssd import C, E, PI, document, parse_document, pretty, serialize
from repro.ssd.model import strip_whitespace


class TestSerialize:
    def test_empty_element_self_closes(self):
        assert serialize(E("a")) == "<a/>"

    def test_attributes_escaped(self):
        e = E("a", {"t": 'x "<&'})
        assert serialize(e) == '<a t="x &quot;&lt;&amp;"/>'

    def test_text_escaped(self):
        assert serialize(E("p", "a < b & c > d")) == "<p>a &lt; b &amp; c &gt; d</p>"

    def test_cdata_preserved(self):
        doc = parse_document("<p><![CDATA[<raw>]]></p>")
        assert serialize(doc) == "<p><![CDATA[<raw>]]></p>"

    def test_comment_and_pi(self):
        e = E("r", C(" note "), PI("app", "x=1"))
        assert serialize(e) == "<r><!-- note --><?app x=1?></r>"

    def test_pi_without_data(self):
        assert serialize(PI("marker")) == "<?marker?>"

    def test_doctype(self):
        doc = document(E("bib"))
        doc.doctype_name = "bib"
        assert serialize(doc) == "<!DOCTYPE bib><bib/>"

    def test_doctype_with_internal(self):
        doc = document(E("r"))
        doc.doctype_name = "r"
        doc.doctype_internal = "<!ELEMENT r ANY>"
        assert serialize(doc) == "<!DOCTYPE r [<!ELEMENT r ANY>]><r/>"

    def test_attribute_whitespace_round_trip(self):
        e = E("a", {"t": "line1\nline2\ttabbed"})
        text = serialize(e)
        assert "&#10;" in text and "&#9;" in text
        reparsed = parse_document(text)
        assert reparsed.root.get("t") == "line1\nline2\ttabbed"

    def test_round_trip_identity(self):
        source = '<a x="1"><b>t&amp;t</b><c/><!--n--></a>'
        assert serialize(parse_document(source)) == source


class TestPretty:
    def test_indentation(self):
        doc = document(E("a", E("b", E("c", "text"))))
        assert pretty(doc) == "<a>\n  <b>\n    <c>text</c>\n  </b>\n</a>"

    def test_inline_text_elements(self):
        assert pretty(E("t", "hello")) == "<t>hello</t>"

    def test_empty_element(self):
        assert pretty(E("x", {"a": "1"})) == '<x a="1"/>'

    def test_whitespace_only_text_dropped(self):
        doc = parse_document("<a>\n  <b>x</b>\n</a>")
        assert pretty(doc) == "<a>\n  <b>x</b>\n</a>"

    def test_pretty_reparse_equals_modulo_whitespace(self):
        source = '<bib><book year="1999"><title>T</title><price>39</price></book></bib>'
        doc = parse_document(source)
        reparsed = parse_document(pretty(doc))
        assert strip_whitespace(reparsed).equals(doc)

    def test_mixed_inline(self):
        e = E("p", "before ", E("em", "x"), " after")
        out = pretty(e)
        assert "<em>x</em>" in out and "before" in out
