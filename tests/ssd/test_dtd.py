"""Unit tests for DTD parsing, the Glushkov automaton, and validation."""

import pytest

from repro.errors import DtdError, ValidationError
from repro.ssd import parse_document, parse_dtd, validate
from repro.ssd.dtd import (
    AttDefault,
    AttType,
    ChoiceParticle,
    ContentKind,
    GlushkovAutomaton,
    NameParticle,
    Repetition,
    SequenceParticle,
)

BOOK_DTD = """
<!ELEMENT BOOK (title?, price, AUTHOR*)>
<!ATTLIST BOOK isbn CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT AUTHOR (first-name, last-name)>
<!ELEMENT first-name (#PCDATA)>
<!ELEMENT last-name (#PCDATA)>
"""


class TestDtdParsing:
    def test_book_dtd(self):
        dtd = parse_dtd(BOOK_DTD)
        assert set(dtd.elements) == {
            "BOOK", "title", "price", "AUTHOR", "first-name", "last-name"
        }
        book = dtd.declaration("BOOK")
        assert book.content.kind is ContentKind.CHILDREN
        assert str(book.content) == "(title?,price,AUTHOR*)"
        assert book.attributes["isbn"].default is AttDefault.REQUIRED

    def test_empty_and_any(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY><!ELEMENT b ANY>")
        assert dtd.declaration("a").content.kind is ContentKind.EMPTY
        assert dtd.declaration("b").content.kind is ContentKind.ANY

    def test_mixed_content(self):
        dtd = parse_dtd("<!ELEMENT p (#PCDATA | em | strong)*>")
        model = dtd.declaration("p").content
        assert model.kind is ContentKind.MIXED
        assert model.mixed_names == ("em", "strong")

    def test_pure_pcdata(self):
        dtd = parse_dtd("<!ELEMENT t (#PCDATA)>")
        assert dtd.declaration("t").content.kind is ContentKind.MIXED

    def test_bare_pcdata_keyword_tolerated(self):
        dtd = parse_dtd("<!ELEMENT t PCDATA>")
        assert dtd.declaration("t").content.kind is ContentKind.MIXED

    def test_nested_groups(self):
        dtd = parse_dtd("<!ELEMENT r ((a | b)+, c?)>")
        particle = dtd.declaration("r").content.particle
        assert isinstance(particle, SequenceParticle)
        assert isinstance(particle.items[0], ChoiceParticle)
        assert particle.items[0].repetition is Repetition.PLUS

    def test_mixed_separators_rejected(self):
        with pytest.raises(DtdError):
            parse_dtd("<!ELEMENT r (a, b | c)>")

    def test_mixed_with_names_needs_star(self):
        with pytest.raises(DtdError):
            parse_dtd("<!ELEMENT p (#PCDATA | em)>")

    def test_duplicate_element_rejected(self):
        with pytest.raises(DtdError):
            parse_dtd("<!ELEMENT a EMPTY><!ELEMENT a ANY>")

    def test_attlist_types(self):
        dtd = parse_dtd(
            '<!ELEMENT e ANY>'
            '<!ATTLIST e i ID #IMPLIED r IDREF #IMPLIED rs IDREFS #IMPLIED '
            ' n NMTOKEN #IMPLIED c (red|green) "red" f CDATA #FIXED "x">'
        )
        atts = dtd.declaration("e").attributes
        assert atts["i"].att_type is AttType.ID
        assert atts["rs"].att_type is AttType.IDREFS
        assert atts["c"].enumeration == ("red", "green")
        assert atts["c"].value == "red"
        assert atts["f"].default is AttDefault.FIXED

    def test_attlist_before_element(self):
        dtd = parse_dtd("<!ATTLIST x a CDATA #IMPLIED><!ELEMENT x EMPTY>")
        decl = dtd.declaration("x")
        assert decl.content.kind is ContentKind.EMPTY
        assert "a" in decl.attributes

    def test_comments_and_pe_refs_skipped(self):
        dtd = parse_dtd(
            "<!-- header --> %common; <!ELEMENT a EMPTY> <!-- trailer -->"
        )
        assert "a" in dtd.elements

    def test_entity_declarations_skipped(self):
        dtd = parse_dtd('<!ENTITY x "y"><!ELEMENT a EMPTY>')
        assert "a" in dtd.elements

    def test_id_attribute_names(self):
        dtd = parse_dtd('<!ELEMENT e ANY><!ATTLIST e code ID #REQUIRED>')
        assert dtd.id_attribute_names() == {"code"}


def _automaton(model: str) -> GlushkovAutomaton:
    dtd = parse_dtd(f"<!ELEMENT r {model}>")
    return GlushkovAutomaton(dtd.declaration("r").content.particle)


class TestGlushkov:
    @pytest.mark.parametrize(
        "model,accepted,rejected",
        [
            ("(a)", [["a"]], [[], ["a", "a"], ["b"]]),
            ("(a?)", [[], ["a"]], [["a", "a"]]),
            ("(a*)", [[], ["a"], ["a"] * 5], [["b"]]),
            ("(a+)", [["a"], ["a", "a"]], [[]]),
            ("(a, b)", [["a", "b"]], [["a"], ["b", "a"], ["a", "b", "b"]]),
            ("(a | b)", [["a"], ["b"]], [[], ["a", "b"]]),
            ("(a?, b)", [["b"], ["a", "b"]], [["a"], ["a", "a", "b"]]),
            (
                "((a | b)*, c)",
                [["c"], ["a", "c"], ["b", "a", "c"]],
                [[], ["c", "a"]],
            ),
            ("(a, (b | c)+)", [["a", "b"], ["a", "c", "b"]], [["a"]]),
            ("((a, b)*)", [[], ["a", "b"], ["a", "b", "a", "b"]], [["a"], ["a", "b", "a"]]),
        ],
    )
    def test_acceptance(self, model, accepted, rejected):
        automaton = _automaton(model)
        for seq in accepted:
            assert automaton.accepts(seq), (model, seq)
        for seq in rejected:
            assert not automaton.accepts(seq), (model, seq)

    def test_expected_after(self):
        automaton = _automaton("(a, b?, c)")
        assert automaton.expected_after(["a"]) == {"b", "c"}
        assert automaton.expected_after(["a", "b"]) == {"c"}
        assert automaton.expected_after(["z"]) == set()

    def test_nondeterministic_model_rejected(self):
        # (a, b) | (a, c) matches 'a' two ways — forbidden by XML 1.0.
        with pytest.raises(DtdError):
            _automaton("((a, b) | (a, c))")

    def test_deep_nesting(self):
        automaton = _automaton("(((a?)*)+, b)")
        assert automaton.accepts(["b"])
        assert automaton.accepts(["a", "a", "b"])
        assert not automaton.accepts(["a"])


class TestValidate:
    def make_doc(self, body: str):
        return parse_document(body)

    def test_valid_book(self):
        dtd = parse_dtd(BOOK_DTD)
        doc = self.make_doc(
            '<BOOK isbn="1"><title>T</title><price>9</price>'
            "<AUTHOR><first-name>A</first-name><last-name>B</last-name></AUTHOR>"
            "</BOOK>"
        )
        assert validate(doc, dtd) == []

    def test_optional_title_omitted(self):
        dtd = parse_dtd(BOOK_DTD)
        doc = self.make_doc('<BOOK isbn="1"><price>9</price></BOOK>')
        assert validate(doc, dtd) == []

    def test_missing_price(self):
        dtd = parse_dtd(BOOK_DTD)
        doc = self.make_doc('<BOOK isbn="1"><title>T</title></BOOK>')
        violations = validate(doc, dtd)
        assert any("do not match" in v for v in violations)

    def test_missing_required_attribute(self):
        dtd = parse_dtd(BOOK_DTD)
        doc = self.make_doc("<BOOK><price>9</price></BOOK>")
        assert any("isbn" in v for v in validate(doc, dtd))

    def test_undeclared_element(self):
        dtd = parse_dtd(BOOK_DTD)
        doc = self.make_doc('<BOOK isbn="1"><price>9</price><extra/></BOOK>')
        violations = validate(doc, dtd)
        assert any("undeclared element" in v for v in violations)

    def test_undeclared_attribute(self):
        dtd = parse_dtd(BOOK_DTD)
        doc = self.make_doc('<BOOK isbn="1" lang="en"><price>9</price></BOOK>')
        assert any("undeclared attribute" in v for v in validate(doc, dtd))

    def test_empty_element_with_content(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY>")
        doc = self.make_doc("<a>text</a>")
        assert any("EMPTY" in v for v in validate(doc, dtd))

    def test_text_in_element_content(self):
        dtd = parse_dtd("<!ELEMENT a (b)><!ELEMENT b EMPTY>")
        doc = self.make_doc("<a>oops<b/></a>")
        assert any("contains text" in v for v in validate(doc, dtd))

    def test_mixed_content_allows_text(self):
        dtd = parse_dtd("<!ELEMENT p (#PCDATA | em)*><!ELEMENT em (#PCDATA)>")
        doc = self.make_doc("<p>a<em>b</em>c</p>")
        assert validate(doc, dtd) == []

    def test_mixed_content_rejects_other_elements(self):
        dtd = parse_dtd("<!ELEMENT p (#PCDATA)><!ELEMENT q EMPTY>")
        doc = self.make_doc("<p><q/></p>")
        assert any("not allowed in mixed content" in v for v in validate(doc, dtd))

    def test_id_uniqueness(self):
        dtd = parse_dtd(
            "<!ELEMENT r (e*)><!ELEMENT e EMPTY><!ATTLIST e i ID #IMPLIED>"
        )
        doc = self.make_doc('<r><e i="x"/><e i="x"/></r>')
        assert any("duplicate ID" in v for v in validate(doc, dtd))

    def test_idref_resolution(self):
        dtd = parse_dtd(
            "<!ELEMENT r (e*)><!ELEMENT e EMPTY>"
            "<!ATTLIST e i ID #IMPLIED p IDREF #IMPLIED ps IDREFS #IMPLIED>"
        )
        good = self.make_doc('<r><e i="a"/><e p="a" ps="a a"/></r>')
        assert validate(good, dtd) == []
        bad = self.make_doc('<r><e i="a"/><e p="zz"/></r>')
        assert any("matches no ID" in v for v in validate(bad, dtd))

    def test_enumeration(self):
        dtd = parse_dtd('<!ELEMENT e EMPTY><!ATTLIST e c (red|green) #IMPLIED>')
        assert validate(self.make_doc('<e c="red"/>'), dtd) == []
        assert any(
            "must be one of" in v
            for v in validate(self.make_doc('<e c="blue"/>'), dtd)
        )

    def test_fixed_attribute(self):
        dtd = parse_dtd('<!ELEMENT e EMPTY><!ATTLIST e v CDATA #FIXED "1">')
        assert validate(self.make_doc('<e v="1"/>'), dtd) == []
        assert any("fixed" in v for v in validate(self.make_doc('<e v="2"/>'), dtd))

    def test_nmtoken(self):
        dtd = parse_dtd('<!ELEMENT e EMPTY><!ATTLIST e n NMTOKEN #IMPLIED>')
        assert validate(self.make_doc('<e n="ok-1"/>'), dtd) == []
        assert any(
            "NMTOKEN" in v for v in validate(self.make_doc('<e n="no spaces"/>'), dtd)
        )

    def test_doctype_name_mismatch(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY>")
        doc = parse_document("<!DOCTYPE b><a/>")
        assert any("DOCTYPE" in v for v in validate(doc, dtd))

    def test_strict_mode_raises(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY>")
        doc = self.make_doc("<a>text</a>")
        with pytest.raises(ValidationError):
            validate(doc, dtd, collect=False)
