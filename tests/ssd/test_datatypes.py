"""Unit tests for atomic value coercion and comparison."""

import pytest

from repro.ssd import coerce, compare, equal_atoms


class TestCoerce:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("42", 42),
            (" -7 ", -7),
            ("3.14", 3.14),
            ("1e3", 1000.0),
            ("true", True),
            ("No", False),
            ("hello", "hello"),
            ("  padded  ", "padded"),
            (5, 5),
            (2.5, 2.5),
            (True, True),
        ],
    )
    def test_coercions(self, raw, expected):
        result = coerce(raw)
        assert result == expected
        assert type(result) is type(expected)

    def test_numeric_string_with_letters_stays_string(self):
        assert coerce("12abc") == "12abc"


class TestEqualAtoms:
    def test_numeric_equality_across_representations(self):
        assert equal_atoms("007", 7)
        assert equal_atoms("2.0", 2)

    def test_string_equality(self):
        assert equal_atoms("abc", "abc")
        assert not equal_atoms("abc", "abd")

    def test_mixed_not_equal(self):
        assert not equal_atoms("abc", 7)

    def test_bool_as_number(self):
        assert equal_atoms("true", 1)


class TestCompare:
    def test_numeric_order(self):
        assert compare("10", "9") == 1
        assert compare(3, "3") == 0
        assert compare("2.5", 3) == -1

    def test_lexicographic_order(self):
        assert compare("apple", "banana") == -1
        assert compare("pear", "pear") == 0
        assert compare("zoo", "ant") == 1

    def test_mixed_raises(self):
        with pytest.raises(TypeError):
            compare("apple", 3)
        with pytest.raises(TypeError):
            compare(3, "apple")
