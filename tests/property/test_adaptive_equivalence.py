"""Hypothesis property: the adaptive engine is invisible in results.

The cost model (repro.engine.planner.choose_fragment_engine) may only
change *how* a fragment is evaluated — set-at-a-time pipeline vs
node-at-a-time backtracking — never *what* it returns.  Hypothesis draws
a seed for the same randomized document/query generators the seeded
equivalence suite uses (negation, ordered arcs, or-groups, cyclic
skeletons, equi-joins), and the adaptive binding multiset must equal both
forced engines' on every draw.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.engine.stats import EvalStats
from repro.xmlgl.matcher import MatchOptions, match

from .test_matcher_equivalence import (
    binding_multiset,
    random_document,
    random_query,
)


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_adaptive_agrees_with_both_forced_engines(seed):
    rng = random.Random(seed)
    document = random_document(rng)
    graph = random_query(rng)
    adaptive = binding_multiset(
        match(graph, document, options=MatchOptions(engine="adaptive"))
    )
    for forced in ("pipeline", "backtracking"):
        assert adaptive == binding_multiset(
            match(graph, document, options=MatchOptions(engine=forced))
        ), f"seed {seed}: adaptive diverged from {forced}"


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_adaptive_decisions_are_accounted(seed):
    """Every coverable fragment an adaptive run evaluates shows up in the
    decision counters (hard-fallback fragments are counted separately)."""
    rng = random.Random(seed)
    document = random_document(rng)
    graph = random_query(rng)
    stats = EvalStats()
    bindings = match(
        graph, document, options=MatchOptions(engine="adaptive"), stats=stats
    )
    decided = stats.extra.get("adaptive_pipeline", 0) + stats.extra.get(
        "adaptive_backtracking", 0
    )
    # a producing run evaluated at least one fragment, and every fragment
    # either took a cost decision or a hard (shape/budget) fallback
    if bindings:
        assert decided + stats.pipeline_fallbacks >= 1
    # cost decisions never coexist with a forced engine's counters
    assert stats.extra.get("adaptive_pipeline", 0) <= stats.pipeline_fragments
