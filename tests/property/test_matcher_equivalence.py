"""Randomized engine-equivalence suite for the XML-GL matcher.

Seeded generators build random documents and random (always-valid) query
graphs; every case asserts that all engine/ablation combinations — the
set-at-a-time semi-join **pipeline** (default), the interval-**indexed**
backtracking core and the **naive** full-scan path, each with the planner
on and off — produce *identical* binding multisets.  The naive path is the
differential oracle: it touches neither the interval encoding nor the join
pipeline, so agreement here is the correctness argument for both.

The query generator deliberately produces the shapes that stress the
pipeline's fragment logic: negated and ordered arcs (per-fragment
fallback), or-groups (branch expansion before engine dispatch), DAG
edges between existing boxes (cyclic skeletons → fallback), detached
boxes (cross products), and value equi-join conditions linking detached
fragments (hash equi-joins).
"""

import random

import pytest

from repro.engine.bindings import value_key
from repro.engine.conditions import AttributeOf, Comparison, Const
from repro.ssd.model import Document, Element
from repro.xmlgl.ast import (
    AttributePattern,
    ContainmentEdge,
    ElementPattern,
    OrGroup,
    QueryGraph,
    TextPattern,
)
from repro.xmlgl.matcher import MatchOptions, match

TAGS = ["a", "b", "c", "d"]
ATTRS = ["k", "m"]
VALUES = ["1", "2", "3"]
TEXTS = ["x", "y", "zz"]

CONFIGS = [
    MatchOptions(engine="pipeline", use_planner=True),
    MatchOptions(engine="pipeline", use_planner=False),
    # the columnar kernels (default on above) against the tuple pipeline
    MatchOptions(engine="pipeline", use_planner=True, columnar=False),
    MatchOptions(engine="pipeline", use_planner=False, columnar=False),
    MatchOptions(engine="backtracking", use_planner=True),
    MatchOptions(engine="backtracking", use_planner=False),
    MatchOptions(engine="naive", use_planner=True),
    MatchOptions(engine="naive", use_planner=False),
    # the cost-based selector must agree with whatever it picks
    MatchOptions(engine="adaptive", use_planner=True),
    MatchOptions(engine="adaptive", use_planner=False),
    MatchOptions(engine="adaptive", use_planner=True, columnar=False),
    # legacy spelling of the ablation knobs still works
    MatchOptions(use_planner=True, use_index=False),
]


def random_document(rng: random.Random) -> Document:
    """A random tree of ~10-50 elements with random attributes and text."""

    def grow(depth: int) -> Element:
        element = Element(rng.choice(TAGS))
        for name in ATTRS:
            if rng.random() < 0.4:
                element.set(name, rng.choice(VALUES))
        if rng.random() < 0.5:
            element.append(rng.choice(TEXTS))
        if depth < 4:
            for _ in range(rng.randint(0, 3)):
                element.append(grow(depth + 1))
        return element

    root = Element("root")
    for _ in range(rng.randint(1, 3)):
        root.append(grow(1))
    return Document(root)


def random_query(rng: random.Random) -> QueryGraph:
    """A random valid query graph: boxes, deep arcs, circles, negation,
    ordered arcs and the occasional or-group."""
    graph = QueryGraph()
    counter = 0

    def fresh(prefix: str) -> str:
        nonlocal counter
        counter += 1
        return f"{prefix}{counter}"

    def random_tag():
        return rng.choice(TAGS) if rng.random() < 0.8 else None

    positions: dict[str, int] = {}

    def next_position(parent: str) -> int:
        positions[parent] = positions.get(parent, 0) + 1
        return positions[parent]

    root_id = fresh("n")
    anchored = rng.random() < 0.3
    graph.add_node(
        ElementPattern(
            root_id,
            tag="root" if anchored else random_tag(),
            anchored=anchored,
        )
    )
    boxes = [root_id]

    for _ in range(rng.randint(1, 3)):
        parent = rng.choice(boxes)
        child = fresh("n")
        graph.add_node(ElementPattern(child, tag=random_tag()))
        graph.add_edge(
            ContainmentEdge(
                parent,
                child,
                deep=rng.random() < 0.4,
                position=next_position(parent),
            )
        )
        boxes.append(child)

    # value circles
    for parent in boxes:
        if rng.random() < 0.4:
            circle = fresh("v")
            if rng.random() < 0.5:
                constraint = {}
                roll = rng.random()
                if roll < 0.3:
                    constraint["value"] = rng.choice(TEXTS)
                elif roll < 0.5:
                    constraint["regex"] = "[xyz]+"
                graph.add_node(TextPattern(circle, **constraint))
            else:
                constraint = {}
                roll = rng.random()
                if roll < 0.3:
                    constraint["value"] = rng.choice(VALUES)
                elif roll < 0.5:
                    constraint["regex"] = "[12]"
                graph.add_node(
                    AttributePattern(circle, name=rng.choice(ATTRS), **constraint)
                )
            graph.add_edge(
                ContainmentEdge(parent, circle, position=next_position(parent))
            )

    # one negated fresh leaf, sometimes deep
    if rng.random() < 0.4:
        parent = rng.choice(boxes)
        leaf = fresh("neg")
        graph.add_node(ElementPattern(leaf, tag=rng.choice(TAGS)))
        graph.add_edge(
            ContainmentEdge(
                parent,
                leaf,
                deep=rng.random() < 0.5,
                negated=True,
                position=next_position(parent),
            )
        )

    # an ordered sibling pair under the root box
    if rng.random() < 0.3:
        first, second = fresh("o"), fresh("o")
        for node_id in (first, second):
            graph.add_node(ElementPattern(node_id, tag=random_tag()))
            graph.add_edge(
                ContainmentEdge(
                    root_id,
                    node_id,
                    ordered=True,
                    position=next_position(root_id),
                )
            )

    # an or-group of two single-edge branches to fresh boxes
    if rng.random() < 0.3:
        left, right = fresh("alt"), fresh("alt")
        branches = []
        for node_id in (left, right):
            graph.add_node(ElementPattern(node_id, tag=random_tag()))
            branches.append(
                (
                    ContainmentEdge(
                        root_id,
                        node_id,
                        deep=rng.random() < 0.3,
                        position=next_position(root_id),
                    ),
                )
            )
        graph.add_or_group(OrGroup(alternatives=tuple(branches)))

    # a DAG edge between existing boxes: diamonds and parallel edges make
    # the fragment cyclic, forcing the pipeline's backtracking fallback
    if rng.random() < 0.3 and len(boxes) >= 3:
        i, j = sorted(rng.sample(range(len(boxes)), 2))
        graph.add_edge(
            ContainmentEdge(
                boxes[i],
                boxes[j],
                deep=rng.random() < 0.5,
                position=next_position(boxes[i]),
            )
        )

    # a single-box predicate the pipeline can push into the candidate pool
    if rng.random() < 0.3:
        box = rng.choice(boxes)
        graph.add_condition(
            Comparison("=", AttributeOf(box, rng.choice(ATTRS)), Const(rng.choice(VALUES)))
        )

    # a detached box, sometimes tied back by a value equi-join condition
    # (hash join between fragments), sometimes left as a cross product
    if rng.random() < 0.35:
        detached = fresh("n")
        graph.add_node(ElementPattern(detached, tag=random_tag()))
        if rng.random() < 0.7:
            graph.add_condition(
                Comparison(
                    "=",
                    AttributeOf(root_id, rng.choice(ATTRS)),
                    AttributeOf(detached, rng.choice(ATTRS)),
                )
            )

    return graph


def binding_multiset(bindings):
    """Order-insensitive, identity-keyed view of a binding set."""
    return sorted(
        tuple(sorted((var, value_key(binding[var])) for var in binding))
        for binding in bindings
    )


@pytest.mark.parametrize("seed", range(80))
def test_all_engine_configs_agree(seed):
    rng = random.Random(seed)
    document = random_document(rng)
    graph = random_query(rng)
    results = [
        binding_multiset(match(graph, document, options=options))
        for options in CONFIGS
    ]
    for options, other in zip(CONFIGS[1:], results[1:]):
        assert other == results[0], (
            f"seed {seed}: {options} diverged from {CONFIGS[0]}"
        )


@pytest.mark.parametrize("seed", range(200, 230))
def test_fallback_fragments_agree(seed):
    """Shapes that force the pipeline's per-fragment fallback: a negated
    arc plus an ordered pair on one parent, alongside a coverable chain."""
    rng = random.Random(seed)
    document = random_document(rng)
    graph = QueryGraph()
    graph.add_node(ElementPattern("P", tag=rng.choice(TAGS)))
    graph.add_node(ElementPattern("O1", tag=random_tag_of(rng)))
    graph.add_node(ElementPattern("O2", tag=random_tag_of(rng)))
    graph.add_edge(ContainmentEdge("P", "O1", ordered=True, position=1))
    graph.add_edge(ContainmentEdge("P", "O2", ordered=True, position=2))
    graph.add_node(ElementPattern("N", tag=rng.choice(TAGS)))
    graph.add_edge(
        ContainmentEdge("P", "N", negated=True, deep=rng.random() < 0.5, position=3)
    )
    # a second, coverable fragment evaluated set-at-a-time alongside
    graph.add_node(ElementPattern("X", tag=rng.choice(TAGS)))
    graph.add_node(ElementPattern("Y", tag=random_tag_of(rng)))
    graph.add_edge(ContainmentEdge("X", "Y", deep=rng.random() < 0.5, position=1))
    results = [
        binding_multiset(match(graph, document, options=options))
        for options in CONFIGS
    ]
    for other in results[1:]:
        assert other == results[0], f"seed {seed} diverged on fallback shapes"


def random_tag_of(rng):
    return rng.choice(TAGS) if rng.random() < 0.8 else None


@pytest.mark.parametrize("seed", range(40, 60))
def test_interval_path_matches_naive_scan_path(seed):
    """Focused deep-arc cases: interval-sliced pools vs subtree scans."""
    rng = random.Random(seed)
    document = random_document(rng)
    graph = QueryGraph()
    graph.add_node(ElementPattern("R", tag="root", anchored=True))
    graph.add_node(ElementPattern("X", tag=rng.choice(TAGS)))
    graph.add_node(ElementPattern("Y", tag=rng.choice(TAGS + [None])))
    graph.add_edge(ContainmentEdge("R", "X", deep=True, position=1))
    graph.add_edge(ContainmentEdge("X", "Y", deep=rng.random() < 0.5, position=1))
    indexed = match(graph, document, options=MatchOptions(use_index=True))
    naive = match(graph, document, options=MatchOptions(use_index=False))
    assert binding_multiset(indexed) == binding_multiset(naive)
