"""Fuzz/robustness properties: malformed input never hangs or crashes
with anything other than the library's own error types."""

from hypothesis import given, settings, strategies as st

from repro.errors import (
    DtdError,
    QuerySyntaxError,
    ReproError,
    XmlSyntaxError,
)
from repro.ssd.dtd import parse_dtd
from repro.ssd.model import Document
from repro.ssd.parser import parse_document
from repro.xmlgl.dsl import parse_rule as parse_xg
from repro.wglog.dsl import parse_wglog

# characters likely to trip parsers
XMLISH = st.text(
    alphabet=st.sampled_from(list("<>/!?&;'\"=[]() abc-\n")), max_size=60
)
DSLISH = st.text(
    alphabet=st.sampled_from(list("{}()|@~=<>*/.$'\" abquerywhereconstructas\n")),
    max_size=80,
)


class TestParserFuzz:
    @given(XMLISH)
    @settings(max_examples=300, deadline=None)
    def test_xml_parser_total(self, text):
        """parse_document either returns a Document or raises XmlSyntaxError."""
        try:
            result = parse_document(text)
        except XmlSyntaxError:
            return
        assert isinstance(result, Document)
        assert result.root is not None

    @given(XMLISH)
    @settings(max_examples=200, deadline=None)
    def test_dtd_parser_total(self, text):
        try:
            parse_dtd(text)
        except DtdError:
            pass

    @given(DSLISH)
    @settings(max_examples=200, deadline=None)
    def test_xmlgl_dsl_total(self, text):
        try:
            parse_xg(text)
        except QuerySyntaxError:
            pass
        except ReproError:
            pass  # structurally invalid but syntactically parsed

    @given(DSLISH)
    @settings(max_examples=200, deadline=None)
    def test_wglog_dsl_total(self, text):
        try:
            parse_wglog(text)
        except ReproError:
            pass


class TestMutationRobustness:
    """Corrupting one character of valid input yields a clean outcome."""

    VALID_XML = '<bib><book year="1999"><title>T &amp; X</title></book></bib>'
    VALID_RULE = (
        "query { book as B { @year as Y } where Y >= 1995 }"
        " construct { r { collect B } }"
    )

    @given(
        st.integers(min_value=0, max_value=len(VALID_XML) - 1),
        st.sampled_from(list("<>&\"x ")),
    )
    @settings(max_examples=150, deadline=None)
    def test_xml_single_char_mutation(self, index, char):
        mutated = self.VALID_XML[:index] + char + self.VALID_XML[index + 1 :]
        try:
            document = parse_document(mutated)
        except XmlSyntaxError:
            return
        assert document.root is not None

    @given(
        st.integers(min_value=0, max_value=len(VALID_RULE) - 1),
        st.sampled_from(list("{}@$ x")),
    )
    @settings(max_examples=150, deadline=None)
    def test_rule_single_char_mutation(self, index, char):
        mutated = self.VALID_RULE[:index] + char + self.VALID_RULE[index + 1 :]
        try:
            parse_xg(mutated)
        except ReproError:
            return
