"""Equivalence of the set-at-a-time graph matcher with the backtracking one.

Two layers, mirroring how the pipeline is wired in:

* **Graph level** — hypothesis-driven: for random patterns, random data
  graphs and random :class:`MatchSpec` decorations (injective flag, path
  edges, negated edges), ``find_homomorphisms_setwise`` must produce the
  exact mapping multiset of ``find_homomorphisms``.  Injective specs and
  path/negated components exercise the fallback routes; plain forest
  components exercise the semi-join route.

* **WG-Log rule level** — seeded random instance graphs run hand-built
  rule shapes (forest rules, ∀-negated crossed edges, path edges, a
  diamond that defeats the forest test) through ``embeddings`` with all
  four ``MatchOptions.engine`` choices and both injectivity modes.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import EvalStats
from repro.graph import (
    LabeledGraph,
    MatchSpec,
    find_homomorphisms,
    find_homomorphisms_setwise,
)
from repro.wglog import InstanceGraph, embeddings, parse_rule
from repro.xmlgl.matcher import MatchOptions

# -- graph level -----------------------------------------------------------------

LABELS = ["p", "q"]
EDGE_LABELS = ["x", "y"]


@st.composite
def graphs(draw, max_nodes: int = 6, max_edges: int = 8):
    g = LabeledGraph()
    count = draw(st.integers(1, max_nodes))
    for index in range(count):
        g.add_node(index, draw(st.sampled_from(LABELS)))
    for _ in range(draw(st.integers(0, max_edges))):
        g.add_edge(
            draw(st.integers(0, count - 1)),
            draw(st.integers(0, count - 1)),
            draw(st.sampled_from(EDGE_LABELS)),
        )
    return g


@st.composite
def patterns_with_specs(draw, max_nodes: int = 4):
    """A random pattern plus a random spec over its edges.

    Each edge is independently plain, a path edge or a negated edge, so
    cases cover pure-forest components (semi-join route), components with
    special edges (fallback route) and mixtures of both.
    """
    g = LabeledGraph()
    count = draw(st.integers(1, max_nodes))
    for index in range(count):
        g.add_node(f"v{index}", draw(st.sampled_from(LABELS + ["*"])))
    for _ in range(draw(st.integers(0, 4))):
        g.add_edge(
            f"v{draw(st.integers(0, count - 1))}",
            f"v{draw(st.integers(0, count - 1))}",
            draw(st.sampled_from(EDGE_LABELS)),
        )
    path_edges, negated_edges = set(), set()
    for edge in g.edges():
        role = draw(
            st.sampled_from(["plain", "plain", "plain", "path", "negated"])
        )
        if role == "path":
            path_edges.add(edge)
        elif role == "negated":
            negated_edges.add(edge)
    spec = MatchSpec(
        injective=draw(st.booleans()),
        path_edges=path_edges,
        negated_edges=negated_edges,
        narrow=draw(st.booleans()),
    )
    return g, spec


def mapping_multiset(mappings):
    return sorted(tuple(sorted(m.items())) for m in mappings)


class TestSetwiseAgainstBacktracking:
    @given(patterns_with_specs(), graphs())
    @settings(max_examples=120, deadline=None)
    def test_same_mapping_multiset(self, pattern_and_spec, data):
        pattern, spec = pattern_and_spec
        expected = mapping_multiset(find_homomorphisms(pattern, data, spec))
        actual = mapping_multiset(find_homomorphisms_setwise(pattern, data, spec))
        assert actual == expected

    @given(patterns_with_specs(), graphs())
    @settings(max_examples=40, deadline=None)
    def test_stats_route_taken(self, pattern_and_spec, data):
        """Injective runs are counted as fallbacks, never as fragments."""
        pattern, spec = pattern_and_spec
        stats = EvalStats()
        list(find_homomorphisms_setwise(pattern, data, spec, stats=stats))
        if spec.injective:
            assert stats.pipeline_fragments == 0
            assert stats.pipeline_fallbacks >= 1

    def test_forest_pattern_uses_semijoin_route(self):
        data = LabeledGraph()
        for index, label in enumerate(["p", "q", "q"]):
            data.add_node(index, label)
        data.add_edge(0, 1, "x")
        data.add_edge(0, 2, "x")
        pattern = LabeledGraph()
        pattern.add_node("a", "p")
        pattern.add_node("b", "q")
        pattern.add_edge("a", "b", "x")
        stats = EvalStats()
        found = list(
            find_homomorphisms_setwise(
                pattern, data, MatchSpec(injective=False), stats=stats
            )
        )
        assert mapping_multiset(found) == [
            (("a", 0), ("b", 1)),
            (("a", 0), ("b", 2)),
        ]
        assert stats.pipeline_fragments == 1
        assert stats.pipeline_fallbacks == 0

    def test_parallel_data_edges_do_not_duplicate_mappings(self):
        # successors() reports one entry per data edge; the relation
        # builder must dedup or the semi-join route over-counts
        data = LabeledGraph()
        data.add_node(0, "p")
        data.add_node(1, "q")
        data.add_edge(0, 1, "x")
        data.add_edge(0, 1, "x")
        pattern = LabeledGraph()
        pattern.add_node("a", "p")
        pattern.add_node("b", "q")
        pattern.add_edge("a", "b", "x")
        found = list(
            find_homomorphisms_setwise(pattern, data, MatchSpec(injective=False))
        )
        assert mapping_multiset(found) == [(("a", 0), ("b", 1))]


# -- WG-Log rule level -----------------------------------------------------------

RULES = [
    # plain forest: the semi-join route end to end
    "rule r { match { a: Doc  b: *  a -link-> b } }",
    # star: one parent, two children, still a forest
    "rule r { match { a: Doc  a -link-> b  a -index-> c } }",
    # diamond over shared endpoints: cyclic skeleton, per-fragment fallback
    "rule r { match { a: Doc  b: Doc  a -link-> b  a -index-> b } }",
    # ∀-negation: no Doc that indexes d may exist
    "rule r { match { d: Doc  no i -index-> d } construct { d.seen = 'y' } }",
    # path edge: reachability, matched by the traversal fallback
    "rule r { match { a: Doc  b: Doc  a -link*-> b } }",
    # any-label path plus a plain edge: mixed fragment
    "rule r { match { a: Doc  b: Doc  c: Doc  a -_*-> b  b -link-> c } }",
    # two disconnected fragments: cross product of their embeddings
    "rule r { match { a: Doc  b: Doc  a -link-> b  c -index-> d } }",
]

ENGINES = [
    MatchOptions(engine="adaptive"),
    MatchOptions(engine="pipeline"),
    MatchOptions(engine="backtracking"),
    MatchOptions(engine="naive"),
]


def random_instance(rng: random.Random) -> InstanceGraph:
    inst = InstanceGraph()
    nodes = []
    for index in range(rng.randint(2, 8)):
        label = rng.choice(["Doc", "Page"])
        node = inst.add_entity(label, f"n{index}")
        if rng.random() < 0.5:
            inst.add_slot(node, "size", rng.randint(0, 3))
        nodes.append(node)
    for _ in range(rng.randint(0, 12)):
        inst.relate(
            rng.choice(nodes), rng.choice(nodes), rng.choice(["link", "index"])
        )
    return inst


def binding_multiset(bindings):
    return sorted(tuple(sorted(b.items())) for b in bindings)


@pytest.mark.parametrize("seed", range(25))
@pytest.mark.parametrize("rule_text", RULES)
def test_wglog_engines_agree(rule_text, seed):
    rng = random.Random(seed)
    instance = random_instance(rng)
    rule = parse_rule(rule_text)
    for injective in (False, True):
        results = [
            binding_multiset(
                embeddings(rule, instance, injective=injective, options=options)
            )
            for options in ENGINES
        ]
        for options, other in zip(ENGINES[1:], results[1:]):
            assert other == results[0], (
                f"seed {seed}, injective={injective}: {options.engine} "
                f"diverged on {rule_text!r}"
            )
