"""Property-based tests for language-level invariants."""

from hypothesis import given, settings, strategies as st

from repro.engine import Binding, BindingSet
from repro.ssd import E, document
from repro.visual import (
    diagram_to_wglog,
    diagram_to_xmlgl,
    wglog_rule_diagram,
    xmlgl_rule_diagram,
)
from repro.wglog import InstanceGraph, RuleGraph, apply_rule, satisfies
from repro.xmlgl import QueryBuilder, Rule, collect, elem, match

# ---------------------------------------------------------------------------
# Random XML-GL query graphs + documents
# ---------------------------------------------------------------------------

TAGS = ["a", "b", "c"]


@st.composite
def xmlgl_queries(draw):
    """A random tree-shaped extract graph over a tiny tag alphabet."""
    q = QueryBuilder()
    count = draw(st.integers(1, 4))
    ids = []
    for index in range(count):
        tag = draw(st.sampled_from(TAGS + [None]))
        parent = draw(st.sampled_from(ids)) if ids else None
        deep = draw(st.booleans()) if parent else False
        ids.append(
            q.box(tag, id=f"N{index}", parent=parent, deep=deep)
        )
    if draw(st.booleans()):
        q.attribute(draw(st.sampled_from(ids)), "k", id="ATT")
    if draw(st.booleans()):
        target = draw(st.sampled_from(ids))
        q.negate(target, q.box(draw(st.sampled_from(TAGS)), id="NEG"))
    return q.graph()


@st.composite
def small_documents(draw, depth: int = 3):
    def build(level):
        element = E(draw(st.sampled_from(TAGS)))
        if draw(st.booleans()):
            element.set("k", draw(st.sampled_from(["1", "2"])))
        if level > 0:
            for _ in range(draw(st.integers(0, 2))):
                element.append(build(level - 1))
        return element

    return document(build(depth))


class TestXmlglProperties:
    @given(xmlgl_queries(), small_documents())
    @settings(max_examples=60, deadline=None)
    def test_bindings_satisfy_structure(self, graph, doc):
        """Every binding respects tags and containment edges."""
        from repro.xmlgl.ast import ElementPattern

        for binding in match(graph, doc):
            for node_id, node in graph.nodes.items():
                if not isinstance(node, ElementPattern) or node_id not in binding:
                    continue
                bound = binding[node_id]
                if node.tag is not None:
                    assert bound.tag == node.tag
            for edge in graph.positive_edges():
                if edge.parent not in binding or edge.child not in binding:
                    continue
                child = binding[edge.child]
                if not hasattr(child, "ancestors"):
                    continue  # text/attribute values checked elsewhere
                if edge.deep:
                    assert any(a is binding[edge.parent] for a in child.ancestors())
                else:
                    assert child.parent is binding[edge.parent]

    @given(xmlgl_queries(), small_documents())
    @settings(max_examples=40, deadline=None)
    def test_match_deterministic(self, graph, doc):
        first = [b.key() for b in match(graph, doc)]
        second = [b.key() for b in match(graph, doc)]
        assert first == second

    @given(xmlgl_queries())
    @settings(max_examples=60, deadline=None)
    def test_diagram_round_trip(self, graph):
        rule = Rule([graph], elem("result", collect(next(iter(graph.nodes)))))
        back = diagram_to_xmlgl(xmlgl_rule_diagram(rule))
        original = rule.queries[0]
        rebuilt = back.queries[0]
        assert set(rebuilt.nodes) == set(original.nodes)
        assert {
            (e.parent, e.child, e.deep, e.ordered, e.negated)
            for e in rebuilt.edges
        } == {
            (e.parent, e.child, e.deep, e.ordered, e.negated)
            for e in original.edges
        }


# ---------------------------------------------------------------------------
# Random WG-Log rules + instances
# ---------------------------------------------------------------------------

@st.composite
def instances(draw):
    instance = InstanceGraph()
    count = draw(st.integers(2, 6))
    nodes = [
        instance.add_entity(draw(st.sampled_from(["D", "E"])), f"n{i}")
        for i in range(count)
    ]
    for _ in range(draw(st.integers(0, 8))):
        instance.relate(
            draw(st.sampled_from(nodes)),
            draw(st.sampled_from(nodes)),
            draw(st.sampled_from(["r", "s"])),
        )
    return instance


@st.composite
def generative_rules(draw):
    """match one edge, derive another (always safe)."""
    rule = RuleGraph()
    rule.red("x", draw(st.sampled_from(["D", "E", None])))
    rule.red("y", draw(st.sampled_from(["D", "E", None])))
    rule.match_edge("x", "y", draw(st.sampled_from(["r", "s"])))
    rule.derive_edge("x", "y", "derived")
    return rule


class TestWglogProperties:
    @given(generative_rules(), instances())
    @settings(max_examples=60, deadline=None)
    def test_apply_reaches_satisfaction(self, rule, instance):
        apply_rule(instance, rule)
        assert satisfies(instance, rule)

    @given(generative_rules(), instances())
    @settings(max_examples=60, deadline=None)
    def test_apply_idempotent(self, rule, instance):
        apply_rule(instance, rule)
        assert apply_rule(instance, rule) == 0

    @given(generative_rules(), instances())
    @settings(max_examples=40, deadline=None)
    def test_apply_only_adds(self, rule, instance):
        edges_before = set(instance.graph.edges())
        nodes_before = set(instance.graph.nodes())
        apply_rule(instance, rule)
        assert edges_before <= set(instance.graph.edges())
        assert nodes_before <= set(instance.graph.nodes())

    @given(generative_rules(), instances())
    @settings(max_examples=40, deadline=None)
    def test_diagram_round_trip(self, rule, instance):
        back = diagram_to_wglog(wglog_rule_diagram(rule))
        assert back.describe() == rule.describe()


# ---------------------------------------------------------------------------
# Binding algebra
# ---------------------------------------------------------------------------

ROWS = st.lists(
    st.fixed_dictionaries(
        {"x": st.integers(0, 3), "y": st.sampled_from("pq")}
    ),
    max_size=6,
)


def binding_set(rows, extra_var=None):
    out = BindingSet()
    for row in rows:
        values = dict(row)
        if extra_var:
            values[extra_var] = values.pop("y")
        out.add(Binding(values))
    return out


class TestBindingAlgebra:
    @given(ROWS, ROWS)
    def test_join_commutative_as_sets(self, left_rows, right_rows):
        left = binding_set(left_rows)
        right = binding_set(right_rows, extra_var="z")
        ab = {b.key() for b in left.join(right)}
        ba = {b.key() for b in right.join(left)}
        assert ab == ba

    @given(ROWS)
    def test_join_with_self_is_identity_on_distinct(self, rows):
        base = binding_set(rows).distinct()
        joined = base.join(base).distinct()
        assert {b.key() for b in joined} == {b.key() for b in base}

    @given(ROWS)
    def test_minus_self_is_empty(self, rows):
        base = binding_set(rows)
        assert len(base.minus(base)) == 0

    @given(ROWS)
    def test_distinct_idempotent(self, rows):
        base = binding_set(rows)
        once = base.distinct()
        assert [b.key() for b in once.distinct()] == [b.key() for b in once]

    @given(ROWS)
    def test_group_by_partitions(self, rows):
        base = binding_set(rows)
        groups = base.group_by(["y"])
        total = sum(len(members) for _, members in groups)
        assert total == len(base)
        seen_keys = [key["y"] for key, _ in groups]
        assert len(seen_keys) == len(set(seen_keys))
