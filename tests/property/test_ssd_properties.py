"""Property-based tests for the XML substrate (hypothesis)."""

import string

from hypothesis import given, settings, strategies as st

from repro.ssd import (
    E,
    document,
    parse_document,
    pretty,
    serialize,
)
from repro.ssd.datatypes import coerce, compare, equal_atoms
from repro.ssd.lexer import unescape
from repro.ssd.model import Document, Element, Text, strip_whitespace
from repro.ssd.navigation import document_order, document_position
from repro.ssd.serializer import escape_attribute, escape_text

# -- generators ----------------------------------------------------------------

TAGS = st.sampled_from(["a", "b", "c", "item", "node", "x-1", "_t"])
ATTR_NAMES = st.sampled_from(["id", "year", "lang", "ref"])
# any unicode-ish text without surrogate trouble
TEXTS = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), max_codepoint=0x2FF),
    max_size=20,
)


@st.composite
def elements(draw, depth: int = 3):
    tag = draw(TAGS)
    attributes = draw(
        st.dictionaries(ATTR_NAMES, TEXTS, max_size=3)
    )
    element = Element(tag, attributes)
    if depth > 0:
        children = draw(
            st.lists(
                st.one_of(
                    TEXTS.map(Text),
                    elements(depth=depth - 1),
                ),
                max_size=3,
            )
        )
        for child in children:
            element.append(child)
    return element


@st.composite
def documents(draw):
    return document(draw(elements()))


# -- parser / serializer ---------------------------------------------------------

class TestRoundTrips:
    @given(documents())
    @settings(max_examples=60)
    def test_serialize_parse_round_trip(self, doc):
        """parse(serialize(d)) is structurally equal to d (modulo adjacent
        text nodes, which serialization merges)."""
        reparsed = parse_document(serialize(doc))
        assert reparsed.text_content() == doc.text_content()
        assert [e.tag for e in reparsed.iter()] == [e.tag for e in doc.iter()]
        assert [e.attributes for e in reparsed.iter()] == [
            e.attributes for e in doc.iter()
        ]

    @given(documents())
    @settings(max_examples=40)
    def test_pretty_preserves_structure_modulo_whitespace(self, doc):
        reparsed = strip_whitespace(parse_document(pretty(doc)))
        assert [e.tag for e in reparsed.iter()] == [e.tag for e in doc.iter()]

    @given(documents())
    @settings(max_examples=40)
    def test_copy_equals_original(self, doc):
        assert doc.copy().equals(doc)

    @given(documents())
    @settings(max_examples=40)
    def test_serialization_deterministic(self, doc):
        assert serialize(doc) == serialize(doc.copy())

    @given(TEXTS)
    def test_text_escaping_round_trip(self, text):
        assert unescape(escape_text(text)) == text

    @given(TEXTS)
    def test_attribute_escaping_round_trip(self, text):
        assert unescape(escape_attribute(text)) == text

    @given(documents())
    @settings(max_examples=40)
    def test_size_counts_nodes(self, doc):
        elements_count = sum(1 for _ in doc.iter())
        others = sum(
            1
            for e in doc.iter()
            for c in e.children
            if not isinstance(c, Element)
        )
        assert doc.size() == elements_count + others


class TestNavigationInvariants:
    @given(documents())
    @settings(max_examples=40)
    def test_document_positions_strictly_increase(self, doc):
        positions = [document_position(n) for n in document_order(doc.root)]
        assert positions == sorted(positions)
        assert len(set(positions)) == len(positions)

    @given(documents())
    @settings(max_examples=40)
    def test_parent_child_coherence(self, doc):
        for element in doc.iter():
            for child in element.children:
                assert child.parent is element

    @given(documents())
    @settings(max_examples=40)
    def test_ancestors_terminate_at_root(self, doc):
        for element in doc.iter():
            chain = list(element.ancestors())
            if chain:
                assert chain[-1] is doc.root


NUMBERS = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)


class TestDatatypeProperties:
    @given(NUMBERS)
    def test_numeric_strings_coerce_back(self, number):
        assert equal_atoms(str(number), number)

    @given(NUMBERS, NUMBERS)
    def test_compare_antisymmetric(self, a, b):
        assert compare(a, b) == -compare(b, a)

    @given(NUMBERS, NUMBERS, NUMBERS)
    def test_compare_transitive(self, a, b, c):
        values = sorted([a, b, c])
        assert compare(values[0], values[1]) <= 0
        assert compare(values[1], values[2]) <= 0
        assert compare(values[0], values[2]) <= 0

    @given(st.text(max_size=10))
    def test_coerce_idempotent(self, text):
        once = coerce(text)
        assert coerce(once) == once

    @given(NUMBERS)
    def test_equal_atoms_reflexive(self, value):
        assert equal_atoms(value, value)
