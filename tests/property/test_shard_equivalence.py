"""Process-sharded execution must be invisible to results and stats.

Hypothesis drives randomized corpora (random small trees, random corpus
sizes, random shard counts) through both sharded entry points and checks
them against single-process ground truth:

* ``ShardedExecutor.map_corpus`` — every per-document result document is
  byte-identical to a single-process ``QuerySession.run`` over the same
  document, in corpus order, and the merged ``EvalStats`` is the exact
  counter sum of the per-document rows.
* ``QuerySession.run_batch(executor="process")`` — every row matches the
  thread-executor row: same serialized result, same bindings count, same
  order.

Example counts are kept deliberately low: each example pays for real
process-pool spawns.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.engine.shard import ShardedExecutor
from repro.engine.stats import EvalStats
from repro.session import QuerySession
from repro.ssd import serialize
from repro.ssd.model import Document, Element

TAGS = ["a", "b", "c"]
ATTRS = ["k", "m"]
VALUES = ["1", "2", "3"]

QUERIES = [
    "query { a as X } construct { out { collect X } }",
    "query { b as X { c as Y } } construct { out { collect Y } }",
    "query { a as X { @k as K } where K >= 2 } construct { out { collect X } }",
]


def random_document(rng: random.Random) -> Document:
    def grow(depth: int) -> Element:
        element = Element(rng.choice(TAGS))
        for name in ATTRS:
            if rng.random() < 0.4:
                element.set(name, rng.choice(VALUES))
        if depth < 3:
            for _ in range(rng.randint(0, 3)):
                element.append(grow(depth + 1))
        return element

    root = Element("root")
    for _ in range(rng.randint(1, 4)):
        root.append(grow(1))
    return Document(root)


def random_corpus(rng: random.Random, count: int) -> dict[str, Document]:
    return {f"doc{index}": random_document(rng) for index in range(count)}


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    count=st.integers(min_value=1, max_value=5),
    shards=st.integers(min_value=1, max_value=4),
    query=st.sampled_from(QUERIES),
)
@settings(max_examples=5, deadline=None)
def test_map_corpus_matches_single_process(seed, count, shards, query):
    rng = random.Random(seed)
    corpus = random_corpus(rng, count)
    run = ShardedExecutor(max_workers=2).map_corpus(query, corpus, shards=shards)
    assert run.ok
    merged = EvalStats()
    for position, name in enumerate(corpus):
        expected = QuerySession(corpus[name]).run(query)
        assert serialize(run.results[position]) == serialize(expected)
        merged = merged + run.stats_per_document[position]
    assert run.stats.as_dict() == merged.as_dict()
    assigned = sorted(name for group in run.shards for name in group)
    assert assigned == sorted(corpus)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=5, deadline=None)
def test_process_batch_matches_thread_batch(seed):
    rng = random.Random(seed)
    session = QuerySession(random_document(rng))
    threaded = session.run_batch(QUERIES)
    sharded = session.run_batch(QUERIES, executor="process", max_workers=2)
    assert [row.index for row in sharded] == [0, 1, 2]
    for one, other in zip(threaded, sharded):
        assert one.error is None and other.error is None
        assert serialize(other.result) == serialize(one.result)
        assert other.stats.bindings_produced == one.stats.bindings_produced
