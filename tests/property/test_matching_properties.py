"""Property-based tests for graph matching and the DTD automaton."""

import re

from hypothesis import assume, given, settings, strategies as st

from repro.graph import LabeledGraph, MatchSpec, find_homomorphisms
from repro.ssd.dtd import (
    ChoiceParticle,
    ContentParticle,
    GlushkovAutomaton,
    NameParticle,
    Repetition,
    SequenceParticle,
)
from repro.errors import DtdError

# -- random graphs ---------------------------------------------------------------

LABELS = ["p", "q"]
EDGE_LABELS = ["x", "y"]


@st.composite
def graphs(draw, max_nodes: int = 6, max_edges: int = 8):
    g = LabeledGraph()
    count = draw(st.integers(1, max_nodes))
    for index in range(count):
        g.add_node(index, draw(st.sampled_from(LABELS)))
    for _ in range(draw(st.integers(0, max_edges))):
        g.add_edge(
            draw(st.integers(0, count - 1)),
            draw(st.integers(0, count - 1)),
            draw(st.sampled_from(EDGE_LABELS)),
        )
    return g


@st.composite
def patterns(draw, max_nodes: int = 3):
    g = LabeledGraph()
    count = draw(st.integers(1, max_nodes))
    for index in range(count):
        g.add_node(f"v{index}", draw(st.sampled_from(LABELS + ["*"])))
    for _ in range(draw(st.integers(0, 3))):
        g.add_edge(
            f"v{draw(st.integers(0, count - 1))}",
            f"v{draw(st.integers(0, count - 1))}",
            draw(st.sampled_from(EDGE_LABELS)),
        )
    return g


class TestMatcherProperties:
    @given(patterns(), graphs())
    @settings(max_examples=60, deadline=None)
    def test_matches_are_valid(self, pattern, data):
        """Every reported mapping actually satisfies labels and edges."""
        for mapping in find_homomorphisms(pattern, data, MatchSpec(injective=False)):
            for pnode in pattern.nodes():
                wanted = pattern.label(pnode)
                assert wanted == "*" or data.label(mapping[pnode]) == wanted
            for edge in pattern.edges():
                assert data.has_edge(
                    mapping[edge.source], mapping[edge.target], edge.label
                )

    @given(patterns(), graphs())
    @settings(max_examples=40, deadline=None)
    def test_injective_subset_of_homomorphic(self, pattern, data):
        hom = {
            tuple(sorted(m.items()))
            for m in find_homomorphisms(pattern, data, MatchSpec(injective=False))
        }
        inj = {
            tuple(sorted(m.items()))
            for m in find_homomorphisms(pattern, data, MatchSpec(injective=True))
        }
        assert inj <= hom

    @given(patterns(), graphs())
    @settings(max_examples=40, deadline=None)
    def test_no_duplicate_matches(self, pattern, data):
        seen = []
        for mapping in find_homomorphisms(pattern, data, MatchSpec(injective=False)):
            key = tuple(sorted(mapping.items()))
            assert key not in seen
            seen.append(key)

    @given(patterns(), graphs())
    @settings(max_examples=30, deadline=None)
    def test_monotone_under_data_growth(self, pattern, data):
        """Adding data never removes matches (positive patterns only)."""
        before = {
            tuple(sorted(m.items()))
            for m in find_homomorphisms(pattern, data, MatchSpec(injective=False))
        }
        grown = data.copy()
        fresh = max(
            (n for n in grown.nodes() if isinstance(n, int)), default=-1
        ) + 1
        grown.add_node(fresh, "p")
        existing = next(iter(data.nodes()))
        grown.add_edge(fresh, existing, "x")
        after = {
            tuple(sorted(m.items()))
            for m in find_homomorphisms(pattern, grown, MatchSpec(injective=False))
        }
        assert before <= after


# -- content models vs Python's re module -----------------------------------------

@st.composite
def particles(draw, depth: int = 2) -> ContentParticle:
    repetition = draw(st.sampled_from(list(Repetition)))
    if depth == 0 or draw(st.booleans()):
        return NameParticle(draw(st.sampled_from("abc")), repetition)
    items = tuple(
        draw(particles(depth=depth - 1))
        for _ in range(draw(st.integers(1, 3)))
    )
    kind = draw(st.sampled_from([SequenceParticle, ChoiceParticle]))
    return kind(items, repetition)


def particle_to_regex(particle: ContentParticle) -> str:
    if isinstance(particle, NameParticle):
        body = particle.name
    elif isinstance(particle, SequenceParticle):
        body = "(" + "".join(particle_to_regex(i) for i in particle.items) + ")"
    else:
        body = "(" + "|".join(particle_to_regex(i) for i in particle.items) + ")"
    return f"(?:{body}){particle.repetition.value}"


class TestGlushkovAgainstRe:
    @given(particles(), st.lists(st.sampled_from("abc"), max_size=6))
    @settings(max_examples=120, deadline=None)
    def test_agrees_with_regex_semantics(self, particle, word):
        """Where the content model is deterministic, the Glushkov automaton
        accepts exactly the words Python's regex engine accepts."""
        try:
            automaton = GlushkovAutomaton(particle)
        except DtdError:
            assume(False)  # nondeterministic model: XML forbids it anyway
        pattern = re.compile(particle_to_regex(particle) + r"\Z")
        assert automaton.accepts(word) == bool(pattern.match("".join(word)))

    @given(particles())
    @settings(max_examples=60, deadline=None)
    def test_expected_after_is_sound(self, particle):
        """Every symbol reported as expected leads somewhere."""
        try:
            automaton = GlushkovAutomaton(particle)
        except DtdError:
            assume(False)
        for symbol in automaton.expected_after([]):
            # consuming an expected symbol must not dead-end immediately:
            # either the word is accepted or something else is expected
            accepted = automaton.accepts([symbol])
            follow_up = automaton.expected_after([symbol])
            assert accepted or follow_up
