"""Hypothesis property: incremental maintenance is invisible in results.

Two oracles, checked after every committed batch of a random edit script:

* **delta soundness** — a subscription's maintained row set (initial
  evaluation plus applied deltas) equals a from-scratch re-evaluation of
  the same rule over the mutated document with a fresh index, across all
  three engines;
* **index soundness** — the incrementally maintained
  :class:`~repro.engine.index.DocumentIndex` agrees with one built from
  scratch on every pool and every ancestor relation.

The generators bias edits toward the tags the queries read, so the
footprint filter's *skip* decisions are exercised as hard as its re-runs
(a wrongly skipped batch shows up as a row-set divergence).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.engine import DocumentIndex
from repro.engine.cache import DocumentIndexCache
from repro.engine.mutate import MutationBatch
from repro.session import ExecOptions, QuerySession
from repro.ssd.model import Document, Element, Text
from repro.xmlgl.evaluator import rule_bindings
from repro.xmlgl.dsl import parse_rule

from repro.engine.bindings import value_key

from .test_matcher_equivalence import binding_multiset

TAGS = ["book", "article", "title", "author", "note"]
ATTRS = ["year", "lang"]
WORDS = ["alpha", "beta", "gamma", "delta"]

QUERIES = [
    "query { book as B { title as T } } construct { r { collect T } }",
    "query { book as B { @year as Y } where Y >= 1995 } "
    "construct { r { count(B) } }",
    "query { title as T { text as V } } construct { r { collect V } }",
    "query { book as B where B = 'alpha' } construct { r { count(B) } }",
    "query { * as X { title as T } } construct { r { count(X) } }",
]


def random_element(rng, depth=0):
    element = Element(rng.choice(TAGS))
    for name in ATTRS:
        if rng.random() < 0.4:
            element.attributes[name] = str(rng.randint(1990, 2005))
    if rng.random() < 0.5:
        element.append(Text(rng.choice(WORDS)))
    if depth < 2:
        for _ in range(rng.randint(0, 3 - depth)):
            element.append(random_element(rng, depth + 1))
    return element


def random_document(rng):
    root = Element("bib")
    for _ in range(rng.randint(2, 5)):
        root.append(random_element(rng, depth=1))
    document = Document()
    document.append(root)
    return document


def random_batch(rng, document):
    """One 1-2 op batch against live elements of ``document``."""
    root = document.root
    live = [root] + [e for e in root.iter() if e is not root]
    batch = MutationBatch()
    deleted = set()
    for _ in range(rng.randint(1, 2)):
        kind = rng.randrange(4)
        target = rng.choice(live)
        if any(anc is d for d in deleted for anc in [target, *target.ancestors()]):
            continue
        if kind == 0:
            batch.insert_subtree(
                target,
                random_element(rng, depth=1),
                rng.choice([None, 0]),
            )
        elif kind == 1 and target is not root:
            batch.delete_subtree(target)
            deleted.add(target)
        elif kind == 2:
            batch.update_value(target, rng.choice(WORDS + [""]))
        else:
            name = rng.choice(ATTRS)
            batch.update_attribute(
                target, name, rng.choice([None, str(rng.randint(1990, 2005))])
            )
    return batch


def scratch_rows(rule, document, options):
    """From-scratch oracle: fresh index cache, fresh evaluation."""
    bindings = rule_bindings(
        rule,
        document,
        options=options.match_options(),
        indexes=DocumentIndexCache(),
    )
    return binding_multiset(bindings)


def subscription_rows(subscription):
    return binding_multiset(subscription.rows())


def assert_index_fresh(index, document):
    fresh = DocumentIndex(document)
    assert index.element_count() == fresh.element_count()
    assert index.tags() == fresh.tags()
    for tag in fresh.tags():
        assert index.elements_with_tag(tag) == fresh.elements_with_tag(tag)
    for name in ATTRS:
        assert index.elements_with_attribute(
            name
        ) == fresh.elements_with_attribute(name)
    elements = list(fresh.all_elements())
    sample = elements if len(elements) <= 12 else elements[:12]
    for a in sample:
        for b in sample:
            assert index.is_ancestor(a, b) == fresh.is_ancestor(a, b)


@given(
    st.integers(0, 2**31 - 1),
    st.sampled_from(["pipeline", "backtracking", "adaptive"]),
)
@settings(max_examples=40, deadline=None)
def test_subscription_rows_match_scratch_reeval(seed, engine):
    rng = random.Random(seed)
    document = random_document(rng)
    query = rng.choice(QUERIES)
    rule = parse_rule(query)
    options = ExecOptions(engine=engine)
    session = QuerySession(
        document, options=options, indexes=DocumentIndexCache()
    )
    # Build the session's maintained index up front so every batch
    # exercises incremental maintenance, not a lazy rebuild.
    maintained = session._indexes.get(document)
    subscription = session.subscribe(query)
    assert subscription_rows(subscription) == scratch_rows(
        rule, document, options
    )
    for _ in range(6):
        batch = random_batch(rng, document)
        if not len(batch):
            continue
        session.mutate(batch)
        assert subscription_rows(subscription) == scratch_rows(
            rule, document, options
        ), f"seed {seed}: subscription diverged after {batch.ops}"
    assert_index_fresh(maintained, document)


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_maintained_index_matches_fresh_build(seed):
    rng = random.Random(seed)
    document = random_document(rng)
    index = DocumentIndex(document)
    from repro.engine.mutate import apply_batch

    for _ in range(8):
        batch = random_batch(rng, document)
        if not len(batch):
            continue
        apply_batch(document, batch, indexes=[index])
        assert_index_fresh(index, document)


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_deltas_replay_to_current_rows(seed):
    """Applying added/removed deltas to the initial rows reproduces the
    final row set — the delta stream is a faithful changelog."""
    rng = random.Random(seed)
    document = random_document(rng)
    query = rng.choice(QUERIES)
    session = QuerySession(document, indexes=DocumentIndexCache())
    subscription = session.subscribe(query)
    replayed = {
        tuple(sorted((var, value_key(b[var])) for var in b))
        for b in subscription.rows()
    }
    for _ in range(6):
        batch = random_batch(rng, document)
        if not len(batch):
            continue
        session.mutate(batch)
    for delta in subscription.poll():
        for binding in delta.removed:
            replayed.discard(
                tuple(sorted((var, value_key(binding[var])) for var in binding))
            )
        for binding in delta.added:
            replayed.add(
                tuple(sorted((var, value_key(binding[var])) for var in binding))
            )
    assert sorted(replayed) == subscription_rows(subscription)
