"""Hypothesis property: the static rewrite layer is invisible in results.

``rewrite_rule`` / ``rewrite_rulegraph`` may only change *how much work*
evaluation does — never what it returns.  Each draw builds a randomized
document/query pair (reusing the seeded generators of the engine
equivalence suite), **injects redundancy** the rewriter is designed to
remove — duplicate sibling branches, deep-wildcard branches subsumed by
specific ones, tautological and implied conditions — and asserts the
rewritten rule evaluates identically to the original under all three
engines.  A deterministic sweep then checks the injection actually gives
the rewriter work (the property would pass vacuously otherwise).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.analysis.rewrite import rewrite_rule, rewrite_rulegraph
from repro.engine.bindings import value_key
from repro.engine.conditions import Comparison, Const, ContentOf
from repro.engine.options import MatchOptions
from repro.ssd import serialize
from repro.wglog.data import InstanceGraph
from repro.wglog.dsl import parse_wglog
from repro.wglog.semantics import query as wglog_query
from repro.xmlgl.ast import ContainmentEdge, ElementPattern
from repro.xmlgl.construct import Collect, NewElement
from repro.xmlgl.evaluator import evaluate_rule, rule_bindings
from repro.xmlgl.rule import Rule

from .test_matcher_equivalence import TAGS, random_document, random_query

ENGINES = ("pipeline", "backtracking", "adaptive")


def make_rule(graph, rng: random.Random) -> Rule:
    """Wrap a random extract graph in a rule collecting 1-2 element boxes."""
    boxes = sorted(
        node_id
        for node_id, node in graph.nodes.items()
        if isinstance(node, ElementPattern) and node_id.startswith("n")
    )
    picked = rng.sample(boxes, min(len(boxes), rng.randint(1, 2)))
    construct = NewElement(
        tag="r", children=[Collect(variable=v) for v in picked]
    )
    return Rule(queries=[graph], construct=construct, name="q")


def inject_redundancy(rule: Rule, rng: random.Random) -> Rule:
    """A semantically equal rule with extra work for the rewriter."""
    graph = rule.queries[0]
    targets = [
        edge
        for edge in graph.edges
        if not edge.negated
        and not edge.ordered
        and isinstance(graph.nodes[edge.child], ElementPattern)
    ]
    positions = max(
        (e.position for e in graph.edges if e.position is not None), default=0
    )
    for index, edge in enumerate(targets):
        roll = rng.random()
        if roll < 0.45:
            # exact duplicate branch: mutually subsumed with the original
            dup = f"dup{index}"
            graph.add_node(
                ElementPattern(dup, tag=graph.nodes[edge.child].tag)
            )
            positions += 1
            graph.add_edge(
                ContainmentEdge(
                    edge.parent, dup, deep=edge.deep, position=positions
                )
            )
        elif roll < 0.7:
            # a deep wildcard sibling: one-directionally subsumed
            dup = f"wild{index}"
            graph.add_node(ElementPattern(dup, tag=None))
            positions += 1
            graph.add_edge(
                ContainmentEdge(edge.parent, dup, deep=True, position=positions)
            )
    if rng.random() < 0.5:
        graph.add_condition(Comparison("=", Const("1"), Const("1")))
    if rng.random() < 0.3 and targets:
        # an implied pair on one box's content
        box = rng.choice(targets).parent
        graph.add_condition(Comparison("!=", ContentOf(box), Const("zzz")))
        graph.add_condition(Comparison("!=", ContentOf(box), Const("zzz")))
    return rule


def projected(bindings, variables):
    """Order-insensitive binding-set projection onto ``variables``."""
    return {
        tuple(
            (var, value_key(binding[var]))
            for var in sorted(variables)
            if var in binding
        )
        for binding in bindings
    }


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_rewritten_rule_evaluates_identically(seed):
    rng = random.Random(seed)
    document = random_document(rng)
    rule = inject_redundancy(make_rule(random_query(rng), rng), rng)
    rewritten, report = rewrite_rule(rule)
    for engine in ENGINES:
        options = MatchOptions(engine=engine)
        original = serialize(evaluate_rule(rule, document, options=options))
        after = serialize(evaluate_rule(rewritten, document, options=options))
        assert after == original, (
            f"seed {seed}, engine {engine}: rewrite changed the result "
            f"({report.describe()})"
        )


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_projected_binding_sets_preserved(seed):
    rng = random.Random(seed)
    document = random_document(rng)
    rule = inject_redundancy(make_rule(random_query(rng), rng), rng)
    rewritten, report = rewrite_rule(rule)
    shared = set(rewritten.queries[0].nodes) & set(rule.queries[0].nodes)
    before = projected(rule_bindings(rule, document), shared)
    after = projected(rule_bindings(rewritten, document), shared)
    assert after == before, (
        f"seed {seed}: projection onto surviving variables changed "
        f"({report.describe()})"
    )


def test_injection_gives_the_rewriter_work():
    # guard against a vacuous property: across a deterministic sweep the
    # injected redundancy must make the rewriter fire often
    fired = 0
    for seed in range(40):
        rng = random.Random(seed)
        random_document(rng)  # keep the rng stream aligned with the others
        rule = inject_redundancy(make_rule(random_query(rng), rng), rng)
        _, report = rewrite_rule(rule)
        if report.changed:
            fired += 1
    assert fired >= 20, f"rewriter fired on only {fired}/40 sweeps"


WG_LABELS = ["A", "B", "C"]
WG_RELS = ["r", "s"]


def random_instance(rng: random.Random) -> InstanceGraph:
    instance = InstanceGraph()
    nodes = [
        instance.add_entity(rng.choice(WG_LABELS))
        for _ in range(rng.randint(3, 8))
    ]
    for node in nodes:
        if rng.random() < 0.5:
            instance.add_slot(node, "size", rng.randint(1, 5))
    for _ in range(rng.randint(2, 10)):
        source, target = rng.choice(nodes), rng.choice(nodes)
        instance.relate(source, target, rng.choice(WG_RELS))
    return instance


def random_wglog_rule(rng: random.Random):
    """A small match-only rule with a deliberately duplicated red edge."""
    a, b = rng.choice(WG_LABELS), rng.choice(WG_LABELS)
    relation = rng.choice(WG_RELS)
    edge = f"x -{relation}-> y"
    clauses = [f"x: {a}", f"y: {b}", edge, edge]
    where = ""
    if rng.random() < 0.5:
        where = " where 1 = 1 and x.size > 2"
    source = f"rule r {{ match {{ {'  '.join(clauses)} }}{where} }}"
    _, rules = parse_wglog(source)
    return rules[0]


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_wglog_rewrite_preserves_embeddings(seed):
    rng = random.Random(seed)
    instance = random_instance(rng)
    rule = random_wglog_rule(rng)
    rewritten, report = rewrite_rulegraph(rule)
    assert report.counters.get("merged", 0) >= 1  # the duplicated edge
    variables = set(rewritten.nodes)
    for injective in (False, True):
        before = projected(
            wglog_query(rule, instance, injective=injective), variables
        )
        after = projected(
            wglog_query(rewritten, instance, injective=injective), variables
        )
        assert after == before, (
            f"seed {seed}, injective={injective}: rewrite changed the "
            f"embeddings ({report.describe()})"
        )
