"""Snapshot test of the consolidated public facade (``repro.__init__``).

The facade's ``__all__`` is the supported API surface: additions are
deliberate (update the snapshot here in the same change), removals are
breaking and must fail loudly.
"""

import subprocess
import sys

import pytest

import repro

#: The frozen public surface.  Keep sorted; update deliberately.
EXPECTED_SURFACE = [
    "BatchResult",
    "CancelToken",
    "Diagnostic",
    "DocumentStore",
    "EvalStats",
    "ExecOptions",
    "Explanation",
    "MatchOptions",
    "MetricsRegistry",
    "MutationBatch",
    "MutationResult",
    "QueryBudget",
    "QueryCycle",
    "QueryService",
    "QuerySession",
    "ResultDelta",
    "RewriteReport",
    "ServerConfig",
    "ServiceClient",
    "Severity",
    "Subscription",
    "TenantConfig",
    "__version__",
    "analyze_program",
    "analyze_rule",
    "contains",
    "errors",
    "evaluate_program",
    "evaluate_rule",
    "explain",
    "global_registry",
    "parse_program",
    "parse_rule",
    "rewrite_rule",
    "rule_bindings",
    "wglog_query",
]


def test_surface_snapshot():
    assert sorted(repro.__all__) == EXPECTED_SURFACE


def test_every_name_resolves():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_acceptance_import_line():
    # The exact import the acceptance criteria names.
    from repro import MatchOptions, QueryBudget, QuerySession, explain

    assert QuerySession and MatchOptions and QueryBudget and explain


def test_facade_names_are_the_implementations():
    from repro.analysis import Diagnostic
    from repro.engine.limits import CancelToken, QueryBudget
    from repro.engine.mutate import MutationBatch
    from repro.engine.options import MatchOptions
    from repro.engine.subscribe import Subscription
    from repro.explain import explain
    from repro.session import ExecOptions
    from repro.wglog.semantics import query
    from repro.xmlgl.evaluator import evaluate_rule

    assert repro.QueryBudget is QueryBudget
    assert repro.CancelToken is CancelToken
    assert repro.MatchOptions is MatchOptions
    assert repro.explain is explain
    assert repro.evaluate_rule is evaluate_rule
    assert repro.wglog_query is query
    assert repro.Diagnostic is Diagnostic
    assert repro.MutationBatch is MutationBatch
    assert repro.Subscription is Subscription
    assert repro.ExecOptions is ExecOptions


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError, match="no attribute"):
        repro.definitely_not_part_of_the_api


def test_dir_lists_lazy_names():
    listing = dir(repro)
    assert "QueryBudget" in listing
    assert "wglog_query" in listing


def test_import_repro_stays_lazy():
    # The facade resolves submodule attributes on first access (PEP 562);
    # a bare `import repro` must not drag in the heavy leaves.
    code = (
        "import sys, repro; "
        "heavy = [m for m in ('repro.analysis', 'repro.wglog.semantics', "
        "'repro.visual') if m in sys.modules]; "
        "print(','.join(heavy) or 'lazy')"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "lazy"
