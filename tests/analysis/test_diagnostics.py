"""The diagnostic model: formatting, ordering, de-duplication."""

import json

from repro.analysis import (
    Diagnostic,
    Severity,
    dedupe,
    has_errors,
    max_severity,
    render_json,
    render_text,
)


def test_severity_ranking():
    assert Severity.ERROR.rank > Severity.WARNING.rank > Severity.INFO.rank


def test_severity_rank_table_is_module_level():
    # ``rank`` must read a table built once at import time, not rebuild a
    # dict per call (sorting large finding lists calls it O(n log n) times).
    from repro.analysis import diagnostics

    table = diagnostics._SEVERITY_RANK
    assert set(table) == {s.value for s in Severity}
    for severity in Severity:
        assert severity.rank == table[severity.value]
    # same object on every access: the property must not copy or rebuild
    assert diagnostics._SEVERITY_RANK is table


def test_format_mentions_code_rule_anchor_and_hint():
    diagnostic = Diagnostic(
        "XGL010", Severity.ERROR, "boom", node="B", rule="q1", hint="fix it"
    )
    line = diagnostic.format()
    assert "XGL010" in line
    assert "error" in line
    assert "q1" in line
    assert "B" in line
    assert "fix it" in line


def test_anchored_sets_rule_once():
    diagnostic = Diagnostic("XGL001", Severity.ERROR, "m").anchored("r1")
    assert diagnostic.rule == "r1"
    # already-anchored findings keep their rule
    assert diagnostic.anchored("r2").rule == "r1"


def test_dedupe_keeps_first_occurrence_order():
    a = Diagnostic("XGS008", Severity.WARNING, "same")
    b = Diagnostic("XGS008", Severity.WARNING, "same")
    c = Diagnostic("XGS001", Severity.WARNING, "other")
    assert dedupe([a, c, b]) == [a, c]


def test_unsatisfiable_flag_does_not_affect_identity():
    a = Diagnostic("XGL010", Severity.ERROR, "m", unsatisfiable=True)
    b = Diagnostic("XGL010", Severity.ERROR, "m", unsatisfiable=False)
    assert a == b
    assert len(dedupe([a, b])) == 1


def test_has_errors_and_max_severity():
    warning = Diagnostic("W", Severity.WARNING, "w")
    error = Diagnostic("E", Severity.ERROR, "e")
    assert not has_errors([warning])
    assert has_errors([warning, error])
    assert max_severity([warning, error]) is Severity.ERROR
    assert max_severity([]) is None


def test_render_text_summary_line():
    text = render_text([
        Diagnostic("E", Severity.ERROR, "e"),
        Diagnostic("W", Severity.WARNING, "w"),
    ])
    assert "# 2 finding(s): 1 error(s), 1 warning(s)" in text


def test_render_json_round_trips():
    payload = json.loads(render_json([
        Diagnostic(
            "XGL010", Severity.ERROR, "m", node="B", hint="h",
            unsatisfiable=True,
        )
    ]))
    assert payload["errors"] == 1
    assert payload["warnings"] == 0
    (finding,) = payload["findings"]
    assert finding["code"] == "XGL010"
    assert finding["severity"] == "error"
    assert finding["node"] == "B"
    assert finding["unsatisfiable"] is True


def test_render_json_of_nothing():
    payload = json.loads(render_json([]))
    assert payload == {"findings": [], "errors": 0, "warnings": 0}
