"""Unit tests for the static query-rewrite layer (repro.analysis.rewrite).

One class per rule family: minimization (merge/prune), condition
simplification, pattern-node constant folding, schema-informed pruning,
the WG-Log subset, canonicalization, the containment oracle, and the
report object itself.  Soundness over randomized inputs lives in
``tests/property/test_rewrite_equivalence.py``; this file pins the exact
diagnostics and counters each rewrite emits.
"""

import pytest

from repro.analysis import Severity
from repro.analysis.rewrite import (
    COUNTERS,
    RewriteReport,
    canonical_graph_text,
    canonical_rule_text,
    contains,
    rewrite_rule,
    rewrite_rulegraph,
)
from repro.ssd import parse_dtd
from repro.wglog.dsl import parse_wglog
from repro.xmlgl.ast import TextPattern
from repro.xmlgl.containment import ContainmentError
from repro.xmlgl.dsl import parse_rule
from repro.xmlgl.schema import dtd_to_schema
from repro.workloads import BIB_DTD


def rewritten(source, schema=None):
    return rewrite_rule(parse_rule(source), schema=schema)


def codes(report):
    return {d.code for d in report.diagnostics}


def node_count(rule):
    return sum(len(g.nodes) for g in rule.queries)


@pytest.fixture
def bib_schema():
    return dtd_to_schema(parse_dtd(BIB_DTD), "bib")[0]


class TestMinimization:
    def test_mutually_subsumed_branches_merge(self):
        rule, report = rewritten(
            "query { book as B { title as T  title as T2 } } "
            "construct { r { collect T } }"
        )
        assert report.counters["merged"] == 1
        assert "XGL101" in codes(report)
        assert node_count(rule) == 2  # B, T survive; T2 merged away

    def test_one_directional_subsumption_prunes(self):
        rule, report = rewritten(
            "query { root report as R { deep para as P  deep * as W } } "
            "construct { r { collect P } }"
        )
        assert report.counters["pruned"] == 1
        assert "XGL100" in codes(report)
        assert set(rule.queries[0].nodes) == {"R", "P"}

    def test_non_deep_branch_not_witnessed_by_deep_one(self):
        # `para as P2` demands a *direct* child; `deep para as P` does
        # not witness that, so nothing may be deleted (Miklau–Suciu gap)
        rule, report = rewritten(
            "query { report as R { deep para as P  para as P2 } } "
            "construct { r { collect P } }"
        )
        assert not report.changed
        assert node_count(rule) == 3

    def test_construct_variables_are_protected(self):
        rule, report = rewritten(
            "query { book as B { title as T  title as T2 } } "
            "construct { r { collect T  collect T2 } }"
        )
        assert not report.changed
        assert node_count(rule) == 3

    def test_condition_variables_are_protected(self):
        rule, report = rewritten(
            "query { book as B { title as T  title as T2 } "
            'where T2 != "x" } '
            "construct { r { collect T } }"
        )
        assert node_count(rule) == 3

    def test_sum_aggregate_gates_branch_pruning(self):
        # sum/avg aggregate once per binding ROW: deleting a redundant
        # branch changes row multiplicities, so pruning must stand down
        source = (
            "query { book as B { price as P  price as P2 } } "
            "construct { r { sum(P) } }"
        )
        rule, report = rewritten(source)
        assert report.counters.get("pruned", 0) == 0
        assert report.counters.get("merged", 0) == 0
        assert node_count(rule) == 3

    def test_count_aggregate_is_distinct_based_and_safe(self):
        rule, report = rewritten(
            "query { book as B { price as P  price as P2 } } "
            "construct { r { count(P) } }"
        )
        assert report.counters["merged"] == 1
        assert node_count(rule) == 2

    def test_negated_branches_never_pruned(self):
        rule, report = rewritten(
            "query { book as B { not cdrom as C  not cdrom as C2 "
            "title as T } } construct { r { collect T } }"
        )
        # two negated constraints look alike but pruning one would weaken
        # nothing only by accident; the rewriter leaves negation alone
        assert {"C", "C2"} <= set(rule.queries[0].nodes)


class TestConditionSimplification:
    def test_tautology_dropped(self):
        rule, report = rewritten(
            "query { book as B { @year as Y } where 1 = 1 and Y > 1990 } "
            "construct { r { copy B } }"
        )
        assert report.counters["dropped"] >= 1
        assert "XGL102" in codes(report)
        assert len(rule.queries[0].conditions) == 1

    def test_weaker_bound_implied_away(self):
        rule, report = rewritten(
            "query { book as B { @year as Y } "
            "where Y > 1990 and Y > 1985 } "
            "construct { r { copy B } }"
        )
        assert "XGL103" in codes(report)
        (condition,) = rule.queries[0].conditions
        assert "1990" in str(condition)
        assert "1985" not in str(condition)

    def test_duplicate_conjunct_dropped(self):
        _, report = rewritten(
            "query { book as B { @year as Y } "
            "where Y = 1990 and Y = 1990 } "
            "construct { r { copy B } }"
        )
        assert "XGL103" in codes(report)

    def test_constant_false_flags_static_false_but_keeps_condition(self):
        rule, report = rewritten(
            "query { book as B where 1 = 2 } construct { r { copy B } }"
        )
        assert report.static_false
        (finding,) = [d for d in report.diagnostics if d.code == "XGL105"]
        assert finding.severity is Severity.WARNING
        assert finding.unsatisfiable
        assert len(rule.queries[0].conditions) == 1

    def test_incomparable_bounds_left_alone(self):
        rule, report = rewritten(
            'query { book as B { @year as Y } '
            'where Y > 1990 and Y > "abc" } '
            "construct { r { copy B } }"
        )
        # number vs string: no comparability proof, no implication
        assert "XGL103" not in codes(report)
        assert len(rule.queries[0].conditions) == 2


class TestConstantFolding:
    def test_regex_implied_by_literal_folds(self):
        rule = parse_rule(
            "query { book as B { title as T { text as TT } } } "
            "construct { r { copy T } }"
        )
        graph = rule.queries[0]
        graph.nodes["TT"] = TextPattern(id="TT", value="abc", regex="a.*")
        folded, report = rewrite_rule(rule)
        assert report.counters["folded"] == 1
        assert "XGL106" in codes(report)
        assert folded.queries[0].nodes["TT"].regex is None
        assert folded.queries[0].nodes["TT"].value == "abc"

    def test_regex_not_matching_literal_untouched(self):
        rule = parse_rule(
            "query { book as B { title as T { text as TT } } } "
            "construct { r { copy T } }"
        )
        rule.queries[0].nodes["TT"] = TextPattern(
            id="TT", value="abc", regex="z.*"
        )
        folded, report = rewrite_rule(rule)
        assert report.counters.get("folded", 0) == 0
        assert folded.queries[0].nodes["TT"].regex == "z.*"


class TestSchemaPruning:
    def test_wildcard_tightened_to_single_admitted_tag(self):
        schema = dtd_to_schema(
            parse_dtd("<!ELEMENT r (a*)><!ELEMENT a (#PCDATA)>"), "r"
        )[0]
        rule, report = rewritten(
            "query { r as R { * as W } } construct { out { copy W } }",
            schema=schema,
        )
        assert report.counters["tightened"] == 1
        assert "XGL110" in codes(report)
        assert rule.queries[0].nodes["W"].tag == "a"

    def test_anchored_wildcard_becomes_schema_root(self, bib_schema):
        rule, report = rewritten(
            "query { root * as R { book as B } } "
            "construct { r { copy B } }",
            schema=bib_schema,
        )
        assert rule.queries[0].nodes["R"].tag == "bib"

    def test_ambiguous_wildcard_untouched(self, bib_schema):
        rule, report = rewritten(
            "query { bib as R { * as W } } construct { r { copy W } }",
            schema=bib_schema,
        )
        # bib admits book|article: two candidates, no tightening
        assert report.counters.get("tightened", 0) == 0
        assert rule.queries[0].nodes["W"].tag is None

    def test_schema_empty_branch_is_static_false(self, bib_schema):
        _, report = rewritten(
            "query { book as B { cdrom as C } } construct { r { copy B } }",
            schema=bib_schema,
        )
        assert report.static_false
        (finding,) = [d for d in report.diagnostics if d.code == "XGL112"]
        assert finding.severity is Severity.WARNING
        assert finding.unsatisfiable
        assert finding.edge == ("B", "C")

    def test_vacuous_negation_removed(self, bib_schema):
        rule, report = rewritten(
            "query { book as B { not cdrom as C  title as T } } "
            "construct { r { copy T } }",
            schema=bib_schema,
        )
        assert "XGL111" in codes(report)
        assert "C" not in rule.queries[0].nodes
        assert not report.static_false

    def test_no_schema_means_no_schema_rewrites(self):
        _, report = rewritten(
            "query { book as B { cdrom as C } } construct { r { copy B } }"
        )
        assert not codes(report) & {"XGL110", "XGL111", "XGL112"}


class TestWGLog:
    def wg(self, source):
        _, rules = parse_wglog(source)
        return rewrite_rulegraph(rules[0])

    def test_duplicate_red_edge_merged(self):
        rule, report = self.wg(
            "rule r { match { b: book  t: title  b -child-> t  "
            "b -child-> t } construct { b -titled-> t } }"
        )
        assert report.counters["merged"] == 1
        assert "WGL100" in codes(report)
        assert len(rule.edges) == 2  # one red survivor + the green edge

    def test_distinct_labels_not_merged(self):
        rule, report = self.wg(
            "rule r { match { b: book  t: title  b -child-> t  "
            "b -cites-> t } }"
        )
        assert report.counters.get("merged", 0) == 0
        assert len(rule.edges) == 2

    def test_condition_simplification_uses_wgl_codes(self):
        _, report = self.wg(
            "rule r { match { d: Doc } where 1 = 1 and d.size > 3 }"
        )
        assert "WGL102" in codes(report)

    def test_constant_false_sets_static_false(self):
        _, report = self.wg("rule r { match { d: Doc } where 1 = 2 }")
        assert report.static_false
        assert "WGL105" in codes(report)

    def test_untouched_rule_returned_identically(self):
        _, rules = parse_wglog(
            "rule r { match { b: book  t: title  b -child-> t } }"
        )
        rewrittenn, report = rewrite_rulegraph(rules[0])
        assert rewrittenn is rules[0]
        assert not report.changed


class TestCanonicalization:
    BASE = (
        "query { book as B { title as T  @year as Y } } "
        "construct { r { collect T } }"
    )
    SHUFFLED = (
        "query { book as BK { @year as YR  title as TI } } "
        "construct { r { collect TI } }"
    )

    def test_invariant_under_branch_order_and_renames(self):
        first = canonical_rule_text(parse_rule(self.BASE))
        second = canonical_rule_text(parse_rule(self.SHUFFLED))
        assert first == second

    def test_distinct_queries_get_distinct_texts(self):
        other = (
            "query { book as B { title as T } } "
            "construct { r { collect T } }"
        )
        assert canonical_rule_text(parse_rule(self.BASE)) != (
            canonical_rule_text(parse_rule(other))
        )

    def test_construct_differences_are_visible(self):
        copied = self.BASE.replace("collect T", "copy T")
        assert canonical_rule_text(parse_rule(self.BASE)) != (
            canonical_rule_text(parse_rule(copied))
        )

    def test_rule_text_is_versioned(self):
        # the version tag keys cache compatibility: bump it and every
        # cached digest changes
        assert canonical_rule_text(parse_rule(self.BASE)).startswith("xglc1")

    def test_graph_text_renders_structure(self):
        graph = parse_rule(self.BASE).queries[0]
        text = canonical_graph_text(graph)
        assert "e[book]" in text and "e[title]" in text


class TestContains:
    def graph(self, source):
        return parse_rule(source + " construct { r { copy R } }").queries[0]

    def test_deep_contains_direct(self):
        deep = self.graph("query { report as R { deep para as P } }")
        direct = self.graph("query { report as R { para as P } }")
        assert contains(deep, direct)

    def test_direct_does_not_contain_deep(self):
        deep = self.graph("query { report as R { deep para as P } }")
        direct = self.graph("query { report as R { para as P } }")
        assert not contains(direct, deep)

    def test_reflexive(self):
        q = self.graph("query { report as R { para as P } }")
        assert contains(q, q)

    def test_negation_is_outside_the_fragment(self):
        q = self.graph("query { report as R { not para as P } }")
        plain = self.graph("query { report as R { para as P } }")
        with pytest.raises(ContainmentError):
            contains(q, plain)


class TestReport:
    def test_empty_report_describes_none(self):
        report = RewriteReport()
        assert not report.changed
        assert report.describe() == "none"

    def test_describe_lists_fired_counters_in_order(self):
        report = RewriteReport()
        report.bump("pruned")
        report.bump("merged", 2)
        assert report.describe() == "merged=2 pruned=1"

    def test_counters_are_the_stable_set(self):
        assert COUNTERS == (
            "merged", "pruned", "dropped", "folded", "tightened", "failed",
        )
        # counters are sparse: a fresh report has fired nothing
        assert RewriteReport().counters == {}

    def test_as_dict_shape(self):
        report = RewriteReport()
        report.record("merged", "XGL101", "m", edge=("A", "B"))
        payload = report.as_dict()
        assert payload["counters"]["merged"] == 1
        assert payload["static_false"] is False
        (finding,) = payload["findings"]
        assert finding["code"] == "XGL101"
        assert finding["edge"] == ["A", "B"]
