"""Table-driven coverage of the WG-Log analysis passes."""

import pytest

from repro.analysis import AnalysisContext, Severity, analyze_program
from repro.engine.conditions import Comparison, Const, ContentOf
from repro.wglog.dsl import parse_wglog
from repro.wglog.schema import SlotDecl, WGSchema


def program(source):
    _, rules = parse_wglog(source)
    return rules


def codes(rules, context=None):
    return {d.code for d in analyze_program(rules, context)}


def diagnostics_for(rules, code, context=None):
    return [d for d in analyze_program(rules, context) if d.code == code]


GOOD = """
rule pairs {
  match { b: book  t: title  b -child-> t }
  construct { b -titled-> t }
}
"""


def test_clean_program_has_no_findings():
    assert analyze_program(program(GOOD)) == []


BAD_SOURCES = [
    ("WGL001", """
     rule unsafe {
       match { x: * }
       construct { d: derived  d -of-> x }
     }
     """),
    ("WGL002", """
     rule floating_negation {
       match { a: book  b: cdrom  c: title  no b -child-> c }
     }
     """),
    ("WGL008", """
     rule typo {
       match { b: book }
       where zz.year > 0
     }
     """),
    ("WGL012", """
     rule empty {
       match { b: book }
       where b.year = 1990 and b.year = 1995
     }
     """),
]


@pytest.mark.parametrize(
    "code,source", BAD_SOURCES, ids=[row[0] for row in BAD_SOURCES]
)
def test_bad_rule_reports_code(code, source):
    found = diagnostics_for(program(source), code)
    assert found, f"{code} not reported"
    assert all(d.severity is Severity.ERROR for d in found)


def test_wgl001_names_the_referencing_construct():
    (finding,) = diagnostics_for(program(BAD_SOURCES[0][1]), "WGL001")
    assert finding.node == "x"
    assert finding.rule == "unsafe"
    assert finding.unsatisfiable is False


def test_wgl002_is_the_static_face_of_the_matcher_error():
    # The matcher raises QueryStructureError for the same rule at run time;
    # the lint reports it without needing an instance.
    from repro.errors import QueryStructureError
    from repro.wglog.data import InstanceGraph
    from repro.wglog.matcher import embeddings

    (rule,) = program(BAD_SOURCES[1][1])
    with pytest.raises(QueryStructureError):
        embeddings(rule, InstanceGraph())


def test_wgl003_negation_cycle_within_one_rule():
    rules = program("""
    rule self_negating {
      match { a: thing  b: thing  no a -p-> b  a -q-> b }
      construct { a -p-> b }
    }
    """)
    found = diagnostics_for(rules, "WGL003")
    assert found and all(d.severity is Severity.ERROR for d in found)


def test_wgl003_negation_cycle_across_rules():
    rules = program("""
    rule first {
      match { a: thing  b: thing  no a -p-> b  a -r-> b }
      construct { a -q-> b }
    }
    rule second {
      match { a: thing  b: thing  a -q-> b }
      construct { a -p-> b }
    }
    """)
    assert diagnostics_for(rules, "WGL003")


def test_stratified_negation_is_clean():
    # p is negated but never derived: one stratum, no finding.
    rules = program("""
    rule fine {
      match { a: thing  b: thing  no a -p-> b  a -r-> b }
      construct { a -q-> b }
    }
    """)
    assert diagnostics_for(rules, "WGL003") == []


def test_wgl004_green_node_without_label():
    from repro.wglog.ast import RuleGraph

    rule = RuleGraph(name="unlabelled_green")
    rule.red("b", "book")
    rule.green("d")
    rule.derive_edge("d", "b", "of")
    found = diagnostics_for([rule], "WGL004")
    assert found and all(d.severity is Severity.ERROR for d in found)


def test_wgl005_no_red_part():
    from repro.wglog.ast import RuleGraph

    rule = RuleGraph(name="empty")
    rule.green("d", "derived")
    assert "WGL005" in codes([rule])


def test_wgl006_collector_aggregating_nothing():
    from repro.wglog.ast import RuleGraph

    rule = RuleGraph(name="lonely")
    rule.red("b", "book")
    rule.green("c", "summary", collector=True)
    assert "WGL006" in codes([rule])


def test_wgl007_slot_copied_from_green_node():
    from repro.wglog.ast import RuleGraph

    rule = RuleGraph(name="copy_from_green")
    rule.red("b", "book")
    rule.green("d", "derived")
    rule.green("e", "extra")
    rule.derive_edge("d", "b", "of")
    rule.slot_assertions.append(
        __import__("repro.wglog.ast", fromlist=["SlotAssertion"]).SlotAssertion(
            "d", "name", from_node="e"
        )
    )
    assert "WGL007" in codes([rule])


def test_wgl012_content_of_entity_is_constant_false():
    rules = program("""
    rule entity_content {
      match { b: book }
      where b = 'Logic'
    }
    """)
    found = diagnostics_for(rules, "WGL012")
    assert found and all(d.unsatisfiable for d in found)


def test_wgl012_slot_conditions_on_wildcard_are_fine():
    rules = program("""
    rule fine {
      match { b: book  t: title  b -child-> t }
      where b.year > 1990 and b.year < 2000
    }
    """)
    assert analyze_program(rules) == []


# --- schema (WGL010/WGL011) -------------------------------------------------

def _schema():
    schema = WGSchema()
    schema.entity("book", SlotDecl("year", "int"))
    schema.entity("title")
    schema.relation("book", "child", "title")
    return schema


def test_wgl010_undeclared_entity():
    rules = program("rule r { match { m: movie } }")
    found = diagnostics_for(
        rules, "WGL010", AnalysisContext(wg_schema=_schema())
    )
    assert found and found[0].node == "m"


def test_wgl011_undeclared_relation():
    rules = program("rule r { match { b: book  t: title  t -child-> b } }")
    found = diagnostics_for(
        rules, "WGL011", AnalysisContext(wg_schema=_schema())
    )
    assert found and found[0].edge == ("t", "b")


def test_schema_pass_silent_without_schema():
    rules = program("rule r { match { m: movie } }")
    assert diagnostics_for(rules, "WGL010") == []
