"""Diagnostics-registry consistency: source ↔ DESIGN.md ↔ JSON renderer.

Diagnostic codes are stable API (DESIGN.md, "Static analysis: diagnostic
codes").  This suite keeps the registry honest as codes are added:

* every code the source can emit appears in exactly one DESIGN.md table
  row (unique, documented);
* no DESIGN.md row documents a code the source can no longer emit
  (no stale docs);
* every emitted code round-trips through ``render_json`` unchanged.
"""

import json
import re
from pathlib import Path

from repro.analysis import Diagnostic, Severity, render_json

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"
DESIGN = REPO / "DESIGN.md"

#: Full codes written literally in source: "XGL010", f"{...}XGL010", ...
_LITERAL = re.compile(r"""["']((?:XGL|WGL|XGS)\d{3})["']""")
#: Codes assembled as f"{prefix}NNN" (analysis.rewrite.simplify).
_PREFIXED = re.compile(r"""\{prefix\}(\d{3})""")
#: Prefix values passed to simplify_conditions at its call sites.
_PREFIX_ARG = re.compile(r"""prefix=["'](XGL|WGL)["']""")
#: A DESIGN.md diagnostics table row: | CODE | ... |
_DESIGN_ROW = re.compile(r"^\| ((?:XGL|WGL|XGS)\d{3}) +\|", re.MULTILINE)


def emitted_codes() -> set[str]:
    codes: set[str] = set()
    suffixes: set[str] = set()
    prefixes: set[str] = set()
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text()
        codes.update(_LITERAL.findall(text))
        suffixes.update(_PREFIXED.findall(text))
        prefixes.update(_PREFIX_ARG.findall(text))
    codes.update(p + s for p in prefixes for s in suffixes)
    return codes


def documented_codes() -> list[str]:
    return _DESIGN_ROW.findall(DESIGN.read_text())


def test_scanner_sees_both_construction_styles():
    codes = emitted_codes()
    # a literal code, a prefix-assembled XML-GL code, its WG-Log mirror
    assert "XGL001" in codes
    assert "XGL103" in codes
    assert "WGL103" in codes
    assert len(codes) >= 40


def test_every_emitted_code_is_documented_once():
    rows = documented_codes()
    dupes = {c for c in rows if rows.count(c) > 1}
    assert not dupes, f"duplicate DESIGN.md rows: {sorted(dupes)}"
    missing = emitted_codes() - set(rows)
    assert not missing, f"codes without a DESIGN.md row: {sorted(missing)}"


def test_no_stale_design_rows():
    stale = set(documented_codes()) - emitted_codes()
    assert not stale, f"DESIGN.md rows no source emits: {sorted(stale)}"


def test_codes_are_well_formed_and_families_disjoint():
    codes = emitted_codes()
    for code in codes:
        assert re.fullmatch(r"(?:XGL|WGL|XGS)\d{3}", code), code
    # one family per number-space owner: no code can be parsed two ways
    assert len(codes) == len({(c[:3], c[3:]) for c in codes})


def test_every_code_round_trips_through_render_json():
    findings = [
        Diagnostic(code, Severity.INFO, f"registry probe for {code}")
        for code in sorted(emitted_codes())
    ]
    payload = json.loads(render_json(findings))
    assert [f["code"] for f in payload["findings"]] == [
        d.code for d in findings
    ]
    assert payload["errors"] == 0
    assert payload["warnings"] == 0
