"""Regression: unbound construct variables raise a typed, located error."""

import pytest

from repro.errors import EvaluationError, ReproError, UnboundConstructVariable
from repro.ssd import parse_document
from repro.xmlgl.dsl import parse_rule
from repro.xmlgl.evaluator import evaluate_rule

DOC = parse_document("<bib><book><title>T</title></book></bib>")


def test_unbound_value_raises_typed_error_with_location():
    rule = parse_rule(
        "query { book as B } "
        "construct { result { entry for B { value NOPE } } }"
    )
    with pytest.raises(UnboundConstructVariable) as excinfo:
        evaluate_rule(rule, DOC)
    error = excinfo.value
    assert error.variable == "NOPE"
    assert error.where is not None
    assert "entry" in error.where
    assert "NOPE" in str(error)


def test_unbound_attribute_variable_names_the_attribute_path():
    rule = parse_rule(
        "query { book as B } "
        "construct { result { entry(id=$MISSING) for B { copy B } } }"
    )
    with pytest.raises(UnboundConstructVariable) as excinfo:
        evaluate_rule(rule, DOC)
    assert excinfo.value.variable == "MISSING"
    assert "@id" in excinfo.value.where


def test_error_is_catchable_as_the_old_types():
    # back-compat: callers catching EvaluationError / ReproError still work
    rule = parse_rule(
        "query { book as B } construct { result { value NOPE } }"
    )
    with pytest.raises(EvaluationError):
        evaluate_rule(rule, DOC)
    with pytest.raises(ReproError):
        evaluate_rule(rule, DOC)


def test_the_lint_flags_the_same_mistake_statically():
    from repro.analysis import analyze_rule

    rule = parse_rule(
        "query { book as B } construct { result { value NOPE } }"
    )
    assert any(d.code == "XGL020" for d in analyze_rule(rule))
