"""Soundness properties of the analyser, over randomized workloads.

Two implications, checked on the same random documents and query graphs
the matcher-equivalence suite uses:

* **no error-level diagnostics ⇒ evaluation does not raise** — every
  run-time crash the engine can produce from a drawn query must be
  predicted by some error finding;
* **an ``unsatisfiable`` finding ⇒ the matcher (pre-flight disabled)
  really returns no bindings** — the proofs the pre-flight trusts are
  sound, so short-circuiting never changes a result.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.analysis import Severity, analyze_rule
from repro.engine.conditions import (
    AttributeOf,
    Comparison,
    Const,
    ContentOf,
    NameOf,
)
from repro.errors import ReproError
from repro.xmlgl.ast import AttributePattern, ElementPattern, TextPattern
from repro.xmlgl.construct import Collect, NewElement
from repro.xmlgl.evaluator import evaluate_rule, rule_bindings
from repro.xmlgl.rule import Rule

from ..property.test_matcher_equivalence import (
    TAGS,
    VALUES,
    random_document,
    random_query,
)

_OPS = ["=", "!=", "<", "<=", ">", ">="]


def _random_conditions(rng, graph):
    """0-2 predicate annotations over (mostly) existing nodes."""
    conditions = []
    node_ids = list(graph.nodes)
    for _ in range(rng.randint(0, 2)):
        target = rng.choice(node_ids + ["missing"])
        node = graph.nodes.get(target)
        roll = rng.random()
        if isinstance(node, ElementPattern) and roll < 0.4:
            operand = (
                NameOf(target) if roll < 0.2 else AttributeOf(target, "k")
            )
        else:
            operand = ContentOf(target)
        constant = Const(rng.choice(VALUES + TAGS + [7]))
        conditions.append(Comparison(rng.choice(_OPS), operand, constant))
    return conditions


def _build_rule(rng):
    graph = random_query(rng)
    for condition in _random_conditions(rng, graph):
        graph.add_condition(condition)
    collected = rng.choice(list(graph.nodes))
    construct = NewElement("result", children=[Collect(collected)])
    return Rule(queries=[graph], construct=construct, name="prop")


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10**9))
def test_no_errors_implies_evaluation_does_not_raise(seed):
    rng = random.Random(seed)
    document = random_document(rng)
    rule = _build_rule(rng)
    findings = analyze_rule(rule)
    if any(d.severity is Severity.ERROR for d in findings):
        return
    try:
        result = evaluate_rule(rule, document)
    except ReproError as error:  # pragma: no cover - the property violation
        raise AssertionError(
            f"lint was clean but evaluation raised {error!r} for:\n"
            f"{rule.queries[0].describe()}"
        )
    assert result.tag == "result"


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10**9))
def test_unsatisfiable_findings_are_sound(seed):
    rng = random.Random(seed)
    document = random_document(rng)
    rule = _build_rule(rng)
    findings = analyze_rule(rule)
    if not any(d.unsatisfiable for d in findings):
        return
    try:
        bindings = rule_bindings(rule, document, preflight=False)
    except ReproError:
        # a different (reported) error fired first; the proof is moot
        assert any(d.severity is Severity.ERROR for d in findings)
        return
    assert len(bindings) == 0, (
        "a query proved unsatisfiable produced bindings:\n"
        + rule.queries[0].describe()
    )
