"""The ``repro lint`` command: exit codes, formats, schema mode."""

import io
import json

import pytest

from repro.cli import main

CLEAN_XGL = """
query { book as B { @year as Y  title as T } where Y >= 1995 }
construct { result { entry for B { value Y  copy T } } }
"""
CONTRADICTORY_XGL = """
query { book as B { @year as Y } } where Y = 1990 and Y = 1995
construct { result { collect B } }
"""
WARNING_ONLY_XGL = """
query { book as B }
construct { result { entry for B sortby NOPE { copy B } } }
"""
UNSAFE_WGL = """
rule unsafe {
  match { x: * }
  construct { d: derived  d -of-> x }
}
"""
CLEAN_WGL = """
schema {
  entity book { year: int }
  entity title
  relation book -child-> title
}
rule pairs { match { b: book  t: title  b -child-> t } }
"""
OFF_SCHEMA_WGL = """
schema {
  entity book { year: int }
  entity title
  relation book -child-> title
}
rule off { match { m: movie } }
"""
DTD = """
<!ELEMENT bib (book*)>
<!ELEMENT book (title)>
<!ATTLIST book year CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
"""
OFF_DTD_XGL = """
query { root bib { chapter as C } }
construct { result { collect C } }
"""


@pytest.fixture
def files(tmp_path):
    paths = {}
    for name, content in (
        ("clean.xgl", CLEAN_XGL),
        ("contradictory.xgl", CONTRADICTORY_XGL),
        ("warning.xgl", WARNING_ONLY_XGL),
        ("unsafe.wgl", UNSAFE_WGL),
        ("clean.wgl", CLEAN_WGL),
        ("off_schema.wgl", OFF_SCHEMA_WGL),
        ("off_dtd.xgl", OFF_DTD_XGL),
        ("schema.dtd", DTD),
    ):
        path = tmp_path / name
        path.write_text(content)
        paths[name] = str(path)
    return paths


def run(argv):
    out = io.StringIO()
    status = main(argv, out=out)
    return status, out.getvalue()


def test_clean_file_exits_zero(files):
    status, output = run(["lint", files["clean.xgl"]])
    assert status == 0
    assert "no findings" in output


def test_contradictory_query_rejected(files):
    status, output = run(["lint", files["contradictory.xgl"]])
    assert status == 1
    assert "XGL010" in output


def test_warnings_do_not_fail_the_lint(files):
    status, output = run(["lint", files["warning.xgl"]])
    assert status == 0
    assert "XGL020" in output
    assert "warning" in output


def test_unsafe_wglog_rule_rejected(files):
    status, output = run(["lint", files["unsafe.wgl"], "--lang", "wglog"])
    assert status == 1
    assert "WGL001" in output


def test_clean_wglog_program(files):
    status, output = run(["lint", files["clean.wgl"], "--lang", "wglog"])
    assert status == 0


def test_wglog_uses_the_files_schema_block(files):
    status, output = run(["lint", files["off_schema.wgl"], "--lang", "wglog"])
    assert status == 1
    assert "WGL010" in output


def test_json_format(files):
    status, output = run(
        ["lint", files["contradictory.xgl"], "--format", "json"]
    )
    assert status == 1
    payload = json.loads(output)
    assert payload["errors"] >= 1
    assert any(f["code"] == "XGL010" for f in payload["findings"])
    assert any(f.get("unsatisfiable") for f in payload["findings"])


def test_dtd_schema_flag(files):
    status, output = run(
        ["lint", files["off_dtd.xgl"], "--schema", files["schema.dtd"]]
    )
    # schema findings are warnings: reported but not fatal
    assert status == 0
    assert "XGS001" in output


def test_missing_file_exits_two(files):
    status, _ = run(["lint", files["clean.xgl"] + ".missing"])
    assert status == 2


def test_syntax_error_exits_two(tmp_path):
    path = tmp_path / "broken.xgl"
    path.write_text("query { book as B ")
    status, _ = run(["lint", str(path)])
    assert status == 2
