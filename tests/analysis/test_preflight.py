"""The evaluator pre-flight: provably-empty queries skip matching."""

from repro.engine.stats import EvalStats
from repro.ssd import parse_document
from repro.wglog import document_to_instance
from repro.wglog.dsl import parse_wglog
from repro.wglog.matcher import embeddings
from repro.xmlgl.dsl import parse_rule
from repro.xmlgl.evaluator import evaluate_rule, rule_bindings

DOC = parse_document(
    '<bib><book year="1990"><title>Old</title></book>'
    '<book year="2000"><title>New</title></book></bib>'
)

EMPTY_QUERY = """
query { book as B { @year as Y } } where Y = 1990 and Y = 1995
construct { result { collect B } }
"""

LIVE_QUERY = """
query { book as B { @year as Y } } where Y = 1990
construct { result { collect B } }
"""


def test_preflight_short_circuits_without_matching():
    stats = EvalStats()
    bindings = rule_bindings(parse_rule(EMPTY_QUERY), DOC, stats=stats)
    assert len(bindings) == 0
    assert stats.preflight_skips == 1
    # the matcher never ran: no candidates were ever tried
    assert stats.candidates_tried == 0
    assert stats.index_lookups == 0


def test_preflight_leaves_satisfiable_queries_alone():
    stats = EvalStats()
    bindings = rule_bindings(parse_rule(LIVE_QUERY), DOC, stats=stats)
    assert len(bindings) == 1
    assert stats.preflight_skips == 0


def test_preflight_can_be_disabled():
    stats = EvalStats()
    bindings = rule_bindings(
        parse_rule(EMPTY_QUERY), DOC, stats=stats, preflight=False
    )
    # same (empty) answer, computed the hard way: the matcher really ran
    assert len(bindings) == 0
    assert stats.preflight_skips == 0
    assert stats.index_lookups > 0


def test_preflight_and_full_evaluation_agree():
    skipped = evaluate_rule(parse_rule(EMPTY_QUERY), DOC)
    checked = rule_bindings(parse_rule(EMPTY_QUERY), DOC, preflight=False)
    assert skipped.tag == "result"
    assert not skipped.children
    assert len(checked) == 0


def test_preflight_skip_is_reported_in_stats_dict():
    stats = EvalStats()
    rule_bindings(parse_rule(EMPTY_QUERY), DOC, stats=stats)
    assert stats.as_dict()["preflight_skips"] == 1


def test_wglog_preflight_short_circuits():
    _, rules = parse_wglog("""
    rule empty {
      match { b: book }
      where b.year = 1990 and b.year = 1995
    }
    """)
    instance, _ = document_to_instance(DOC)
    stats = EvalStats()
    bindings = embeddings(rules[0], instance, stats=stats)
    assert len(bindings) == 0
    assert stats.preflight_skips == 1
    assert stats.candidates_tried == 0


def test_wglog_preflight_agrees_with_evaluation():
    _, rules = parse_wglog("""
    rule empty {
      match { b: book }
      where b.year = 1990 and b.year = 1995
    }
    """)
    instance, _ = document_to_instance(DOC)
    checked = embeddings(rules[0], instance, preflight=False)
    assert len(checked) == 0
