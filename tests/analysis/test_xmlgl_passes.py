"""Table-driven coverage of the XML-GL analysis passes.

One good/bad fixture per diagnostic code: the bad query raises exactly
the code under test (possibly among others), and a minimal well-formed
variant stays clean of it.
"""

import pytest

from repro.analysis import Severity, analyze_rule
from repro.engine.conditions import Comparison, Const, ContentOf
from repro.xmlgl.ast import (
    AttributePattern,
    ContainmentEdge,
    ElementPattern,
    QueryGraph,
    TextPattern,
)
from repro.xmlgl.construct import NewElement
from repro.xmlgl.dsl import parse_rule
from repro.xmlgl.rule import Rule


def codes(rule):
    return {d.code for d in analyze_rule(rule)}


def diagnostics_for(rule, code):
    return [d for d in analyze_rule(rule) if d.code == code]


GOOD = """
query { book as B { @year as Y  title as T } where Y >= 1995 }
construct { result { entry for B { value Y  copy T } } }
"""


def test_clean_query_has_no_findings():
    assert analyze_rule(parse_rule(GOOD)) == []


# --- structure (XGL001-XGL008, XGL013) -------------------------------------

BAD_SOURCES = [
    # (code, severity, DSL source)
    ("XGL006", Severity.ERROR,
     "query { book as B } where ZZZ = 3 "
     "construct { result { copy B } }"),
    ("XGL007", Severity.ERROR,
     "query { book as B { text as T } } where name(T) = 'x' "
     "construct { result { copy B } }"),
    ("XGL008", Severity.ERROR,
     "query { book as B { text as T } } where T.lang = 'en' "
     "construct { result { copy B } }"),
    ("XGL013", Severity.ERROR,
     "query { book as B { not publisher as P } } where P = 'x' "
     "construct { result { copy B } }"),
    ("XGL010", Severity.ERROR,
     "query { book as B { @year as Y } } where Y = 1990 and Y = 1995 "
     "construct { result { copy B } }"),
    ("XGL011", Severity.ERROR,
     "query { book as B } where 1 = 2 "
     "construct { result { copy B } }"),
    ("XGL020", Severity.ERROR,
     "query { book as B } construct { result { value NOPE } }"),
    ("XGL022", Severity.WARNING,
     "query { book as B } construct { result { group B { text 'hi' } } }"),
    ("XGL023", Severity.ERROR,
     "query { book as B } construct { result for B { copy B } }"),
    ("XGL024", Severity.ERROR,
     "query { book as B { not publisher as P } } "
     "construct { result { value P } }"),
]


@pytest.mark.parametrize(
    "code,severity,source", BAD_SOURCES, ids=[row[0] for row in BAD_SOURCES]
)
def test_bad_query_reports_code(code, severity, source):
    found = diagnostics_for(parse_rule(source), code)
    assert found, f"{code} not reported"
    assert all(d.severity is severity for d in found)


def test_xgl001_no_element_box():
    graph = QueryGraph()
    graph.add_node(TextPattern("T"))
    rule = Rule(queries=[graph], construct=NewElement("r"))
    assert "XGL001" in codes(rule)


def test_xgl002_dangling_circle():
    graph = QueryGraph()
    graph.add_node(ElementPattern("B", "book"))
    graph.add_node(AttributePattern("A", "year"))
    rule = Rule(queries=[graph], construct=NewElement("r"))
    assert "XGL002" in codes(rule)


def test_xgl003_containment_cycle():
    graph = QueryGraph()
    graph.add_node(ElementPattern("A", "a"))
    graph.add_node(ElementPattern("B", "b"))
    graph.edges.append(ContainmentEdge("A", "B"))
    graph.edges.append(ContainmentEdge("B", "A"))
    rule = Rule(queries=[graph], construct=NewElement("r"))
    assert "XGL003" in codes(rule)


def test_xgl004_negated_subtree_shared():
    graph = QueryGraph()
    graph.add_node(ElementPattern("A", "a"))
    graph.add_node(ElementPattern("B", "b"))
    graph.add_node(ElementPattern("N", "n"))
    graph.edges.append(ContainmentEdge("A", "N", negated=True))
    graph.edges.append(ContainmentEdge("B", "N"))
    rule = Rule(queries=[graph], construct=NewElement("r"))
    assert "XGL004" in codes(rule)


def test_xgl005_arc_duplicated_into_or_group():
    graph = QueryGraph()
    graph.add_node(ElementPattern("A", "a"))
    graph.add_node(ElementPattern("B", "b"))
    graph.add_edge(ContainmentEdge("A", "B"))
    from repro.xmlgl.ast import OrGroup

    graph.add_or_group(OrGroup(alternatives=[[ContainmentEdge("A", "B")]]))
    rule = Rule(queries=[graph], construct=NewElement("r"))
    assert "XGL005" in codes(rule)


# --- satisfiability (XGL009-XGL012) ----------------------------------------

def test_xgl009_two_anchored_roots_with_different_tags():
    graph = QueryGraph()
    graph.add_node(ElementPattern("A", "bib", anchored=True))
    graph.add_node(ElementPattern("B", "library", anchored=True))
    rule = Rule(queries=[graph], construct=NewElement("r"))
    found = diagnostics_for(rule, "XGL009")
    assert found and all(d.unsatisfiable for d in found)


def test_xgl009_anchored_box_below_another():
    rule = parse_rule(
        "query { bib { root book as B } } construct { result { copy B } }"
    )
    found = diagnostics_for(rule, "XGL009")
    assert found and all(d.unsatisfiable for d in found)


def test_xgl010_literal_vs_predicate():
    rule = parse_rule(
        "query { book as B { title as T { text = 'Web' as X } } } "
        "where X = 'Logic' "
        "construct { result { copy B } }"
    )
    found = diagnostics_for(rule, "XGL010")
    assert found and all(d.unsatisfiable for d in found)


def test_xgl010_empty_numeric_range():
    rule = parse_rule(
        "query { book as B { @year as Y } } where Y > 2000 and Y < 1990 "
        "construct { result { copy B } }"
    )
    assert diagnostics_for(rule, "XGL010")


def test_xgl010_aliasing_attribute_circle_and_dotted_access():
    # @year as Y pins the value through the circle; B.year constrains the
    # same attribute through the dotted view — the two must meet.
    rule = parse_rule(
        "query { book as B { @year = '1990' as Y } } where B.year = 1995 "
        "construct { result { copy B } }"
    )
    assert diagnostics_for(rule, "XGL010")


def test_xgl010_literal_failing_its_own_regex():
    rule = parse_rule(
        "query { book as B { title as T { text = 'Logic' as X } } } "
        "where X ~ /Web.*/ "
        "construct { result { copy B } }"
    )
    assert diagnostics_for(rule, "XGL010")


def test_xgl011_constant_false_condition():
    found = diagnostics_for(
        parse_rule(
            "query { book as B } where 1 = 2 construct { result { copy B } }"
        ),
        "XGL011",
    )
    assert found and all(d.unsatisfiable for d in found)


def test_satisfiable_range_is_not_flagged():
    rule = parse_rule(
        "query { book as B { @year as Y } } where Y >= 1990 and Y <= 2000 "
        "construct { result { copy B } }"
    )
    assert codes(rule) == set()


def test_or_conditions_are_not_interpreted():
    # = 'a' or = 'b' is satisfiable; the conservative pass must stay silent.
    rule = parse_rule(
        "query { book as B { @year as Y } } "
        "where Y = 1990 or Y = 1995 "
        "construct { result { copy B } }"
    )
    assert diagnostics_for(rule, "XGL010") == []


# --- construct (XGL020-XGL024) ---------------------------------------------

def test_xgl020_sortby_is_warning_only():
    rule = parse_rule(
        "query { book as B } "
        "construct { result { entry for B sortby NOPE { copy B } } }"
    )
    found = diagnostics_for(rule, "XGL020")
    assert found and all(d.severity is Severity.WARNING for d in found)


def test_xgl021_empty_group():
    rule = Rule(
        queries=[_single_box()],
        construct=NewElement("r", children=[_group([])]),
    )
    found = diagnostics_for(rule, "XGL021")
    assert found and all(d.severity is Severity.WARNING for d in found)


def test_xgl024_collect_of_negated_node_is_warning():
    rule = parse_rule(
        "query { book as B { not publisher as P } } "
        "construct { result { collect P } }"
    )
    found = diagnostics_for(rule, "XGL024")
    assert found and all(d.severity is Severity.WARNING for d in found)


def _single_box():
    graph = QueryGraph()
    graph.add_node(ElementPattern("B", "book"))
    return graph


def _group(children):
    from repro.xmlgl.construct import GroupBy

    return GroupBy(group_on=["B"], children=children)


# --- ordering and anchors ---------------------------------------------------

def test_findings_sorted_most_severe_first():
    rule = parse_rule(
        "query { book as B } where 1 = 2 "
        "construct { result { entry for B sortby NOPE { copy B } } }"
    )
    findings = analyze_rule(rule)
    ranks = [d.severity.rank for d in findings]
    assert ranks == sorted(ranks, reverse=True)


def test_rule_name_is_attached():
    graph = QueryGraph()
    graph.add_node(ElementPattern("B", "book"))
    graph.add_condition(Comparison("=", ContentOf("ZZ"), Const(1)))
    rule = Rule(queries=[graph], construct=NewElement("r"), name="my-rule")
    assert all(d.rule == "my-rule" for d in analyze_rule(rule))
