"""QuerySession.analyze(): static diagnostics inside the refinement loop."""

import pytest

from repro.errors import ReproError
from repro.session import QuerySession
from repro.ssd import parse_document

DOC = parse_document(
    '<bib><book year="1990"><title>Old</title></book></bib>'
)


def test_analyze_a_query_without_running_it():
    session = QuerySession(DOC)
    findings = session.analyze(
        "query { book as B { @year as Y } } where Y = 1 and Y = 2 "
        "construct { result { collect B } }"
    )
    assert any(d.code == "XGL010" for d in findings)
    assert len(session) == 0  # nothing was executed


def test_analyze_defaults_to_the_current_cycle():
    session = QuerySession(DOC)
    session.run(
        "query { book as B { @year as Y } } where Y = 1 and Y = 2 "
        "construct { result { collect B } }"
    )
    # the refinement returned nothing; analyze() explains why
    findings = session.analyze()
    assert any(d.unsatisfiable for d in findings)


def test_analyze_with_no_cycles_raises():
    session = QuerySession(DOC)
    with pytest.raises(ReproError):
        session.analyze()


def test_clean_query_analyzes_clean():
    session = QuerySession(DOC)
    assert session.analyze(
        "query { book as B } construct { result { collect B } }"
    ) == []
