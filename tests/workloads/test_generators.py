"""Unit tests for the workload generators."""

import pytest

from repro.ssd import IdentityIndex, parse_dtd, validate
from repro.workloads import (
    BIB_DTD,
    Rng,
    bibliography,
    museum_graph,
    museum_schema,
    nested_sections,
    site_graph,
    site_schema,
)


class TestRng:
    def test_deterministic(self):
        a, b = Rng(7), Rng(7)
        assert [a.integer(0, 100) for _ in range(10)] == [
            b.integer(0, 100) for _ in range(10)
        ]
        assert Rng(7).words(3) == Rng(7).words(3)

    def test_different_seeds_differ(self):
        assert [Rng(1).integer(0, 10**9)] != [Rng(2).integer(0, 10**9)]

    def test_ranges(self):
        rng = Rng(0)
        assert all(0 <= rng.integer(0, 5) <= 5 for _ in range(50))
        assert all(1985 <= int(rng.year()) <= 2000 for _ in range(50))
        assert all(5 <= float(rng.price()) <= 150 for _ in range(50))

    def test_sample_caps(self):
        assert len(Rng(0).sample([1, 2], 5)) == 2


class TestBibliography:
    def test_size(self):
        doc = bibliography(25, seed=1)
        entries = doc.root.child_elements()
        assert len(entries) == 25

    def test_deterministic(self):
        from repro.ssd import serialize

        assert serialize(bibliography(10, seed=5)) == serialize(
            bibliography(10, seed=5)
        )

    def test_valid_against_dtd(self):
        dtd = parse_dtd(BIB_DTD)
        for seed in range(3):
            doc = bibliography(40, seed=seed)
            assert validate(doc, dtd) == [], seed

    def test_citations_resolve(self):
        doc = bibliography(60, seed=2)
        index = IdentityIndex(doc, idref_attributes={"cites"})
        assert index.dangling_refs == []
        assert len(index.edges()) > 0

    def test_structure_mix(self):
        doc = bibliography(100, seed=3)
        books = doc.root.find_all("book")
        articles = doc.root.find_all("article")
        assert len(books) > len(articles) > 0
        assert all(b.find("price") is not None for b in books)
        assert all(a.find("price") is None for a in articles)


class TestNestedSections:
    def test_depth(self):
        doc = nested_sections(depth=4, fanout=2, seed=0)
        levels = {int(s.get("level")) for s in doc.iter("section")}
        assert max(levels) == 4

    def test_leaf_count(self):
        doc = nested_sections(depth=3, fanout=2, seed=0)
        paras = list(doc.iter("para"))
        assert len(paras) == 4  # fanout**(depth-1)

    def test_headings_everywhere(self):
        doc = nested_sections(depth=3, seed=0)
        for section in doc.iter("section"):
            assert section.find("heading") is not None


class TestSiteGraph:
    def test_conforms_to_schema(self):
        schema = site_schema()
        for seed in range(3):
            assert schema.conform(site_graph(30, seed=seed)) == []

    def test_counts(self):
        instance = site_graph(50, seed=1)
        assert len(instance.entities("Page")) == 50
        assert len(instance.entities("Index")) == 5

    def test_every_page_indexed(self):
        instance = site_graph(30, seed=2)
        for page in instance.entities("Page"):
            incoming = [
                e for e in instance.graph.in_edges(page) if e.label == "index"
            ]
            assert incoming, page

    def test_deterministic(self):
        assert site_graph(20, seed=9).describe() == site_graph(20, seed=9).describe()


class TestMuseumGraph:
    def test_conforms_to_schema(self):
        schema = museum_schema()
        for seed in range(3):
            assert schema.conform(museum_graph(40, seed=seed)) == []

    def test_every_work_connected(self):
        instance = museum_graph(40, seed=1)
        for work in instance.entities("Work"):
            assert instance.relationships(work, "by"), work
            exhibited = [
                e for e in instance.graph.in_edges(work) if e.label == "exhibits"
            ]
            assert exhibited, work

    def test_scaling(self):
        small = museum_graph(16, seed=0)
        large = museum_graph(160, seed=0)
        assert large.entity_count() > small.entity_count()
