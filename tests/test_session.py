"""Tests for the interactive query session (BBQ-style cycles)."""

import pytest

from repro.errors import ReproError
from repro.session import QuerySession
from repro.ssd import parse_document
from repro.xmlgl import QueryBuilder, Rule, collect, elem

DOC = parse_document(
    '<bib><book year="1999"><title>A</title></book>'
    '<book year="1990"><title>B</title></book></bib>'
)

ALL = "query { book as B } construct { all { collect B } }"
RECENT = (
    "query { book as B { @year as Y } where Y >= 1995 }"
    " construct { recent { collect B } }"
)
COUNT = "query { book as B } construct { n { count(B) } }"


class TestCycles:
    def test_run_returns_result(self):
        session = QuerySession(DOC)
        result = session.run(ALL)
        assert len(result.root.find_all("book")) == 2

    def test_refinement_sequence(self):
        session = QuerySession(DOC)
        session.run(ALL)
        result = session.run(RECENT)
        assert len(result.root.find_all("book")) == 1
        assert len(session) == 2
        assert session.current().index == 1

    def test_rule_objects_accepted(self):
        q = QueryBuilder()
        q.box("book", id="B")
        rule = Rule([q.graph()], elem("r", collect("B")))
        session = QuerySession(DOC)
        session.run(rule)
        assert session.current().source_text is None

    def test_stats_recorded(self):
        session = QuerySession(DOC)
        session.run(ALL)
        assert session.current().stats.bindings_produced == 2
        assert session.current().seconds >= 0

    def test_empty_session_has_no_current(self):
        with pytest.raises(ReproError):
            QuerySession(DOC).current()


class TestNavigation:
    def make(self):
        session = QuerySession(DOC)
        session.run(ALL)
        session.run(RECENT)
        session.run(COUNT)
        return session

    def test_back_and_forward(self):
        session = self.make()
        assert session.back().index == 1
        assert session.back().index == 0
        assert session.back() is None
        assert session.forward().index == 1
        assert session.forward().index == 2
        assert session.forward() is None

    def test_run_truncates_forward_tail(self):
        session = self.make()
        session.back()
        session.back()  # at cycle 0
        session.run(RECENT)
        assert len(session) == 2
        assert session.current().index == 1
        assert session.forward() is None

    def test_history_keeps_forward_tail_until_truncated(self):
        session = self.make()
        session.back()
        assert len(session.history()) == 3

    def test_summary_marks_current(self):
        session = self.make()
        session.back()
        summary = session.summary()
        assert summary.count("->") == 1
        assert "cycle 1" in summary

    def test_index_cache_shared_across_cycles(self):
        from repro.engine.cache import DocumentIndexCache

        cache = DocumentIndexCache()
        session = QuerySession(DOC, indexes=cache)
        session.run(ALL)
        index = cache.peek(DOC)
        assert index is not None
        session.run(RECENT)
        assert cache.peek(DOC) is index  # reused, not rebuilt
        assert cache.misses == 1 and cache.hits >= 1


class TestMultiSourceSession:
    def test_named_sources(self):
        other = parse_document("<bib><article><title>X</title></article></bib>")
        session = QuerySession({"books": DOC, "arts": other})
        result = session.run(
            "query books { book as B } construct { r { count(B) } }"
        )
        assert result.root.text_content() == "2"


class TestRunBatch:
    QUERIES = [ALL, RECENT, COUNT]

    def test_batch_matches_serial_runs(self):
        session = QuerySession(DOC)
        serial = [session.run(q) for q in self.QUERIES]
        batch = QuerySession(DOC).run_batch(self.QUERIES)
        assert [r.index for r in batch] == [0, 1, 2]
        for expected, result in zip(serial, batch):
            assert result.ok
            from repro.ssd import serialize

            assert serialize(result.result) == serialize(expected)

    def test_batch_does_not_enter_history(self):
        session = QuerySession(DOC)
        session.run_batch(self.QUERIES)
        assert len(session) == 0
        with pytest.raises(ReproError):
            session.current()

    def test_per_query_stats_and_timing(self):
        results = QuerySession(DOC).run_batch([ALL, COUNT])
        assert results[0].stats is not results[1].stats
        assert results[0].stats.bindings_produced == 2
        assert all(r.seconds >= 0 for r in results)
        assert results[0].source_text == ALL

    def test_parse_errors_raise_before_any_evaluation(self):
        session = QuerySession(DOC)
        with pytest.raises(ReproError):
            session.run_batch([ALL, "query { oops"])

    def test_evaluation_errors_captured_per_query(self):
        # an undeclared source name fails at evaluation time, not parse time
        bad = "query nosuch { book as B } construct { r { count(B) } }"
        results = QuerySession({"books": DOC}).run_batch(
            ["query books { book as B } construct { r { count(B) } }", bad]
        )
        assert results[0].ok
        assert not results[1].ok
        assert isinstance(results[1].error, ReproError)
        assert results[1].result is None

    def test_empty_batch(self):
        assert QuerySession(DOC).run_batch([]) == []

    def test_indexes_prewarmed_once_and_shared(self):
        from repro.engine.cache import DocumentIndexCache

        cache = DocumentIndexCache()
        session = QuerySession(DOC, indexes=cache)
        results = session.run_batch(self.QUERIES, max_workers=3)
        assert all(r.ok for r in results)
        assert cache.misses == 1  # built once on the calling thread
        assert cache.hits >= len(self.QUERIES)

    def test_rule_objects_in_batch(self):
        q = QueryBuilder()
        q.box("book", id="B")
        rule = Rule([q.graph()], elem("r", collect("B")))
        results = QuerySession(DOC).run_batch([rule])
        assert results[0].ok and results[0].source_text is None


class TestObservability:
    def test_run_untraced_by_default(self):
        session = QuerySession(DOC)
        session.run(ALL)
        assert session.current().trace is None
        assert session.current().stats.trace is None

    def test_run_trace_records_span_tree(self):
        from repro.engine.plan_cache import PlanCache

        session = QuerySession(DOC, plans=PlanCache())
        session.run(ALL, trace=True)
        trace = session.current().trace
        assert trace is not None
        # cold run: string queries record parsing and plan compilation
        for required in (
            "parse",
            "plan.cache.compile",
            "preflight",
            "index.lookup",
            "match",
            "construct",
        ):
            assert trace.find(required), required

    def test_options_trace_flag_is_the_default(self):
        from repro.xmlgl.matcher import MatchOptions

        session = QuerySession(DOC, options=MatchOptions(trace=True))
        session.run(ALL)
        assert session.current().trace is not None
        session.run(ALL, trace=False)  # per-run override wins
        assert session.current().trace is None

    def test_rule_objects_skip_parse_span(self):
        q = QueryBuilder()
        q.box("book", id="B")
        rule = Rule([q.graph()], elem("r", collect("B")))
        session = QuerySession(DOC)
        session.run(rule, trace=True)
        assert not session.current().trace.find("parse")

    def test_batch_rows_get_private_traces(self):
        results = QuerySession(DOC).run_batch([ALL, COUNT], trace=True)
        assert all(r.trace is not None for r in results)
        assert results[0].trace is not results[1].trace
        assert results[0].trace.find("match")

    def test_batch_untraced_by_default(self):
        results = QuerySession(DOC).run_batch([ALL])
        assert results[0].trace is None

    def test_explain_current_cycle(self):
        session = QuerySession(DOC)
        session.run(RECENT)
        report = session.explain()
        assert report.graphs[0].fragments
        assert not report.synthetic_source  # session sources, not synthetic
        assert len(session) == 1  # explain does not enter history

    def test_explain_explicit_query(self):
        report = QuerySession(DOC).explain(ALL)
        assert report.engine in {"adaptive", "pipeline", "backtracking", "naive"}
        assert report.construct is not None


class TestSessionMetrics:
    def test_private_registry_by_default(self):
        a, b = QuerySession(DOC), QuerySession(DOC)
        a.run(ALL)
        assert a.metrics().queries == 1
        assert b.metrics().queries == 0
        assert a.metrics() is not b.metrics()

    def test_injected_registry_is_used(self):
        from repro.engine.metrics import MetricsRegistry

        registry = MetricsRegistry()
        session = QuerySession(DOC, metrics=registry)
        session.run(ALL)
        assert session.metrics() is registry
        assert registry.queries == 1

    def test_run_folds_stats_and_latency(self):
        session = QuerySession(DOC)
        session.run(ALL)
        session.run(RECENT)
        snap = session.metrics().snapshot()
        assert snap["queries"] == 2
        expected = sum(c.stats.bindings_produced for c in session.history())
        assert snap["totals"]["bindings_produced"] == expected
        assert snap["latency"]["samples"] == 2

    def test_batch_errors_counted(self):
        bad = "query nosuch { book as B } construct { r { count(B) } }"
        session = QuerySession({"books": DOC})
        session.run_batch(
            ["query books { book as B } construct { r { count(B) } }", bad]
        )
        snap = session.metrics().snapshot()
        assert snap["queries"] == 2 and snap["errors"] == 1

    def test_concurrent_batch_totals_equal_per_query_sum(self):
        # the registry is recorded into from worker threads; its totals
        # must equal the sum of every row's private EvalStats exactly
        from repro.engine.stats import EvalStats

        queries = [ALL, RECENT, COUNT] * 8
        session = QuerySession(DOC)
        results = session.run_batch(queries, max_workers=6)
        assert all(r.ok for r in results)
        summed = EvalStats()
        for row in results:
            summed = summed + row.stats
        totals = session.metrics().totals()
        for name, value in summed.as_dict().items():
            if name == "seconds":
                continue  # registry latency uses caller-measured wall time
            assert totals.get(name, 0) == value, name
        assert session.metrics().queries == len(queries)


class TestErrorPathMetrics:
    """Failed runs must fold into the registry exactly like batch rows."""

    def make_budget(self):
        from repro.engine.limits import QueryBudget

        return QueryBudget(max_work=1)

    def test_budget_tripped_run_matches_batch_row_totals(self):
        from repro.errors import BudgetExceeded

        direct = QuerySession(DOC)
        with pytest.raises(BudgetExceeded):
            direct.run(ALL, budget=self.make_budget())
        batch = QuerySession(DOC)
        rows = batch.run_batch([ALL], budget=self.make_budget())
        assert rows[0].error is not None
        a, b = direct.metrics().snapshot(), batch.metrics().snapshot()
        assert a["queries"] == b["queries"] == 1
        assert a["errors"] == b["errors"] == 1
        assert (
            a["governance"]["budget_exceeded"]
            == b["governance"]["budget_exceeded"]
            == 1
        )

    def test_evaluation_error_recorded_with_error_flag(self):
        bad = "query nosuch { book as B } construct { r { count(B) } }"
        session = QuerySession({"books": DOC})
        with pytest.raises(ReproError):
            session.run(bad)
        snap = session.metrics().snapshot()
        assert snap["queries"] == 1 and snap["errors"] == 1

    def test_parse_error_recorded_with_error_flag(self):
        session = QuerySession(DOC)
        with pytest.raises(ReproError):
            session.run("query { oops")
        snap = session.metrics().snapshot()
        assert snap["queries"] == 1 and snap["errors"] == 1

    def test_successful_run_stays_error_free(self):
        session = QuerySession(DOC)
        session.run(ALL)
        snap = session.metrics().snapshot()
        assert snap["queries"] == 1 and snap["errors"] == 0

    def test_execute_captures_error_and_records(self):
        session = QuerySession(DOC)
        row = session.execute(ALL, budget=self.make_budget())
        assert row.error is not None and row.result is None
        assert len(session) == 0  # never enters the cycle history
        snap = session.metrics().snapshot()
        assert snap["queries"] == 1 and snap["errors"] == 1


class TestExplicitNoneOverrides:
    """Explicit ``None`` disables a session default; omitted defers to it."""

    def budgeted_options(self):
        from repro.engine.limits import QueryBudget
        from repro.xmlgl.matcher import MatchOptions

        return MatchOptions(budget=QueryBudget(max_work=1))

    def test_omitted_budget_uses_session_default(self):
        from repro.errors import BudgetExceeded

        session = QuerySession(DOC, options=self.budgeted_options())
        with pytest.raises(BudgetExceeded):
            session.run(ALL)

    def test_explicit_none_budget_disables_session_default(self):
        session = QuerySession(DOC, options=self.budgeted_options())
        result = session.run(ALL, budget=None)
        assert len(result.root.find_all("book")) == 2

    def test_explicit_budget_overrides_session_default(self):
        from repro.engine.limits import QueryBudget
        from repro.errors import BudgetExceeded

        session = QuerySession(DOC)  # no session budget at all
        with pytest.raises(BudgetExceeded):
            session.run(ALL, budget=QueryBudget(max_work=1))

    def test_explicit_none_trace_disables_session_default(self):
        from repro.xmlgl.matcher import MatchOptions

        session = QuerySession(DOC, options=MatchOptions(trace=True))
        session.run(ALL, trace=None)
        assert session.current().trace is None
        assert session.current().stats.trace is None

    def test_batch_explicit_none_budget_disables_session_default(self):
        session = QuerySession(DOC, options=self.budgeted_options())
        tripped = session.run_batch([ALL])
        assert tripped[0].error is not None
        unbudgeted = session.run_batch([ALL], budget=None)
        assert unbudgeted[0].ok

    def test_batch_explicit_none_trace_disables_session_default(self):
        from repro.xmlgl.matcher import MatchOptions

        session = QuerySession(DOC, options=MatchOptions(trace=True))
        assert session.run_batch([ALL])[0].trace is not None
        assert session.run_batch([ALL], trace=None)[0].trace is None


class TestProcessOutcomeAlignment:
    def test_shuffled_outcomes_realign_by_position(self, monkeypatch):
        import repro.engine.shard as shard_mod

        real = shard_mod.ShardedExecutor.run_batch

        def shuffled(self, *args, **kwargs):
            return list(reversed(real(self, *args, **kwargs)))

        monkeypatch.setattr(shard_mod.ShardedExecutor, "run_batch", shuffled)
        bad = "query nosuch { book as B } construct { r { count(B) } }"
        rows = QuerySession(DOC).run_batch(
            [ALL, RECENT, bad], executor="process", max_workers=2
        )
        assert [row.index for row in rows] == [0, 1, 2]
        assert rows[0].source_text == ALL
        assert len(rows[0].result.root.find_all("book")) == 2
        assert rows[1].source_text == RECENT
        assert len(rows[1].result.root.find_all("book")) == 1
        # the error lands on the row that actually failed
        assert rows[0].ok and rows[1].ok and not rows[2].ok
        assert rows[2].source_text == bad

    def test_misaligned_positions_are_rejected(self, monkeypatch):
        import repro.engine.shard as shard_mod

        real = shard_mod.ShardedExecutor.run_batch

        def dropping(self, *args, **kwargs):
            return real(self, *args, **kwargs)[1:]

        monkeypatch.setattr(shard_mod.ShardedExecutor, "run_batch", dropping)
        with pytest.raises(ReproError, match="misaligned"):
            QuerySession(DOC).run_batch([ALL, RECENT], executor="process")


class TestExecOptions:
    """The consolidated ExecOptions contract and its deprecated shims."""

    def test_defaults_always_concrete(self):
        from repro.session import ExecOptions

        session = QuerySession(DOC)
        assert session.defaults == ExecOptions()
        custom = ExecOptions(engine="pipeline", columnar=False)
        assert QuerySession(DOC, options=custom).defaults is custom

    def test_unknown_engine_rejected_at_construction(self):
        from repro.session import ExecOptions

        with pytest.raises(ValueError, match="unknown engine"):
            ExecOptions(engine="quantum")

    def test_per_call_bundle_replaces_defaults_wholesale(self):
        from repro.session import ExecOptions

        session = QuerySession(DOC, options=ExecOptions(trace=True))
        session.run(ALL, options=ExecOptions())  # trace not inherited
        assert session.current().trace is None

    def test_derive_one_field_with_replace(self):
        from dataclasses import replace

        session = QuerySession(DOC, options=None)
        session.run(ALL, options=replace(session.defaults, trace=True))
        assert session.current().trace is not None

    def test_bundle_budget_governs_the_run(self):
        from repro.engine.limits import QueryBudget
        from repro.errors import BudgetExceeded
        from repro.session import ExecOptions

        session = QuerySession(DOC)
        with pytest.raises(BudgetExceeded):
            session.run(
                ALL, options=ExecOptions(budget=QueryBudget(max_work=1))
            )

    def test_match_options_round_trip(self):
        from repro.session import ExecOptions
        from repro.xmlgl.matcher import MatchOptions

        bundle = ExecOptions(engine="backtracking", rewrite=False, trace=True)
        lifted = ExecOptions.from_match_options(bundle.match_options())
        assert lifted == bundle
        assert isinstance(bundle.match_options(), MatchOptions)

    def test_bundle_is_frozen(self):
        from repro.session import ExecOptions

        with pytest.raises(Exception):
            ExecOptions().trace = True

    def test_match_options_per_call_warns(self):
        from repro.xmlgl.matcher import MatchOptions

        session = QuerySession(DOC)
        with pytest.warns(DeprecationWarning, match="ExecOptions"):
            session.run(ALL, options=MatchOptions())

    def test_trace_keyword_warns_but_works(self):
        session = QuerySession(DOC)
        with pytest.warns(DeprecationWarning, match="trace="):
            session.run(ALL, trace=True)
        assert session.current().trace is not None

    def test_budget_keyword_warns_but_works(self):
        from repro.engine.limits import QueryBudget
        from repro.errors import BudgetExceeded

        session = QuerySession(DOC)
        with pytest.warns(DeprecationWarning, match="budget="):
            with pytest.raises(BudgetExceeded):
                session.run(ALL, budget=QueryBudget(max_work=1))

    def test_execute_and_run_batch_take_the_bundle(self):
        from repro.session import ExecOptions

        session = QuerySession(DOC)
        bundle = ExecOptions(trace=True)
        assert session.execute(ALL, options=bundle).trace is not None
        rows = session.run_batch([ALL, COUNT], options=bundle)
        assert all(row.trace is not None for row in rows)

    def test_session_constructor_lifts_match_options_silently(self):
        import warnings as warnings_mod

        from repro.session import ExecOptions
        from repro.xmlgl.matcher import MatchOptions

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error", DeprecationWarning)
            session = QuerySession(DOC, options=MatchOptions(engine="pipeline"))
        assert isinstance(session.defaults, ExecOptions)
        assert session.defaults.engine == "pipeline"

    def test_subscribe_with_match_options_warns(self):
        from repro.xmlgl.matcher import MatchOptions

        session = QuerySession(parse_document('<bib><book/></bib>'))
        with pytest.warns(DeprecationWarning, match="ExecOptions"):
            subscription = session.subscribe(COUNT, options=MatchOptions())
        assert len(subscription.rows()) == 1
