"""Unit tests for the subgraph matcher, brute force as oracle."""

from itertools import permutations, product

import pytest

from repro.graph import Edge, LabeledGraph, MatchSpec, count_homomorphisms, find_homomorphisms


def build(nodes, edges) -> LabeledGraph:
    g = LabeledGraph()
    for node_id, label, *rest in nodes:
        g.add_node(node_id, label, rest[0] if rest else None)
    for src, dst, label in edges:
        g.add_edge(src, dst, label)
    return g


def site_graph() -> LabeledGraph:
    return build(
        [
            ("home", "page"), ("about", "page"), ("prod", "page"),
            ("idx", "index"),
        ],
        [
            ("home", "about", "link"),
            ("home", "prod", "link"),
            ("about", "idx", "link"),
            ("idx", "home", "link"),
        ],
    )


class TestBasicMatching:
    def test_single_node_pattern(self):
        pattern = build([("p", "page")], [])
        matches = list(find_homomorphisms(pattern, site_graph()))
        assert {m["p"] for m in matches} == {"home", "about", "prod"}

    def test_empty_pattern_single_empty_match(self):
        matches = list(find_homomorphisms(LabeledGraph(), site_graph()))
        assert matches == [{}]

    def test_edge_pattern(self):
        pattern = build([("a", "page"), ("b", "page")], [("a", "b", "link")])
        matches = list(find_homomorphisms(pattern, site_graph()))
        pairs = {(m["a"], m["b"]) for m in matches}
        assert pairs == {("home", "about"), ("home", "prod")}

    def test_edge_label_must_match(self):
        pattern = build([("a", "page"), ("b", "page")], [("a", "b", "other")])
        assert count_homomorphisms(pattern, site_graph()) == 0

    def test_wildcard_label(self):
        pattern = build([("x", "*")], [])
        assert count_homomorphisms(pattern, site_graph()) == 4

    def test_value_constraint(self):
        data = build([(1, "n", "red"), (2, "n", "blue")], [])
        pattern = build([("x", "n", "red")], [])
        matches = list(find_homomorphisms(pattern, data))
        assert [m["x"] for m in matches] == [1]

    def test_no_candidates_short_circuits(self):
        pattern = build([("x", "missing")], [])
        assert count_homomorphisms(pattern, site_graph()) == 0


class TestInjectivity:
    def test_homomorphism_allows_collapse(self):
        data = build([(1, "n")], [(1, 1, "e")])
        pattern = build([("a", "n"), ("b", "n")], [("a", "b", "e")])
        spec = MatchSpec(injective=False)
        assert count_homomorphisms(pattern, data, spec) == 1

    def test_injective_forbids_collapse(self):
        data = build([(1, "n")], [(1, 1, "e")])
        pattern = build([("a", "n"), ("b", "n")], [("a", "b", "e")])
        assert count_homomorphisms(pattern, data, MatchSpec(injective=True)) == 0

    def test_injective_counts(self):
        data = build([(1, "n"), (2, "n")], [])
        pattern = build([("a", "n"), ("b", "n")], [])
        assert count_homomorphisms(pattern, data, MatchSpec(injective=True)) == 2
        assert count_homomorphisms(pattern, data, MatchSpec(injective=False)) == 4


class TestPathEdges:
    def test_path_edge_matches_transitively(self):
        data = build(
            [(1, "n"), (2, "n"), (3, "n")],
            [(1, 2, "e"), (2, 3, "e")],
        )
        pattern = build([("a", "n"), ("b", "n")], [("a", "b", "e")])
        spec = MatchSpec(path_edges={Edge("a", "b", "e")})
        pairs = {
            (m["a"], m["b"]) for m in find_homomorphisms(pattern, data, spec)
        }
        assert pairs == {(1, 2), (1, 3), (2, 3)}

    def test_path_edge_requires_nonempty_path(self):
        data = build([(1, "n")], [])
        pattern = build([("a", "n"), ("b", "n")], [("a", "b", "p")])
        spec = MatchSpec(injective=False, path_edges={Edge("a", "b", "p")})
        assert count_homomorphisms(pattern, data, spec) == 0

    def test_path_edge_with_empty_label_follows_any_edge(self):
        data = build(
            [(1, "n"), (2, "n"), (3, "n")],
            [(1, 2, "x"), (2, 3, "y")],
        )
        pattern = build([("a", "n"), ("b", "n")], [("a", "b", "")])
        spec = MatchSpec(path_edges={Edge("a", "b", "")})
        pairs = {
            (m["a"], m["b"]) for m in find_homomorphisms(pattern, data, spec)
        }
        assert (1, 3) in pairs

    def test_path_edge_label_restricts_traversal(self):
        data = build(
            [(1, "n"), (2, "n"), (3, "n")],
            [(1, 2, "x"), (2, 3, "y")],
        )
        pattern = build([("a", "n"), ("b", "n")], [("a", "b", "x")])
        spec = MatchSpec(path_edges={Edge("a", "b", "x")})
        pairs = {
            (m["a"], m["b"]) for m in find_homomorphisms(pattern, data, spec)
        }
        assert pairs == {(1, 2)}

    def test_path_edge_cycle_allows_self(self):
        data = build([(1, "n"), (2, "n")], [(1, 2, "e"), (2, 1, "e")])
        pattern = build([("a", "n"), ("b", "n")], [("a", "b", "e")])
        spec = MatchSpec(injective=False, path_edges={Edge("a", "b", "e")})
        pairs = {
            (m["a"], m["b"]) for m in find_homomorphisms(pattern, data, spec)
        }
        assert pairs == {(1, 2), (2, 1), (1, 1), (2, 2)}


class TestNegation:
    def test_negated_edge_filters(self):
        # pages with no outgoing link to an index node
        data = site_graph()
        pattern = build(
            [("p", "page"), ("i", "index")], [("p", "i", "link")]
        )
        spec = MatchSpec(negated_edges={Edge("p", "i", "link")})
        matches = {m["p"] for m in find_homomorphisms(pattern, data, spec)}
        assert matches == {"home", "prod"}

    def test_negated_path_edge(self):
        data = build([(1, "n"), (2, "n"), (3, "n")], [(1, 2, "e")])
        pattern = build([("a", "n"), ("b", "n")], [("a", "b", "e")])
        spec = MatchSpec(
            negated_edges={Edge("a", "b", "e")},
            path_edges={Edge("a", "b", "e")},
        )
        pairs = {
            (m["a"], m["b"]) for m in find_homomorphisms(pattern, data, spec)
        }
        assert (1, 2) not in pairs
        assert (3, 1) in pairs


class TestNarrowingToggle:
    def test_same_results_with_and_without_narrowing(self):
        import random

        rng = random.Random(5)
        data = LabeledGraph()
        for i in range(8):
            data.add_node(i, rng.choice("ab"))
        for _ in range(12):
            data.add_edge(rng.randrange(8), rng.randrange(8), rng.choice("xy"))
        pattern = build(
            [("p", "a"), ("q", "b"), ("r", "*")],
            [("p", "q", "x"), ("q", "r", "y")],
        )
        key = lambda m: tuple(sorted(m.items()))
        fast = sorted(
            map(key, find_homomorphisms(pattern, data, MatchSpec(narrow=True)))
        )
        slow = sorted(
            map(key, find_homomorphisms(pattern, data, MatchSpec(narrow=False)))
        )
        assert fast == slow


class TestCustomCompat:
    def test_node_compat_hook(self):
        data = build([(1, "n", 5), (2, "n", 50)], [])
        pattern = build([("x", "n")], [])
        spec = MatchSpec(
            node_compat=lambda p, d: data.value(d) is not None and data.value(d) > 10
        )
        matches = list(find_homomorphisms(pattern, data, spec))
        assert [m["x"] for m in matches] == [2]


def brute_force_homomorphisms(pattern, data, injective):
    """Oracle: try every assignment."""
    pnodes = list(pattern.nodes())
    dnodes = list(data.nodes())
    results = []
    iterator = (
        permutations(dnodes, len(pnodes))
        if injective
        else product(dnodes, repeat=len(pnodes))
    )
    for assignment in iterator:
        mapping = dict(zip(pnodes, assignment))
        ok = True
        for p in pnodes:
            pd, dd = pattern.node(p), data.node(mapping[p])
            if pd.label != "*" and pd.label != dd.label:
                ok = False
                break
            if pd.value is not None and pd.value != dd.value:
                ok = False
                break
        if ok:
            for edge in pattern.edges():
                if not data.has_edge(mapping[edge.source], mapping[edge.target], edge.label):
                    ok = False
                    break
        if ok:
            results.append(mapping)
    return results


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("injective", [True, False])
    def test_random_graphs(self, seed, injective):
        import random

        rng = random.Random(seed)
        labels = ["a", "b"]
        data = LabeledGraph()
        for i in range(6):
            data.add_node(i, rng.choice(labels))
        for _ in range(9):
            data.add_edge(rng.randrange(6), rng.randrange(6), rng.choice("xy"))
        pattern = LabeledGraph()
        for i in range(3):
            pattern.add_node(f"p{i}", rng.choice(labels + ["*"]))
        for _ in range(2):
            pattern.add_edge(
                f"p{rng.randrange(3)}", f"p{rng.randrange(3)}", rng.choice("xy")
            )
        expected = brute_force_homomorphisms(pattern, data, injective)
        actual = list(
            find_homomorphisms(pattern, data, MatchSpec(injective=injective))
        )
        key = lambda m: tuple(sorted(m.items()))
        assert sorted(map(key, actual)) == sorted(map(key, expected))
