"""Unit tests for the labelled multigraph."""

import pytest

from repro.graph import Edge, LabeledGraph


def triangle() -> LabeledGraph:
    g = LabeledGraph()
    g.add_node("a", "page")
    g.add_node("b", "page")
    g.add_node("c", "index")
    g.add_edge("a", "b", "link")
    g.add_edge("b", "c", "link")
    g.add_edge("c", "a", "index-of")
    return g


class TestConstruction:
    def test_add_node_and_lookup(self):
        g = LabeledGraph()
        g.add_node(1, "x", value=42)
        assert g.label(1) == "x"
        assert g.value(1) == 42
        assert 1 in g and 2 not in g

    def test_relabel_node(self):
        g = LabeledGraph()
        g.add_node(1, "x")
        g.add_node(1, "y")
        assert g.label(1) == "y"
        assert len(g) == 1

    def test_add_edge_requires_endpoints(self):
        g = LabeledGraph()
        g.add_node(1, "x")
        with pytest.raises(KeyError):
            g.add_edge(1, 2, "e")
        with pytest.raises(KeyError):
            g.add_edge(3, 1, "e")

    def test_duplicate_edges_idempotent(self):
        g = LabeledGraph()
        g.add_node(1, "x")
        g.add_node(2, "y")
        g.add_edge(1, 2, "e")
        g.add_edge(1, 2, "e")
        assert g.edge_count() == 1

    def test_parallel_edges_different_labels(self):
        g = LabeledGraph()
        g.add_node(1, "x")
        g.add_node(2, "y")
        g.add_edge(1, 2, "e1")
        g.add_edge(1, 2, "e2")
        assert g.edge_count() == 2
        assert len(g.out_edges(1, "e1")) == 1

    def test_self_loop(self):
        g = LabeledGraph()
        g.add_node(1, "x")
        g.add_edge(1, 1, "loop")
        assert g.has_edge(1, 1, "loop")
        assert g.degree(1) == 2


class TestRemoval:
    def test_remove_edge(self):
        g = triangle()
        edge = Edge("a", "b", "link")
        g.remove_edge(edge)
        assert not g.has_edge("a", "b", "link")
        assert g.edge_count() == 2

    def test_remove_missing_edge_raises(self):
        g = triangle()
        with pytest.raises(KeyError):
            g.remove_edge(Edge("a", "c", "nope"))

    def test_remove_node_cascades(self):
        g = triangle()
        g.remove_node("b")
        assert "b" not in g
        assert g.edge_count() == 1  # only c -> a remains

    def test_remove_missing_node_raises(self):
        with pytest.raises(KeyError):
            triangle().remove_node("zz")


class TestQueries:
    def test_successors_predecessors(self):
        g = triangle()
        assert g.successors("a") == ["b"]
        assert g.predecessors("a") == ["c"]
        assert g.successors("a", "nope") == []

    def test_nodes_with_label(self):
        assert set(triangle().nodes_with_label("page")) == {"a", "b"}

    def test_in_out_edges_filtered(self):
        g = triangle()
        assert [e.label for e in g.out_edges("c")] == ["index-of"]
        assert [e.label for e in g.in_edges("c", "link")] == ["link"]

    def test_degree(self):
        assert triangle().degree("a") == 2


class TestBulk:
    def test_copy_independent(self):
        g = triangle()
        clone = g.copy()
        clone.remove_node("a")
        assert "a" in g
        assert g.edge_count() == 3

    def test_subgraph_induced(self):
        sub = triangle().subgraph(["a", "b"])
        assert set(sub.nodes()) == {"a", "b"}
        assert sub.edge_count() == 1

    def test_is_subgraph_of(self):
        g = triangle()
        sub = g.subgraph(["a", "b"])
        assert sub.is_subgraph_of(g)
        assert not g.is_subgraph_of(sub)

    def test_is_subgraph_respects_labels(self):
        g = triangle()
        other = g.copy()
        other.add_node("a", "different")
        assert not other.is_subgraph_of(g)

    def test_repr(self):
        assert "nodes=3" in repr(triangle())
