"""Unit tests for graph traversal algorithms, with networkx as oracle."""

import networkx as nx
import pytest

from repro.graph import (
    LabeledGraph,
    bfs_order,
    dfs_order,
    has_cycle,
    reachable,
    reachable_by_labels,
    shortest_path,
    topological_order,
    weakly_connected_components,
)


def chain(n: int) -> LabeledGraph:
    g = LabeledGraph()
    for i in range(n):
        g.add_node(i, "n")
    for i in range(n - 1):
        g.add_edge(i, i + 1, "e")
    return g


def diamond() -> LabeledGraph:
    g = LabeledGraph()
    for name in "abcd":
        g.add_node(name, "n")
    g.add_edge("a", "b", "x")
    g.add_edge("a", "c", "y")
    g.add_edge("b", "d", "x")
    g.add_edge("c", "d", "y")
    return g


class TestOrders:
    def test_bfs_layers(self):
        order = list(bfs_order(diamond(), "a"))
        assert order[0] == "a"
        assert set(order[1:3]) == {"b", "c"}
        assert order[3] == "d"

    def test_dfs_preorder(self):
        order = list(dfs_order(diamond(), "a"))
        assert order[0] == "a"
        assert set(order) == {"a", "b", "c", "d"}
        # first successor explored before the second branch starts
        assert order[1] == "b" and order[2] == "d"

    def test_orders_respect_direction(self):
        g = chain(3)
        assert list(bfs_order(g, 2)) == [2]


class TestReachability:
    def test_reachable_includes_start(self):
        assert reachable(chain(4), 1) == {1, 2, 3}

    def test_reachable_by_labels_excludes_start(self):
        assert reachable_by_labels(chain(4), 1) == {2, 3}

    def test_reachable_by_edge_label(self):
        g = diamond()
        assert reachable_by_labels(g, "a", edge_label="x") == {"b", "d"}

    def test_reachable_with_node_filter(self):
        g = chain(5)
        result = reachable_by_labels(g, 0, node_filter=lambda n: n != 2)
        assert result == {1}  # the filter prunes node 2 and what lies behind it

    def test_reachable_on_cycle(self):
        g = chain(3)
        g.add_edge(2, 0, "e")
        assert reachable_by_labels(g, 0) == {0, 1, 2}


class TestCyclesAndTopo:
    def test_dag_has_no_cycle(self):
        assert not has_cycle(diamond())

    def test_cycle_detected(self):
        g = chain(3)
        g.add_edge(2, 0, "back")
        assert has_cycle(g)

    def test_self_loop_is_cycle(self):
        g = LabeledGraph()
        g.add_node(1, "n")
        g.add_edge(1, 1, "loop")
        assert has_cycle(g)

    def test_topological_order_valid(self):
        g = diamond()
        order = topological_order(g)
        position = {n: i for i, n in enumerate(order)}
        for edge in g.edges():
            assert position[edge.source] < position[edge.target]

    def test_topological_order_rejects_cycle(self):
        g = chain(2)
        g.add_edge(1, 0, "back")
        with pytest.raises(ValueError):
            topological_order(g)


class TestComponentsAndPaths:
    def test_weak_components(self):
        g = chain(3)
        g.add_node("iso", "n")
        components = weakly_connected_components(g)
        assert sorted(len(c) for c in components) == [1, 3]

    def test_shortest_path(self):
        g = diamond()
        path = shortest_path(g, "a", "d")
        assert path[0] == "a" and path[-1] == "d" and len(path) == 3

    def test_shortest_path_self(self):
        assert shortest_path(diamond(), "a", "a") == ["a"]

    def test_shortest_path_absent(self):
        assert shortest_path(chain(3), 2, 0) is None


class TestAgainstNetworkx:
    """Randomised cross-checks against networkx."""

    @pytest.mark.parametrize("seed", range(5))
    def test_reachability_matches(self, seed):
        import random

        rng = random.Random(seed)
        g = LabeledGraph()
        nxg = nx.DiGraph()
        n = 30
        for i in range(n):
            g.add_node(i, "n")
            nxg.add_node(i)
        for _ in range(60):
            a, b = rng.randrange(n), rng.randrange(n)
            g.add_edge(a, b, "e")
            nxg.add_edge(a, b)
        for start in range(0, n, 7):
            assert reachable(g, start) == nx.descendants(nxg, start) | {start}

    @pytest.mark.parametrize("seed", range(5))
    def test_cycle_detection_matches(self, seed):
        import random

        rng = random.Random(seed + 100)
        g = LabeledGraph()
        nxg = nx.DiGraph()
        n = 20
        for i in range(n):
            g.add_node(i, "n")
            nxg.add_node(i)
        for _ in range(25):
            a, b = rng.randrange(n), rng.randrange(n)
            if a != b:
                g.add_edge(a, b, "e")
                nxg.add_edge(a, b)
        assert has_cycle(g) == (not nx.is_directed_acyclic_graph(nxg))
