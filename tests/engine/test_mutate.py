"""Typed mutations (repro.engine.mutate) and incremental index upkeep."""

import pytest

from repro.engine import DocumentIndex
from repro.engine.mutate import (
    MutationBatch,
    apply_batch,
    current_revision,
    ops_from_spec,
)
from repro.errors import MutationError
from repro.ssd import parse_document, serialize
from repro.ssd.model import Element, Text


def doc():
    return parse_document(
        '<bib>'
        '<book year="1999"><title>A</title></book>'
        '<book year="2000"><title>B</title></book>'
        '<article><title>C</title></article>'
        '</bib>'
    )


def book(text, year):
    element = Element("book", attributes={"year": year})
    title = Element("title")
    title.append(Text(text))
    element.append(title)
    return element


def assert_index_matches_fresh(index, document):
    """The maintained index must agree with one built from scratch."""
    fresh = DocumentIndex(document)
    assert index.element_count() == fresh.element_count()
    assert index.tags() == fresh.tags()
    for tag in fresh.tags():
        assert index.elements_with_tag(tag) == fresh.elements_with_tag(tag), tag
    elements = list(fresh.all_elements())
    for a in elements:
        for b in elements:
            assert index.is_ancestor(a, b) == fresh.is_ancestor(a, b), (a, b)


class TestOperations:
    def test_insert_subtree(self):
        document = doc()
        result = apply_batch(
            document,
            MutationBatch().insert_subtree(document.root, book("D", "2001")),
            indexes=[],
        )
        assert result.applied == 1 and result.structural
        assert result.nodes_added == 3  # book + title + text
        assert [e.tag for e in document.root.child_elements()] == [
            "book", "book", "article", "book",
        ]

    def test_insert_at_index(self):
        document = doc()
        apply_batch(
            document,
            MutationBatch().insert_subtree(document.root, book("Z", "1990"), 0),
            indexes=[],
        )
        first = document.root.child_elements()[0]
        assert first.attributes["year"] == "1990"

    def test_delete_subtree(self):
        document = doc()
        target = document.root.child_elements()[0]
        result = apply_batch(
            document, MutationBatch().delete_subtree(target), indexes=[]
        )
        assert result.structural and result.nodes_removed == 3
        assert target.parent is None
        assert len(document.root.child_elements()) == 2

    def test_update_value(self):
        document = doc()
        title = document.root.child_elements()[0].child_elements()[0]
        result = apply_batch(
            document, MutationBatch().update_value(title, "New"), indexes=[]
        )
        assert not result.structural
        assert result.touched.values_changed
        assert title.text_content() == "New"

    def test_update_attribute_set_and_remove(self):
        document = doc()
        target = document.root.child_elements()[0]
        apply_batch(
            document,
            MutationBatch().update_attribute(target, "lang", "en"),
            indexes=[],
        )
        assert target.attributes["lang"] == "en"
        apply_batch(
            document,
            MutationBatch().update_attribute(target, "lang", None),
            indexes=[],
        )
        assert "lang" not in target.attributes

    def test_revision_is_monotone_per_document(self):
        document = doc()
        assert current_revision(document) == 0
        target = document.root.child_elements()[0]
        r1 = apply_batch(
            document, MutationBatch().update_value(target, "x"), indexes=[]
        )
        r2 = apply_batch(
            document, MutationBatch().update_value(target, "y"), indexes=[]
        )
        assert (r1.doc_revision, r2.doc_revision) == (1, 2)
        assert current_revision(document) == 2
        assert current_revision(doc()) == 0  # fresh object, fresh counter


class TestValidationIsAtomic:
    def test_invalid_batch_leaves_document_untouched(self):
        document = doc()
        before = serialize(document.root)
        stranger = Element("stranger")
        batch = (
            MutationBatch()
            .insert_subtree(document.root, book("D", "2001"))
            .delete_subtree(stranger)  # not in the document
        )
        with pytest.raises(MutationError, match="not part of the document"):
            apply_batch(document, batch, indexes=[])
        assert serialize(document.root) == before

    def test_cannot_delete_root(self):
        document = doc()
        with pytest.raises(MutationError, match="root"):
            apply_batch(
                document,
                MutationBatch().delete_subtree(document.root),
                indexes=[],
            )

    def test_cannot_insert_attached_subtree(self):
        document = doc()
        attached = document.root.child_elements()[0]
        with pytest.raises(MutationError, match="already has a parent"):
            apply_batch(
                document,
                MutationBatch().insert_subtree(document.root, attached),
                indexes=[],
            )

    def test_ops_under_scheduled_delete_are_rejected(self):
        document = doc()
        target = document.root.child_elements()[0]
        title = target.child_elements()[0]
        batch = (
            MutationBatch()
            .delete_subtree(target)
            .update_value(title, "gone")  # inside the deleted subtree
        )
        with pytest.raises(MutationError, match="not part of the document"):
            apply_batch(document, batch, indexes=[])

    def test_op_on_earlier_inserted_subtree_is_live(self):
        document = doc()
        fresh = book("D", "2001")
        batch = (
            MutationBatch()
            .insert_subtree(document.root, fresh)
            .update_attribute(fresh, "year", "2002")
        )
        result = apply_batch(document, batch, indexes=[])
        assert result.applied == 2
        assert fresh.attributes["year"] == "2002"


class TestIndexMaintenance:
    def test_insert_keeps_index_consistent(self):
        document = doc()
        index = DocumentIndex(document)
        apply_batch(
            document,
            MutationBatch().insert_subtree(document.root, book("D", "2001"), 1),
            indexes=[index],
        )
        assert_index_matches_fresh(index, document)
        assert index.tag_count("book") == 3

    def test_delete_keeps_index_consistent(self):
        document = doc()
        index = DocumentIndex(document)
        apply_batch(
            document,
            MutationBatch().delete_subtree(document.root.child_elements()[1]),
            indexes=[index],
        )
        assert_index_matches_fresh(index, document)
        assert index.tag_count("book") == 1

    def test_attribute_update_maintains_pools(self):
        document = doc()
        index = DocumentIndex(document)
        target = document.root.child_elements()[2]  # article, no year
        apply_batch(
            document,
            MutationBatch().update_attribute(target, "year", "2003"),
            indexes=[index],
        )
        assert len(index.elements_with_attribute("year")) == 3
        apply_batch(
            document,
            MutationBatch().update_attribute(target, "year", None),
            indexes=[index],
        )
        assert len(index.elements_with_attribute("year")) == 2

    def test_many_edits_stay_consistent(self):
        document = doc()
        index = DocumentIndex(document)
        for i in range(30):
            apply_batch(
                document,
                MutationBatch().insert_subtree(
                    document.root, book(f"T{i}", str(2000 + i)), 0
                ),
                indexes=[index],
            )
        for _ in range(10):
            apply_batch(
                document,
                MutationBatch().delete_subtree(
                    document.root.child_elements()[0]
                ),
                indexes=[index],
            )
        assert_index_matches_fresh(index, document)
        assert index.doc_revision == 40

    def test_stats_epoch_bumps_only_on_structural_batches(self):
        document = doc()
        index = DocumentIndex(document)
        epoch = index.stats_epoch
        title = document.root.child_elements()[0].child_elements()[0]
        apply_batch(
            document, MutationBatch().update_value(title, "v"), indexes=[index]
        )
        assert index.stats_epoch == epoch
        apply_batch(
            document,
            MutationBatch().insert_subtree(document.root, book("D", "2001")),
            indexes=[index],
        )
        assert index.stats_epoch != epoch

    def test_maintenance_counters_track_work(self):
        document = doc()
        index = DocumentIndex(document)
        before = index.maintenance_counters()
        apply_batch(
            document,
            MutationBatch().insert_subtree(document.root, book("D", "2001")),
            indexes=[index],
        )
        after = index.maintenance_counters()
        assert after["structural_ops"] == before["structural_ops"] + 1
        assert after["labels_assigned"] > before["labels_assigned"]


class TestTouchedRegion:
    def test_insert_reports_subtree_tags_and_ancestors(self):
        document = doc()
        parent = document.root.child_elements()[0]
        result = apply_batch(
            document,
            MutationBatch().insert_subtree(parent, Element("note")),
            indexes=[],
        )
        assert "note" in result.touched.tags
        assert {"bib", "book"} <= result.touched.ancestor_tags
        assert result.touched.structural and result.touched.values_changed

    def test_attribute_edit_is_not_value_sensitive(self):
        document = doc()
        target = document.root.child_elements()[0]
        result = apply_batch(
            document,
            MutationBatch().update_attribute(target, "year", "1998"),
            indexes=[],
        )
        assert not result.touched.values_changed
        assert result.touched.attributes == {"year"}
        assert result.touched.tags == {"book"}

    def test_intervals_reported_when_index_maintained(self):
        document = doc()
        index = DocumentIndex(document)
        target = document.root.child_elements()[0]
        result = apply_batch(
            document, MutationBatch().update_value(target, "t"), indexes=[index]
        )
        assert result.touched.intervals == (index.interval(target),)


class TestWireForm:
    def test_round_trip(self):
        document = doc()
        batch = ops_from_spec(
            document,
            [
                {"op": "insert", "parent": [], "xml": "<book/>", "index": 0},
                {"op": "update_value", "target": [0, 0], "value": "t"},
                {"op": "update_attribute", "target": [1], "name": "x",
                 "value": "1"},
                {"op": "delete", "target": [2]},
            ],
        )
        assert len(batch) == 4
        result = apply_batch(document, batch, indexes=[])
        assert result.applied == 4

    def test_paths_resolve_against_pre_batch_snapshot(self):
        document = doc()
        # Both deletes name pre-batch coordinates: [0] and [1] are the two
        # books, even though applying the first delete shifts positions.
        batch = ops_from_spec(
            document,
            [{"op": "delete", "target": [0]}, {"op": "delete", "target": [1]}],
        )
        apply_batch(document, batch, indexes=[])
        assert [e.tag for e in document.root.child_elements()] == ["article"]

    def test_duplicate_delete_fails_validation(self):
        document = doc()
        batch = ops_from_spec(
            document,
            [{"op": "delete", "target": [0]}, {"op": "delete", "target": [0]}],
        )
        with pytest.raises(MutationError):
            apply_batch(document, batch, indexes=[])

    @pytest.mark.parametrize(
        "spec, match",
        [
            ([{"op": "nope"}], "unknown op"),
            ([{"op": "insert", "parent": [9], "xml": "<x/>"}], "out of range"),
            ([{"op": "insert", "parent": []}], "'xml' string"),
            ([{"op": "insert", "parent": [], "xml": "<a><b</a>"}], "bad xml"),
            ([{"op": "update_value", "target": []}], "'value' string"),
            ([{"op": "update_attribute", "target": []}], "'name' string"),
            (["not-a-dict"], "must be an object"),
            ("not-a-list", "list of op objects"),
        ],
    )
    def test_bad_specs(self, spec, match):
        with pytest.raises(MutationError, match=match):
            ops_from_spec(doc(), spec)
