"""Unit tests for the condition AST."""

import pytest

from repro.engine import (
    And,
    Arith,
    AttributeOf,
    Binding,
    Comparison,
    Const,
    ContentOf,
    DocumentAccessor,
    NameOf,
    Not,
    Or,
    Regex,
    TRUE,
)
from repro.errors import EvaluationError
from repro.ssd import E

ACC = DocumentAccessor()


def book():
    return E("book", {"year": "1999", "price": "39.95"}, E("title", "Data on the Web"))


class TestOperands:
    def test_const(self):
        assert Const(7).evaluate(Binding(), ACC) == 7

    def test_content_of_element(self):
        b = Binding({"B": book()})
        assert "Data on the Web" in ContentOf("B").evaluate(b, ACC)

    def test_content_of_atomic_passthrough(self):
        assert ContentOf("x").evaluate(Binding({"x": 5}), ACC) == 5

    def test_attribute_of(self):
        b = Binding({"B": book()})
        assert AttributeOf("B", "year").evaluate(b, ACC) == "1999"
        assert AttributeOf("B", "missing").evaluate(b, ACC) is None

    def test_attribute_of_non_element(self):
        assert AttributeOf("x", "a").evaluate(Binding({"x": 5}), ACC) is None

    def test_name_of(self):
        assert NameOf("B").evaluate(Binding({"B": book()}), ACC) == "book"

    def test_name_of_atomic_raises(self):
        with pytest.raises(EvaluationError):
            NameOf("x").evaluate(Binding({"x": 5}), ACC)

    def test_arith(self):
        expr = Arith("*", Const("3"), Const(4))
        assert expr.evaluate(Binding(), ACC) == 12

    def test_arith_on_attribute(self):
        b = Binding({"B": book()})
        expr = Arith("+", AttributeOf("B", "year"), Const(1))
        assert expr.evaluate(b, ACC) == 2000

    def test_arith_type_error(self):
        with pytest.raises(TypeError):
            Arith("+", Const("abc"), Const(1)).evaluate(Binding(), ACC)

    def test_arith_division_by_zero(self):
        with pytest.raises(TypeError):
            Arith("/", Const(1), Const(0)).evaluate(Binding(), ACC)

    def test_unknown_arith_op(self):
        with pytest.raises(EvaluationError):
            Arith("%", Const(1), Const(2))


class TestComparison:
    def test_equality_with_coercion(self):
        b = Binding({"B": book()})
        assert Comparison("=", AttributeOf("B", "year"), Const(1999)).evaluate(b, ACC)

    def test_inequality(self):
        b = Binding({"B": book()})
        assert Comparison("!=", AttributeOf("B", "year"), Const(2000)).evaluate(b, ACC)

    def test_ordering(self):
        b = Binding({"B": book()})
        assert Comparison("<", AttributeOf("B", "price"), Const(50)).evaluate(b, ACC)
        assert Comparison(">=", AttributeOf("B", "year"), Const("1999")).evaluate(b, ACC)

    def test_missing_attribute_is_false(self):
        b = Binding({"B": book()})
        cond = Comparison("=", AttributeOf("B", "zzz"), Const(1))
        assert not cond.evaluate(b, ACC)

    def test_type_mismatch_is_false(self):
        cond = Comparison("<", Const("word"), Const(3))
        assert not cond.evaluate(Binding(), ACC)

    def test_arith_error_is_false(self):
        cond = Comparison("=", Arith("/", Const(1), Const(0)), Const(1))
        assert not cond.evaluate(Binding(), ACC)

    def test_unknown_op_rejected(self):
        with pytest.raises(EvaluationError):
            Comparison("~=", Const(1), Const(1))


class TestBooleanConnectives:
    def test_true(self):
        assert TRUE.evaluate(Binding(), ACC)

    def test_and(self):
        cond = And((TRUE, Comparison("=", Const(1), Const(1))))
        assert cond.evaluate(Binding(), ACC)
        assert not And((TRUE, Comparison("=", Const(1), Const(2)))).evaluate(
            Binding(), ACC
        )

    def test_or(self):
        cond = Or((Comparison("=", Const(1), Const(2)), TRUE))
        assert cond.evaluate(Binding(), ACC)
        assert not Or(()).evaluate(Binding(), ACC)

    def test_not(self):
        assert Not(Comparison("=", Const(1), Const(2))).evaluate(Binding(), ACC)


class TestRegex:
    def test_fullmatch_semantics(self):
        b = Binding({"B": book()})
        assert Regex(ContentOf("B"), ".*Web.*").evaluate(b, ACC)
        assert not Regex(ContentOf("B"), "Web").evaluate(b, ACC)

    def test_on_attribute(self):
        b = Binding({"B": book()})
        assert Regex(AttributeOf("B", "year"), r"19\d\d").evaluate(b, ACC)

    def test_none_is_false(self):
        b = Binding({"B": book()})
        assert not Regex(AttributeOf("B", "none"), ".*").evaluate(b, ACC)


class TestStringForms:
    def test_str_smoke(self):
        cond = And(
            (
                Comparison("<", AttributeOf("B", "price"), Const(50)),
                Or((Regex(ContentOf("T"), "X.*"), Not(TRUE))),
            )
        )
        text = str(cond)
        assert "B.price" in text and "< 50" in text and "or" in text
