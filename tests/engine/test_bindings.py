"""Unit tests for Binding and BindingSet."""

import pytest

from repro.engine import Binding, BindingSet, value_key
from repro.ssd import E


class TestBinding:
    def test_mapping_protocol(self):
        b = Binding({"x": 1, "y": "two"})
        assert b["x"] == 1
        assert set(b) == {"x", "y"}
        assert len(b) == 2

    def test_extended(self):
        b = Binding({"x": 1}).extended("y", 2)
        assert b["y"] == 2

    def test_extended_rejects_rebinding(self):
        with pytest.raises(KeyError):
            Binding({"x": 1}).extended("x", 2)

    def test_project(self):
        b = Binding({"x": 1, "y": 2, "z": 3}).project(["x", "z"])
        assert set(b) == {"x", "z"}

    def test_compatible_and_merge(self):
        a = Binding({"x": 1, "y": 2})
        b = Binding({"y": 2, "z": 3})
        assert a.compatible(b)
        merged = a.merged(b)
        assert merged["z"] == 3 and merged["x"] == 1

    def test_incompatible(self):
        assert not Binding({"x": 1}).compatible(Binding({"x": 2}))

    def test_node_identity_semantics(self):
        e1, e2 = E("a"), E("a")
        assert Binding({"x": e1}).compatible(Binding({"x": e1}))
        # equal structure, different node -> incompatible
        assert not Binding({"x": e1}).compatible(Binding({"x": e2}))

    def test_key_is_hashable_for_nodes(self):
        e = E("a")
        key = Binding({"x": e}).key()
        assert key == (("x", value_key(e)),)
        hash(key)


class TestBindingSet:
    def make(self):
        return BindingSet(
            [
                Binding({"b": 1, "t": "XML"}),
                Binding({"b": 2, "t": "Web"}),
                Binding({"b": 3, "t": "XML"}),
            ]
        )

    def test_len_iter_getitem(self):
        s = self.make()
        assert len(s) == 3
        assert s[1]["b"] == 2
        assert [b["b"] for b in s] == [1, 2, 3]

    def test_select(self):
        s = self.make().select(lambda b: b["t"] == "XML")
        assert [b["b"] for b in s] == [1, 3]

    def test_project_keeps_duplicates(self):
        s = self.make().project(["t"])
        assert len(s) == 3

    def test_distinct(self):
        s = self.make().project(["t"]).distinct()
        assert [b["t"] for b in s] == ["XML", "Web"]

    def test_distinct_on_variables(self):
        s = self.make().distinct(["t"])
        assert [b["b"] for b in s] == [1, 2]

    def test_join_shared_variable(self):
        left = self.make()
        right = BindingSet([Binding({"t": "XML", "lang": "en"})])
        joined = left.join(right)
        assert [b["b"] for b in joined] == [1, 3]
        assert all(b["lang"] == "en" for b in joined)

    def test_join_no_shared_is_product(self):
        left = BindingSet([Binding({"x": 1}), Binding({"x": 2})])
        right = BindingSet([Binding({"y": 9})])
        assert len(left.join(right)) == 2

    def test_join_empty(self):
        assert len(self.make().join(BindingSet())) == 0

    def test_union(self):
        u = self.make().union(self.make())
        assert len(u) == 6

    def test_minus_anti_join(self):
        left = self.make()
        right = BindingSet([Binding({"t": "XML"})])
        remaining = left.minus(right)
        assert [b["b"] for b in remaining] == [2]

    def test_minus_no_shared_variables(self):
        left = self.make()
        assert len(left.minus(BindingSet())) == 3
        assert len(left.minus(BindingSet([Binding({"zzz": 1})]))) == 0

    def test_group_by(self):
        groups = self.make().group_by(["t"])
        assert len(groups) == 2
        key0, members0 = groups[0]
        assert key0["t"] == "XML" and len(members0) == 2

    def test_order_by(self):
        s = self.make().order_by(lambda b: -b["b"])
        assert [b["b"] for b in s] == [3, 2, 1]

    def test_values(self):
        assert self.make().values("t") == ["XML", "Web", "XML"]

    def test_variables(self):
        assert self.make().variables() == {"b", "t"}
