"""Unit tests for the columnar kernels (repro.engine.columns).

Every kernel is checked against a brute-force oracle, on both backends
when numpy is importable: the backend pin is flipped by monkeypatching
``columns._FORCED`` (the module-level snapshot of ``REPRO_COLUMNS``), so
one test run covers the pure-Python and the vectorised paths with
identical inputs.
"""

import random
from array import array

import pytest

from repro.engine import columns
from repro.engine.columns import (
    HAVE_NUMPY,
    backend,
    column,
    containment_count,
    containment_pairs,
    direct_pairs,
    intersect_sorted,
    member_filter,
    unique_sorted,
)

BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])


@pytest.fixture(params=BACKENDS)
def pinned_backend(request, monkeypatch):
    monkeypatch.setattr(columns, "_FORCED", request.param)
    return request.param


def random_tree_columns(rng: random.Random, count: int):
    """A random tree's (posts, parent_pre) columns in pre-order numbering.

    Built the same way DocumentIndex numbers elements: children get
    consecutive pre ids after their parent; ``post`` is the largest pre in
    the subtree; the root's parent is -1.
    """
    parent_pre = [-1] * count
    for pre in range(1, count):
        parent_pre[pre] = rng.randint(max(0, pre - 4), pre - 1)
    posts = list(range(count))
    for pre in range(count - 1, 0, -1):
        ancestor = parent_pre[pre]
        while ancestor >= 0:
            posts[ancestor] = max(posts[ancestor], posts[pre])
            ancestor = parent_pre[ancestor]
    return posts, parent_pre


class TestBasics:
    def test_backend_report(self, pinned_backend):
        assert backend() == pinned_backend

    def test_column_and_unique_sorted(self):
        assert list(column([3, 1])) == [3, 1]
        assert list(unique_sorted([5, 1, 5, 3, 1])) == [1, 3, 5]
        assert isinstance(unique_sorted([2]), array)

    def test_member_filter(self):
        pool = column([1, 4, 9])
        assert list(member_filter(pool, {4, 9, 12})) == [4, 9]
        assert list(member_filter(pool, None)) == [1, 4, 9]
        assert list(member_filter(pool, set())) == []


class TestIntersectSorted:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_set_intersection(self, pinned_backend, seed):
        rng = random.Random(seed)
        universe = range(600)
        a = unique_sorted(rng.sample(universe, rng.randint(0, 300)))
        b = unique_sorted(rng.sample(universe, rng.randint(0, 300)))
        expected = sorted(set(a) & set(b))
        assert list(intersect_sorted(a, b)) == expected
        assert list(intersect_sorted(b, a)) == expected

    def test_lopsided_sizes_take_galloping_route(self, pinned_backend):
        small = column([5, 100, 400])
        big = unique_sorted(range(0, 500, 2))
        assert list(intersect_sorted(small, big)) == [100, 400]

    def test_empty_sides(self, pinned_backend):
        assert list(intersect_sorted(column(), column([1, 2]))) == []
        assert list(intersect_sorted(column([1, 2]), column())) == []


class TestContainmentKernels:
    @pytest.mark.parametrize("seed", range(6))
    def test_pairs_match_interval_oracle(self, pinned_backend, seed):
        rng = random.Random(seed)
        count = rng.randint(2, 400)
        posts, parent_pre = random_tree_columns(rng, count)
        parents = unique_sorted(rng.sample(range(count), rng.randint(1, count)))
        children = unique_sorted(rng.sample(range(count), rng.randint(1, count)))
        expected = [
            (p, c)
            for p in parents
            for c in children
            if p < c <= posts[p]
        ]
        left, right = containment_pairs(parents, posts, children)
        assert sorted(zip(left, right)) == sorted(expected)
        assert containment_count(parents, posts, children) == len(expected)

    def test_empty_pools(self, pinned_backend):
        posts = [1, 1]
        assert containment_count(column(), posts, column([0])) == 0
        left, right = containment_pairs(column([0]), posts, column())
        assert (list(left), list(right)) == ([], [])


class TestDirectPairs:
    @pytest.mark.parametrize("seed", range(6))
    def test_pairs_match_parent_pointer_oracle(self, pinned_backend, seed):
        rng = random.Random(seed)
        count = rng.randint(2, 400)
        _, parent_pre = random_tree_columns(rng, count)
        parents = unique_sorted(rng.sample(range(count), rng.randint(1, count)))
        children = unique_sorted(rng.sample(range(count), rng.randint(1, count)))
        parent_members = set(parents)
        expected = [
            (parent_pre[c], c)
            for c in children
            if parent_pre[c] >= 0 and parent_pre[c] in parent_members
        ]
        left, right = direct_pairs(parents, column(parent_pre), children)
        assert list(zip(left, right)) == expected


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not importable")
class TestBackendAgreement:
    """The two backends must be bit-identical on the same inputs."""

    @pytest.mark.parametrize("seed", range(4))
    def test_all_kernels_agree(self, monkeypatch, seed):
        rng = random.Random(1000 + seed)
        count = 500  # above _NUMPY_MIN so auto would vectorise too
        posts, parent_pre = random_tree_columns(rng, count)
        parents = unique_sorted(rng.sample(range(count), 200))
        children = unique_sorted(rng.sample(range(count), 300))
        results = {}
        for pin in ("python", "numpy"):
            monkeypatch.setattr(columns, "_FORCED", pin)
            results[pin] = (
                list(intersect_sorted(parents, children)),
                containment_count(parents, posts, children),
                tuple(
                    list(side)
                    for side in containment_pairs(parents, posts, children)
                ),
                tuple(
                    list(side)
                    for side in direct_pairs(parents, column(parent_pre), children)
                ),
            )
        assert results["python"] == results["numpy"]
