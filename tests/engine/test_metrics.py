"""Unit tests for the cross-query metrics registry."""

import json
import logging
import threading

import pytest

from repro.engine.metrics import MetricsRegistry
from repro.engine.stats import EvalStats


def stats_with(**counters) -> EvalStats:
    stats = EvalStats()
    for name, value in counters.items():
        setattr(stats, name, value)
    return stats


class TestRecording:
    def test_totals_sum_counters(self):
        registry = MetricsRegistry()
        registry.record(stats_with(bindings_produced=3, cache_hits=1))
        registry.record(stats_with(bindings_produced=4, cache_misses=2))
        totals = registry.totals()
        assert totals["bindings_produced"] == 7
        assert totals["cache_hits"] == 1 and totals["cache_misses"] == 2
        assert registry.queries == 2

    def test_extra_counters_fold_in(self):
        registry = MetricsRegistry()
        stats = EvalStats()
        stats.bump("fallback_cyclic")
        registry.record(stats)
        registry.record(stats)
        assert registry.totals()["fallback_cyclic"] == 2

    def test_seconds_defaults_to_stats_seconds(self):
        registry = MetricsRegistry()
        registry.record(stats_with(seconds=0.25))
        assert registry.snapshot()["latency"]["max"] == 0.25

    def test_explicit_seconds_wins(self):
        registry = MetricsRegistry()
        registry.record(stats_with(seconds=0.25), seconds=1.0)
        assert registry.snapshot()["latency"]["max"] == 1.0

    def test_errors_counted(self):
        registry = MetricsRegistry()
        registry.record(EvalStats(), error=True)
        registry.record(EvalStats())
        snap = registry.snapshot()
        assert snap["errors"] == 1 and snap["queries"] == 2

    def test_reset_drops_aggregates(self):
        registry = MetricsRegistry()
        registry.record(stats_with(bindings_produced=1))
        registry.reset()
        assert registry.queries == 0
        assert registry.totals() == {}
        assert registry.snapshot()["latency"]["samples"] == 0


class TestSnapshot:
    def test_rates_none_until_counters_tick(self):
        snap = MetricsRegistry().snapshot()
        assert snap["cache_hit_rate"] is None
        assert snap["pipeline_fallback_rate"] is None

    def test_cache_hit_rate(self):
        registry = MetricsRegistry()
        registry.record(stats_with(cache_hits=3, cache_misses=1))
        assert registry.snapshot()["cache_hit_rate"] == 0.75

    def test_fallback_rate(self):
        registry = MetricsRegistry()
        registry.record(stats_with(pipeline_fragments=3, pipeline_fallbacks=1))
        assert registry.snapshot()["pipeline_fallback_rate"] == 0.25

    def test_percentiles_nearest_rank(self):
        registry = MetricsRegistry()
        for value in range(1, 101):  # 0.01 .. 1.00
            registry.record(stats_with(seconds=value / 100))
        latency = registry.snapshot()["latency"]
        assert latency["samples"] == 100
        assert latency["p50"] == pytest.approx(0.50, abs=0.02)
        assert latency["p95"] == pytest.approx(0.95, abs=0.02)
        assert latency["max"] == 1.0

    def test_sample_bound(self):
        registry = MetricsRegistry(max_samples=4)
        for value in (9.0, 9.0, 1.0, 1.0, 1.0, 1.0):
            registry.record(stats_with(seconds=value))
        # only the most recent 4 samples survive
        assert registry.snapshot()["latency"]["max"] == 1.0
        assert registry.queries == 6

    def test_max_samples_validated(self):
        with pytest.raises(ValueError):
            MetricsRegistry(max_samples=0)

    def test_to_json_round_trips(self):
        registry = MetricsRegistry()
        registry.record(stats_with(bindings_produced=2, seconds=0.1))
        payload = json.loads(registry.to_json())
        assert payload["queries"] == 1
        assert payload["totals"]["bindings_produced"] == 2


class TestSlowQueryHook:
    def test_callback_fires_over_threshold(self):
        registry = MetricsRegistry()
        seen = []
        registry.set_slow_query_log(0.5, seen.append)
        registry.record(stats_with(seconds=0.1), query="fast")
        registry.record(stats_with(seconds=0.9), query="slow")
        assert len(seen) == 1
        entry = seen[0]
        assert entry["query"] == "slow"
        assert entry["seconds"] == 0.9
        assert entry["counters"]["seconds"] == 0.9

    def test_default_hook_logs_warning(self, caplog):
        registry = MetricsRegistry()
        registry.set_slow_query_log(0.5)
        with caplog.at_level(logging.WARNING, logger="repro.metrics"):
            registry.record(stats_with(seconds=0.9), query="q")
        assert any("slow query" in record.message for record in caplog.records)

    def test_none_threshold_disarms(self):
        registry = MetricsRegistry()
        seen = []
        registry.set_slow_query_log(0.0, seen.append)
        registry.set_slow_query_log(None)
        registry.record(stats_with(seconds=9.0))
        assert seen == []

    def test_callback_may_reenter_registry(self):
        registry = MetricsRegistry()

        def hook(entry):
            # fired outside the lock, so reading back must not deadlock
            registry.snapshot()

        registry.set_slow_query_log(0.0, hook)
        registry.record(stats_with(seconds=1.0))
        assert registry.queries == 1


class TestThreadSafety:
    def test_concurrent_records_never_lose_counts(self):
        registry = MetricsRegistry()

        def worker():
            for _ in range(200):
                registry.record(stats_with(bindings_produced=1, seconds=0.001))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.queries == 1600
        assert registry.totals()["bindings_produced"] == 1600
