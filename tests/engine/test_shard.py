"""Tests for process-pool sharded execution (repro.engine.shard).

Covers the pickle boundary (error specs, counter dicts, serialized
sources), merge correctness (stats summation, order stability, document
reassembly), per-shard budget isolation, cancellation fan-out, and the
fork-safety regression for the process-wide singleton caches.
"""

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.engine import shard as shard_module
from repro.engine.cache import shared_cache
from repro.engine.estimator import balanced_partition
from repro.engine.limits import CancelToken, QueryBudget
from repro.engine.metrics import global_registry
from repro.engine.options import MatchOptions
from repro.engine.plan_cache import shared_plans
from repro.engine.shard import (
    CorpusRun,
    ShardOutcome,
    ShardedExecutor,
    ShardTask,
    _cache_sizes,
    _describe_error,
    _evaluate_shard_task,
    _reject_tracing,
    _revive_error,
    merge_shard_results,
    merge_stats,
    serialize_sources,
    shard_document,
)
from repro.engine.stats import EvalStats
from repro.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    EvaluationError,
    QueryCancelled,
    ReproError,
)
from repro.session import QuerySession
from repro.ssd import parse_document, serialize

BIB = parse_document(
    "<bib>"
    '<book year="1999"><title>A</title></book>'
    '<book year="1990"><title>B</title></book>'
    '<book year="2001"><title>C</title></book>'
    "</bib>"
)

ALL_BOOKS = "query { book as B } construct { all { collect B } }"
RECENT = (
    "query { book as B { @year as Y } where Y >= 1995 }"
    " construct { recent { collect B } }"
)
ALL_TITLES = "query { title as T } construct { titles { collect T } }"


def small_corpus(count: int = 5) -> dict:
    corpus = {}
    for index in range(count):
        books = "".join(
            f'<book year="{1990 + j}"><title>t{index}-{j}</title></book>'
            for j in range(index + 1)
        )
        corpus[f"doc{index}"] = parse_document(f"<bib>{books}</bib>")
    return corpus


# -- pure merge/partition logic (no pools) ------------------------------------


class TestBalancedPartition:
    def test_exact_cover_without_duplicates(self):
        weights = [5, 1, 9, 3, 3, 7, 2]
        groups = balanced_partition(weights, 3)
        flat = sorted(position for group in groups for position in group)
        assert flat == list(range(len(weights)))
        assert len(groups) <= 3

    def test_loads_are_balanced(self):
        weights = [10, 10, 10, 1, 1, 1]
        groups = balanced_partition(weights, 3)
        loads = [sum(weights[position] for position in group) for group in groups]
        assert max(loads) <= 11

    def test_more_groups_than_items_drops_empties(self):
        groups = balanced_partition([4, 2], 5)
        assert len(groups) == 2
        assert all(group for group in groups)


class TestStatsMerge:
    def test_from_counters_round_trip(self):
        stats = EvalStats()
        stats.bindings_produced = 7
        stats.candidates_tried = 12
        stats.seconds = 0.25
        stats.extra["truncated"] = 1
        revived = EvalStats.from_counters(stats.as_dict())
        assert revived.as_dict() == stats.as_dict()

    def test_merge_stats_sums_counters(self):
        first, second = EvalStats(), EvalStats()
        first.bindings_produced, second.bindings_produced = 3, 4
        first.seconds, second.seconds = 0.5, 0.25
        outcomes = [
            ShardOutcome(position=i, result=None, counters=s.as_dict(), seconds=0.0)
            for i, s in enumerate((first, second))
        ]
        merged = merge_stats(outcomes)
        assert merged.bindings_produced == 7
        assert merged.seconds == pytest.approx(0.75)


class TestErrorRevival:
    def test_budget_error_revives_typed_with_details(self):
        spec = _describe_error(BudgetExceeded("max_bindings", 10, 11))
        revived = _revive_error(spec, EvalStats())
        assert type(revived) is BudgetExceeded
        assert (revived.limit, revived.allowed, revived.spent) == (
            "max_bindings", 10, 11,
        )

    def test_deadline_revives_as_subclass(self):
        spec = _describe_error(DeadlineExceeded("deadline_ms", 5, 9))
        revived = _revive_error(spec, EvalStats())
        assert type(revived) is DeadlineExceeded
        assert isinstance(revived, BudgetExceeded)

    def test_cancellation_revives_typed(self):
        spec = _describe_error(QueryCancelled(EvalStats()))
        assert type(_revive_error(spec, EvalStats())) is QueryCancelled

    def test_other_errors_degrade_to_evaluation_error(self):
        spec = _describe_error(EvaluationError("unknown variable Q"))
        revived = _revive_error(spec, EvalStats())
        assert type(revived) is EvaluationError
        assert "unknown variable Q" in str(revived)


class TestShardDocument:
    def test_contiguous_split_and_merge_round_trip(self):
        pieces = shard_document(BIB, 2)
        assert len(pieces) == 2
        merged = merge_shard_results(pieces)
        assert merged.root.equals(BIB.root)

    def test_split_preserves_document_order(self):
        titles = []
        for piece in shard_document(BIB, 3):
            titles.extend(
                t.text_content() for t in piece.root.iter("title")
            )
        assert titles == ["A", "B", "C"]

    def test_fewer_subtrees_than_shards(self):
        document = parse_document("<r><only/></r>")
        pieces = shard_document(document, 4)
        assert len(pieces) == 1
        assert pieces[0].root.equals(document.root)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_document(BIB, 0)

    def test_merge_requires_results(self):
        with pytest.raises(ValueError):
            merge_shard_results([])

    def test_merge_keeps_first_root_identity(self):
        left = parse_document('<out k="1"><a/></out>')
        right = parse_document("<out><b/></out>")
        merged = merge_shard_results([left, right])
        assert merged.root.tag == "out"
        assert merged.root.get("k") == "1"
        assert [c.tag for c in merged.root.child_elements()] == ["a", "b"]


class TestTaskSpecs:
    def test_serialize_sources_single_document(self):
        spec = serialize_sources(BIB)
        assert len(spec) == 1 and spec[0][0] == ""
        assert parse_document(spec[0][1]).root.equals(BIB.root)

    def test_serialize_sources_named_mapping(self):
        spec = serialize_sources({"bib": BIB})
        assert [name for name, _ in spec] == ["bib"]

    def test_tracing_rejected_before_any_fork(self):
        with pytest.raises(ValueError, match="pickle boundary"):
            _reject_tracing(MatchOptions(trace=True))
        with pytest.raises(ValueError):
            ShardedExecutor(max_workers=1).run_batch(
                [ALL_BOOKS], BIB, options=MatchOptions(trace=True)
            )

    def test_session_rejects_tracing_for_process_executor(self):
        session = QuerySession(BIB)
        with pytest.raises(ReproError, match="pickle boundary"):
            session.run_batch([ALL_BOOKS], executor="process", trace=True)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            QuerySession(BIB).run_batch([ALL_BOOKS], executor="rocket")

    def test_worker_entry_evaluates_in_process(self):
        # The worker entry point runs fine in-process too (no pool): this
        # pins the task → outcome contract without fork overhead.
        task = ShardTask(
            position=3, query=ALL_BOOKS, sources=serialize_sources(BIB)
        )
        outcome = _evaluate_shard_task(task)
        assert outcome.position == 3 and outcome.error is None
        result = parse_document(outcome.result)
        assert len(result.root.find_all("book")) == 3
        assert EvalStats.from_counters(outcome.counters).bindings_produced == 3

    def test_worker_entry_reports_budget_spec(self):
        task = ShardTask(
            position=0,
            query=ALL_BOOKS,
            sources=serialize_sources(BIB),
            budget=QueryBudget(max_bindings=1),
        )
        outcome = _evaluate_shard_task(task)
        assert outcome.result is None
        assert outcome.error[0] == "BudgetExceeded"


# -- process-pool integration -------------------------------------------------


class TestProcessExecution:
    def test_run_batch_matches_thread_executor(self):
        session = QuerySession(BIB)
        queries = [ALL_BOOKS, RECENT, ALL_TITLES]
        threaded = session.run_batch(queries)
        sharded = session.run_batch(queries, executor="process", max_workers=2)
        assert [row.index for row in sharded] == [0, 1, 2]
        for one, other in zip(threaded, sharded):
            assert serialize(other.result) == serialize(one.result)
            assert other.error is None
            assert (
                other.stats.bindings_produced == one.stats.bindings_produced
            )

    def test_budget_errors_isolate_to_their_rows(self):
        # 3 a-matches stay under the cap; 50 b-matches trip it.  Only the
        # b row may fail, and it must fail with the typed budget error.
        body = "<a/>" * 3 + "<b/>" * 50
        session = QuerySession(parse_document(f"<r>{body}</r>"))
        rows = session.run_batch(
            [
                "query { a as X } construct { out { collect X } }",
                "query { b as X } construct { out { collect X } }",
            ],
            executor="process",
            budget=QueryBudget(max_bindings=10),
        )
        assert rows[0].error is None
        assert len(rows[0].result.root.find_all("a")) == 3
        assert isinstance(rows[1].error, BudgetExceeded)
        assert rows[1].error.limit == "max_bindings"
        assert rows[1].result is None

    def test_cancellation_fans_out_to_every_row(self):
        cancel = CancelToken()
        cancel.cancel()
        rows = QuerySession(BIB).run_batch(
            [ALL_BOOKS, RECENT], executor="process", cancel=cancel
        )
        assert all(isinstance(row.error, QueryCancelled) for row in rows)

    def test_map_corpus_merges_in_corpus_order(self):
        corpus = small_corpus(5)
        run = ShardedExecutor(max_workers=2).map_corpus(
            ALL_BOOKS, corpus, shards=3
        )
        assert isinstance(run, CorpusRun) and run.ok
        # per-document results line up with single-process evaluation
        for position, name in enumerate(corpus):
            expected = QuerySession(corpus[name]).run(ALL_BOOKS)
            assert serialize(run.results[position]) == serialize(expected)
        # merged stats are the exact sum of the per-document rows
        merged = EvalStats()
        for row in run.stats_per_document:
            merged = merged + row
        assert run.stats.as_dict() == merged.as_dict()
        assert run.stats.bindings_produced == 1 + 2 + 3 + 4 + 5
        # shard bookkeeping covers the corpus exactly once
        assigned = sorted(name for group in run.shards for name in group)
        assert assigned == sorted(corpus)
        assert len(run.shard_seconds) == len(run.shards)
        assert run.merge_seconds >= 0

    def test_map_corpus_empty(self):
        run = ShardedExecutor(max_workers=1).map_corpus(ALL_BOOKS, {})
        assert run.ok and run.results == [] and run.shards == []

    def test_shard_document_pipeline_equals_single_process(self):
        single = QuerySession(BIB).run(ALL_TITLES)
        pieces = shard_document(BIB, 2)
        run = ShardedExecutor(max_workers=2).map_corpus(
            ALL_TITLES,
            {f"shard{i}": piece for i, piece in enumerate(pieces)},
            shards=len(pieces),
        )
        assert run.ok
        merged = merge_shard_results([r for r in run.results if r is not None])
        assert merged.root.equals(single.root)

    def test_map_corpus_budget_isolates_to_document(self):
        corpus = {
            "small": parse_document("<bib><book/></bib>"),
            "big": parse_document("<bib>" + "<book/>" * 40 + "</bib>"),
        }
        run = ShardedExecutor(max_workers=2).map_corpus(
            ALL_BOOKS, corpus, shards=2, budget=QueryBudget(max_bindings=5)
        )
        assert run.errors[0] is None
        assert isinstance(run.errors[1], BudgetExceeded)
        assert run.results[1] is None
        assert not run.ok


@pytest.mark.skipif(
    not hasattr(os, "register_at_fork"),
    reason="os.register_at_fork unavailable",
)
class TestForkSafety:
    def test_forked_worker_starts_with_empty_singletons(self):
        # Populate the parent's process-wide caches/metrics, then fork a
        # worker WITHOUT the pool initialiser: the register_at_fork hooks
        # alone must hand the child fresh locks and empty state.
        session = QuerySession(BIB, indexes=shared_cache, plans=shared_plans)
        stats = EvalStats()
        stats.bindings_produced = 1
        global_registry.record(stats)
        session.run(ALL_BOOKS)
        assert len(shared_cache) > 0 or len(shared_plans) > 0
        with ProcessPoolExecutor(
            max_workers=1, mp_context=multiprocessing.get_context("fork")
        ) as pool:
            child_sizes = pool.submit(_cache_sizes).result(timeout=60)
        assert child_sizes == (0, 0, 0)

    def test_reset_worker_state_clears_revival_memo(self):
        shard_module._revived_sources[(("", "<r/>"),)] = parse_document("<r/>")
        shard_module.reset_worker_state()
        assert shard_module._revived_sources == {}
