"""Unit tests for the set-at-a-time join layer (joins.py + pipeline.py)."""

import pytest

from repro.engine.joins import (
    EdgeRelation,
    equijoin_key,
    join_forest,
    semijoin_reduce,
)
from repro.engine.pipeline import (
    connected_components,
    evaluate_forest,
    is_forest,
    relation_for,
)
from repro.engine.stats import EvalStats


class TestEquijoinKey:
    def test_numeric_coercion_collides_equal_atoms(self):
        assert equijoin_key("007") == equijoin_key(7) == equijoin_key(7.0)

    def test_booleans_key_as_numbers(self):
        assert equijoin_key(True) == equijoin_key(1)
        assert equijoin_key(False) == equijoin_key(0)

    def test_strings_key_canonically(self):
        assert equijoin_key("abc") == equijoin_key("abc")
        assert equijoin_key("abc") != equijoin_key("abd")

    def test_none_is_none(self):
        assert equijoin_key(None) is None


class TestEdgeRelation:
    def relation(self):
        return EdgeRelation("a", "b", [(1, 10), (1, 11), (2, 10)], key=lambda x: x)

    def test_len_vars_other(self):
        rel = self.relation()
        assert len(rel) == 3
        assert rel.vars() == ("a", "b")
        assert rel.other("a") == "b"
        assert rel.other("b") == "a"

    def test_by_side_groups_partners(self):
        rel = self.relation()
        assert rel.by_side("a") == {1: [10, 11], 2: [10]}
        assert rel.by_side("b") == {10: [1, 2], 11: [1]}

    def test_restrict_drops_and_invalidates(self):
        rel = self.relation()
        rel.by_side("a")  # build the lazy grouping, then invalidate it
        removed = rel.restrict(left_keys={1}, right_keys={10})
        assert removed == 2
        assert rel.pairs == [(1, 10)]
        assert rel.by_side("a") == {1: [10]}

    def test_restrict_none_means_no_filter(self):
        rel = self.relation()
        assert rel.restrict() == 0
        assert rel.restrict(left_keys={1}) == 1


def chain_setup():
    """a -> b -> c chain with one dangling candidate at each level."""
    pools = {"a": [1, 2], "b": [10, 11, 12], "c": [100]}
    r_ab = EdgeRelation("a", "b", [(1, 10), (2, 11), (2, 12)], key=lambda x: x)
    r_bc = EdgeRelation("b", "c", [(10, 100)], key=lambda x: x)
    order = ["a", "b", "c"]
    parent_of = {"b": ("a", r_ab), "c": ("b", r_bc)}
    return pools, [r_ab, r_bc], order, parent_of


class TestSemijoinReduce:
    def test_full_reduction_removes_all_dangling(self):
        pools, relations, order, parent_of = chain_setup()
        stats = EvalStats()
        assert semijoin_reduce(pools, relations, order, parent_of, stats)
        # only a=1, b=10, c=100 survive: 2/11/12 reach no c
        assert pools == {"a": [1], "b": [10], "c": [100]}
        assert stats.semijoins > 0
        # dropped: b=11 and b=12 (no c partner), then a=2 (its b's are gone)
        assert stats.semijoin_dropped == 3
        for relation in relations:
            assert all(
                left in pools[relation.left_var]
                and right in pools[relation.right_var]
                for left, right in relation.pairs
            )

    def test_empty_pool_reports_no_results(self):
        pools, relations, order, parent_of = chain_setup()
        pools["c"] = []  # no c candidate at all
        assert not semijoin_reduce(pools, relations, order, parent_of, EvalStats())


class TestJoinForest:
    def test_joins_along_tree(self):
        pools, relations, order, parent_of = chain_setup()
        stats = EvalStats()
        assert semijoin_reduce(pools, relations, order, parent_of, stats)
        rows = list(join_forest(pools, order, parent_of, stats))
        assert rows == [{"a": 1, "b": 10, "c": 100}]
        assert stats.hashjoin_rows > 0

    def test_roots_cross_product(self):
        pools = {"a": [1, 2], "b": [10, 11]}
        rows = list(join_forest(pools, ["a", "b"], {}, EvalStats()))
        assert sorted((r["a"], r["b"]) for r in rows) == [
            (1, 10), (1, 11), (2, 10), (2, 11),
        ]

    def test_empty_root_pool_yields_nothing(self):
        assert list(join_forest({"a": []}, ["a"], {}, EvalStats())) == []


class TestForestHelpers:
    def test_connected_components(self):
        components = connected_components(
            ["a", "b", "c", "d"], [("a", "b"), ("c", "c")]
        )
        assert sorted(sorted(c, key=str) for c in components) == [
            ["a", "b"], ["c"], ["d"],
        ]

    def test_is_forest_accepts_trees_and_forests(self):
        assert is_forest(["a", "b", "c"], [("a", "b"), ("a", "c")])
        assert is_forest(["a", "b", "c", "d"], [("a", "b"), ("c", "d")])
        assert is_forest(["a"], [])

    def test_is_forest_rejects_cycles(self):
        assert not is_forest(["a", "b", "c"], [("a", "b"), ("b", "c"), ("c", "a")])

    def test_is_forest_rejects_parallel_edges_and_self_loops(self):
        assert not is_forest(["a", "b"], [("a", "b"), ("a", "b")])
        assert not is_forest(["a", "b"], [("b", "a"), ("a", "b")])
        assert not is_forest(["a"], [("a", "a")])


class TestEvaluateForest:
    def test_chain_query(self):
        stats = EvalStats()
        pools = {"a": [1, 2], "b": [10, 11, 12], "c": [100]}
        relations = [
            relation_for(
                "a", "b", [(1, 10), (2, 11), (2, 12)], stats, key=lambda x: x
            ),
            relation_for("b", "c", [(10, 100)], stats, key=lambda x: x),
        ]
        rows = list(evaluate_forest(pools, relations, stats))
        assert rows == [{"a": 1, "b": 10, "c": 100}]
        assert stats.relation_pairs == 4
        assert stats.edge_checks == 2

    def test_planner_off_agrees_with_planner_on(self):
        def build():
            stats = EvalStats()
            pools = {"a": [1, 2], "b": [10, 11], "c": [100, 101]}
            relations = [
                relation_for(
                    "b", "a", [(10, 1), (11, 2)], stats, key=lambda x: x
                ),
                relation_for(
                    "b", "c", [(10, 100), (10, 101)], stats, key=lambda x: x
                ),
            ]
            return pools, relations, stats

        pools, relations, stats = build()
        planned = sorted(
            tuple(sorted(r.items())) for r in evaluate_forest(pools, relations, stats)
        )
        pools, relations, stats = build()
        unplanned = sorted(
            tuple(sorted(r.items()))
            for r in evaluate_forest(pools, relations, stats, planner_enabled=False)
        )
        assert planned == unplanned == [
            (("a", 1), ("b", 10), ("c", 100)),
            (("a", 1), ("b", 10), ("c", 101)),
        ]

    def test_disconnected_trees_cross_product(self):
        stats = EvalStats()
        pools = {"a": [1], "b": [10], "x": [7, 8]}
        relations = [relation_for("a", "b", [(1, 10)], stats, key=lambda x: x)]
        rows = list(evaluate_forest(pools, relations, stats))
        assert sorted((r["a"], r["b"], r["x"]) for r in rows) == [
            (1, 10, 7), (1, 10, 8),
        ]

    def test_cyclic_structure_raises(self):
        stats = EvalStats()
        pools = {"a": [1], "b": [2], "c": [3]}
        relations = [
            relation_for("a", "b", [(1, 2)], stats, key=lambda x: x),
            relation_for("b", "c", [(2, 3)], stats, key=lambda x: x),
            relation_for("c", "a", [(3, 1)], stats, key=lambda x: x),
        ]
        with pytest.raises(ValueError, match="cyclic"):
            list(evaluate_forest(pools, relations, stats))

    def test_empty_relation_short_circuits(self):
        stats = EvalStats()
        pools = {"a": [1], "b": [10]}
        relations = [relation_for("a", "b", [], stats, key=lambda x: x)]
        assert list(evaluate_forest(pools, relations, stats)) == []
