"""Tests for document statistics, cardinality estimation and the
fragment cost model (repro.engine.estimator / repro.engine.planner)."""

import pytest

from repro.engine.estimator import (
    DISTINCT_CAP,
    CardinalityEstimator,
    DocumentStatistics,
    ValueSketch,
)
from repro.engine.index import DocumentIndex
from repro.engine.planner import choose_fragment_engine
from repro.ssd import parse_document
from repro.ssd.model import Document, Element

# bib (depth 0) -> 2 books + 1 paper (depth 1); books hold 3 titles total.
DOC = parse_document(
    "<bib>"
    '<book year="1999"><title>A</title><title>B</title></book>'
    '<book year="1999"><title>C</title></book>'
    "<paper/>"
    "</bib>"
)


@pytest.fixture(scope="module")
def stats() -> DocumentStatistics:
    return DocumentIndex(DOC).statistics


class TestDocumentStatistics:
    def test_counts_and_histograms(self, stats):
        assert stats.element_count == 7
        assert stats.tag_counts == {"bib": 1, "book": 2, "paper": 1, "title": 3}
        assert stats.depth_histogram == {0: 1, 1: 3, 2: 3}
        # bib fans out 3, first book 2, second book 1; paper + titles 0.
        assert stats.fanout_histogram == {0: 4, 1: 1, 2: 1, 3: 1}

    def test_direct_pairs_are_exact(self, stats):
        assert stats.child_pairs == {
            ("bib", "book"): 2,
            ("bib", "paper"): 1,
            ("book", "title"): 3,
        }
        assert stats.child_parent_totals == {"bib": 3, "book": 3}
        assert stats.child_child_totals == {"book": 2, "paper": 1, "title": 3}
        assert stats.child_total == 6  # element_count - 1

    def test_deep_pairs_are_exact(self, stats):
        # every element pairs with each of its ancestors exactly once
        assert stats.deep_pairs == {
            ("bib", "book"): 2,
            ("bib", "paper"): 1,
            ("bib", "title"): 3,
            ("book", "title"): 3,
        }
        assert stats.deep_total == 9  # sum of element depths

    def test_aggregates_are_consistent(self, stats):
        assert sum(stats.child_pairs.values()) == stats.child_total
        assert sum(stats.child_parent_totals.values()) == stats.child_total
        assert sum(stats.child_child_totals.values()) == stats.child_total
        assert sum(stats.deep_pairs.values()) == stats.deep_total
        assert sum(stats.deep_child_totals.values()) == stats.deep_total

    def test_attribute_sketches(self, stats):
        sketch = stats.attributes["year"]
        assert sketch == ValueSketch(occurrences=2, distinct=1, exact=True)
        assert sketch.selectivity == 1.0

    def test_sketch_saturates_at_the_cap(self):
        root = Element("r")
        for i in range(DISTINCT_CAP + 10):
            child = Element("c")
            child.set("id", str(i))
            root.append(child)
        stats = DocumentIndex(Document(root)).statistics
        sketch = stats.attributes["id"]
        assert sketch.occurrences == DISTINCT_CAP + 10
        assert sketch.distinct == DISTINCT_CAP
        assert not sketch.exact
        assert sketch.selectivity == 1.0 / DISTINCT_CAP

    def test_stats_epoch_increases_per_build(self):
        first = DocumentIndex(DOC)
        second = DocumentIndex(DOC)
        assert second.stats_epoch > first.stats_epoch


class TestCardinalityEstimator:
    @pytest.fixture(scope="class")
    def estimator(self) -> CardinalityEstimator:
        return CardinalityEstimator(DocumentIndex(DOC).statistics)

    def test_pools(self, estimator):
        assert estimator.pool("book") == 2
        assert estimator.pool("missing") == 0
        assert estimator.pool(None) == 7  # wildcard = whole document

    def test_edge_pairs_with_wildcards(self, estimator):
        assert estimator.edge_pairs("book", "title") == 3
        assert estimator.edge_pairs(None, "title") == 3
        assert estimator.edge_pairs("bib", None) == 3
        assert estimator.edge_pairs(None, None) == 6
        assert estimator.edge_pairs("book", "paper") == 0

    def test_deep_edge_pairs_with_wildcards(self, estimator):
        assert estimator.edge_pairs("bib", "title", deep=True) == 3
        assert estimator.edge_pairs("bib", None, deep=True) == 6
        assert estimator.edge_pairs(None, "title", deep=True) == 6
        assert estimator.edge_pairs(None, None, deep=True) == 9

    def test_scaled_pairs_follow_the_kept_fraction(self, estimator):
        # half the book pool kept -> half the pairs expected
        assert estimator.scaled_edge_pairs("book", "title", False, 1, 3) == 1.5
        # pools larger than the statistics know about clamp to 1
        assert estimator.scaled_edge_pairs("book", "title", False, 50, 50) == 3.0
        assert estimator.scaled_edge_pairs("book", "paper", False, 2, 1) == 0.0

    def test_attribute_selectivity(self, estimator):
        assert estimator.attribute_selectivity("year") == 1.0
        assert estimator.attribute_selectivity("unknown") == 1.0


class TestChooseFragmentEngine:
    def test_tiny_fragment_prefers_backtracking(self):
        # 2 books x 3 titles: the walk touches ~5 candidates, the pipeline
        # must materialise both pools plus the relation plus the rows
        costs = choose_fragment_engine({"B": 2, "T": 3}, [("B", "T", 3.0)])
        assert costs.engine == "backtracking"
        assert costs.backtracking < costs.pipeline
        assert costs.rows == 3.0

    def test_multiplicative_blowup_prefers_pipeline(self):
        # a chain whose intermediate rows outgrow the data size: the
        # node-at-a-time walk enumerates every intermediate row, the
        # pipeline stays data-size-bound
        pools = {"A": 10, "B": 10, "C": 10, "D": 10}
        edges = [("A", "B", 100.0), ("B", "C", 100.0), ("C", "D", 100.0)]
        costs = choose_fragment_engine(pools, edges)
        assert costs.engine == "pipeline"
        assert costs.pipeline < costs.backtracking
        assert costs.rows == pytest.approx(10_000.0)

    def test_ties_go_to_backtracking(self):
        costs = choose_fragment_engine({"A": 0}, [])
        assert costs.backtracking == costs.pipeline
        assert costs.engine == "backtracking"

    def test_planner_ablation_keeps_the_drawing_order(self):
        # selective-first ordering walks T (3) before B (1000); disabled,
        # the drawing order starts at the huge pool and pays for it
        pools = {"B": 1000, "T": 3}
        edges = [("B", "T", 3.0)]
        planned = choose_fragment_engine(pools, edges, enabled=True)
        drawn = choose_fragment_engine(pools, edges, enabled=False)
        assert planned.backtracking < drawn.backtracking
