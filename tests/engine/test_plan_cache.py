"""Tests for the compiled-plan cache (repro.engine.plan_cache) and its
wiring through QuerySession, tracing and stats-epoch invalidation."""

import pytest

from repro.engine.cache import DocumentIndexCache
from repro.engine.plan_cache import CompiledPlan, PlanCache
from repro.session import QuerySession
from repro.ssd import parse_document
from repro.ssd.model import Element

QUERY = "query { book as B { title as T } } construct { r { collect T } }"
OTHER = "query { book as B { @year as Y } } construct { r { collect Y } }"

XML = (
    "<bib>"
    '<book year="1999"><title>A</title></book>'
    '<book year="1990"><title>B</title></book>'
    "</bib>"
)


def plan(tag: str) -> CompiledPlan:
    return CompiledPlan(rule=tag, preflight_skip=False, graph_plans=())


class TestLruMechanics:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="max_entries"):
            PlanCache(max_entries=0)

    def test_eviction_drops_least_recently_used(self):
        cache = PlanCache(max_entries=2)
        cache.put("a", plan("a"))
        cache.put("b", plan("b"))
        cache.put("c", plan("c"))  # evicts "a"
        assert len(cache) == 2
        assert cache.get("a") is None
        assert cache.get("c").rule == "c"
        assert cache.stats()["evictions"] == 1

    def test_hit_refreshes_recency(self):
        cache = PlanCache(max_entries=2)
        cache.put("a", plan("a"))
        cache.put("b", plan("b"))
        assert cache.get("a").rule == "a"  # "b" is now the oldest
        cache.put("c", plan("c"))
        assert cache.get("b") is None
        assert cache.get("a").rule == "a"

    def test_counters_and_clear(self):
        cache = PlanCache()
        assert cache.get("missing") is None
        cache.put("k", plan("k"))
        assert cache.get("k") is not None
        cache.invalidate("k")
        assert len(cache) == 0
        assert cache.get("k") is None
        cache.put("k", plan("k"))
        cache.clear()
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2  # counters survive clear()


@pytest.fixture
def caches():
    return DocumentIndexCache(), PlanCache()


@pytest.fixture
def session(caches):
    indexes, plans = caches
    return QuerySession(parse_document(XML), indexes=indexes, plans=plans)


class TestSessionWiring:
    def test_repeat_run_hits_and_skips_parse(self, session):
        session.run(QUERY, trace=True)
        cold = session.current()
        assert cold.stats.plan_cache_misses == 1
        assert cold.stats.plan_cache_hits == 0
        assert cold.trace.find("parse")
        assert cold.trace.find("plan.cache.compile")
        assert cold.trace.find("plan.cache.miss")

        session.run(QUERY, trace=True)
        warm = session.current()
        assert warm.stats.plan_cache_hits == 1
        assert warm.stats.plan_cache_misses == 0
        # a hit skips parse + analysis entirely; the event says so
        assert not warm.trace.find("parse")
        assert not warm.trace.find("plan.cache.compile")
        assert warm.trace.find("plan.cache.hit")
        assert warm.result.text_content() == cold.result.text_content()

    def test_distinct_queries_get_distinct_entries(self, session, caches):
        _, plans = caches
        session.run(QUERY)
        session.run(OTHER)
        assert len(plans) == 2
        assert session.current().stats.plan_cache_misses == 1

    def test_stats_epoch_change_invalidates(self, caches):
        indexes, plans = caches
        document = parse_document(XML)
        session = QuerySession(document, indexes=indexes, plans=plans)
        session.run(QUERY)
        first = session.current()
        assert first.stats.plan_cache_misses == 1

        # mutate the document and invalidate its index: the rebuilt index
        # carries a fresh stats epoch, so the old plan key never matches
        book = Element("book")
        book.set("year", "2001")
        title = Element("title")
        title.append("C")
        book.append(title)
        document.root.append(book)
        assert indexes.invalidate(document)

        session.run(QUERY)
        second = session.current()
        assert second.stats.plan_cache_misses == 1
        assert second.stats.plan_cache_hits == 0
        # the recompiled plan sees the mutated document
        assert "C" in second.result.text_content()
        # the stale entry ages out of the LRU rather than being evented
        assert len(plans) == 2

    def test_semantically_equal_queries_share_one_entry(self, session, caches):
        _, plans = caches
        # textually different: branch order and variable names differ, but
        # canonicalization maps both to the same plan-cache key
        shuffled = (
            "query { book as BK { @year as YR  title as TI } } "
            "construct { r { collect TI } }"
        )
        original = (
            "query { book as B { title as T  @year as Y } } "
            "construct { r { collect T } }"
        )
        session.run(original)
        cold = session.current()
        assert cold.stats.plan_cache_misses == 1

        session.run(shuffled)
        warm = session.current()
        assert warm.stats.plan_cache_hits == 1
        assert warm.stats.plan_cache_misses == 0
        assert len(plans) == 1
        assert warm.result.text_content() == cold.result.text_content()

    def test_rewrite_off_keys_do_not_alias(self, session, caches):
        from repro import MatchOptions

        _, plans = caches
        raw = MatchOptions(rewrite=False)
        session.run(QUERY, options=raw)
        assert session.current().stats.plan_cache_misses == 1
        session.run(QUERY, options=raw)
        warm = session.current()
        assert warm.stats.plan_cache_hits == 1
        assert warm.stats.plan_cache_misses == 0
        assert len(plans) == 1

    def test_warm_hit_skips_preflight_and_lint(self, session):
        # satellite: analysis results ride with the compiled plan, so a
        # warm hit must not re-run the lint/pre-flight passes
        session.run(QUERY)
        cold = session.current()
        assert cold.stats.preflight_runs >= 1

        session.run(QUERY)
        warm = session.current()
        assert warm.stats.plan_cache_hits == 1
        assert warm.stats.preflight_runs == 0

    def test_run_batch_rows_take_deterministic_hits(self, caches):
        indexes, plans = caches
        session = QuerySession(
            parse_document(XML), indexes=indexes, plans=plans
        )
        results = session.run_batch([QUERY] * 6, max_workers=4)
        assert all(row.ok for row in results)
        # the calling thread prewarms the plan once; every worker row then
        # takes exactly one hit and never compiles
        for row in results:
            assert row.stats.plan_cache_hits == 1
            assert row.stats.plan_cache_misses == 0
        assert plans.stats()["misses"] == 1
        assert len(plans) == 1
