"""Unit tests for the shared DocumentIndex cache."""

from repro.engine.cache import DocumentIndexCache, get_index, invalidate
from repro.ssd import parse_document


def doc():
    return parse_document("<bib><book><title>A</title></book></bib>")


class TestDocumentIndexCache:
    def test_get_builds_once_and_reuses(self):
        cache = DocumentIndexCache()
        d = doc()
        first = cache.get(d)
        second = cache.get(d)
        assert first is second
        assert cache.misses == 1
        assert cache.hits == 1
        assert len(cache) == 1

    def test_distinct_documents_get_distinct_indexes(self):
        cache = DocumentIndexCache()
        a, b = doc(), doc()
        assert cache.get(a) is not cache.get(b)
        assert len(cache) == 2

    def test_peek_never_builds(self):
        cache = DocumentIndexCache()
        d = doc()
        assert cache.peek(d) is None
        assert cache.misses == 0
        cache.get(d)
        assert cache.peek(d) is not None

    def test_invalidate_drops_entry(self):
        cache = DocumentIndexCache()
        d = doc()
        first = cache.get(d)
        assert d in cache
        assert cache.invalidate(d)
        assert d not in cache
        assert not cache.invalidate(d)  # already gone
        assert cache.get(d) is not first  # rebuilt fresh

    def test_invalidate_after_mutation_sees_new_structure(self):
        cache = DocumentIndexCache()
        d = doc()
        assert cache.get(d).tag_count("book") == 1
        book = d.root.find("book")
        from repro.ssd.model import Element

        d.root.append(Element("book", children=[Element("title", children=["B"])]))
        assert book is not None
        cache.invalidate(d)
        assert cache.get(d).tag_count("book") == 2

    def test_clear(self):
        cache = DocumentIndexCache()
        cache.get(doc())
        cache.clear()
        assert len(cache) == 0

    def test_identity_checked_not_just_id(self):
        # a recycled id() must never alias a dead document's index
        cache = DocumentIndexCache()
        d = doc()
        index = cache.get(d)
        entry_ref, entry_index = cache._entries[id(d)]
        assert entry_ref() is d and entry_index is index


class TestSharedCacheHelpers:
    def test_get_index_and_invalidate(self):
        d = doc()
        index = get_index(d)
        assert get_index(d) is index
        assert invalidate(d)
        assert get_index(d) is not index
        invalidate(d)  # leave the shared cache clean


class TestLruBound:
    def test_eviction_at_bound(self):
        cache = DocumentIndexCache(max_documents=2)
        a, b, c = doc(), doc(), doc()
        cache.get(a)
        cache.get(b)
        assert len(cache) == 2 and cache.evictions == 0
        cache.get(c)  # evicts a, the least recently used
        assert len(cache) == 2
        assert cache.evictions == 1
        assert a not in cache and b in cache and c in cache

    def test_hit_refreshes_recency(self):
        cache = DocumentIndexCache(max_documents=2)
        a, b, c = doc(), doc(), doc()
        cache.get(a)
        cache.get(b)
        cache.get(a)  # a is now the most recently used
        cache.get(c)  # so b is the one evicted
        assert b not in cache and a in cache and c in cache

    def test_evicted_entry_rebuilds_as_miss(self):
        cache = DocumentIndexCache(max_documents=1)
        a, b = doc(), doc()
        first = cache.get(a)
        cache.get(b)
        assert cache.get(a) is not first
        assert cache.misses == 3 and cache.hits == 0

    def test_unbounded_never_evicts(self):
        cache = DocumentIndexCache(max_documents=None)
        documents = [doc() for _ in range(100)]
        for d in documents:
            cache.get(d)
        assert len(cache) == 100 and cache.evictions == 0

    def test_bound_validated(self):
        import pytest

        with pytest.raises(ValueError):
            DocumentIndexCache(max_documents=0)


class TestStatsMirroring:
    def test_get_mirrors_hit_and_miss_into_stats(self):
        from repro.engine.stats import EvalStats

        cache = DocumentIndexCache()
        d = doc()
        stats = EvalStats()
        cache.get(d, stats=stats)
        assert stats.cache_misses == 1 and stats.cache_hits == 0
        cache.get(d, stats=stats)
        assert stats.cache_misses == 1 and stats.cache_hits == 1


class TestDropCallbackIdentity:
    """Regressions for the weakref-callback eviction race.

    ``id()`` values are recycled: after an entry is replaced (eviction,
    invalidate + rebuild, or a new document landing on a reused id), the
    *old* document's death callback must not remove the new entry."""

    def test_stale_callback_never_drops_recycled_key(self):
        import gc
        import weakref

        from repro.engine.index import DocumentIndex

        cache = DocumentIndexCache()
        a = doc()
        cache.get(a)
        key = id(a)
        stale_ref = cache._entries[key][0]  # keeps a's ref (and callback) alive
        # simulate id() recycling: a new live document now owns the key
        b = doc()
        cache._entries[key] = (weakref.ref(b), DocumentIndex(b))
        del a
        gc.collect()  # fires a's death callback with the stale ref
        assert key in cache._entries
        assert cache._entries[key][0]() is b
        assert stale_ref() is None

    def test_callback_defers_when_lock_busy(self):
        # A GC run can fire the callback on a thread that already holds the
        # (non-reentrant) cache lock; it must defer, not deadlock.
        cache = DocumentIndexCache()
        a = doc()
        cache.get(a)
        key = id(a)
        ref = cache._entries[key][0]
        callback = cache._make_drop_callback(key)
        with cache._lock:
            callback(ref)  # simulated re-entrant firing
            assert cache._pending_drops == [(key, ref)]
            assert key in cache._entries  # removal deferred, not performed
        cache.get(doc())  # any later cache operation drains the deferral
        assert key not in cache._entries
        assert cache._pending_drops == []

    def test_deferred_drop_ignores_recycled_key(self):
        import weakref

        from repro.engine.index import DocumentIndex

        cache = DocumentIndexCache()
        a = doc()
        cache.get(a)
        key = id(a)
        stale_ref = cache._entries[key][0]
        callback = cache._make_drop_callback(key)
        with cache._lock:
            callback(stale_ref)  # deferred while the lock is busy
        b = doc()
        cache._entries[key] = (weakref.ref(b), DocumentIndex(b))
        cache.get(doc())  # drains the deferral; identity check protects b
        assert cache._entries[key][0]() is b

    def test_clear_discards_pending_drops(self):
        cache = DocumentIndexCache()
        a = doc()
        cache.get(a)
        key = id(a)
        with cache._lock:
            cache._make_drop_callback(key)(cache._entries[key][0])
        cache.clear()
        assert cache._pending_drops == []
        assert len(cache) == 0


class TestRacedBuildRecency:
    """Regression: the "another thread built it first" return path must
    refresh LRU recency and mirror the hit into the caller's stats."""

    def _race(self, cache, winner_doc, monkeypatch):
        """Make the next ``cache.get(winner_doc)`` lose the build race."""
        import weakref

        import repro.engine.cache as cache_mod
        from repro.engine.index import DocumentIndex

        real_cls = DocumentIndex
        raced_index = real_cls(winner_doc)

        def fake_index(document):
            # while "we" are building, another thread finishes first and
            # inserts its entry at the LRU (oldest) position
            cache._entries[id(winner_doc)] = (
                weakref.ref(winner_doc),
                raced_index,
            )
            for key in [k for k in cache._entries if k != id(winner_doc)]:
                cache._entries[key] = cache._entries.pop(key)
            return real_cls(document)

        monkeypatch.setattr(cache_mod, "DocumentIndex", fake_index)
        return raced_index

    def test_raced_return_counts_hit_and_mirrors_stats(self, monkeypatch):
        from repro.engine.stats import EvalStats

        cache = DocumentIndexCache()
        c = doc()
        raced_index = self._race(cache, c, monkeypatch)
        stats = EvalStats()
        assert cache.get(c, stats=stats) is raced_index
        assert cache.hits == 1
        assert stats.cache_hits == 1
        # the losing build still counted its miss before racing
        assert stats.cache_misses == 1

    def test_raced_return_refreshes_recency(self, monkeypatch):
        cache = DocumentIndexCache(max_documents=2)
        a, b = doc(), doc()
        cache.get(a)
        cache.get(b)
        c = doc()
        self._race(cache, c, monkeypatch)
        cache.get(c)  # raced: c entered at LRU position, hit must refresh
        assert list(cache._entries)[-1] == id(c)

    def test_raced_return_records_raced_span_outcome(self, monkeypatch):
        from repro.engine.stats import EvalStats
        from repro.engine.trace import Tracer

        cache = DocumentIndexCache()
        c = doc()
        self._race(cache, c, monkeypatch)
        stats = EvalStats()
        stats.trace = Tracer()
        cache.get(c, stats=stats)
        lookups = stats.trace.find("index.lookup")
        assert [span["outcome"] for span in lookups] == ["raced"]


class TestLookupTraceSpans:
    def test_outcomes_built_then_hit(self):
        from repro.engine.stats import EvalStats
        from repro.engine.trace import Tracer

        cache = DocumentIndexCache()
        d = doc()
        stats = EvalStats()
        stats.trace = Tracer()
        cache.get(d, stats=stats)
        cache.get(d, stats=stats)
        lookups = stats.trace.find("index.lookup")
        assert [span["outcome"] for span in lookups] == ["built", "hit"]
        assert all(span["elements"] > 0 for span in lookups)


class TestThreadSafety:
    def test_concurrent_hits_share_one_index(self):
        import threading

        cache = DocumentIndexCache(max_documents=4)
        d = doc()
        results = []

        def worker():
            for _ in range(200):
                results.append(cache.get(d))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(map(id, results))) == 1
        assert cache.misses >= 1  # concurrent first builds may race benignly
        assert len(cache) == 1
