"""Unit tests for the shared DocumentIndex cache."""

from repro.engine.cache import DocumentIndexCache, get_index, invalidate
from repro.ssd import parse_document


def doc():
    return parse_document("<bib><book><title>A</title></book></bib>")


class TestDocumentIndexCache:
    def test_get_builds_once_and_reuses(self):
        cache = DocumentIndexCache()
        d = doc()
        first = cache.get(d)
        second = cache.get(d)
        assert first is second
        assert cache.misses == 1
        assert cache.hits == 1
        assert len(cache) == 1

    def test_distinct_documents_get_distinct_indexes(self):
        cache = DocumentIndexCache()
        a, b = doc(), doc()
        assert cache.get(a) is not cache.get(b)
        assert len(cache) == 2

    def test_peek_never_builds(self):
        cache = DocumentIndexCache()
        d = doc()
        assert cache.peek(d) is None
        assert cache.misses == 0
        cache.get(d)
        assert cache.peek(d) is not None

    def test_invalidate_drops_entry(self):
        cache = DocumentIndexCache()
        d = doc()
        first = cache.get(d)
        assert d in cache
        assert cache.invalidate(d)
        assert d not in cache
        assert not cache.invalidate(d)  # already gone
        assert cache.get(d) is not first  # rebuilt fresh

    def test_invalidate_after_mutation_sees_new_structure(self):
        cache = DocumentIndexCache()
        d = doc()
        assert cache.get(d).tag_count("book") == 1
        book = d.root.find("book")
        from repro.ssd.model import Element

        d.root.append(Element("book", children=[Element("title", children=["B"])]))
        assert book is not None
        cache.invalidate(d)
        assert cache.get(d).tag_count("book") == 2

    def test_clear(self):
        cache = DocumentIndexCache()
        cache.get(doc())
        cache.clear()
        assert len(cache) == 0

    def test_identity_checked_not_just_id(self):
        # a recycled id() must never alias a dead document's index
        cache = DocumentIndexCache()
        d = doc()
        index = cache.get(d)
        entry_ref, entry_index = cache._entries[id(d)]
        assert entry_ref() is d and entry_index is index


class TestSharedCacheHelpers:
    def test_get_index_and_invalidate(self):
        d = doc()
        index = get_index(d)
        assert get_index(d) is index
        assert invalidate(d)
        assert get_index(d) is not index
        invalidate(d)  # leave the shared cache clean
