"""Unit tests for the shared DocumentIndex cache."""

from repro.engine.cache import DocumentIndexCache, get_index, invalidate
from repro.ssd import parse_document


def doc():
    return parse_document("<bib><book><title>A</title></book></bib>")


class TestDocumentIndexCache:
    def test_get_builds_once_and_reuses(self):
        cache = DocumentIndexCache()
        d = doc()
        first = cache.get(d)
        second = cache.get(d)
        assert first is second
        assert cache.misses == 1
        assert cache.hits == 1
        assert len(cache) == 1

    def test_distinct_documents_get_distinct_indexes(self):
        cache = DocumentIndexCache()
        a, b = doc(), doc()
        assert cache.get(a) is not cache.get(b)
        assert len(cache) == 2

    def test_peek_never_builds(self):
        cache = DocumentIndexCache()
        d = doc()
        assert cache.peek(d) is None
        assert cache.misses == 0
        cache.get(d)
        assert cache.peek(d) is not None

    def test_invalidate_drops_entry(self):
        cache = DocumentIndexCache()
        d = doc()
        first = cache.get(d)
        assert d in cache
        assert cache.invalidate(d)
        assert d not in cache
        assert not cache.invalidate(d)  # already gone
        assert cache.get(d) is not first  # rebuilt fresh

    def test_invalidate_after_mutation_sees_new_structure(self):
        cache = DocumentIndexCache()
        d = doc()
        assert cache.get(d).tag_count("book") == 1
        book = d.root.find("book")
        from repro.ssd.model import Element

        d.root.append(Element("book", children=[Element("title", children=["B"])]))
        assert book is not None
        cache.invalidate(d)
        assert cache.get(d).tag_count("book") == 2

    def test_clear(self):
        cache = DocumentIndexCache()
        cache.get(doc())
        cache.clear()
        assert len(cache) == 0

    def test_identity_checked_not_just_id(self):
        # a recycled id() must never alias a dead document's index
        cache = DocumentIndexCache()
        d = doc()
        index = cache.get(d)
        entry_ref, entry_index = cache._entries[id(d)]
        assert entry_ref() is d and entry_index is index


class TestSharedCacheHelpers:
    def test_get_index_and_invalidate(self):
        d = doc()
        index = get_index(d)
        assert get_index(d) is index
        assert invalidate(d)
        assert get_index(d) is not index
        invalidate(d)  # leave the shared cache clean


class TestLruBound:
    def test_eviction_at_bound(self):
        cache = DocumentIndexCache(max_documents=2)
        a, b, c = doc(), doc(), doc()
        cache.get(a)
        cache.get(b)
        assert len(cache) == 2 and cache.evictions == 0
        cache.get(c)  # evicts a, the least recently used
        assert len(cache) == 2
        assert cache.evictions == 1
        assert a not in cache and b in cache and c in cache

    def test_hit_refreshes_recency(self):
        cache = DocumentIndexCache(max_documents=2)
        a, b, c = doc(), doc(), doc()
        cache.get(a)
        cache.get(b)
        cache.get(a)  # a is now the most recently used
        cache.get(c)  # so b is the one evicted
        assert b not in cache and a in cache and c in cache

    def test_evicted_entry_rebuilds_as_miss(self):
        cache = DocumentIndexCache(max_documents=1)
        a, b = doc(), doc()
        first = cache.get(a)
        cache.get(b)
        assert cache.get(a) is not first
        assert cache.misses == 3 and cache.hits == 0

    def test_unbounded_never_evicts(self):
        cache = DocumentIndexCache(max_documents=None)
        documents = [doc() for _ in range(100)]
        for d in documents:
            cache.get(d)
        assert len(cache) == 100 and cache.evictions == 0

    def test_bound_validated(self):
        import pytest

        with pytest.raises(ValueError):
            DocumentIndexCache(max_documents=0)


class TestStatsMirroring:
    def test_get_mirrors_hit_and_miss_into_stats(self):
        from repro.engine.stats import EvalStats

        cache = DocumentIndexCache()
        d = doc()
        stats = EvalStats()
        cache.get(d, stats=stats)
        assert stats.cache_misses == 1 and stats.cache_hits == 0
        cache.get(d, stats=stats)
        assert stats.cache_misses == 1 and stats.cache_hits == 1


class TestThreadSafety:
    def test_concurrent_hits_share_one_index(self):
        import threading

        cache = DocumentIndexCache(max_documents=4)
        d = doc()
        results = []

        def worker():
            for _ in range(200):
                results.append(cache.get(d))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(map(id, results))) == 1
        assert cache.misses >= 1  # concurrent first builds may race benignly
        assert len(cache) == 1
