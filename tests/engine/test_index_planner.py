"""Unit tests for DocumentIndex, planner and stats."""

from repro.engine import DocumentIndex, EvalStats, plan_order
from repro.ssd import parse_document


def doc():
    return parse_document(
        '<bib>'
        '<book year="1999"><title>A</title></book>'
        '<book year="2000"><title>B</title></book>'
        '<article><title>C</title></article>'
        '</bib>'
    )


class TestDocumentIndex:
    def test_elements_with_tag(self):
        idx = DocumentIndex(doc())
        assert len(idx.elements_with_tag("book")) == 2
        assert len(idx.elements_with_tag("title")) == 3
        assert idx.elements_with_tag("nope") == ()

    def test_pools_are_immutable(self):
        # callers must not be able to corrupt the index through a lookup
        idx = DocumentIndex(doc())
        assert isinstance(idx.elements_with_tag("book"), tuple)
        assert isinstance(idx.elements_with_attribute("year"), tuple)

    def test_elements_with_attribute(self):
        idx = DocumentIndex(doc())
        assert len(idx.elements_with_attribute("year")) == 2
        assert idx.elements_with_attribute("nope") == ()

    def test_counts(self):
        idx = DocumentIndex(doc())
        assert idx.element_count() == 7
        assert idx.tag_count("article") == 1
        assert idx.tags() == {"bib", "book", "article", "title"}

    def test_positions_are_document_order(self):
        idx = DocumentIndex(doc())
        positions = [idx.position(e) for e in idx.all_elements()]
        assert positions == sorted(positions)

    def test_selectivity(self):
        idx = DocumentIndex(doc())
        assert idx.selectivity("book") == 2
        assert idx.selectivity(None) == 7


class TestIntervalEncoding:
    def test_intervals_nest_like_subtrees(self):
        # Labels are gap-spaced, not dense: assert the containment
        # invariants (root covers everything, subtrees nest or are
        # disjoint), not exact values.
        idx = DocumentIndex(doc())
        root = idx.document.root
        pre, post = idx.interval(root)
        elements = list(idx.all_elements())
        for element in elements:
            lo, hi = idx.interval(element)
            assert pre <= lo <= hi <= post
        for a in elements:
            for b in elements:
                a_lo, a_hi = idx.interval(a)
                b_lo, b_hi = idx.interval(b)
                nested = (a_lo <= b_lo and b_hi <= a_hi) or (
                    b_lo <= a_lo and a_hi <= b_hi
                )
                disjoint = a_hi < b_lo or b_hi < a_lo
                assert nested or disjoint, (a, b)

    def test_is_ancestor_matches_ancestors_walk(self):
        idx = DocumentIndex(doc())
        elements = list(idx.all_elements())
        for a in elements:
            for b in elements:
                expected = any(anc is a for anc in b.ancestors())
                assert idx.is_ancestor(a, b) == expected, (a, b)

    def test_descendants_with_tag_matches_subtree_walk(self):
        idx = DocumentIndex(doc())
        for element in idx.all_elements():
            for tag in idx.tags() | {"nope"}:
                expected = [
                    e for e in element.iter(tag) if e is not element
                ]
                got = list(idx.descendants_with_tag(element, tag))
                assert got == expected, (element, tag)

    def test_descendants_document_order(self):
        idx = DocumentIndex(doc())
        root = idx.document.root
        walked = [e for e in root.iter() if e is not root]
        assert idx.descendants(root) == walked

    def test_tag_count_within(self):
        idx = DocumentIndex(doc())
        root = idx.document.root
        assert idx.tag_count_within(root, "title") == 3
        assert idx.tag_count_within(root, None) == idx.element_count() - 1
        book = idx.elements_with_tag("book")[0]
        assert idx.tag_count_within(book, "title") == 1
        assert idx.tag_count_within(book, "book") == 0

    def test_depth_and_covers(self):
        idx = DocumentIndex(doc())
        root = idx.document.root
        assert idx.depth(root) == 0
        title = idx.elements_with_tag("title")[0]
        assert idx.depth(title) == 2
        assert idx.covers(title)
        from repro.ssd.model import Element

        assert not idx.covers(Element("stranger"))


class TestPlanner:
    def test_most_selective_first(self):
        order = plan_order(
            ["a", "b", "c"],
            estimate=lambda n: {"a": 100, "b": 1, "c": 10}[n],
            adjacency={},
        )
        assert order[0] == "b"

    def test_connected_expansion(self):
        # star pattern: centre 'c' adjacent to all; selective leaf 'l1'
        order = plan_order(
            ["c", "l1", "l2"],
            estimate=lambda n: {"c": 50, "l1": 1, "l2": 40}[n],
            adjacency={"c": ["l1", "l2"], "l1": ["c"], "l2": ["c"]},
        )
        assert order == ["l1", "c", "l2"]

    def test_disabled_preserves_input(self):
        nodes = ["z", "a", "m"]
        assert plan_order(nodes, lambda n: 1, {}, enabled=False) == nodes

    def test_every_node_exactly_once(self):
        nodes = list("abcdef")
        order = plan_order(nodes, lambda n: ord(n), {"a": ["f"]})
        assert sorted(order) == sorted(nodes)


class TestEvalStats:
    def test_bump_and_dict(self):
        stats = EvalStats()
        stats.candidates_tried += 3
        stats.bump("custom")
        stats.bump("custom", 2)
        flat = stats.as_dict()
        assert flat["candidates_tried"] == 3
        assert flat["custom"] == 3

    def test_addition(self):
        a = EvalStats(candidates_tried=1)
        a.bump("x")
        b = EvalStats(candidates_tried=2, bindings_produced=5)
        b.bump("x", 4)
        total = a + b
        assert total.candidates_tried == 3
        assert total.bindings_produced == 5
        assert total.extra["x"] == 5
