"""Unit tests for DocumentIndex, planner and stats."""

from repro.engine import DocumentIndex, EvalStats, plan_order
from repro.ssd import parse_document


def doc():
    return parse_document(
        '<bib>'
        '<book year="1999"><title>A</title></book>'
        '<book year="2000"><title>B</title></book>'
        '<article><title>C</title></article>'
        '</bib>'
    )


class TestDocumentIndex:
    def test_elements_with_tag(self):
        idx = DocumentIndex(doc())
        assert len(idx.elements_with_tag("book")) == 2
        assert len(idx.elements_with_tag("title")) == 3
        assert idx.elements_with_tag("nope") == []

    def test_elements_with_attribute(self):
        idx = DocumentIndex(doc())
        assert len(idx.elements_with_attribute("year")) == 2

    def test_counts(self):
        idx = DocumentIndex(doc())
        assert idx.element_count() == 7
        assert idx.tag_count("article") == 1
        assert idx.tags() == {"bib", "book", "article", "title"}

    def test_positions_are_document_order(self):
        idx = DocumentIndex(doc())
        positions = [idx.position(e) for e in idx.all_elements()]
        assert positions == sorted(positions)

    def test_selectivity(self):
        idx = DocumentIndex(doc())
        assert idx.selectivity("book") == 2
        assert idx.selectivity(None) == 7


class TestPlanner:
    def test_most_selective_first(self):
        order = plan_order(
            ["a", "b", "c"],
            estimate=lambda n: {"a": 100, "b": 1, "c": 10}[n],
            adjacency={},
        )
        assert order[0] == "b"

    def test_connected_expansion(self):
        # star pattern: centre 'c' adjacent to all; selective leaf 'l1'
        order = plan_order(
            ["c", "l1", "l2"],
            estimate=lambda n: {"c": 50, "l1": 1, "l2": 40}[n],
            adjacency={"c": ["l1", "l2"], "l1": ["c"], "l2": ["c"]},
        )
        assert order == ["l1", "c", "l2"]

    def test_disabled_preserves_input(self):
        nodes = ["z", "a", "m"]
        assert plan_order(nodes, lambda n: 1, {}, enabled=False) == nodes

    def test_every_node_exactly_once(self):
        nodes = list("abcdef")
        order = plan_order(nodes, lambda n: ord(n), {"a": ["f"]})
        assert sorted(order) == sorted(nodes)


class TestEvalStats:
    def test_bump_and_dict(self):
        stats = EvalStats()
        stats.candidates_tried += 3
        stats.bump("custom")
        stats.bump("custom", 2)
        flat = stats.as_dict()
        assert flat["candidates_tried"] == 3
        assert flat["custom"] == 3

    def test_addition(self):
        a = EvalStats(candidates_tried=1)
        a.bump("x")
        b = EvalStats(candidates_tried=2, bindings_produced=5)
        b.bump("x", 4)
        total = a + b
        assert total.candidates_tried == 3
        assert total.bindings_produced == 5
        assert total.extra["x"] == 5
