"""Unit tests for the span recorder (repro.engine.trace)."""

import json

from repro.engine.trace import Span, Tracer, span as trace_span


class TestSpan:
    def test_attributes_mapping(self):
        s = Span("work", 0.0)
        s["rows"] = 3
        assert s["rows"] == 3
        assert s.attributes == {"rows": 3}

    def test_seconds_zero_until_closed(self):
        s = Span("work", 5.0)
        assert s.seconds == 0.0

    def test_find_recurses(self):
        root = Span("a", 0.0)
        mid = Span("b", 0.0)
        leaf = Span("a", 0.0)
        mid.children.append(leaf)
        root.children.append(mid)
        assert root.find("a") == [root, leaf]
        assert root.find("b") == [mid]
        assert root.find("missing") == []


class TestTracer:
    def test_nesting_follows_with_blocks(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", depth=1):
                tracer.event("tick", n=1)
            with tracer.span("sibling"):
                pass
        assert [s.name for s in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [c.name for c in outer.children] == ["inner", "sibling"]
        inner = outer.children[0]
        assert inner["depth"] == 1
        assert [c.name for c in inner.children] == ["tick"]

    def test_span_records_duration_and_pops_on_error(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert tracer.roots[0].seconds > 0
        with tracer.span("after"):
            pass
        # the failed span must not leave the stack dirty
        assert [s.name for s in tracer.roots] == ["boom", "after"]

    def test_event_is_zero_duration(self):
        tracer = Tracer()
        with tracer.span("parent"):
            event = tracer.event("mark", k="v")
        assert event.seconds == 0.0
        assert tracer.roots[0].children[0]["k"] == "v"

    def test_find_spans_across_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            with tracer.span("a"):
                pass
        assert len(tracer.find("a")) == 2

    def test_as_dict_is_json_ready(self):
        tracer = Tracer()
        with tracer.span("outer", label="x"):
            tracer.event("inner", n=2)
        payload = json.loads(json.dumps(tracer.as_dict()))
        outer = payload["spans"][0]
        assert outer["name"] == "outer"
        assert outer["attributes"] == {"label": "x"}
        assert outer["children"][0]["name"] == "inner"

    def test_render_text_shows_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.event("mark", var="B")
        text = tracer.render_text()
        assert "outer" in text
        assert "mark" in text
        assert "var=B" in text


class TestModuleSpanHelper:
    def test_none_tracer_yields_none(self):
        with trace_span(None, "anything", k=1) as opened:
            assert opened is None

    def test_real_tracer_records(self):
        tracer = Tracer()
        with trace_span(tracer, "step", k=1) as opened:
            assert opened is not None
            opened["extra"] = 2
        assert tracer.roots[0].attributes == {"k": 1, "extra": 2}
