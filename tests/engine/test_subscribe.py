"""Continuous queries (repro.engine.subscribe): footprints, deltas, skips."""

import threading

import pytest

from repro.engine.mutate import MutationBatch, TouchedRegion
from repro.engine.subscribe import QueryFootprint
from repro.errors import ReproError
from repro.session import QuerySession
from repro.ssd import parse_document
from repro.ssd.model import Element, Text
from repro.xmlgl.dsl import parse_rule

DOC = (
    '<bib>'
    '<book year="1999"><title>A</title></book>'
    '<book year="2000"><title>B</title></book>'
    '<article><title>C</title></article>'
    '</bib>'
)

BOOKS = "query { book as B { title as T } } construct { r { collect T } }"


def book(text, year):
    element = Element("book", attributes={"year": year})
    title = Element("title")
    title.append(Text(text))
    element.append(title)
    return element


class TestQueryFootprint:
    def test_tags_and_attributes(self):
        rule = parse_rule(
            "query { book as B { @year as Y  title as T } } "
            "construct { r { collect T } }"
        )
        footprint = QueryFootprint.of_rule(rule)
        assert not footprint.wildcard
        assert {"book", "title"} <= footprint.tags
        assert "year" in footprint.attributes

    def test_wildcard(self):
        rule = parse_rule("query { * as X } construct { r { count(X) } }")
        assert QueryFootprint.of_rule(rule).wildcard

    def test_text_circle_sets_immediate(self):
        rule = parse_rule(
            "query { title as T { text as V } } construct { r { collect V } }"
        )
        footprint = QueryFootprint.of_rule(rule)
        assert footprint.uses_immediate_text

    def test_condition_content_read_sets_both_text_flags(self):
        rule = parse_rule(
            "query { book as B where B = 'x' } construct { r { count(B) } }"
        )
        footprint = QueryFootprint.of_rule(rule)
        assert footprint.uses_immediate_text and footprint.uses_deep_text

    def test_condition_attribute_read_collected(self):
        rule = parse_rule(
            "query { book as B where B.year >= 1999 } "
            "construct { r { count(B) } }"
        )
        assert "year" in QueryFootprint.of_rule(rule).attributes


class TestAffectedBy:
    FOOTPRINT = QueryFootprint(
        tags=frozenset({"book", "title"}),
        attributes=frozenset({"year"}),
        uses_deep_text=True,
    )

    def test_structural_hit_on_tag(self):
        touched = TouchedRegion(
            tags=frozenset({"book"}), structural=True, values_changed=True
        )
        assert self.FOOTPRINT.affected_by(touched)

    def test_structural_miss_on_unrelated_tag(self):
        touched = TouchedRegion(
            tags=frozenset({"author"}),
            ancestor_tags=frozenset({"bib"}),
            structural=True,
            values_changed=True,
        )
        assert not self.FOOTPRINT.affected_by(touched)

    def test_attribute_intersection(self):
        touched = TouchedRegion(
            tags=frozenset({"article"}), attributes=frozenset({"year"})
        )
        assert self.FOOTPRINT.affected_by(touched)

    def test_deep_text_sees_edit_under_matched_ancestor(self):
        # A value edit on some <note> below a <book>: no footprint tag was
        # touched directly, but the book's recursive text changed.
        touched = TouchedRegion(
            tags=frozenset({"note"}),
            ancestor_tags=frozenset({"bib", "book"}),
            values_changed=True,
        )
        assert self.FOOTPRINT.affected_by(touched)

    def test_immediate_text_ignores_ancestor_chain(self):
        footprint = QueryFootprint(
            tags=frozenset({"book"}), uses_immediate_text=True
        )
        touched = TouchedRegion(
            tags=frozenset({"note"}),
            ancestor_tags=frozenset({"book"}),
            values_changed=True,
        )
        assert not footprint.affected_by(touched)

    def test_wildcard_sees_every_structural_edit(self):
        footprint = QueryFootprint(wildcard=True)
        assert footprint.affected_by(TouchedRegion(structural=True))
        assert not footprint.affected_by(TouchedRegion(values_changed=True))


class TestSubscription:
    def make(self, query=BOOKS):
        session = QuerySession(parse_document(DOC))
        return session, session.subscribe(query)

    def test_initial_rows_are_live(self):
        _, subscription = self.make()
        assert len(subscription.rows()) == 2
        assert subscription.evals == 1

    def test_relevant_insert_produces_added_delta(self):
        session, subscription = self.make()
        result = session.mutate(
            MutationBatch().insert_subtree(
                session._sources.root, book("D", "2001")
            )
        )
        deltas = subscription.poll()
        assert len(deltas) == 1
        assert deltas[0].revision == result.doc_revision
        assert len(deltas[0].added) == 1 and not deltas[0].removed
        assert len(subscription.rows()) == 3

    def test_delete_produces_removed_delta(self):
        session, subscription = self.make()
        target = session._sources.root.child_elements()[0]
        session.mutate(MutationBatch().delete_subtree(target))
        [delta] = subscription.poll()
        assert len(delta.removed) == 1 and not delta.added

    def test_irrelevant_mutation_is_skipped_without_eval(self):
        session, subscription = self.make()
        evals = subscription.evals
        session.mutate(
            MutationBatch().insert_subtree(
                session._sources.root, Element("journal")
            )
        )
        assert subscription.skips == 1
        assert subscription.evals == evals
        assert subscription.poll() == []
        # But the subscription still observed the commit.
        assert subscription.last_revision == 1

    def test_deltas_queue_in_revision_order(self):
        session, subscription = self.make()
        root = session._sources.root
        session.mutate(MutationBatch().insert_subtree(root, book("D", "2001")))
        session.mutate(MutationBatch().insert_subtree(root, book("E", "2002")))
        revisions = [delta.revision for delta in subscription.poll()]
        assert revisions == sorted(revisions) and len(revisions) == 2

    def test_wait_blocks_until_commit(self):
        session, subscription = self.make()
        root = session._sources.root

        def commit():
            session.mutate(
                MutationBatch().insert_subtree(root, book("D", "2001"))
            )

        thread = threading.Thread(target=commit)
        thread.start()
        deltas = subscription.wait(timeout=5.0)
        thread.join()
        assert len(deltas) == 1

    def test_wait_pending_does_not_drain(self):
        session, subscription = self.make()
        session.mutate(
            MutationBatch().insert_subtree(
                session._sources.root, book("D", "2001")
            )
        )
        assert subscription.wait_pending(timeout=0.1)
        assert subscription.pending == 1  # still queued
        assert len(subscription.poll()) == 1

    def test_wait_pending_times_out_false(self):
        _, subscription = self.make()
        assert not subscription.wait_pending(timeout=0.01)

    def test_close_wakes_waiters_and_stops_observing(self):
        session, subscription = self.make()
        waited = []

        def wait():
            waited.append(subscription.wait(timeout=5.0))

        thread = threading.Thread(target=wait)
        thread.start()
        subscription.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert waited == [[]]
        assert (
            subscription.notify(
                session.mutate(
                    MutationBatch().insert_subtree(
                        session._sources.root, book("D", "2001")
                    )
                )
            )
            is None
        )

    def test_unsubscribe_detaches(self):
        session, subscription = self.make()
        assert session.unsubscribe(subscription)
        assert subscription.closed
        assert not session.unsubscribe(subscription)
        assert session.subscriptions() == []

    def test_attribute_flip_moves_rows(self):
        session = QuerySession(parse_document(DOC))
        subscription = session.subscribe(
            "query { book as B { @year as Y } where Y >= 2000 } "
            "construct { r { count(B) } }"
        )
        assert len(subscription.rows()) == 1
        target = session._sources.root.child_elements()[0]  # year=1999
        session.mutate(MutationBatch().update_attribute(target, "year", "2005"))
        [delta] = subscription.poll()
        assert len(delta.added) == 1
        assert len(subscription.rows()) == 2

    def test_value_edit_reaches_deep_text_condition(self):
        session = QuerySession(parse_document(DOC))
        subscription = session.subscribe(
            "query { book as B where B = 'A' } construct { r { count(B) } }"
        )
        assert len(subscription.rows()) == 1
        title = session._sources.root.child_elements()[1].child_elements()[0]
        session.mutate(MutationBatch().update_value(title, "A"))
        [delta] = subscription.poll()
        assert len(delta.added) == 1

    def test_describe_mentions_counters(self):
        _, subscription = self.make()
        text = subscription.describe()
        assert "rows" in text and "evals" in text and "skips" in text


class TestSessionWiring:
    def test_multi_document_mutation_needs_source_name(self):
        session = QuerySession(
            {"a": parse_document(DOC), "b": parse_document(DOC)}
        )
        with pytest.raises(ReproError, match="name the mutation"):
            session.mutate(MutationBatch())
        with pytest.raises(ReproError, match="unknown source"):
            session.mutate(MutationBatch(), source="c")

    def test_named_source_mutation(self):
        docs = {"a": parse_document(DOC), "b": parse_document(DOC)}
        session = QuerySession(docs)
        subscription = session.subscribe(
            "query a { book as B } construct { r { count(B) } }"
        )
        session.mutate(
            MutationBatch().insert_subtree(docs["a"].root, book("D", "2001")),
            source="a",
        )
        [delta] = subscription.poll()
        assert len(delta.added) == 1
