"""Tests for the headless gesture editors."""

import pytest

from repro.errors import DiagramError
from repro.ssd import parse_document, serialize
from repro.visual import WglogEditor, XmlglEditor
from repro.wglog import InstanceGraph, apply_rule
from repro.xmlgl import attr, cmp, evaluate_rule
from repro.xmlgl.dsl import parse_rule


class TestXmlglEditor:
    def build_session(self) -> XmlglEditor:
        """Author the running example purely through gestures."""
        editor = XmlglEditor("recent-books")
        bib = editor.add_element_box("bib", node_id="R", anchored=True)
        book = editor.add_element_box("book", node_id="B")
        editor.draw_arc(bib, book)
        editor.add_attribute_circle(book, "year", node_id="Y")
        title = editor.add_element_box("title", node_id="T")
        editor.draw_arc(book, title)
        editor.annotate_condition(cmp(">=", attr("B", "year"), 1999))
        result = editor.add_construct_box("recent")
        editor.add_triangle(result, "T")
        return editor

    def test_compile_and_run(self):
        editor = self.build_session()
        rule = editor.compile()
        doc = parse_document(
            '<bib><book year="2000"><title>New</title></book>'
            '<book year="1990"><title>Old</title></book></bib>'
        )
        result = evaluate_rule(rule, doc)
        assert serialize(result) == "<recent><title>New</title></recent>"

    def test_gesture_parity_with_dsl(self):
        editor = self.build_session()
        dsl_rule = parse_rule(
            """
            query { root bib as R { book as B { @year as Y title as T } }
                    where B.year >= 1999 }
            construct { recent { collect T } }
            """
        )
        doc = parse_document(
            '<bib><book year="2000"><title>New</title></book></bib>'
        )
        assert serialize(evaluate_rule(editor.compile(), doc)) == serialize(
            evaluate_rule(dsl_rule, doc)
        )

    def test_cross_out_negates(self):
        editor = XmlglEditor()
        book = editor.add_element_box("book", node_id="B")
        cdrom = editor.add_element_box("cdrom", node_id="C")
        arc = editor.draw_arc(book, cdrom)
        editor.cross_out(arc)
        result = editor.add_construct_box("r")
        editor.add_triangle(result, "B")
        rule = editor.compile()
        assert rule.queries[0].negated_edges()[0].child == "C"

    def test_arc_requires_element_parent(self):
        editor = XmlglEditor()
        book = editor.add_element_box("book", node_id="B")
        text = editor.add_text_circle(book, node_id="T")
        other = editor.add_element_box("x", node_id="X")
        with pytest.raises(DiagramError):
            editor.draw_arc(text, other)

    def test_undo_redo(self):
        editor = XmlglEditor()
        editor.add_element_box("book", node_id="B")
        editor.add_element_box("title", node_id="T")
        assert len(editor.diagram) == 2
        assert editor.undo()
        assert len(editor.diagram) == 1
        assert editor.redo()
        assert len(editor.diagram) == 2

    def test_undo_on_empty_stack(self):
        editor = XmlglEditor()
        assert not editor.undo()
        assert not editor.redo()

    def test_redo_cleared_by_new_gesture(self):
        editor = XmlglEditor()
        editor.add_element_box("a", node_id="A")
        editor.undo()
        editor.add_element_box("b", node_id="B")
        assert not editor.redo()

    def test_delete_gesture(self):
        editor = self.build_session()
        editor.delete("q:T")
        assert "q:T" not in editor.diagram

    def test_render_outputs(self):
        editor = self.build_session()
        editor.arrange()
        assert editor.to_svg().startswith("<svg")
        assert "book" in editor.to_ascii()

    def test_from_rule_round_trip(self):
        dsl_rule = parse_rule(
            "query { book as B { title as T } } construct { r { collect T } }"
        )
        editor = XmlglEditor.from_rule(dsl_rule)
        rebuilt = editor.compile()
        assert set(rebuilt.queries[0].nodes) == {"B", "T"}

    def test_multi_document_gestures(self):
        editor = XmlglEditor()
        a = editor.add_element_box("vendor", node_id="V", graph=0)
        editor.set_source("vendors", graph=0)
        b = editor.add_element_box("product", node_id="P", graph=1)
        editor.set_source("products", graph=1)
        result = editor.add_construct_box("r")
        editor.add_triangle(result, "P")
        rule = editor.compile()
        assert [g.source for g in rule.queries] == ["vendors", "products"]


class TestWglogEditor:
    def build_session(self) -> WglogEditor:
        editor = WglogEditor("siblings")
        idx = editor.add_rectangle("Doc", node_id="idx")
        d1 = editor.add_rectangle("Doc", node_id="d1")
        d2 = editor.add_rectangle("Doc", node_id="d2")
        editor.draw_arrow(idx, d1, "index")
        editor.draw_arrow(idx, d2, "index")
        editor.draw_arrow(d1, d2, "sibling", green=True)
        return editor

    def test_compile_and_apply(self):
        rule = self.build_session().compile()
        inst = InstanceGraph()
        i = inst.add_entity("Doc", "i")
        a = inst.add_entity("Doc", "a")
        b = inst.add_entity("Doc", "b")
        inst.relate(i, a, "index")
        inst.relate(i, b, "index")
        apply_rule(inst, rule)
        assert inst.has_relationship("a", "b", "sibling")

    def test_crossed_arrow(self):
        editor = WglogEditor()
        d = editor.add_rectangle("Doc", node_id="d")
        x = editor.add_rectangle(None, node_id="x")
        editor.draw_arrow(x, d, "index", crossed=True)
        editor.assert_slot(d, "root", value="yes")
        rule = editor.compile()
        assert rule.red_edges()[0].crossed

    def test_collector_gesture(self):
        editor = WglogEditor()
        d = editor.add_rectangle("Doc", node_id="d")
        lst = editor.add_rectangle("List", node_id="lst", green=True, collector=True)
        editor.draw_arrow(lst, d, "member", green=True)
        rule = editor.compile()
        assert rule.nodes["lst"].collector

    def test_slot_copy_gesture(self):
        editor = WglogEditor()
        s = editor.add_rectangle("Doc", node_id="s")
        t = editor.add_rectangle("Doc", node_id="t")
        editor.draw_arrow(s, t, "link")
        editor.assert_slot(t, "src_title", from_node="s", from_slot="title")
        rule = editor.compile()
        assertion = rule.slot_assertions[0]
        assert assertion.from_node == "s" and assertion.from_slot == "title"

    def test_condition_gesture(self):
        editor = WglogEditor()
        editor.add_rectangle("Doc", node_id="d")
        editor.annotate_condition(cmp(">", attr("d", "size"), 1))
        rule = editor.compile()
        assert len(rule.conditions) == 1

    def test_undo_across_gestures(self):
        editor = self.build_session()
        connector_count = len(list(editor.diagram.connectors()))
        editor.undo()  # removes the green arrow
        assert len(list(editor.diagram.connectors())) == connector_count - 1

    def test_arrange_and_render(self):
        editor = self.build_session()
        editor.arrange()
        svg = editor.to_svg()
        assert "#1a7f37" in svg  # green stroke present

    def test_from_rule(self):
        rule = self.build_session().compile()
        reopened = WglogEditor.from_rule(rule)
        assert reopened.compile().describe() == rule.describe()


class TestEditorPersistence:
    def test_save_and_reopen(self, tmp_path):
        editor = XmlglEditor("session")
        book = editor.add_element_box("book", node_id="B")
        editor.add_attribute_circle(book, "year", node_id="Y")
        result = editor.add_construct_box("r")
        editor.add_triangle(result, "B")
        path = tmp_path / "session.json"
        editor.save(str(path))
        reopened = XmlglEditor.open(str(path))
        assert reopened.diagram.title == "session"
        rule = reopened.compile()
        assert "B" in rule.queries[0].nodes
        # reopened editors start with a clean undo history
        assert not reopened.undo()
