"""Unit tests for the diagram model and layout engine."""

import pytest

from repro.errors import DiagramError
from repro.visual import (
    Connector,
    Diagram,
    Shape,
    ShapeKind,
    StrokeStyle,
    layered_layout,
    side_by_side,
)


def chain_diagram(n: int = 3) -> Diagram:
    d = Diagram("chain")
    for i in range(n):
        d.add_shape(Shape(f"s{i}", ShapeKind.BOX, label=f"node{i}"))
    for i in range(n - 1):
        d.add_connector(Connector(f"c{i}", f"s{i}", f"s{i+1}"))
    return d


class TestDiagram:
    def test_duplicate_shape_rejected(self):
        d = Diagram()
        d.add_shape(Shape("a", ShapeKind.BOX))
        with pytest.raises(DiagramError):
            d.add_shape(Shape("a", ShapeKind.BOX))

    def test_connector_endpoints_checked(self):
        d = Diagram()
        d.add_shape(Shape("a", ShapeKind.BOX))
        with pytest.raises(DiagramError):
            d.add_connector(Connector("c", "a", "missing"))

    def test_duplicate_connector_rejected(self):
        d = chain_diagram()
        with pytest.raises(DiagramError):
            d.add_connector(Connector("c0", "s0", "s1"))

    def test_remove_shape_cascades(self):
        d = chain_diagram()
        d.remove_shape("s1")
        assert len(list(d.connectors())) == 0
        assert "s1" not in d

    def test_remove_unknown_raises(self):
        with pytest.raises(DiagramError):
            chain_diagram().remove_shape("zzz")
        with pytest.raises(DiagramError):
            chain_diagram().remove_connector("zzz")

    def test_lookup_helpers(self):
        d = chain_diagram()
        assert d.shape("s0").label == "node0"
        assert d.connector("c0").target == "s1"
        assert len(d.shapes_of_kind(ShapeKind.BOX)) == 3
        assert len(d.connectors_from("s0")) == 1
        assert len(d.connectors_to("s1")) == 1
        assert len(d) == 3

    def test_fresh_id_never_collides(self):
        d = chain_diagram()
        ids = {d.fresh_id() for _ in range(10)}
        assert len(ids) == 10
        assert not ids & {"s0", "s1", "s2"}

    def test_validate_separator_count(self):
        d = Diagram()
        d.add_shape(Shape("a", ShapeKind.SEPARATOR))
        d.add_shape(Shape("b", ShapeKind.SEPARATOR))
        with pytest.raises(DiagramError):
            d.validate()


class TestLayout:
    def test_layers_top_down(self):
        d = chain_diagram(4)
        layered_layout(d)
        ys = [d.shape(f"s{i}").y for i in range(4)]
        assert ys == sorted(ys)
        assert len(set(ys)) == 4

    def test_shapes_get_sizes(self):
        d = chain_diagram()
        layered_layout(d)
        for shape in d.shapes():
            assert shape.width > 0 and shape.height > 0

    def test_no_overlap_within_layer(self):
        d = Diagram()
        d.add_shape(Shape("root", ShapeKind.BOX, label="r"))
        for i in range(5):
            d.add_shape(Shape(f"k{i}", ShapeKind.BOX, label=f"child{i}"))
            d.add_connector(Connector(f"c{i}", "root", f"k{i}"))
        layered_layout(d)
        children = sorted(
            (d.shape(f"k{i}") for i in range(5)), key=lambda s: s.x
        )
        for left, right in zip(children, children[1:]):
            assert left.x + left.width <= right.x + 1e-6

    def test_cycles_do_not_crash(self):
        d = chain_diagram(3)
        d.add_connector(Connector("back", "s2", "s0"))
        layered_layout(d)  # must terminate and place everything
        assert all(s.width > 0 for s in d.shapes())

    def test_deterministic(self):
        d1, d2 = chain_diagram(5), chain_diagram(5)
        layered_layout(d1)
        layered_layout(d2)
        for i in range(5):
            assert d1.shape(f"s{i}").x == d2.shape(f"s{i}").x
            assert d1.shape(f"s{i}").y == d2.shape(f"s{i}").y

    def test_labels_stacked_below(self):
        d = chain_diagram(2)
        d.add_shape(Shape("lbl", ShapeKind.LABEL, label="where x"))
        layered_layout(d)
        assert d.shape("lbl").y > d.shape("s1").y

    def test_side_by_side(self):
        d = Diagram()
        d.add_shape(Shape("l", ShapeKind.BOX, label="left"))
        d.add_shape(Shape("r", ShapeKind.BOX, label="right"))
        d.add_shape(Shape("sep", ShapeKind.SEPARATOR))
        side_by_side(d, ["l"], ["r"], separator_id="sep")
        assert d.shape("l").x + d.shape("l").width <= d.shape("sep").x
        assert d.shape("sep").x <= d.shape("r").x
        assert d.shape("sep").height > 0

    def test_bounds(self):
        d = chain_diagram()
        layered_layout(d)
        min_x, min_y, max_x, max_y = d.bounds()
        assert max_x > min_x and max_y > min_y
