"""Tests for SVG/ASCII rendering and the AST⇄diagram round trip."""

import pytest

from repro.visual import (
    Diagram,
    Shape,
    ShapeKind,
    StrokeStyle,
    diagram_to_wglog,
    diagram_to_xmlgl,
    render_ascii,
    render_svg,
    wglog_rule_diagram,
    xmlgl_rule_diagram,
)
from repro.errors import DiagramError
from repro.wglog import RuleGraph
from repro.wglog import parse_rule as parse_wg_rule
from repro.xmlgl.dsl import parse_rule

FULL_XMLGL = """
query src1 {
  root bib {
    book as B {
      @year as Y
      title as T { text as TT }
      deep author as A
      not cdrom as C
      ord isbn as I
      or { publisher as P | editor as E }
    }
  }
  where Y >= 1995 and TT ~ /.*Web.*/
}
construct {
  result(version = "1", stamp = $Y) {
    entry for B sortby Y {
      copy T
      collect A
      text "sep"
      value Y
      group Y { inner }
      count(B)
    }
  }
}
"""

FULL_WGLOG = """
rule full {
  match {
    d1: Doc
    d2: Doc
    idx: Doc
    idx -index-> d1
    idx -index-> d2
    d1 -link*-> d2
    no x -cites-> d1
  }
  construct {
    lst: List collect
    lst -member-> d1
    n: Note
    n -about-> d2
    d1 -sibling-> d2
    n.kind = 'auto'
    n.title = d1.title
  }
  where d1.size > 3
}
"""


class TestXmlglRoundTrip:
    def test_structure_preserved(self):
        rule = parse_rule(FULL_XMLGL)
        back = diagram_to_xmlgl(xmlgl_rule_diagram(rule))
        original, rebuilt = rule.queries[0], back.queries[0]
        assert set(original.nodes) == set(rebuilt.nodes)
        assert original.source == rebuilt.source
        for node_id in original.nodes:
            assert type(original.nodes[node_id]) is type(rebuilt.nodes[node_id])
        orig_edges = {
            (e.parent, e.child, e.deep, e.ordered, e.negated)
            for e in original.edges
        }
        new_edges = {
            (e.parent, e.child, e.deep, e.ordered, e.negated)
            for e in rebuilt.edges
        }
        assert orig_edges == new_edges
        assert len(rebuilt.or_groups) == 1
        assert len(rebuilt.or_groups[0].alternatives) == 2
        assert len(rebuilt.conditions) == len(original.conditions)

    def test_construct_preserved(self):
        rule = parse_rule(FULL_XMLGL)
        back = diagram_to_xmlgl(xmlgl_rule_diagram(rule))
        assert back.construct.tag == "result"
        assert [
            (a.name, a.value, a.from_variable) for a in back.construct.attributes
        ] == [("version", "1", None), ("stamp", None, "Y")]
        entry = back.construct.children[0]
        assert entry.for_each == ["B"] and entry.sort_by == "Y"
        kinds = [type(c).__name__ for c in entry.children]
        assert kinds == [
            "Copy", "Collect", "TextLiteral", "TextFrom", "GroupBy", "Aggregate",
        ]

    def test_evaluation_equivalence(self, bib_doc=None):
        from repro.ssd import parse_document, serialize
        from repro.xmlgl import evaluate_rule

        doc = parse_document(
            '<bib><book year="1999"><title>Data on the Web</title>'
            "<author>A</author><isbn>1</isbn><publisher>P</publisher></book></bib>"
        )
        rule = parse_rule(FULL_XMLGL)
        back = diagram_to_xmlgl(xmlgl_rule_diagram(rule))
        assert serialize(evaluate_rule(rule, {"src1": doc})) == serialize(
            evaluate_rule(back, {"src1": doc})
        )

    def test_diagram_without_query_rejected(self):
        d = Diagram()
        d.add_shape(
            Shape("c:1", ShapeKind.BOX, meta={"role": "new_element", "tag": "r"})
        )
        with pytest.raises(DiagramError):
            diagram_to_xmlgl(d)

    def test_two_construct_roots_rejected(self):
        rule = parse_rule("query { a as A } construct { r }")
        diagram = xmlgl_rule_diagram(rule)
        diagram.add_shape(
            Shape("c:extra", ShapeKind.BOX, meta={"role": "new_element", "tag": "x"})
        )
        with pytest.raises(DiagramError, match="construct root"):
            diagram_to_xmlgl(diagram)


class TestWglogRoundTrip:
    def test_full_rule(self):
        rule = parse_wg_rule(FULL_WGLOG)
        back = diagram_to_wglog(wglog_rule_diagram(rule))
        assert back.describe() == rule.describe()
        assert back.name == rule.name

    def test_empty_diagram_rejected(self):
        with pytest.raises(DiagramError):
            diagram_to_wglog(Diagram())

    def test_collector_preserved(self):
        rule = parse_wg_rule(FULL_WGLOG)
        back = diagram_to_wglog(wglog_rule_diagram(rule))
        assert back.nodes["lst"].collector


class TestRenderers:
    def diagrams(self):
        yield xmlgl_rule_diagram(parse_rule(FULL_XMLGL))
        yield wglog_rule_diagram(parse_wg_rule(FULL_WGLOG))

    def test_svg_well_formed_xml(self):
        from repro.ssd import parse_document

        for diagram in self.diagrams():
            svg = render_svg(diagram)
            doc = parse_document(svg)  # our own parser validates it
            assert doc.root.tag == "svg"

    def test_svg_contains_vocabulary(self):
        svg = render_svg(xmlgl_rule_diagram(parse_rule(FULL_XMLGL)))
        assert "<rect" in svg and "<ellipse" in svg and "<polygon" in svg
        assert "stroke-dasharray" in svg  # binding lines
        assert "marker-end" in svg

    def test_svg_deterministic(self):
        rule = parse_rule(FULL_XMLGL)
        assert render_svg(xmlgl_rule_diagram(rule)) == render_svg(
            xmlgl_rule_diagram(parse_rule(FULL_XMLGL))
        )

    def test_svg_escapes_labels(self):
        d = Diagram()
        d.add_shape(Shape("a", ShapeKind.BOX, label='<evil> & "q"'))
        svg = render_svg(d)
        assert "<evil>" not in svg
        assert "&lt;evil&gt;" in svg

    def test_ascii_contains_shapes(self):
        text = render_ascii(wglog_rule_diagram(parse_wg_rule(FULL_WGLOG)))
        assert "Doc" in text
        assert "+" in text and "|" in text

    def test_ascii_title(self):
        text = render_ascii(wglog_rule_diagram(parse_wg_rule(FULL_WGLOG)))
        assert text.startswith("== full ==")

    def test_ascii_crossed_edge_marked(self):
        rule = RuleGraph()
        rule.red("a", "A")
        rule.red("b", "B")
        rule.match_edge("a", "b", "x", crossed=True)
        rule.assert_slot("a", "m", value="1")
        text = render_ascii(wglog_rule_diagram(rule))
        assert "X" in text
