"""Tests for diagram JSON persistence."""

import pytest

from repro.errors import DiagramError
from repro.ssd import parse_document, serialize
from repro.visual import diagram_to_xmlgl, xmlgl_rule_diagram, wglog_rule_diagram
from repro.visual.persist import load_diagram, save_diagram
from repro.visual.parse_diagram import diagram_to_wglog
from repro.xmlgl import evaluate_rule
from repro.xmlgl.dsl import parse_rule
from repro.wglog import parse_rule as parse_wg_rule

RULE = """
query {
  root bib { book as B { @year as Y  title as T  not cdrom as C } }
  where Y >= 1995 and T ~ /.*/
}
construct { recent(v = "1") { entry for B sortby Y { copy T value Y } } }
"""


class TestRoundTrip:
    def test_shapes_and_connectors_survive(self):
        diagram = xmlgl_rule_diagram(parse_rule(RULE))
        loaded = load_diagram(save_diagram(diagram))
        assert loaded.title == diagram.title
        assert {s.id for s in loaded.shapes()} == {s.id for s in diagram.shapes()}
        assert len(list(loaded.connectors())) == len(list(diagram.connectors()))
        for original in diagram.shapes():
            restored = loaded.shape(original.id)
            assert restored.kind is original.kind
            assert restored.label == original.label
            assert restored.stroke is original.stroke
            assert (restored.x, restored.y) == (original.x, original.y)

    def test_compiles_to_equivalent_rule(self):
        doc = parse_document(
            '<bib><book year="1999"><title>T</title></book></bib>'
        )
        rule = parse_rule(RULE)
        diagram = xmlgl_rule_diagram(rule)
        reloaded = load_diagram(save_diagram(diagram))
        rebuilt = diagram_to_xmlgl(reloaded)
        assert serialize(evaluate_rule(rebuilt, doc)) == serialize(
            evaluate_rule(rule, doc)
        )

    def test_conditions_round_trip_through_text(self):
        diagram = xmlgl_rule_diagram(parse_rule(RULE))
        reloaded = load_diagram(save_diagram(diagram))
        conditions = [
            s.meta["condition"]
            for s in reloaded.shapes()
            if s.meta.get("role") == "condition"
        ]
        assert len(conditions) == 1
        assert "Y >= 1995" in str(conditions[0])

    def test_wglog_diagram_round_trip(self):
        rule = parse_wg_rule(
            """
            rule r {
              match { a: Doc  b: Doc  a -link-> b }
              construct { b -rev-> a  a.seen = 'y' }
              where a.size > 1
            }
            """
        )
        diagram = wglog_rule_diagram(rule)
        reloaded = load_diagram(save_diagram(diagram))
        assert diagram_to_wglog(reloaded).describe() == rule.describe()

    def test_save_is_stable(self):
        diagram = xmlgl_rule_diagram(parse_rule(RULE))
        assert save_diagram(diagram) == save_diagram(
            load_diagram(save_diagram(diagram))
        )


class TestErrors:
    def test_not_json(self):
        with pytest.raises(DiagramError, match="not a diagram"):
            load_diagram("<svg/>")

    def test_missing_shapes(self):
        with pytest.raises(DiagramError, match="shapes"):
            load_diagram("{}")

    def test_wrong_version(self):
        with pytest.raises(DiagramError, match="version"):
            load_diagram('{"version": 99, "shapes": []}')

    def test_bad_shape_kind(self):
        with pytest.raises(DiagramError, match="bad shape"):
            load_diagram(
                '{"version": 1, "shapes": [{"id": "a", "kind": "BLOB"}]}'
            )
