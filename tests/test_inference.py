"""Tests for schema inference (DataGuides) and G-Log answer graphs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchemaError
from repro.ssd import E, document, infer_schema, parse_document
from repro.wglog import InstanceGraph, answer_graph, infer_wg_schema, parse_rule
from repro.workloads import bibliography, museum_graph, site_graph


class TestXmlSchemaInference:
    def test_inferred_schema_validates_source(self):
        for seed in range(3):
            doc = bibliography(30, seed=seed)
            schema = infer_schema(doc)
            assert schema.validate(doc) == [], seed

    def test_multiplicities(self):
        doc = parse_document(
            "<r><a/><a/><b/></r>"
        )
        schema = infer_schema(doc)
        edges = {e.child_id: e for e in schema.element_edges("r")}
        assert edges["a"].max is None     # repeated -> unbounded
        assert edges["b"].max == 1

    def test_optionality_across_occurrences(self):
        doc = parse_document("<r><x><opt/></x><x/></r>")
        schema = infer_schema(doc)
        edge = schema.element_edges("x")[0]
        assert edge.min == 0

    def test_required_attribute(self):
        doc = parse_document('<r><e k="1"/><e k="2"/></r>')
        schema = infer_schema(doc)
        atts = {a.name: a for a in schema.attribute_nodes("e")}
        assert atts["k"].required

    def test_optional_attribute(self):
        doc = parse_document('<r><e k="1"/><e/></r>')
        schema = infer_schema(doc)
        atts = {a.name: a for a in schema.attribute_nodes("e")}
        assert not atts["k"].required

    def test_enumeration_detection(self):
        doc = parse_document(
            '<r><e c="red"/><e c="red"/><e c="green"/><e c="green"/><e c="red"/></r>'
        )
        schema = infer_schema(doc)
        atts = {a.name: a for a in schema.attribute_nodes("e")}
        assert set(atts["c"].values) == {"red", "green"}
        # a fresh value is now a violation
        bad = parse_document('<r><e c="blue"/></r>')
        assert any("must be one of" in v for v in schema.validate(bad))

    def test_distinct_values_not_enumerated(self):
        doc = parse_document('<r><e id="1"/><e id="2"/><e id="3"/></r>')
        schema = infer_schema(doc)
        atts = {a.name: a for a in schema.attribute_nodes("e")}
        assert atts["id"].values == ()

    def test_text_detection(self):
        doc = parse_document("<r><t>hello</t><u/></r>")
        schema = infer_schema(doc)
        assert schema.allows_text("t")
        assert not schema.allows_text("u")

    def test_multiple_documents(self):
        docs = [
            parse_document("<r><a/></r>"),
            parse_document("<r><b/></r>"),
        ]
        schema = infer_schema(docs)
        for doc in docs:
            assert schema.validate(doc) == []

    def test_disagreeing_roots_rejected(self):
        with pytest.raises(SchemaError, match="root"):
            infer_schema([parse_document("<a/>"), parse_document("<b/>")])

    def test_no_documents_rejected(self):
        with pytest.raises(SchemaError):
            infer_schema([])

    TAGS = ["a", "b", "c"]

    @st.composite
    @staticmethod
    def docs(draw, depth: int = 3):
        def build(level):
            element = E(draw(st.sampled_from(TestXmlSchemaInference.TAGS)))
            if draw(st.booleans()):
                element.set("k", draw(st.sampled_from(["1", "2"])))
            if draw(st.booleans()):
                element.append(draw(st.sampled_from(["txt", "more"])))
            if level > 0:
                for _ in range(draw(st.integers(0, 3))):
                    element.append(build(level - 1))
            return element

        return document(build(depth))

    @given(docs())
    @settings(max_examples=60, deadline=None)
    def test_property_inferred_schema_accepts_source(self, doc):
        schema = infer_schema(doc)
        assert schema.validate(doc) == []


class TestWgSchemaInference:
    def test_inferred_schema_conforms(self):
        for maker, size in ((site_graph, 25), (museum_graph, 40)):
            instance = maker(size, seed=1)
            schema = infer_wg_schema(instance)
            assert schema.conform(instance) == []

    def test_slot_types_and_requiredness(self):
        instance = InstanceGraph()
        a = instance.add_entity("P", "a")
        b = instance.add_entity("P", "b")
        instance.add_slot(a, "size", 5)
        instance.add_slot(b, "size", 7)
        instance.add_slot(a, "note", "x")
        schema = infer_wg_schema(instance)
        assert schema.slot_decl("P", "size").value_type == "int"
        assert schema.slot_decl("P", "size").required
        assert not schema.slot_decl("P", "note").required

    def test_conflicting_types_widen_to_any(self):
        instance = InstanceGraph()
        a = instance.add_entity("P", "a")
        b = instance.add_entity("P", "b")
        instance.add_slot(a, "v", 5)
        instance.add_slot(b, "v", "five")
        schema = infer_wg_schema(instance)
        assert schema.slot_decl("P", "v").value_type == "any"

    def test_relations_collected(self):
        instance = InstanceGraph()
        a = instance.add_entity("A", "a")
        b = instance.add_entity("B", "b")
        instance.relate(a, b, "r")
        schema = infer_wg_schema(instance)
        assert schema.allows_relation("A", "r", "B")
        assert not schema.allows_relation("B", "r", "A")


class TestAnswerGraph:
    def library(self):
        instance = InstanceGraph()
        i = instance.add_entity("Doc", "i")
        a = instance.add_entity("Doc", "a")
        b = instance.add_entity("Doc", "b")
        c = instance.add_entity("Doc", "c")
        instance.add_slot(a, "title", "A")
        instance.relate(i, a, "index")
        instance.relate(i, b, "index")
        instance.relate(a, c, "link")
        return instance

    def test_induced_subgraph(self):
        rule = parse_rule("rule q { match { x: Doc  y: Doc  x -index-> y } }")
        answer = answer_graph(rule, self.library())
        assert set(answer.entities()) == {"i", "a", "b"}
        assert answer.has_relationship("i", "a", "index")
        assert not answer.has_relationship("a", "c", "link")

    def test_slots_carried(self):
        rule = parse_rule("rule q { match { x: Doc  y: Doc  x -index-> y } }")
        answer = answer_graph(rule, self.library())
        assert answer.slot_value("a", "title") == "A"

    def test_empty_answer(self):
        rule = parse_rule("rule q { match { x: Monument } }")
        answer = answer_graph(rule, self.library())
        assert answer.entity_count() == 0

    def test_answer_conforms_to_inferred_schema(self):
        instance = self.library()
        schema = infer_wg_schema(instance)
        rule = parse_rule("rule q { match { x: Doc  y: Doc  x -link-> y } }")
        answer = answer_graph(rule, instance)
        # requiredness may differ (title is not on every Doc), so check
        # entities/relations only
        for entity in answer.entities():
            assert schema.has_entity(answer.label(entity))
        for edge in answer.relationship_edges():
            assert schema.allows_relation(
                answer.label(edge.source), edge.label, answer.label(edge.target)
            )

    def test_path_edges_contribute_endpoints_only(self):
        rule = parse_rule("rule q { match { x: Doc  y: Doc  x -link*-> y } }")
        answer = answer_graph(rule, self.library())
        assert set(answer.entities()) == {"a", "c"}
        assert sum(1 for _ in answer.relationship_edges()) == 0
