"""Integration tests: rules and programs over one or more documents."""

import pytest

from repro.errors import EvaluationError, QueryStructureError
from repro.ssd import parse_document, serialize
from repro.xmlgl import (
    Program,
    QueryBuilder,
    Rule,
    attr,
    cmp,
    collect,
    content,
    elem,
    evaluate_program,
    evaluate_rule,
    rule_bindings,
    value_of,
)


def vendors_doc():
    return parse_document(
        "<vendors>"
        '<vendor name="DeRuiter" country="holland"/>'
        '<vendor name="Lafayette" country="france"/>'
        "</vendors>"
    )


def products_doc():
    return parse_document(
        "<products>"
        '<product vendor="DeRuiter"><name>cabbage</name></product>'
        '<product vendor="Lafayette"><name>cherry</name></product>'
        '<product vendor="DeRuiter"><name>leek</name></product>'
        "</products>"
    )


class TestSingleDocument:
    def test_basic_rule(self, bib):
        q = QueryBuilder()
        q.box("title", id="T")
        rule = Rule([q.graph()], elem("titles", collect("T")))
        result = evaluate_rule(rule, bib)
        assert len(result.find_all("title")) == 4

    def test_rule_requires_query(self):
        with pytest.raises(QueryStructureError):
            Rule([], elem("r"))

    def test_shared_ids_across_graphs_rejected(self, bib):
        q1 = QueryBuilder()
        q1.box("book", id="B")
        q2 = QueryBuilder()
        q2.box("book", id="B")
        with pytest.raises(QueryStructureError, match="shared"):
            Rule([q1.graph(), q2.graph()], elem("r"))

    def test_named_source_against_plain_document_rejected(self, bib):
        q = QueryBuilder(source="other")
        q.box("book", id="B")
        rule = Rule([q.graph()], elem("r"))
        with pytest.raises(EvaluationError):
            evaluate_rule(rule, bib)


class TestMultiDocumentJoin:
    def make_rule(self) -> Rule:
        qv = QueryBuilder(source="vendors")
        vendor = qv.box("vendor", id="V")
        qv.attribute(vendor, "name", id="VN")
        qv.attribute(vendor, "country", id="VC", value="holland")
        qp = QueryBuilder(source="products")
        product = qp.box("product", id="P")
        qp.attribute(product, "vendor", id="PV")
        name = qp.box("name", id="N", parent=product)
        return Rule(
            [qv.graph(), qp.graph()],
            elem("dutch-products", elem("item", value_of("N"), for_each=["P"])),
            conditions=[cmp("=", content("VN"), content("PV"))],
        )

    def test_equi_join(self):
        sources = {"vendors": vendors_doc(), "products": products_doc()}
        result = evaluate_rule(self.make_rule(), sources)
        names = [e.text_content() for e in result.find_all("item")]
        assert names == ["cabbage", "leek"]

    def test_join_bindings(self):
        sources = {"vendors": vendors_doc(), "products": products_doc()}
        bindings = rule_bindings(self.make_rule(), sources)
        assert len(bindings) == 2
        assert bindings.variables() >= {"V", "P", "VN", "PV"}

    def test_unknown_source_rejected(self):
        with pytest.raises(EvaluationError, match="unknown source"):
            evaluate_rule(self.make_rule(), {"vendors": vendors_doc()})

    def test_single_doc_map_resolves_unnamed(self, bib):
        q = QueryBuilder()  # no source name
        q.box("book", id="B")
        rule = Rule([q.graph()], elem("r", collect("B", deep=False)))
        result = evaluate_rule(rule, {"anything": bib})
        assert len(result.find_all("book")) == 3

    def test_unnamed_graph_ambiguous_sources_rejected(self, bib):
        q = QueryBuilder()
        q.box("book", id="B")
        rule = Rule([q.graph()], elem("r"))
        with pytest.raises(EvaluationError):
            evaluate_rule(rule, {"a": bib, "b": vendors_doc()})


class TestPrograms:
    def test_single_rule_unwrapped(self, bib):
        q = QueryBuilder()
        q.box("book", id="B")
        program = Program([Rule([q.graph()], elem("books", collect("B", deep=False)))])
        doc = evaluate_program(program, bib)
        assert doc.root.tag == "books"

    def test_multi_rule_wrapped(self, bib):
        q1 = QueryBuilder()
        q1.box("book", id="B")
        q2 = QueryBuilder()
        q2.box("article", id="A")
        program = Program(
            [
                Rule([q1.graph()], elem("books", collect("B", deep=False))),
                Rule([q2.graph()], elem("articles", collect("A", deep=False))),
            ],
            result_tag="library",
        )
        doc = evaluate_program(program, bib)
        assert doc.root.tag == "library"
        assert [c.tag for c in doc.root.child_elements()] == ["books", "articles"]

    def test_empty_program_rejected(self):
        with pytest.raises(QueryStructureError):
            Program([])

    def test_restructuring_round_trip(self, bib):
        # nest: group books under their year
        q = QueryBuilder()
        book = q.box("book", id="B")
        q.attribute(book, "year", id="Y")
        rule = Rule(
            [q.graph()],
            elem(
                "by-year",
                elem(
                    "year",
                    value_of("Y"),
                    elem("books", collect("B", deep=False)),
                    for_each=["Y"],
                    sort_by="Y",
                ),
            ),
        )
        result = evaluate_rule(rule, bib)
        years = [y.immediate_text() for y in result.find_all("year")]
        assert years == ["1994", "1999", "2000"]
        assert serialize(result).count("<book ") == 3
