"""Unit tests for the XML-GL textual DSL."""

import pytest

from repro.errors import QuerySyntaxError
from repro.ssd import serialize
from repro.xmlgl import evaluate_program, evaluate_rule
from repro.xmlgl.ast import AttributePattern, ElementPattern, TextPattern
from repro.xmlgl.dsl import parse_program, parse_rule


class TestQueryParsing:
    def test_simple_structure(self):
        rule = parse_rule(
            "query { bib { book as B { title as T } } } construct { r }"
        )
        graph = rule.queries[0]
        assert isinstance(graph.nodes["B"], ElementPattern)
        assert graph.nodes["B"].tag == "book"
        assert len(graph.edges) == 2

    def test_root_flag(self):
        rule = parse_rule("query { root bib as R } construct { r }")
        assert rule.queries[0].nodes["R"].anchored

    def test_wildcard(self):
        rule = parse_rule("query { * as X } construct { r }")
        assert rule.queries[0].nodes["X"].tag is None

    def test_auto_ids(self):
        rule = parse_rule("query { bib { book { title } } } construct { r }")
        graph = rule.queries[0]
        assert set(graph.nodes) == {"bib", "book", "title"}

    def test_deep_not_ord_flags(self):
        rule = parse_rule(
            "query { bib { deep author as A  not cdrom as C  ord title as T } }"
            " construct { r }"
        )
        edges = {e.child: e for e in rule.queries[0].edges}
        assert edges["A"].deep and not edges["A"].negated
        assert edges["C"].negated
        assert edges["T"].ordered

    def test_attribute_patterns(self):
        rule = parse_rule(
            'query { book as B { @year as Y  @lang = "en"  @id ~ /b\\d+/ as I } }'
            " construct { r }"
        )
        graph = rule.queries[0]
        assert isinstance(graph.nodes["Y"], AttributePattern)
        lang = next(
            n for n in graph.nodes.values()
            if isinstance(n, AttributePattern) and n.name == "lang"
        )
        assert lang.value == "en"
        assert graph.nodes["I"].regex == "b\\d+"

    def test_text_patterns(self):
        rule = parse_rule(
            'query { title as T { text = "Exact" as TT } } construct { r }'
        )
        assert rule.queries[0].nodes["TT"].value == "Exact"

    def test_text_regex(self):
        rule = parse_rule(
            "query { title as T { text ~ /.*Web.*/ as TT } } construct { r }"
        )
        assert rule.queries[0].nodes["TT"].regex == ".*Web.*"

    def test_or_group(self):
        rule = parse_rule(
            "query { book as B { or { publisher as P | editor as E } } }"
            " construct { r }"
        )
        graph = rule.queries[0]
        assert len(graph.or_groups) == 1
        assert len(graph.or_groups[0].alternatives) == 2
        assert len(graph.edges) == 0

    def test_source_name(self):
        rule = parse_rule("query docs { a as A } construct { r }")
        assert rule.queries[0].source == "docs"

    def test_comments_ignored(self):
        rule = parse_rule(
            "# heading\nquery { a as A # trailing\n } construct { r }"
        )
        assert "A" in rule.queries[0].nodes


class TestConditionParsing:
    def parse_condition(self, text):
        rule = parse_rule(f"query {{ a as A {{ b as B }} where {text} }} construct {{ r }}")
        return rule.queries[0].conditions[0]

    def test_comparison_operators(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            condition = self.parse_condition(f"A.x {op} 5")
            assert condition.op == op

    def test_attribute_and_content_operands(self):
        condition = self.parse_condition("A.year = B")
        assert condition.left.variable == "A"
        assert condition.right.variable == "B"

    def test_name_function(self):
        condition = self.parse_condition("name(A) = 'book'")
        assert type(condition.left).__name__ == "NameOf"

    def test_arithmetic_precedence(self):
        condition = self.parse_condition("A + B * 2 < 10")
        # A + (B * 2)
        assert condition.left.op == "+"
        assert condition.left.right.op == "*"

    def test_parenthesised_operand(self):
        condition = self.parse_condition("(A + B) * 2 < 10")
        assert condition.left.op == "*"

    def test_boolean_structure(self):
        condition = self.parse_condition("A = 1 and B = 2 or not A = 3")
        assert type(condition).__name__ == "Or"

    def test_parenthesised_condition(self):
        condition = self.parse_condition("A = 1 and (B = 2 or B = 3)")
        assert type(condition).__name__ == "And"
        assert type(condition.conditions[1]).__name__ == "Or"

    def test_regex_condition(self):
        condition = self.parse_condition("A ~ /ab\\/c/")
        assert condition.pattern == "ab/c"


class TestConstructParsing:
    def test_all_items(self):
        rule = parse_rule(
            """
            query { book as B { title as T  @year as Y } }
            construct {
              result(version = "1", year = $Y) {
                copy T
                collect B shallow
                text "label"
                value Y
                group Y { sub }
                count(B)
                avg(Y)
                nested for B sortby Y { copy T }
              }
            }
            """
        )
        kinds = [type(c).__name__ for c in rule.construct.children]
        assert kinds == [
            "Copy", "Collect", "TextLiteral", "TextFrom",
            "GroupBy", "Aggregate", "Aggregate", "NewElement",
        ]
        assert rule.construct.attributes[0].value == "1"
        assert rule.construct.attributes[1].from_variable == "Y"
        nested = rule.construct.children[-1]
        assert nested.for_each == ["B"] and nested.sort_by == "Y"
        assert not rule.construct.children[1].deep  # shallow collect

    def test_programs(self):
        program = parse_program(
            "rule a { query { x as X } construct { r1 } }"
            "rule b { query { y as Y } construct { r2 } }"
        )
        assert [r.name for r in program.rules] == ["a", "b"]
        assert not program.unwrap

    def test_bare_rule_program(self):
        program = parse_program("query { x as X } construct { r }")
        assert len(program.rules) == 1 and program.unwrap


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "construct { r }",                          # missing query
            "query { }",                                # no construct
            "query { a as A } construct { }",           # empty construct
            "query { a as A } construct { r } trailing",
            "query { @x as X } construct { r }",        # attribute without parent
            "query { deep a as A } construct { r }",    # deep without parent
            "query { a as A { or { } } } construct { r }",
            'query { a as A where A < } construct { r }',
            "query { a as A where A ~ 5 } construct { r }",
            "query { 'str' } construct { r }",
            "query { a as A } construct { r { text B } }",
        ],
    )
    def test_syntax_errors(self, source):
        with pytest.raises(QuerySyntaxError):
            parse_rule(source)

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError, match="string"):
            parse_rule('query { a as A { text = "oops } } construct { r }')

    def test_unterminated_regex(self):
        with pytest.raises(QuerySyntaxError, match="regex"):
            parse_rule("query { a as A where A ~ /oops } construct { r }")

    def test_error_carries_position(self):
        with pytest.raises(QuerySyntaxError) as exc:
            parse_rule("query {\n  $bad\n} construct { r }")
        assert exc.value.line == 2


class TestEndToEnd:
    def test_rule_evaluation(self, bib):
        rule = parse_rule(
            """
            query {
              book as B { @year as Y  title as T }
              where Y >= 1999
            }
            construct { recent { entry for B sortby Y { copy T value Y } } }
            """
        )
        result = evaluate_rule(rule, bib)
        assert serialize(result) == (
            "<recent>"
            "<entry><title>The Economics of Technology</title>1999</entry>"
            "<entry><title>Data on the Web</title>2000</entry>"
            "</recent>"
        )

    def test_program_evaluation(self, bib):
        program = parse_program(
            """
            rule books { query { book as B } construct { books { count(B) } } }
            rule arts  { query { article as A } construct { arts { count(A) } } }
            """
        )
        doc = evaluate_program(program, bib)
        assert doc.root.find("books").text_content() == "3"
        assert doc.root.find("arts").text_content() == "1"
