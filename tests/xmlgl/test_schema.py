"""Unit tests for XML-GL schema graphs and the DTD translation."""

import pytest

from repro.errors import SchemaError
from repro.ssd import parse_document, parse_dtd
from repro.ssd import validate as dtd_validate
from repro.xmlgl.schema import (
    SchemaGraph,
    dtd_to_schema,
    schema_to_dtd,
)

BOOK_DTD = """
<!ELEMENT BOOK (title?, price, AUTHOR*)>
<!ATTLIST BOOK isbn CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT AUTHOR (first-name, last-name)>
<!ELEMENT first-name (#PCDATA)>
<!ELEMENT last-name (#PCDATA)>
"""


def book_schema() -> SchemaGraph:
    schema, notes = dtd_to_schema(parse_dtd(BOOK_DTD), "BOOK")
    assert notes == []
    return schema


class TestSchemaConstruction:
    def test_manual_schema(self):
        s = SchemaGraph(root="site")
        s.add_element("site")
        s.add_element("page")
        s.contain("site", "page", min=1, max=None)
        s.add_attribute("page", "url", required=True)
        s.add_text("page")
        s.check()

    def test_unknown_parent_rejected(self):
        s = SchemaGraph(root="a")
        s.add_element("a")
        with pytest.raises(SchemaError):
            s.contain("nope", "a")

    def test_bad_root_rejected(self):
        s = SchemaGraph(root="missing")
        s.add_element("a")
        with pytest.raises(SchemaError):
            s.check()

    def test_max_below_min_rejected(self):
        s = SchemaGraph(root="a")
        s.add_element("a")
        s.add_element("b")
        s.edges.append(
            __import__("repro.xmlgl.schema", fromlist=["SchemaEdge"]).SchemaEdge(
                "a", "b", min=2, max=1
            )
        )
        with pytest.raises(SchemaError):
            s.check()

    def test_xor_member_needs_edge(self):
        s = SchemaGraph(root="a")
        s.add_element("a")
        s.add_element("b")
        s.xor("a", ("b",))
        with pytest.raises(SchemaError):
            s.check()


class TestValidation:
    def test_valid_instance(self):
        doc = parse_document(
            '<BOOK isbn="1"><title>T</title><price>9</price>'
            "<AUTHOR><first-name>A</first-name><last-name>B</last-name></AUTHOR>"
            "</BOOK>"
        )
        assert book_schema().validate(doc) == []

    def test_wrong_root(self):
        doc = parse_document("<OTHER/>")
        violations = book_schema().validate(doc)
        assert any("schema root" in v for v in violations)

    def test_multiplicity_lower_bound(self):
        doc = parse_document('<BOOK isbn="1"><title>T</title></BOOK>')
        violations = book_schema().validate(doc)
        assert any("at least 1 <price>" in v for v in violations)

    def test_multiplicity_upper_bound(self):
        doc = parse_document(
            '<BOOK isbn="1"><price>1</price><price>2</price></BOOK>'
        )
        violations = book_schema().validate(doc)
        assert any("at most 1 <price>" in v for v in violations)

    def test_undeclared_child(self):
        doc = parse_document('<BOOK isbn="1"><price>1</price><cdrom/></BOOK>')
        violations = book_schema().validate(doc)
        assert any("not allowed under" in v for v in violations)

    def test_missing_required_attribute(self):
        doc = parse_document("<BOOK><price>1</price></BOOK>")
        assert any("isbn" in v for v in book_schema().validate(doc))

    def test_order_enforced_for_ordered_edges(self):
        doc = parse_document(
            '<BOOK isbn="1"><price>1</price><title>T</title></BOOK>'
        )
        violations = book_schema().validate(doc)
        assert any("out of order" in v for v in violations)

    def test_unordered_content_allowed(self):
        # XML-GL's selling point vs DTDs: unordered content models.
        s = SchemaGraph(root="pair")
        for tag in ("pair", "a", "b"):
            s.add_element(tag)
        s.contain("pair", "a")
        s.contain("pair", "b")
        s.add_text("a")
        s.add_text("b")
        for order in ("<a/><b/>", "<b/><a/>"):
            doc = parse_document(f"<pair>{order}</pair>")
            # empty a/b have no text; text edge is 0..* so fine
            assert s.validate(doc) == [], order

    def test_text_rules(self):
        doc = parse_document('<BOOK isbn="1">loose text<price>1</price></BOOK>')
        violations = book_schema().validate(doc)
        assert any("text content not allowed" in v for v in violations)

    def test_enumerated_attribute(self):
        s = SchemaGraph(root="e")
        s.add_element("e")
        s.add_attribute("e", "c", values=("red", "green"))
        assert s.validate(parse_document('<e c="red"/>')) == []
        assert any(
            "must be one of" in v for v in s.validate(parse_document('<e c="blue"/>'))
        )

    def test_fixed_attribute(self):
        s = SchemaGraph(root="e")
        s.add_element("e")
        s.add_attribute("e", "v", fixed="1")
        assert s.validate(parse_document('<e v="1"/>')) == []
        assert any("fixed" in v for v in s.validate(parse_document('<e v="2"/>')))

    def test_recursive_schema(self):
        # sections contain sections: legal in XML-GL schemas
        s = SchemaGraph(root="section")
        s.add_element("section")
        s.contain("section", "section", min=0, max=None)
        deep = parse_document("<section><section><section/></section></section>")
        assert s.validate(deep) == []


class TestXor:
    def make(self) -> SchemaGraph:
        s = SchemaGraph(root="item")
        for tag in ("item", "new", "used"):
            s.add_element(tag)
        s.contain("item", "new", min=0, max=1)
        s.contain("item", "used", min=0, max=1)
        s.xor("item", ("new",), ("used",), required=True)
        return s

    def test_one_branch_ok(self):
        assert self.make().validate(parse_document("<item><new/></item>")) == []

    def test_both_branches_rejected(self):
        violations = self.make().validate(
            parse_document("<item><new/><used/></item>")
        )
        assert any("xor" in v for v in violations)

    def test_required_branch_missing(self):
        violations = self.make().validate(parse_document("<item/>"))
        assert any("required" in v for v in violations)


class TestDtdTranslation:
    def test_book_round_trip(self):
        schema = book_schema()
        text, notes = schema_to_dtd(schema)
        assert notes == []
        reparsed = parse_dtd(text)
        assert str(reparsed.declaration("BOOK").content) == "(title?,price,AUTHOR*)"

    def test_schema_agrees_with_dtd_validation(self):
        dtd = parse_dtd(BOOK_DTD)
        schema = book_schema()
        samples = [
            '<BOOK isbn="1"><price>1</price></BOOK>',
            '<BOOK isbn="1"><title>T</title><price>1</price></BOOK>',
            '<BOOK isbn="1"><title>T</title></BOOK>',
            '<BOOK isbn="1"><price>1</price><price>2</price></BOOK>',
            "<BOOK><price>1</price></BOOK>",
        ]
        for sample in samples:
            doc = parse_document(sample)
            assert bool(dtd_validate(doc, dtd)) == bool(schema.validate(doc)), sample

    def test_mixed_content_translation(self):
        dtd = parse_dtd("<!ELEMENT p (#PCDATA | em)*><!ELEMENT em (#PCDATA)>")
        schema, _ = dtd_to_schema(dtd, "p")
        assert schema.allows_text("p")
        doc = parse_document("<p>a<em>b</em>c</p>")
        assert schema.validate(doc) == []

    def test_choice_translation_uses_xor(self):
        dtd = parse_dtd(
            "<!ELEMENT m (cash | card)><!ELEMENT cash EMPTY><!ELEMENT card EMPTY>"
        )
        schema, notes = dtd_to_schema(dtd, "m")
        assert notes == []
        assert schema.validate(parse_document("<m><cash/></m>")) == []
        assert any(
            "xor" in v for v in schema.validate(parse_document("<m><cash/><card/></m>"))
        )
        assert any(
            "required" in v for v in schema.validate(parse_document("<m/>"))
        )

    def test_nested_group_widened_with_note(self):
        dtd = parse_dtd(
            "<!ELEMENT r ((a, b)+)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>"
        )
        schema, notes = dtd_to_schema(dtd, "r")
        assert notes  # approximation documented
        # widened schema accepts what the DTD accepts...
        assert schema.validate(parse_document("<r><a/><b/></r>")) == []
        assert schema.validate(parse_document("<r><a/><b/><a/><b/></r>")) == []

    def test_missing_root_rejected(self):
        with pytest.raises(SchemaError):
            dtd_to_schema(parse_dtd("<!ELEMENT a EMPTY>"), "zzz")

    def test_any_content_translated_with_note(self):
        dtd = parse_dtd("<!ELEMENT a ANY><!ELEMENT b EMPTY>")
        schema, notes = dtd_to_schema(dtd, "a")
        assert notes
        assert schema.validate(parse_document("<a><b/><b/>text</a>")) == []

    def test_describe_smoke(self):
        text = book_schema().describe()
        assert "BOOK -> price [1..1] ordered" in text
        assert "BOOK @isbn required" in text
