"""Shared fixtures for the XML-GL tests: the bibliography running example."""

import pytest

from repro.ssd import parse_document

BIB_XML = """
<bib>
  <book year="1994" id="b1">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000" id="b2">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <author><last>Suciu</last><first>Dan</first></author>
    <price>39.95</price>
  </book>
  <book year="1999" id="b3">
    <title>The Economics of Technology</title>
    <editor><last>Gerbarg</last><first>Darcy</first></editor>
    <publisher>Kluwer Academic</publisher>
    <price>129.95</price>
  </book>
  <article year="2000">
    <title>Graphical Query Languages</title>
    <author><last>Comai</last><first>Sara</first></author>
  </article>
</bib>
"""


@pytest.fixture
def bib():
    """The bibliography document used across XML-GL tests."""
    return parse_document(BIB_XML)
