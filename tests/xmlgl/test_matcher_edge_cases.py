"""Edge-case tests for the XML-GL matcher and evaluator."""

import pytest

from repro.errors import EvaluationError, QueryStructureError
from repro.ssd import parse_document
from repro.ssd.model import Document
from repro.xmlgl import (
    MatchOptions,
    QueryBuilder,
    Rule,
    attr,
    cmp,
    collect,
    content,
    elem,
    evaluate_rule,
    match,
    regex,
    value_of,
)
from repro.xmlgl.dsl import parse_rule


@pytest.fixture
def small():
    return parse_document("<a><b/><b><c/></b></a>")


class TestStructuralEdgeCases:
    def test_disconnected_boxes_cartesian_product(self, small):
        q = QueryBuilder()
        q.box("b", id="B1")
        q.box("b", id="B2")
        assert len(match(q.graph(), small)) == 4

    def test_negation_only_box(self, small):
        # isolated box whose only structure is a crossed arc
        q = QueryBuilder()
        b = q.box("b", id="B")
        q.negate(b, q.box("c", id="C"))
        bindings = match(q.graph(), small)
        assert len(bindings) == 1
        assert bindings[0]["B"].children == []

    def test_empty_document_no_matches(self):
        q = QueryBuilder()
        q.box("a", id="A", anchored=True)
        assert len(match(q.graph(), Document())) == 0

    def test_self_nested_tag(self):
        doc = parse_document("<s><s><s/></s></s>")
        q = QueryBuilder()
        outer = q.box("s", id="O")
        q.box("s", id="I", parent=outer)
        pairs = {
            (id(b["O"]), id(b["I"])) for b in match(q.graph(), doc)
        }
        assert len(pairs) == 2  # two parent/child s-pairs

    def test_deep_edge_does_not_match_self(self):
        doc = parse_document("<s><t/></s>")
        q = QueryBuilder()
        outer = q.box("s", id="O")
        q.box("s", id="I", parent=outer, deep=True)
        assert len(match(q.graph(), doc)) == 0

    def test_diamond_dag_pattern(self):
        # one grandchild shared by two paths: homomorphism collapses them
        doc = parse_document("<r><m><x/></m><m><x/></m></r>")
        q = QueryBuilder()
        r = q.box("r", id="R")
        m1 = q.box("m", id="M1", parent=r)
        m2 = q.box("m", id="M2", parent=r)
        x = q.box("x", id="X")
        q.contains(m1, x)
        q.contains(m2, x)
        bindings = match(q.graph(), doc)
        # X must be a child of both M1 and M2 -> forces M1 is M2
        assert len(bindings) == 2
        assert all(b["M1"] is b["M2"] for b in bindings)

    def test_nested_negation(self):
        # books without an author that has no last name
        doc = parse_document(
            "<bib>"
            "<book><author><last>x</last></author></book>"
            "<book><author/></book>"
            "<book/>"
            "</bib>"
        )
        q = QueryBuilder()
        book = q.box("book", id="B")
        author = q.box("author", id="A")
        q.negate(book, author)
        last = q.box("last", id="L")
        g = q.graph()
        from repro.xmlgl import ContainmentEdge

        g.add_edge(ContainmentEdge("A", "L", negated=True, position=99))
        bindings = match(g, doc)
        # negated: an author with no last; book 2 has one -> excluded
        ids = sorted(len(b["B"].children) for b in bindings)
        assert len(bindings) == 2


class TestConditionEdgeCases:
    def test_condition_between_text_bindings(self, small):
        doc = parse_document("<r><p>5</p><q>7</q></r>")
        q = QueryBuilder()
        p = q.box("p", id="P")
        qq = q.box("q", id="Q")
        q.where(cmp("<", content("P"), content("Q")))
        assert len(match(q.graph(), doc)) == 1

    def test_regex_on_missing_content_is_false(self):
        doc = parse_document("<r><p/></r>")
        q = QueryBuilder()
        q.box("p", id="P")
        q.where(regex(content("P"), ".+"))
        assert len(match(q.graph(), doc)) == 0

    def test_arith_condition(self):
        doc = parse_document('<r><item price="10" qty="3"/></r>')
        rule = parse_rule(
            "query { item as I { @price as P  @qty as Q } where P * Q >= 30 }"
            " construct { r { collect I } }"
        )
        result = evaluate_rule(rule, doc)
        assert len(result.find_all("item")) == 1


class TestEvaluatorEdgeCases:
    def test_empty_result_constructs_empty_root(self, small):
        q = QueryBuilder()
        q.box("zzz", id="Z")
        rule = Rule([q.graph()], elem("out", collect("Z")))
        result = evaluate_rule(rule, small)
        assert result.tag == "out" and result.children == []

    def test_value_of_on_empty_bindings_raises(self, small):
        q = QueryBuilder()
        q.box("zzz", id="Z")
        rule = Rule([q.graph()], elem("out", value_of("Z")))
        with pytest.raises(EvaluationError, match="unbound"):
            evaluate_rule(rule, small)

    def test_tag_from_heterogeneous(self):
        doc = parse_document(
            '<bib><book year="1999"><title>A</title></book>'
            '<article year="2000"><title>B</title></article></bib>'
        )
        rule = parse_rule(
            """
            query { * as X { title as T  @year as Y } }
            construct { mixed { $X for X { copy T } } }
            """
        )
        result = evaluate_rule(rule, doc)
        assert [c.tag for c in result.child_elements()] == ["book", "article"]

    def test_tag_from_requires_element(self):
        doc = parse_document("<r><p>x</p></r>")
        q = QueryBuilder()
        p = q.box("p", id="P")
        q.text(p, id="T")
        rule = Rule(
            [q.graph()],
            elem("out", elem("_", tag_from="T", for_each=["T"])),
        )
        with pytest.raises(EvaluationError, match="element"):
            evaluate_rule(rule, doc)

    def test_tag_from_ambiguous_raises(self):
        doc = parse_document("<r><p/><q/></r>")
        q = QueryBuilder()
        q.box(None, id="X")
        rule = Rule(
            [q.graph()],
            elem("out", elem("_", tag_from="X")),  # no for_each: ambiguous
        )
        with pytest.raises(EvaluationError, match="functionally"):
            evaluate_rule(rule, doc)


class TestOptionsEdgeCases:
    def test_wildcard_forces_full_scan_even_with_index(self, small):
        from repro.engine import EvalStats

        q = QueryBuilder()
        q.box(None, id="X")
        stats = EvalStats()
        match(q.graph(), small, options=MatchOptions(use_index=True), stats=stats)
        assert stats.full_scans == 1

    def test_index_reused_across_calls(self, small):
        from repro.engine import DocumentIndex

        index = DocumentIndex(small)
        q = QueryBuilder()
        q.box("b", id="B")
        first = match(q.graph(), small, index=index)
        second = match(q.graph(), small, index=index)
        assert len(first) == len(second) == 2


class TestAttributeIndexedCandidates:
    def test_wildcard_with_attribute_uses_index(self):
        from repro.engine import EvalStats
        from repro.ssd import parse_document

        doc = parse_document(
            '<r><a k="1"/><b/><c k="2"/><d/><e/><f/><g/><h/></r>'
        )
        q = QueryBuilder()
        box = q.box(None, id="X")
        q.attribute(box, "k", id="K")
        stats = EvalStats()
        bindings = match(q.graph(), doc, stats=stats)
        assert len(bindings) == 2
        # no full scan: the attribute index supplied the candidates
        assert stats.full_scans == 0
        assert stats.index_lookups >= 1

    def test_attribute_hint_does_not_change_results(self, small):
        from repro.ssd import parse_document

        doc = parse_document('<r><x k="1"><y/></x><x/><x k="2"/></r>')
        q = QueryBuilder()
        box = q.box("x", id="X")
        q.attribute(box, "k", id="K")
        indexed = match(q.graph(), doc)
        unindexed = match(
            q.graph(), doc, options=MatchOptions(use_index=False)
        )
        assert {b["K"] for b in indexed} == {b["K"] for b in unindexed} == {"1", "2"}

    def test_negated_attribute_not_used_as_hint(self):
        from repro.xmlgl import AttributePattern, ContainmentEdge
        from repro.ssd import parse_document

        doc = parse_document('<r><x k="1"/><x/></r>')
        q = QueryBuilder()
        q.box("x", id="X")
        g = q.graph()
        g.add_node(AttributePattern("K", "k"))
        g.add_edge(ContainmentEdge("X", "K", negated=True, position=9))
        bindings = match(g, doc)
        assert len(bindings) == 1  # only the x without @k
