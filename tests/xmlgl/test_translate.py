"""Tests for the XML-GL → path translation, incl. the differential oracle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ssd import E, document, parse_document
from repro.ssd.paths import evaluate_path
from repro.xmlgl import QueryBuilder, cmp, content, match
from repro.xmlgl.translate import TranslationError, to_path, translatable


@pytest.fixture
def doc():
    return parse_document(
        '<bib>'
        '<book year="1994"><title>TCP</title><author><last>Stevens</last></author></book>'
        '<book year="2000"><title>Web</title></book>'
        '<article><title>GQL</title></article>'
        '</bib>'
    )


def matched_elements(graph, doc, node_id):
    return {id(b[node_id]) for b in match(graph, doc)}


class TestTranslation:
    def test_simple_chain(self, doc):
        q = QueryBuilder()
        bib = q.box("bib", id="R", anchored=True)
        book = q.box("book", id="B", parent=bib)
        title = q.box("title", id="T", parent=book)
        path = to_path(q.graph(), "T")
        assert str(path) == "/bib/book/title"
        assert {id(e) for e in evaluate_path(path, doc)} == matched_elements(
            q.graph(), doc, "T"
        )

    def test_unanchored_root_becomes_descendant(self, doc):
        q = QueryBuilder()
        q.box("title", id="T")
        assert str(to_path(q.graph(), "T")) == "//title"

    def test_deep_edge(self, doc):
        q = QueryBuilder()
        bib = q.box("bib", id="R", anchored=True)
        q.box("last", id="L", parent=bib, deep=True)
        assert str(to_path(q.graph(), "L")) == "/bib//last"

    def test_attribute_constraint(self, doc):
        q = QueryBuilder()
        book = q.box("book", id="B")
        q.attribute(book, "year", id="Y", value="2000")
        path = to_path(q.graph(), "B")
        assert str(path) == "//book[@year='2000']"
        assert len(evaluate_path(path, doc)) == 1

    def test_off_spine_siblings_become_predicates(self, doc):
        q = QueryBuilder()
        book = q.box("book", id="B")
        q.box("author", id="A", parent=book)
        title = q.box("title", id="T", parent=book)
        path = to_path(q.graph(), "T")
        assert str(path) == "//book[author]/title"

    def test_negation_becomes_not(self, doc):
        q = QueryBuilder()
        book = q.box("book", id="B")
        q.negate(book, q.box("author", id="A"))
        path = to_path(q.graph(), "B")
        assert str(path) == "//book[not(author)]"
        assert len(evaluate_path(path, doc)) == 1

    def test_wildcard_box(self, doc):
        q = QueryBuilder()
        any_box = q.box(None, id="X")
        q.attribute(any_box, "year", id="Y")
        assert str(to_path(q.graph(), "X")) == "//*[@year]"


class TestFragmentBoundaries:
    def test_join_not_translatable(self):
        q = QueryBuilder()
        a = q.box("a", id="A")
        b = q.box("b", id="B")
        shared = q.box("c", id="C")
        q.contains(a, shared)
        q.contains(b, shared)
        assert "shared" in translatable(q.graph())

    def test_conditions_not_translatable(self):
        q = QueryBuilder()
        q.box("a", id="A")
        q.where(cmp("=", content("A"), 1))
        assert "predicate annotations" in translatable(q.graph())

    def test_multi_root_not_translatable(self):
        q = QueryBuilder()
        q.box("a", id="A")
        q.box("b", id="B")
        assert "roots" in translatable(q.graph())

    def test_or_groups_not_translatable(self):
        q = QueryBuilder()
        a = q.box("a", id="A")
        b = q.box("b", id="B")
        c = q.box("c", id="C")
        q.either([q.detached_edge(a, b)], [q.detached_edge(a, c)])
        assert "or-arcs" in translatable(q.graph())

    def test_regex_not_translatable(self):
        q = QueryBuilder()
        a = q.box("a", id="A")
        q.text(a, id="T", regex="x.*")
        assert "regex" in translatable(q.graph())

    def test_ordered_not_translatable(self):
        q = QueryBuilder()
        a = q.box("a", id="A")
        q.box("b", id="B", parent=a, ordered=True)
        q.box("c", id="C", parent=a, ordered=True)
        assert "ordered" in translatable(q.graph())

    def test_untranslatable_raises(self):
        q = QueryBuilder()
        q.box("a", id="A")
        q.box("b", id="B")
        with pytest.raises(TranslationError):
            to_path(q.graph(), "A")

    def test_target_must_be_element(self):
        q = QueryBuilder()
        a = q.box("a", id="A")
        q.text(a, id="T")
        with pytest.raises(TranslationError, match="element"):
            to_path(q.graph(), "T")

    def test_negated_target_rejected(self):
        q = QueryBuilder()
        a = q.box("a", id="A")
        q.negate(a, q.box("b", id="B"))
        with pytest.raises(TranslationError, match="negated"):
            to_path(q.graph(), "B")


# ---------------------------------------------------------------------------
# Differential oracle: matcher vs path engine on random tree queries
# ---------------------------------------------------------------------------

TAGS = ["a", "b", "c"]


@st.composite
def tree_queries(draw):
    q = QueryBuilder()
    ids = [q.box(draw(st.sampled_from(TAGS + [None])), id="N0")]
    for index in range(1, draw(st.integers(1, 4))):
        parent = draw(st.sampled_from(ids))
        deep = draw(st.booleans())
        negated = draw(st.booleans()) and index > 1
        node_id = f"N{index}"
        if negated:
            q.negate(parent, q.box(draw(st.sampled_from(TAGS)), id=node_id))
        else:
            ids.append(
                q.box(
                    draw(st.sampled_from(TAGS + [None])),
                    id=node_id, parent=parent, deep=deep,
                )
            )
    if draw(st.booleans()):
        target_parent = draw(st.sampled_from(ids))
        q.attribute(target_parent, "k", id="ATT",
                    value=draw(st.sampled_from(["1", None])))
    graph = q.graph()
    target = draw(st.sampled_from(ids))
    return graph, target


@st.composite
def random_documents(draw):
    def build(level):
        element = E(draw(st.sampled_from(TAGS)))
        if draw(st.booleans()):
            element.set("k", draw(st.sampled_from(["1", "2"])))
        if level > 0:
            for _ in range(draw(st.integers(0, 3))):
                element.append(build(level - 1))
        return element

    return document(build(3))


class TestDifferentialOracle:
    @given(tree_queries(), random_documents())
    @settings(max_examples=150, deadline=None)
    def test_matcher_agrees_with_path_engine(self, query, doc):
        graph, target = query
        reason = translatable(graph)
        if reason is not None:
            return
        path = to_path(graph, target)
        via_matcher = matched_elements(graph, doc, target)
        via_paths = {id(e) for e in evaluate_path(path, doc)}
        assert via_matcher == via_paths, str(path)
