"""Tests for tree-pattern containment, incl. the soundness property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ssd import E, document
from repro.xmlgl import QueryBuilder, cmp, content, match
from repro.xmlgl.containment import ContainmentError, contains, equivalent


def chain(*specs, anchored=False):
    """Build a chain query: specs are (tag, deep) pairs; returns (graph, leaf)."""
    q = QueryBuilder()
    previous = None
    leaf = None
    for index, (tag, deep) in enumerate(specs):
        leaf = q.box(tag, id=f"n{index}", parent=previous, deep=deep,
                     anchored=anchored and previous is None)
        previous = leaf
    return q.graph(), leaf


class TestBasicContainment:
    def test_query_contains_itself(self):
        g, t = chain(("a", False), ("b", False))
        assert contains(g, t, *chain(("a", False), ("b", False)))

    def test_wildcard_contains_specific(self):
        loose, lt = chain((None, False))
        strict, st_ = chain(("book", False))
        assert contains(loose, lt, strict, st_)
        assert not contains(strict, st_, loose, lt)

    def test_fewer_constraints_contain_more(self):
        q1 = QueryBuilder()
        b1 = q1.box("book", id="B")
        q2 = QueryBuilder()
        b2 = q2.box("book", id="B")
        q2.box("title", id="T", parent=b2)
        assert contains(q1.graph(), "B", q2.graph(), "B")
        assert not contains(q2.graph(), "B", q1.graph(), "B")

    def test_parent_context_matters(self):
        in_bib, t1 = chain(("bib", False), ("book", False))
        bare, t2 = chain(("book", False))
        assert contains(bare, t2, in_bib, t1)
        assert not contains(in_bib, t1, bare, t2)

    def test_deep_contains_child(self):
        deep, dt = chain(("bib", False), ("book", True))
        shallow, st_ = chain(("bib", False), ("book", False))
        assert contains(deep, dt, shallow, st_)
        assert not contains(shallow, st_, deep, dt)

    def test_deep_contains_longer_chain(self):
        deep, dt = chain(("bib", False), ("last", True))
        long_chain, lt = chain(
            ("bib", False), ("book", False), ("author", False), ("last", False)
        )
        assert contains(deep, dt, long_chain, lt)

    def test_different_tags_incomparable(self):
        a, at = chain(("a", False))
        b, bt = chain(("b", False))
        assert not contains(a, at, b, bt)
        assert not contains(b, bt, a, at)

    def test_anchoring(self):
        anchored, at = chain(("bib", False), ("book", False), anchored=True)
        floating, ft = chain(("bib", False), ("book", False))
        # floating matches everywhere incl. anchored spots
        assert contains(floating, ft, anchored, at)
        assert not contains(anchored, at, floating, ft)

    def test_value_constraints(self):
        q1 = QueryBuilder()
        b1 = q1.box("book", id="B")
        q1.attribute(b1, "year", id="Y")
        q2 = QueryBuilder()
        b2 = q2.box("book", id="B")
        q2.attribute(b2, "year", id="Y", value="1999")
        assert contains(q1.graph(), "B", q2.graph(), "B")
        assert not contains(q2.graph(), "B", q1.graph(), "B")

    def test_equivalent(self):
        g1, t1 = chain(("a", False), ("b", False))
        g2, t2 = chain(("a", False), ("b", False))
        assert equivalent(g1, t1, g2, t2)
        g3, t3 = chain((None, False), ("b", False))
        assert not equivalent(g1, t1, g3, t3)

    def test_sibling_subtrees_checked(self):
        # container: bib/book[author]/title ; containee: bib/book/title
        q1 = QueryBuilder()
        bib1 = q1.box("bib", id="R")
        book1 = q1.box("book", id="B", parent=bib1)
        q1.box("author", id="A", parent=book1)
        t1 = q1.box("title", id="T", parent=book1)
        q2 = QueryBuilder()
        bib2 = q2.box("bib", id="R")
        book2 = q2.box("book", id="B", parent=bib2)
        t2 = q2.box("title", id="T", parent=book2)
        assert not contains(q1.graph(), "T", q2.graph(), "T")
        assert contains(q2.graph(), "T", q1.graph(), "T")


class TestFragmentBoundaries:
    def test_negation_rejected(self):
        q = QueryBuilder()
        b = q.box("book", id="B")
        q.negate(b, q.box("cdrom", id="C"))
        other, t = chain(("book", False))
        with pytest.raises(ContainmentError, match="negation"):
            contains(q.graph(), "B", other, t)

    def test_conditions_rejected(self):
        q = QueryBuilder()
        q.box("book", id="B")
        q.where(cmp("=", content("B"), 1))
        other, t = chain(("book", False))
        with pytest.raises(ContainmentError, match="conditions"):
            contains(q.graph(), "B", other, t)

    def test_joins_rejected(self):
        q = QueryBuilder()
        a = q.box("a", id="A")
        b = q.box("b", id="B")
        c = q.box("c", id="C")
        q.contains(a, c)
        q.contains(b, c)
        other, t = chain(("c", False))
        with pytest.raises(ContainmentError):
            contains(q.graph(), "C", other, t)


# -- soundness property: True answers verified by evaluation ---------------------

TAGS = ["a", "b"]


@st.composite
def tree_queries(draw):
    q = QueryBuilder()
    ids = [q.box(draw(st.sampled_from(TAGS + [None])), id="N0")]
    for index in range(1, draw(st.integers(1, 3))):
        parent = draw(st.sampled_from(ids))
        ids.append(
            q.box(draw(st.sampled_from(TAGS + [None])), id=f"N{index}",
                  parent=parent, deep=draw(st.booleans()))
        )
    return q.graph(), draw(st.sampled_from(ids))


@st.composite
def small_documents(draw):
    def build(level):
        element = E(draw(st.sampled_from(TAGS)))
        if level > 0:
            for _ in range(draw(st.integers(0, 2))):
                element.append(build(level - 1))
        return element

    return document(build(3))


class TestSoundnessProperty:
    @given(tree_queries(), tree_queries(), small_documents())
    @settings(max_examples=120, deadline=None)
    def test_containment_verified_by_evaluation(self, query1, query2, doc):
        (g1, t1), (g2, t2) = query1, query2
        if not contains(g1, t1, g2, t2):
            return
        answers1 = {id(b[t1]) for b in match(g1, doc)}
        answers2 = {id(b[t2]) for b in match(g2, doc)}
        assert answers2 <= answers1
