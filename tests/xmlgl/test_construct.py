"""Unit tests for the construct side (plain box / triangle / list icon)."""

import pytest

from repro.engine import Binding, BindingSet
from repro.errors import EvaluationError, QueryStructureError
from repro.ssd import E, serialize
from repro.xmlgl import (
    Aggregate,
    aggregate,
    attribute_const,
    attribute_from,
    build,
    collect,
    copy_of,
    elem,
    group,
    text,
    value_of,
)


def bindings_for_books():
    b1 = E("book", {"year": "1994"}, E("title", "T1"))
    b2 = E("book", {"year": "2000"}, E("title", "T2"))
    root = E("bib")  # attach so document order is defined
    root.append(b1)
    root.append(b2)
    return BindingSet(
        [
            Binding({"B": b1, "T": b1.find("title"), "Y": "1994"}),
            Binding({"B": b2, "T": b2.find("title"), "Y": "2000"}),
        ]
    )


class TestPlainBox:
    def test_single_element(self):
        result = build(elem("result"), BindingSet())
        assert serialize(result) == "<result/>"

    def test_constant_attributes_and_text(self):
        result = build(
            elem("r", text("hi"), attrs=[attribute_const("k", "v")]),
            BindingSet(),
        )
        assert serialize(result) == '<r k="v">hi</r>'

    def test_for_each_replication(self):
        result = build(
            elem("r", elem("entry", for_each=["B"])),
            bindings_for_books(),
        )
        assert serialize(result) == "<r><entry/><entry/></r>"

    def test_for_each_with_content(self):
        result = build(
            elem("r", elem("entry", value_of("Y"), for_each=["B"])),
            bindings_for_books(),
        )
        assert serialize(result) == "<r><entry>1994</entry><entry>2000</entry></r>"

    def test_attribute_from_variable(self):
        result = build(
            elem("r", elem("e", attrs=[attribute_from("y", "Y")], for_each=["B"])),
            bindings_for_books(),
        )
        assert serialize(result) == '<r><e y="1994"/><e y="2000"/></r>'

    def test_sort_by(self):
        result = build(
            elem(
                "r",
                elem("e", value_of("Y"), for_each=["B"], sort_by="Y"),
            ),
            BindingSet(list(reversed(list(bindings_for_books())))),
        )
        assert serialize(result) == "<r><e>1994</e><e>2000</e></r>"

    def test_root_replication_rejected(self):
        with pytest.raises(QueryStructureError):
            build(elem("r", for_each=["B"]), bindings_for_books())


class TestCopies:
    def test_deep_copy(self):
        result = build(elem("r", copy_of("T")), BindingSet([bindings_for_books()[0]]))
        assert serialize(result) == "<r><title>T1</title></r>"

    def test_shallow_copy(self):
        result = build(
            elem("r", copy_of("B", deep=False)),
            BindingSet([bindings_for_books()[0]]),
        )
        assert serialize(result) == '<r><book year="1994"/></r>'

    def test_copy_does_not_steal_source(self):
        bindings = bindings_for_books()
        book = bindings[0]["B"]
        build(elem("r", copy_of("B")), BindingSet([bindings[0]]))
        assert book.parent is not None  # original still attached

    def test_collect_document_order(self):
        result = build(elem("r", collect("B", deep=False)), bindings_for_books())
        assert serialize(result) == '<r><book year="1994"/><book year="2000"/></r>'

    def test_collect_distinct(self):
        base = bindings_for_books()
        doubled = base.union(base)  # same element identities twice
        result = build(elem("r", collect("B", deep=False)), doubled)
        assert len(result.child_elements()) == 2

    def test_copy_of_string_binding_is_text(self):
        result = build(elem("r", copy_of("Y")), bindings_for_books())
        assert result.text_content() == "19942000"


class TestValueOf:
    def test_single_value(self):
        result = build(
            elem("r", value_of("T")),
            BindingSet([bindings_for_books()[0]]),
        )
        assert result.text_content() == "T1"

    def test_unbound_raises(self):
        with pytest.raises(EvaluationError, match="unbound"):
            build(elem("r", value_of("Z")), bindings_for_books())

    def test_ambiguous_raises(self):
        with pytest.raises(EvaluationError, match="functionally determined"):
            build(elem("r", value_of("Y")), bindings_for_books())


class TestGroupBy:
    def make_bindings(self):
        rows = []
        for year, title in (("1999", "A"), ("1999", "B"), ("2000", "C")):
            rows.append(Binding({"Y": year, "T": E("title", title)}))
        return BindingSet(rows)

    def test_groups_splice_children(self):
        result = build(
            elem(
                "r",
                group(["Y"], elem("year-group", value_of("Y"))),
            ),
            self.make_bindings(),
        )
        assert serialize(result) == (
            "<r><year-group>1999</year-group><year-group>2000</year-group></r>"
        )

    def test_group_members_visible(self):
        result = build(
            elem("r", group(["Y"], elem("g", aggregate("count", "T")))),
            self.make_bindings(),
        )
        assert serialize(result) == "<r><g>2</g><g>1</g></r>"


class TestAggregates:
    def prices(self):
        return BindingSet(
            [Binding({"P": "10"}), Binding({"P": "20"}), Binding({"P": "30"})]
        )

    def test_count(self):
        result = build(elem("r", aggregate("count", "P")), self.prices())
        assert result.text_content() == "3"

    def test_count_distinct(self):
        doubled = self.prices().union(self.prices())
        result = build(elem("r", aggregate("count", "P")), doubled)
        assert result.text_content() == "3"

    def test_sum_min_max_avg(self):
        for function, expected in (
            ("sum", "60"), ("min", "10"), ("max", "30"), ("avg", "20")
        ):
            result = build(elem("r", aggregate(function, "P")), self.prices())
            assert result.text_content() == expected, function

    def test_avg_non_integer(self):
        bindings = BindingSet([Binding({"P": "1"}), Binding({"P": "2"})])
        result = build(elem("r", aggregate("avg", "P")), bindings)
        assert result.text_content() == "1.5"

    def test_duplicate_atoms_counted_per_row(self):
        # two books with the same price: SUM sees both, COUNT DISTINCT one
        bindings = BindingSet(
            [Binding({"P": "9.99"}), Binding({"P": "9.99"})]
        )
        total = build(elem("r", aggregate("sum", "P")), bindings)
        assert total.text_content() == "19.98"
        count = build(elem("r", aggregate("count", "P")), bindings)
        assert count.text_content() == "1"

    def test_duplicate_elements_deduped_by_identity(self):
        price = E("price", "5")
        bindings = BindingSet([Binding({"P": price}), Binding({"P": price})])
        total = build(elem("r", aggregate("sum", "P")), bindings)
        assert total.text_content() == "5"

    def test_sum_over_elements_uses_content(self):
        bindings = BindingSet(
            [Binding({"P": E("price", "5")}), Binding({"P": E("price", "7")})]
        )
        result = build(elem("r", aggregate("sum", "P")), bindings)
        assert result.text_content() == "12"

    def test_empty_context(self):
        empty = BindingSet()
        assert build(elem("r", aggregate("count", "P")), empty).text_content() == "0"
        assert build(elem("r", aggregate("sum", "P")), empty).text_content() == "0"
        assert build(elem("r", aggregate("min", "P")), empty).text_content() == ""

    def test_non_numeric_raises(self):
        bindings = BindingSet([Binding({"P": "abc"})])
        with pytest.raises(EvaluationError):
            build(elem("r", aggregate("sum", "P")), bindings)

    def test_unknown_function_rejected(self):
        with pytest.raises(EvaluationError):
            Aggregate("median", "P")
