"""Unit tests for the XML-GL query-side AST and its validation."""

import pytest

from repro.errors import QueryStructureError
from repro.xmlgl import (
    AttributePattern,
    ContainmentEdge,
    ElementPattern,
    OrGroup,
    QueryBuilder,
    QueryGraph,
    TextPattern,
    attr,
    cmp,
)


class TestGraphConstruction:
    def test_duplicate_node_id_rejected(self):
        g = QueryGraph()
        g.add_node(ElementPattern("B", "book"))
        with pytest.raises(QueryStructureError):
            g.add_node(ElementPattern("B", "article"))

    def test_edge_endpoints_must_exist(self):
        g = QueryGraph()
        g.add_node(ElementPattern("B", "book"))
        with pytest.raises(QueryStructureError):
            g.add_edge(ContainmentEdge("B", "missing"))
        with pytest.raises(QueryStructureError):
            g.add_edge(ContainmentEdge("missing", "B"))

    def test_containment_parent_must_be_element(self):
        g = QueryGraph()
        g.add_node(ElementPattern("B", "book"))
        g.add_node(TextPattern("T"))
        g.add_edge(ContainmentEdge("B", "T"))
        with pytest.raises(QueryStructureError):
            g.add_edge(ContainmentEdge("T", "B"))

    def test_deep_edge_needs_element_child(self):
        g = QueryGraph()
        g.add_node(ElementPattern("B", "book"))
        g.add_node(TextPattern("T"))
        with pytest.raises(QueryStructureError):
            g.add_edge(ContainmentEdge("B", "T", deep=True))

    def test_empty_or_group_rejected(self):
        g = QueryGraph()
        g.add_node(ElementPattern("B", "book"))
        with pytest.raises(QueryStructureError):
            g.add_or_group(OrGroup(()))


class TestValidation:
    def test_no_element_box(self):
        g = QueryGraph()
        with pytest.raises(QueryStructureError):
            g.validate()

    def test_dangling_text_node(self):
        g = QueryGraph()
        g.add_node(ElementPattern("B", "book"))
        g.add_node(TextPattern("T"))
        with pytest.raises(QueryStructureError, match="no parent arc"):
            g.validate()

    def test_dangling_attribute_node(self):
        g = QueryGraph()
        g.add_node(ElementPattern("B", "book"))
        g.add_node(AttributePattern("Y", "year"))
        with pytest.raises(QueryStructureError, match="no parent arc"):
            g.validate()

    def test_containment_cycle_rejected(self):
        g = QueryGraph()
        g.add_node(ElementPattern("A", "a"))
        g.add_node(ElementPattern("B", "b"))
        g.add_edge(ContainmentEdge("A", "B"))
        g.add_edge(ContainmentEdge("B", "A"))
        with pytest.raises(QueryStructureError, match="cycle"):
            g.validate()

    def test_negated_subtree_must_be_private(self):
        g = QueryGraph()
        g.add_node(ElementPattern("A", "a"))
        g.add_node(ElementPattern("B", "b"))
        g.add_node(ElementPattern("C", "c"))
        g.add_edge(ContainmentEdge("A", "C"))
        g.add_edge(ContainmentEdge("B", "C", negated=True))
        with pytest.raises(QueryStructureError, match="shared"):
            g.validate()

    def test_or_edge_duplicating_plain_edge_rejected(self):
        g = QueryGraph()
        g.add_node(ElementPattern("A", "a"))
        g.add_node(ElementPattern("B", "b"))
        g.add_edge(ContainmentEdge("A", "B"))
        g.add_or_group(OrGroup(((ContainmentEdge("A", "B"),),)))
        with pytest.raises(QueryStructureError, match="or-group"):
            g.validate()

    def test_valid_dag_join_accepted(self):
        # two parents sharing one child = join; must validate fine
        g = QueryGraph()
        g.add_node(ElementPattern("A", "a"))
        g.add_node(ElementPattern("B", "b"))
        g.add_node(ElementPattern("C", "c"))
        g.add_edge(ContainmentEdge("A", "C"))
        g.add_edge(ContainmentEdge("B", "C"))
        g.validate()


class TestAccessors:
    def make(self) -> QueryGraph:
        q = QueryBuilder()
        bib = q.box("bib", id="R", anchored=True)
        book = q.box("book", id="B", parent=bib)
        q.attribute(book, "year", id="Y")
        q.text(q.box("title", id="T", parent=book), id="TT")
        q.negate(book, q.box("cdrom", id="C"))
        return q.graph()

    def test_roots(self):
        assert self.make().roots() == ["R"]

    def test_element_nodes(self):
        ids = [n.id for n in self.make().element_nodes()]
        assert ids == ["R", "B", "T", "C"]

    def test_children_of_sorted_by_position(self):
        g = self.make()
        children = [e.child for e in g.children_of("B")]
        assert children == ["Y", "T", "C"]

    def test_parents_of(self):
        g = self.make()
        assert g.parents_of("B") == ["R"]
        assert g.parents_of("C") == []  # negated edge is not a positive parent

    def test_negated_edges(self):
        g = self.make()
        assert [e.child for e in g.negated_edges()] == ["C"]
        assert all(not e.negated for e in g.positive_edges())

    def test_describe_smoke(self):
        text = self.make().describe()
        assert "[book](B)" in text
        assert "B -!-> C" in text


class TestBuilder:
    def test_auto_ids_unique(self):
        q = QueryBuilder()
        a = q.box("book")
        b = q.box("book")
        assert a != b

    def test_where_returns_builder(self):
        q = QueryBuilder()
        q.box("b", id="B")
        assert q.where(cmp("=", attr("B", "x"), 1)) is q

    def test_graph_validates(self):
        q = QueryBuilder()
        q.box("a", id="A")
        q.box("b", id="B")
        q.contains("A", "B")
        q.contains("B", "A")
        with pytest.raises(QueryStructureError):
            q.graph()

    def test_either_builds_or_group(self):
        q = QueryBuilder()
        book = q.box("book", id="B")
        p = q.box("publisher", id="P")
        a = q.box("author", id="A")
        q.either([q.detached_edge(book, p)], [q.detached_edge(book, a)])
        graph = q.graph()
        assert len(graph.or_groups) == 1
        assert len(list(graph.all_edges())) == 2
