"""Unit tests for the XML-GL matcher."""

import pytest

from repro.engine import EvalStats
from repro.errors import QueryStructureError
from repro.xmlgl import (
    MatchOptions,
    QueryBuilder,
    attr,
    cmp,
    content,
    match,
    name_of,
    or_,
    regex,
)


def titles(bindings, var="T"):
    return sorted(b[var].text_content() for b in bindings)


class TestSelection:
    def test_match_all_books(self, bib):
        q = QueryBuilder()
        q.box("book", id="B")
        assert len(match(q.graph(), bib)) == 3

    def test_anchored_root(self, bib):
        q = QueryBuilder()
        q.box("bib", id="R", anchored=True)
        bindings = match(q.graph(), bib)
        assert len(bindings) == 1
        assert bindings[0]["R"] is bib.root

    def test_anchored_wrong_tag_no_match(self, bib):
        q = QueryBuilder()
        q.box("book", id="B", anchored=True)
        assert len(match(q.graph(), bib)) == 0

    def test_wildcard_box(self, bib):
        q = QueryBuilder()
        q.box(None, id="X")
        assert len(match(q.graph(), bib)) == sum(1 for _ in bib.iter())

    def test_containment(self, bib):
        q = QueryBuilder()
        book = q.box("book", id="B")
        q.box("title", id="T", parent=book)
        bindings = match(q.graph(), bib)
        assert len(bindings) == 3
        assert "TCP/IP Illustrated" in titles(bindings)

    def test_direct_containment_not_deep(self, bib):
        q = QueryBuilder()
        bibx = q.box("bib", id="R", anchored=True)
        q.box("last", id="L", parent=bibx)  # last is 2 levels down
        assert len(match(q.graph(), bib)) == 0

    def test_deep_containment(self, bib):
        q = QueryBuilder()
        bibx = q.box("bib", id="R", anchored=True)
        q.box("last", id="L", parent=bibx, deep=True)
        assert len(match(q.graph(), bib)) == 6

    def test_multiple_children(self, bib):
        q = QueryBuilder()
        book = q.box("book", id="B")
        q.box("title", id="T", parent=book)
        q.box("publisher", id="P", parent=book)
        bindings = match(q.graph(), bib)
        assert titles(bindings) == ["TCP/IP Illustrated", "The Economics of Technology"]


class TestValuePatterns:
    def test_text_binding(self, bib):
        q = QueryBuilder()
        title = q.box("title", id="T")
        q.text(title, id="TT")
        bindings = match(q.graph(), bib)
        assert "Data on the Web" in [b["TT"] for b in bindings]

    def test_text_constant_constraint(self, bib):
        q = QueryBuilder()
        title = q.box("title", id="T")
        q.text(title, id="TT", value="Data on the Web")
        assert len(match(q.graph(), bib)) == 1

    def test_text_regex_constraint(self, bib):
        q = QueryBuilder()
        title = q.box("title", id="T")
        q.text(title, id="TT", regex=".*Web.*")
        assert len(match(q.graph(), bib)) == 1

    def test_text_requires_nonempty(self, bib):
        q = QueryBuilder()
        book = q.box("book", id="B")
        q.text(book, id="BT")  # books have no immediate text
        assert len(match(q.graph(), bib)) == 0

    def test_attribute_binding(self, bib):
        q = QueryBuilder()
        book = q.box("book", id="B")
        q.attribute(book, "year", id="Y")
        years = sorted(b["Y"] for b in match(q.graph(), bib))
        assert years == ["1994", "1999", "2000"]

    def test_attribute_value_constraint(self, bib):
        q = QueryBuilder()
        book = q.box("book", id="B")
        q.attribute(book, "year", id="Y", value="1999")
        assert len(match(q.graph(), bib)) == 1

    def test_attribute_regex(self, bib):
        q = QueryBuilder()
        book = q.box("book", id="B")
        q.attribute(book, "id", id="I", regex="b[12]")
        assert len(match(q.graph(), bib)) == 2

    def test_missing_attribute_no_match(self, bib):
        q = QueryBuilder()
        article = q.box("article", id="A")
        q.attribute(article, "id", id="I")
        assert len(match(q.graph(), bib)) == 0


class TestConditions:
    def test_attribute_comparison(self, bib):
        q = QueryBuilder()
        book = q.box("book", id="B")
        q.where(cmp(">=", attr("B", "year"), 1999))
        assert len(match(q.graph(), bib)) == 2

    def test_content_comparison(self, bib):
        q = QueryBuilder()
        price = q.box("price", id="P")
        q.where(cmp("<", content("P"), 50))
        assert len(match(q.graph(), bib)) == 1

    def test_regex_condition(self, bib):
        q = QueryBuilder()
        q.box("title", id="T")
        q.where(regex(content("T"), ".*Tech.*"))
        assert len(match(q.graph(), bib)) == 1

    def test_name_of_condition(self, bib):
        q = QueryBuilder()
        q.box(None, id="X")
        q.where(cmp("=", name_of("X"), "editor"))
        assert len(match(q.graph(), bib)) == 1

    def test_join_via_condition(self, bib):
        # books and articles published the same year
        q = QueryBuilder()
        book = q.box("book", id="B")
        article = q.box("article", id="A")
        q.where(cmp("=", attr("B", "year"), attr("A", "year")))
        bindings = match(q.graph(), bib)
        assert len(bindings) == 1
        assert bindings[0]["B"].get("id") == "b2"

    def test_condition_on_negated_node_rejected(self, bib):
        q = QueryBuilder()
        book = q.box("book", id="B")
        q.negate(book, q.box("cdrom", id="C"))
        q.where(cmp("=", attr("C", "x"), 1))
        with pytest.raises(QueryStructureError, match="negated"):
            match(q.graph(), bib)


class TestJoins:
    def test_shared_node_join(self, bib):
        # a title box shared by a book box and a wildcard box: same element
        q = QueryBuilder()
        book = q.box("book", id="B")
        anything = q.box(None, id="X")
        title = q.box("title", id="T")
        q.contains(book, title)
        q.contains(anything, title)
        bindings = match(q.graph(), bib)
        # X must equal B for each book (homomorphism allows it)
        assert all(b["X"] is b["B"] for b in bindings)
        assert len(bindings) == 3


class TestNegation:
    def test_negated_child(self, bib):
        q = QueryBuilder()
        book = q.box("book", id="B")
        q.negate(book, q.box("publisher", id="P"))
        bindings = match(q.graph(), bib)
        assert len(bindings) == 1
        assert bindings[0]["B"].get("id") == "b2"

    def test_negated_deep(self, bib):
        # books with no <last> anywhere below an <author> (deep negation)
        q = QueryBuilder()
        bibx = q.box("bib", id="R", anchored=True)
        book = q.box("book", id="B", parent=bibx)
        author = q.box("author", id="A")
        q.negate(book, author, deep=True)
        bindings = match(q.graph(), bib)
        assert [b["B"].get("id") for b in bindings] == ["b3"]

    def test_negated_subtree_with_structure(self, bib):
        # books without an author whose last name is Suciu
        # (the negated text is constrained through the pattern, not a condition)
        q2 = QueryBuilder()
        book2 = q2.box("book", id="B")
        author2 = q2.box("author", id="A")
        q2.negate(book2, author2)
        last2 = q2.box("last", id="L")
        q2.contains(author2, last2)
        q2.text(last2, id="LT", value="Suciu")
        bindings = match(q2.graph(), bib)
        assert sorted(b["B"].get("id") for b in bindings) == ["b1", "b3"]

    def test_negated_attribute(self, bib):
        from repro.xmlgl import AttributePattern, ContainmentEdge

        q = QueryBuilder()
        q.box("book", id="B")
        g = q.graph()
        g.add_node(AttributePattern("I", "id", value="b2"))
        g.add_edge(ContainmentEdge("B", "I", negated=True, position=99))
        bindings = match(g, bib)
        assert sorted(b["B"].get("id") for b in bindings) == ["b1", "b3"]

    def test_negated_element_child(self, bib):
        q = QueryBuilder()
        q.box("title", id="T")
        q.negate("T", q.box("anything", id="Z"))
        assert len(match(q.graph(), bib)) == 4  # titles have no children at all

    def test_negated_text(self, bib):
        from repro.xmlgl import ContainmentEdge, TextPattern

        q = QueryBuilder()
        price = q.box("price", id="P")
        g = q.graph()
        g.add_node(TextPattern("PT", value="39.95"))
        g.add_edge(ContainmentEdge("P", "PT", negated=True, position=99))
        bindings = match(g, bib)
        assert len(bindings) == 2  # prices other than 39.95


class TestOrderedArcs:
    def test_ordered_pair_respected(self, bib):
        q = QueryBuilder()
        author = q.box("author", id="A")
        q.box("last", id="L", parent=author, ordered=True)
        q.box("first", id="F", parent=author, ordered=True)
        assert len(match(q.graph(), bib)) == 5  # last precedes first everywhere

    def test_ordered_pair_violated(self, bib):
        q = QueryBuilder()
        author = q.box("author", id="A")
        q.box("first", id="F", parent=author, ordered=True)
        q.box("last", id="L", parent=author, ordered=True)
        assert len(match(q.graph(), bib)) == 0

    def test_unordered_matches_both_ways(self, bib):
        q = QueryBuilder()
        author = q.box("author", id="A")
        q.box("first", id="F", parent=author)
        q.box("last", id="L", parent=author)
        assert len(match(q.graph(), bib)) == 5


class TestOrGroups:
    def test_or_union(self, bib):
        q = QueryBuilder()
        book = q.box("book", id="B")
        pub = q.box("publisher", id="P")
        ed = q.box("editor", id="E")
        q.either(
            [q.detached_edge(book, pub)],
            [q.detached_edge(book, ed)],
        )
        bindings = match(q.graph(), bib)
        # b3 has both a publisher and an editor, so it matches both branches
        # with different bindings: union semantics yields three bindings.
        assert len(bindings) == 3
        assert sorted({b["B"].get("id") for b in bindings}) == ["b1", "b3"]

    def test_or_branch_binds_its_own_nodes(self, bib):
        q = QueryBuilder()
        book = q.box("book", id="B")
        pub = q.box("publisher", id="P")
        ed = q.box("editor", id="E")
        q.either(
            [q.detached_edge(book, pub)],
            [q.detached_edge(book, ed)],
        )
        bindings = match(q.graph(), bib)
        for binding in bindings:
            assert ("P" in binding) != ("E" in binding) or (
                "P" in binding and "E" in binding
            )

    def test_or_no_duplicates(self, bib):
        # both branches match the same book: binding reported once per shape
        q = QueryBuilder()
        book = q.box("book", id="B")
        t1 = q.box("title", id="T")
        q.either(
            [q.detached_edge(book, t1)],
            [q.detached_edge(book, t1, deep=True)],
        )
        bindings = match(q.graph(), bib)
        assert len(bindings) == 3


class TestStatsAndOptions:
    def test_stats_populated(self, bib):
        q = QueryBuilder()
        book = q.box("book", id="B")
        q.box("title", id="T", parent=book)
        stats = EvalStats()
        match(q.graph(), bib, options=MatchOptions(engine="pipeline"), stats=stats)
        assert stats.bindings_produced == 3
        # forced pipeline: work shows up as join rows, not per-candidate
        # trials
        assert stats.pipeline_fragments == 1
        assert stats.hashjoin_rows > 0
        assert stats.edge_checks > 0

    def test_stats_populated_adaptive_default(self, bib):
        # the default engine is adaptive: per-fragment cost decisions are
        # recorded, and the bindings match the forced engines
        q = QueryBuilder()
        book = q.box("book", id="B")
        q.box("title", id="T", parent=book)
        stats = EvalStats()
        match(q.graph(), bib, stats=stats)
        assert stats.bindings_produced == 3
        decisions = stats.extra.get("adaptive_pipeline", 0) + stats.extra.get(
            "adaptive_backtracking", 0
        )
        assert decisions == 1

    def test_stats_populated_backtracking(self, bib):
        q = QueryBuilder()
        book = q.box("book", id="B")
        q.box("title", id="T", parent=book)
        stats = EvalStats()
        match(q.graph(), bib, options=MatchOptions(engine="backtracking"), stats=stats)
        assert stats.bindings_produced == 3
        assert stats.candidates_tried + stats.interval_candidates > 0
        assert stats.edge_checks > 0
        assert stats.pipeline_fragments == 0

    def test_planner_and_index_toggles_same_result(self, bib):
        q = QueryBuilder()
        book = q.box("book", id="B")
        q.box("title", id="T", parent=book)
        q.attribute(book, "year", id="Y")
        baseline = match(q.graph(), bib)
        for planner in (True, False):
            for index in (True, False):
                options = MatchOptions(use_planner=planner, use_index=index)
                result = match(q.graph(), bib, options=options)
                assert len(result) == len(baseline)

    def test_index_disabled_counts_full_scans(self, bib):
        q = QueryBuilder()
        q.box("book", id="B")
        stats = EvalStats()
        match(q.graph(), bib, options=MatchOptions(use_index=False), stats=stats)
        assert stats.full_scans == 1
        assert stats.index_lookups == 0
