"""Tests for schema-aware query checking and chained programs."""

import pytest

from repro.analysis.xmlgl_schema import schema_diagnostics
from repro.errors import EvaluationError, QueryStructureError
from repro.ssd import parse_document, parse_dtd, serialize
from repro.xmlgl import QueryBuilder, evaluate_program
from repro.xmlgl.dsl import parse_program, parse_rule
from repro.xmlgl.schema import dtd_to_schema
from repro.workloads import BIB_DTD


@pytest.fixture
def schema():
    return dtd_to_schema(parse_dtd(BIB_DTD), "bib")[0]


def checked(graph, schema):
    """Schema findings as message strings (what the assertions grep)."""
    return [d.message for d in schema_diagnostics(graph, schema)]


class TestSchemaAwareChecking:
    def test_conformant_query_clean(self, schema):
        q = QueryBuilder()
        bib = q.box("bib", id="R", anchored=True)
        book = q.box("book", id="B", parent=bib)
        q.attribute(book, "year", id="Y")
        q.box("title", id="T", parent=book)
        assert checked(q.graph(), schema) == []

    def test_undeclared_element(self, schema):
        q = QueryBuilder()
        q.box("cdrom", id="C")
        warnings = checked(q.graph(), schema)
        assert any("not declared" in w for w in warnings)

    def test_wrong_anchor(self, schema):
        q = QueryBuilder()
        q.box("book", id="B", anchored=True)
        warnings = checked(q.graph(), schema)
        assert any("schema root" in w for w in warnings)

    def test_impossible_direct_containment(self, schema):
        q = QueryBuilder()
        bib = q.box("bib", id="R")
        q.box("last", id="L", parent=bib)  # last is 3 levels down
        warnings = checked(q.graph(), schema)
        assert any("not a declared child" in w for w in warnings)

    def test_deep_containment_uses_paths(self, schema):
        q = QueryBuilder()
        bib = q.box("bib", id="R")
        q.box("last", id="L", parent=bib, deep=True)
        assert checked(q.graph(), schema) == []

    def test_impossible_deep_containment(self, schema):
        q = QueryBuilder()
        title = q.box("title", id="T")
        q.box("book", id="B", parent=title, deep=True)  # upside down
        warnings = checked(q.graph(), schema)
        assert any("no containment path" in w for w in warnings)

    def test_undeclared_attribute(self, schema):
        q = QueryBuilder()
        book = q.box("book", id="B")
        q.attribute(book, "isbn", id="I")
        warnings = checked(q.graph(), schema)
        assert any("no attribute 'isbn'" in w for w in warnings)

    def test_enumeration_violation(self):
        from repro.xmlgl.schema import SchemaGraph

        schema = SchemaGraph(root="e")
        schema.add_element("e")
        schema.add_attribute("e", "c", values=("red", "green"))
        q = QueryBuilder()
        e = q.box("e", id="E")
        q.attribute(e, "c", id="C", value="blue")
        warnings = checked(q.graph(), schema)
        assert any("enumeration" in w for w in warnings)

    def test_text_under_elementless_content(self, schema):
        q = QueryBuilder()
        book = q.box("book", id="B")
        q.text(book, id="T")  # book has element content, no PCDATA
        warnings = checked(q.graph(), schema)
        assert any("PCDATA" in w for w in warnings)

    def test_wildcards_never_warned(self, schema):
        q = QueryBuilder()
        any_box = q.box(None, id="X")
        q.box(None, id="Y", parent=any_box, deep=True)
        assert checked(q.graph(), schema) == []

    def test_diagnostics_carry_stable_codes(self, schema):
        q = QueryBuilder()
        q.box("cdrom", id="C")
        diagnostics = schema_diagnostics(q.graph(), schema)
        assert diagnostics
        assert all(d.code.startswith("XGS") for d in diagnostics)

    def test_legacy_wrapper_removed(self):
        # The string-returning check_query_against_schema shim is gone;
        # schema_diagnostics is the one entry point.
        with pytest.raises(ImportError):
            from repro.xmlgl import check_query_against_schema  # noqa: F401


class TestChainedPrograms:
    DOC = (
        '<bib><book year="1999"><title>A</title></book>'
        '<book year="1990"><title>B</title></book></bib>'
    )

    def test_chained_view(self):
        program = parse_program(
            """
            chained
            rule recent {
              query { book as B { @year as Y  title as T } where Y >= 1995 }
              construct { recent { entry for B { copy T } } }
            }
            rule count_recent {
              query recent { entry as E }
              construct { summary { count(E) } }
            }
            """
        )
        assert program.chained
        result = evaluate_program(program, parse_document(self.DOC))
        summary = result.root.find("summary")
        assert summary.text_content() == "1"

    def test_original_input_still_visible(self):
        program = parse_program(
            """
            chained
            rule one {
              query input { book as B }
              construct { all { count(B) } }
            }
            rule two {
              query input { book as B { @year as Y } where Y >= 1995 }
              construct { recent { count(B) } }
            }
            """
        )
        result = evaluate_program(program, parse_document(self.DOC))
        assert result.root.find("all").text_content() == "2"
        assert result.root.find("recent").text_content() == "1"

    def test_forward_reference_is_unknown_source(self):
        program = parse_program(
            """
            chained
            rule one {
              query later { entry as E }
              construct { out { count(E) } }
            }
            rule later {
              query input { book as B }
              construct { later-result { collect B } }
            }
            """
        )
        with pytest.raises(EvaluationError, match="unknown source"):
            evaluate_program(program, parse_document(self.DOC))

    def test_duplicate_names_rejected(self):
        with pytest.raises(QueryStructureError, match="distinct"):
            parse_program(
                """
                chained
                rule same { query input { a as A } construct { r1 } }
                rule same { query input { b as B } construct { r2 } }
                """
            )

    def test_unchained_rules_do_not_see_views(self):
        program = parse_program(
            """
            rule one {
              query { book as B } construct { all { count(B) } }
            }
            rule two {
              query one { entry as E } construct { out { count(E) } }
            }
            """
        )
        with pytest.raises(EvaluationError):
            evaluate_program(program, parse_document(self.DOC))
