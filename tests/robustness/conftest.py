"""Shared fixtures for the robustness suite.

Everything here is deterministic: workloads are seeded, fault injectors
are seeded, and budgets use limits far from scheduling jitter.  CI runs
this suite with the same pinned seeds on every platform.
"""

import pytest

from repro.engine.cache import DocumentIndexCache
from repro.workloads import bibliography

#: Join-heavy rule (cites -> id): exercises the set-at-a-time pipeline,
#: hash joins, and produces one binding per resolved citation.
JOIN_RULE = (
    "query { book as B  * as C { title as T } where B.cites = C.id }"
    " construct { r { collect T } }"
)

#: Chain rule: one binding per book, cheap per binding.
CHAIN_RULE = (
    "query { book as B { title as T } } construct { r { collect T } }"
)

#: Root-anchored rule: exactly one binding however large the document.
ONE_BINDING_RULE = "query { root bib as R } construct { r { count(R) } }"


@pytest.fixture(scope="session")
def doc():
    """A mid-size bibliography (deterministic, seed 0)."""
    return bibliography(200, seed=0)


@pytest.fixture(scope="session")
def big_doc():
    """A large bibliography for deadline tests (tens of thousands of nodes)."""
    return bibliography(2000, seed=0)


@pytest.fixture
def indexes():
    """A private index cache: no warm-up leakage between tests."""
    return DocumentIndexCache()
