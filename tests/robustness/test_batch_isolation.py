"""``run_batch`` under failure: typed errors, row isolation, cache hygiene.

The contract: a failed, budget-tripped or cancelled row is captured in
its own :attr:`BatchResult.error` — sibling rows and the shared index
cache must be completely unaffected.
"""

import pytest

from repro.engine.cache import DocumentIndexCache
from repro.engine.faults import FaultInjector, FaultRule, inject
from repro.engine.limits import CancelToken, QueryBudget
from repro.errors import BudgetExceeded, EvaluationError, QueryCancelled
from repro.session import QuerySession

from .conftest import CHAIN_RULE, ONE_BINDING_RULE


@pytest.fixture
def session(doc):
    return QuerySession(doc, indexes=DocumentIndexCache())


class TestBudgetErrorRows:
    def test_tripped_rows_are_typed_and_isolated(self, session):
        # ONE_BINDING_RULE produces one binding; CHAIN_RULE produces one per
        # book — the cap splits them deterministically.
        results = session.run_batch(
            [ONE_BINDING_RULE, CHAIN_RULE, ONE_BINDING_RULE],
            budget=QueryBudget(max_bindings=5),
        )
        ok_rows = [r for r in results if r.ok]
        failed = [r for r in results if not r.ok]
        assert [r.index for r in ok_rows] == [0, 2]
        assert [r.index for r in failed] == [1]
        row = failed[0]
        assert isinstance(row.error, BudgetExceeded)
        assert row.error.limit == "max_bindings"
        assert row.result is None
        # The error carries the row's own partial stats.
        assert row.error.stats is row.stats
        assert row.stats.extra.get("budget_exceeded") == 1
        # Siblings are untouched: results intact, no budget counters.
        for sibling in ok_rows:
            assert sibling.error is None
            assert sibling.result is not None
            assert "budget_exceeded" not in sibling.stats.extra

    def test_failed_row_does_not_poison_the_shared_cache(self, session):
        first = session.run_batch(
            [CHAIN_RULE, ONE_BINDING_RULE], budget=QueryBudget(max_bindings=5)
        )
        assert not first[0].ok and first[1].ok
        # The cache was pre-warmed and survives the failed row: a rerun
        # without a budget takes pure cache hits and full results.
        second = session.run_batch([CHAIN_RULE, ONE_BINDING_RULE])
        assert all(r.ok for r in second)
        for row in second:
            # two hits per row: the plan-cache key lookup resolves the
            # index for its epoch, then the evaluator fetches it again
            assert row.stats.cache_misses == 0
            assert row.stats.cache_hits == 2
            assert row.stats.cache_misses == 0

    def test_partial_mode_rows_return_truncated_results(self, session):
        results = session.run_batch(
            [CHAIN_RULE],
            budget=QueryBudget(max_bindings=5, on_limit="partial"),
        )
        (row,) = results
        assert row.ok
        assert row.result is not None
        assert row.stats.bindings_produced == 5
        assert row.stats.extra["truncated"] == 1


class TestCancellation:
    def test_shared_token_cancels_every_row(self, session):
        cancel = CancelToken()
        cancel.cancel()
        results = session.run_batch(
            [CHAIN_RULE, ONE_BINDING_RULE],
            budget=QueryBudget(deadline_ms=60_000),
            cancel=cancel,
        )
        assert all(not r.ok for r in results)
        assert all(isinstance(r.error, QueryCancelled) for r in results)

    def test_cancel_mid_run_from_another_thread(self, big_doc):
        import threading

        session = QuerySession(big_doc, indexes=DocumentIndexCache())
        cancel = CancelToken()
        join_rule = (
            "query { book as B  * as C { title as T } where B.cites = C.id }"
            " construct { r { collect T } }"
        )
        timer = threading.Timer(0.02, cancel.cancel)
        timer.start()
        try:
            results = session.run_batch(
                [join_rule] * 4,
                budget=QueryBudget(deadline_ms=60_000),
                cancel=cancel,
            )
        finally:
            timer.cancel()
        # Cooperative: every row either finished before the flag or
        # reports the typed cancellation — never a crash, never a hang.
        for row in results:
            assert row.ok or isinstance(row.error, QueryCancelled)
        assert cancel.cancelled()


class TestInjectedFaultRows:
    def test_one_faulty_row_leaves_siblings_standing(self, session):
        boom = FaultRule(
            site="construct",
            exception=EvaluationError("injected row fault"),
            max_fires=1,
        )
        with inject(FaultInjector(seed=3, rules=[boom])):
            # Serial workers: the first row to reach construct fails.
            results = session.run_batch(
                [ONE_BINDING_RULE, ONE_BINDING_RULE, ONE_BINDING_RULE], max_workers=1
            )
        failed = [r for r in results if not r.ok]
        assert len(failed) == 1
        assert failed[0].index == 0
        assert isinstance(failed[0].error, EvaluationError)
        assert "injected row fault" in str(failed[0].error)
        for row in results[1:]:
            assert row.ok and row.result is not None
