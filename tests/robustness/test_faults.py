"""Fault injection at named span sites: deterministic chaos, clean recovery.

:mod:`repro.engine.faults` piggybacks on the stable span-site taxonomy —
every evaluation stage announces its name through the trace hook, and an
installed :class:`FaultInjector` can sleep or raise there.  These tests
pin the seeds; CI replays them identically.
"""

import pytest

from repro.engine import trace as trace_module
from repro.engine.faults import FaultInjector, FaultRule, inject
from repro.engine.limits import QueryBudget
from repro.engine.stats import EvalStats
from repro.errors import DeadlineExceeded, EvaluationError
from repro.xmlgl.dsl import parse_rule
from repro.xmlgl.evaluator import evaluate_rule

from .conftest import CHAIN_RULE


class TestInjector:
    def test_sites_fire_without_tracing(self, doc, indexes):
        with inject(FaultInjector(seed=0)) as injector:
            evaluate_rule(parse_rule(CHAIN_RULE), doc, indexes=indexes)
        assert "match" in injector.sites_seen
        assert "construct" in injector.sites_seen
        assert "preflight" in injector.sites_seen

    def test_seeded_probability_is_deterministic(self, doc, indexes):
        def fires(seed):
            rule = FaultRule(site="match.fragment", probability=0.5)
            with inject(FaultInjector(seed=seed, rules=[rule])) as injector:
                for _ in range(10):
                    evaluate_rule(
                        parse_rule(CHAIN_RULE), doc, indexes=indexes
                    )
            return rule.fired, list(injector.sites_seen)

        # Same seed, same arrival order -> identical draws and fire count.
        assert fires(7) == fires(7)

    def test_exception_at_named_site(self, doc, indexes):
        boom = FaultRule(
            site="construct", exception=EvaluationError("injected fault")
        )
        with inject(FaultInjector(seed=0, rules=[boom])):
            with pytest.raises(EvaluationError, match="injected fault"):
                evaluate_rule(parse_rule(CHAIN_RULE), doc, indexes=indexes)
        assert boom.fired == 1

    def test_hook_restored_after_block(self, doc, indexes):
        previous = trace_module._SITE_HOOK
        with inject(FaultInjector(seed=0)):
            assert trace_module._SITE_HOOK is not previous
        assert trace_module._SITE_HOOK is previous

    def test_max_fires_allows_recovery(self, doc, indexes):
        flaky = FaultRule(
            site="match",
            exception=EvaluationError("transient"),
            max_fires=1,
        )
        with inject(FaultInjector(seed=0, rules=[flaky])):
            with pytest.raises(EvaluationError, match="transient"):
                evaluate_rule(parse_rule(CHAIN_RULE), doc, indexes=indexes)
            # Rule exhausted: the retry sails through untouched.
            result = evaluate_rule(
                parse_rule(CHAIN_RULE), doc, indexes=indexes
            )
        assert flaky.fired == 1
        assert flaky.exhausted()
        assert result.size() > 1


class TestFaultsMeetBudgets:
    def test_injected_delay_trips_the_deadline(self, doc, indexes):
        slow = FaultRule(site="match", delay_ms=80)
        stats = EvalStats()
        with inject(FaultInjector(seed=0, rules=[slow])):
            with pytest.raises(DeadlineExceeded):
                evaluate_rule(
                    parse_rule(CHAIN_RULE), doc,
                    budget=QueryBudget(deadline_ms=20),
                    stats=stats, indexes=indexes,
                )
        assert stats.extra.get("budget_exceeded") == 1

    def test_partial_mode_survives_a_slow_stage(self, doc, indexes):
        # Same slow stage, but on_limit="partial": the deadline trip is
        # absorbed into a truncated (here: empty-so-far) result instead of
        # an error — degradation, not failure.
        slow = FaultRule(site="match", delay_ms=80)
        stats = EvalStats()
        with inject(FaultInjector(seed=0, rules=[slow])):
            result = evaluate_rule(
                parse_rule(CHAIN_RULE), doc,
                budget=QueryBudget(deadline_ms=20, on_limit="partial"),
                stats=stats, indexes=indexes,
            )
        assert stats.extra["truncated"] == 1
        assert stats.extra["truncated_by_deadline_ms"] == 1
        assert result.tag  # well-formed result element, however empty
