"""Budget enforcement: deadlines, work caps, truncation, degradation.

The contract under test (DESIGN.md § Resource governance):

* limits trip as typed errors carrying the partial ``EvalStats``;
* ``on_limit="partial"`` returns well-formed truncated results, flagged;
* ``max_hashjoin_rows`` degrades fragments instead of failing them, with
  identical results to the unbudgeted run;
* an unbudgeted run does byte-identical work (pay-for-use).
"""

import time

import pytest

from repro.engine.cache import DocumentIndexCache
from repro.engine.limits import QueryBudget, arm_budget, truncate_element
from repro.engine.stats import EvalStats
from repro.errors import BudgetExceeded, DeadlineExceeded
from repro.ssd.model import Element
from repro.xmlgl.dsl import parse_rule
from repro.xmlgl.evaluator import evaluate_rule, rule_bindings

from .conftest import CHAIN_RULE, JOIN_RULE


class TestBudgetValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="on_limit"):
            QueryBudget(on_limit="explode")

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError, match="max_work"):
            QueryBudget(max_work=-1)

    def test_empty_budget_is_legal(self, doc, indexes):
        rule = parse_rule(CHAIN_RULE)
        result = evaluate_rule(rule, doc, budget=QueryBudget(), indexes=indexes)
        assert result.size() > 1


class TestDeadline:
    def test_deadline_trips_promptly_with_partial_stats(self, big_doc, indexes):
        rule = parse_rule(JOIN_RULE)
        stats = EvalStats()
        started = time.perf_counter()
        with pytest.raises(DeadlineExceeded) as info:
            evaluate_rule(
                rule, big_doc, budget=QueryBudget(deadline_ms=25),
                stats=stats, indexes=indexes,
            )
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        exc = info.value
        assert exc.limit == "deadline_ms"
        assert exc.allowed == 25
        assert exc.spent >= 25
        # The partial stats ride on the error: work was done, then stopped.
        assert exc.stats is stats
        assert stats.extra.get("budget_exceeded") == 1
        # Cooperative checks are strided, not per-instruction: generous
        # bound, but far below an unbudgeted run-away.
        assert elapsed_ms < 2000

    def test_deadline_is_a_budget_error(self):
        assert issubclass(DeadlineExceeded, BudgetExceeded)


class TestWorkCap:
    def test_max_work_trips_exactly_once_over(self, doc, indexes):
        rule = parse_rule(JOIN_RULE)
        with pytest.raises(BudgetExceeded) as info:
            evaluate_rule(
                rule, doc, budget=QueryBudget(max_work=100), indexes=indexes
            )
        exc = info.value
        assert exc.limit == "max_work"
        assert exc.allowed == 100
        assert exc.spent > 100


class TestBindingsCap:
    def test_raise_mode(self, doc, indexes):
        rule = parse_rule(CHAIN_RULE)
        with pytest.raises(BudgetExceeded) as info:
            rule_bindings(
                rule, doc, budget=QueryBudget(max_bindings=10), indexes=indexes
            )
        assert info.value.limit == "max_bindings"

    def test_partial_mode_holds_exactly_the_cap(self, doc, indexes):
        rule = parse_rule(CHAIN_RULE)
        baseline = rule_bindings(rule, doc, indexes=indexes)
        assert len(baseline) > 10
        stats = EvalStats()
        partial = rule_bindings(
            rule, doc,
            budget=QueryBudget(max_bindings=10, on_limit="partial"),
            stats=stats, indexes=indexes,
        )
        assert len(partial) == 10
        assert stats.extra["truncated"] == 1
        assert stats.extra["truncated_by_max_bindings"] == 1
        assert stats.extra["truncated_results"] == 1


class TestResultNodesCap:
    def test_raise_mode(self, doc, indexes):
        rule = parse_rule(CHAIN_RULE)
        with pytest.raises(BudgetExceeded) as info:
            evaluate_rule(
                rule, doc, budget=QueryBudget(max_result_nodes=5),
                indexes=indexes,
            )
        assert info.value.limit == "max_result_nodes"

    def test_partial_mode_prunes_to_the_cap(self, doc, indexes):
        rule = parse_rule(CHAIN_RULE)
        full = evaluate_rule(rule, doc, indexes=indexes)
        assert full.size() > 20
        stats = EvalStats()
        result = evaluate_rule(
            rule, doc,
            budget=QueryBudget(max_result_nodes=20, on_limit="partial"),
            stats=stats, indexes=indexes,
        )
        assert result.size() <= 20
        assert result.tag == full.tag  # root survives: well-formed prefix
        assert stats.extra["truncated"] == 1
        assert stats.extra["truncated_by_max_result_nodes"] == 1


class TestDegradation:
    def test_row_cap_degrades_with_identical_results(self, doc, indexes):
        rule = parse_rule(JOIN_RULE)
        baseline = rule_bindings(rule, doc, indexes=indexes)
        stats = EvalStats()
        degraded = rule_bindings(
            rule, doc, budget=QueryBudget(max_hashjoin_rows=20),
            stats=stats, indexes=indexes,
        )
        assert stats.extra.get("degraded_fragments", 0) >= 1
        assert stats.extra.get("fallback_budget", 0) >= 1
        assert stats.pipeline_fallbacks >= 1
        # Degradation is a plan change, never a result change.
        assert len(degraded) == len(baseline)

    def test_degraded_fragment_still_applies_pushed_conditions(
        self, doc, indexes
    ):
        # The pipeline pushes the single-box ``Y >= 1995`` filter into B's
        # candidate pool (consuming it from the final filter); a degraded
        # fragment runs on the backtracking core, which never sees pool
        # filters — the fallback must re-apply them.
        rule = parse_rule(
            "query { book as B { title as T  @year as Y } where Y >= 1995 }"
            " construct { r { collect T } }"
        )
        baseline = rule_bindings(rule, doc, indexes=indexes)
        stats = EvalStats()
        degraded = rule_bindings(
            rule, doc, budget=QueryBudget(max_hashjoin_rows=10),
            stats=stats, indexes=indexes,
        )
        assert stats.extra.get("degraded_fragments", 0) >= 1
        assert len(degraded) == len(baseline)

    def test_degradation_visible_in_explain(self, doc):
        from repro.engine.options import MatchOptions
        from repro.explain import explain

        report = explain(
            parse_rule(JOIN_RULE), doc,
            options=MatchOptions(engine="pipeline"),
            indexes=DocumentIndexCache(),
        )
        # Unbudgeted: the join fragment runs on the pipeline...
        decisions = {
            f.decision for g in report.graphs for f in g.fragments
        }
        assert "pipeline" in decisions
        # ...and under a row cap the same fragment reports the budget
        # fallback reason.
        capped = explain(
            parse_rule(JOIN_RULE), doc,
            options=MatchOptions(
                engine="pipeline", budget=QueryBudget(max_hashjoin_rows=20)
            ),
            indexes=DocumentIndexCache(),
        )
        reasons = {
            (f.decision, f.reason)
            for g in capped.graphs
            for f in g.fragments
        }
        assert ("fallback", "budget") in reasons


class TestZeroOverhead:
    def test_unbudgeted_and_generous_budget_do_identical_work(self, doc):
        rule = parse_rule(JOIN_RULE)
        plain = EvalStats()
        evaluate_rule(rule, doc, stats=plain, indexes=DocumentIndexCache())
        generous = EvalStats()
        evaluate_rule(
            rule, doc,
            budget=QueryBudget(
                deadline_ms=3_600_000, max_work=10**12,
                max_bindings=10**9, max_result_nodes=10**9,
                max_hashjoin_rows=10**12,
            ),
            stats=generous, indexes=DocumentIndexCache(),
        )
        a, b = plain.as_dict(), generous.as_dict()
        a.pop("seconds"), b.pop("seconds")
        assert a == b

    def test_no_budget_means_no_state(self, doc, indexes):
        stats = EvalStats()
        evaluate_rule(
            parse_rule(CHAIN_RULE), doc, stats=stats, indexes=indexes
        )
        assert stats.budget is None


class TestArming:
    def test_outermost_arm_wins(self):
        stats = EvalStats()
        first = arm_budget(stats, QueryBudget(max_work=10))
        second = arm_budget(stats, QueryBudget(max_work=99999))
        assert second is first
        assert stats.budget.budget.max_work == 10

    def test_arming_nothing_is_none(self):
        stats = EvalStats()
        assert arm_budget(stats, None) is None
        assert stats.budget is None


class TestTruncateElement:
    def _tree(self):
        root = Element("r")
        for i in range(5):
            child = Element("c")
            child.append(f"text-{i}")
            root.append(child)
        return root

    def test_prunes_to_cap_keeping_prefix(self):
        root = self._tree()
        before = root.size()
        dropped = truncate_element(root, 5)
        assert root.size() <= 5
        assert dropped == before - root.size()
        # Document-order prefix: the first child survives intact.
        assert root.children[0].text_content() == "text-0"

    def test_root_always_survives(self):
        root = self._tree()
        truncate_element(root, 0)
        assert root.tag == "r"
        assert root.size() == 1
