"""Tests for the comparison framework (catalog, equivalence, features)."""

import pytest

from repro.compare import (
    CATALOG,
    Support,
    compare_catalog,
    feature_matrix,
    render_matrix,
    report,
)
from repro.workloads import bibliography


@pytest.fixture(scope="module")
def results():
    return compare_catalog(bibliography(30, seed=3))


class TestCatalog:
    def test_catalog_covers_design_figures(self):
        figures = {pair.figure for pair in CATALOG}
        assert {"FIG-Q1", "FIG-Q2", "FIG-Q3", "FIG-Q4", "FIG-Q5",
                "FIG-Q6", "FIG-Q7", "FIG-Q9"} <= figures

    def test_unique_ids(self):
        ids = [pair.id for pair in CATALOG]
        assert len(ids) == len(set(ids))

    def test_every_pair_has_at_least_one_side(self):
        for pair in CATALOG:
            assert pair.xmlgl_source or pair.wglog_source


class TestEquivalence:
    def test_all_comparable_pairs_agree(self, results):
        for result in results:
            if result.comparable:
                assert result.agree, (
                    result.pair.id, result.xmlgl_value, result.wglog_value
                )

    def test_comparable_pairs_nonempty_results(self, results):
        # the dataset is big enough that every comparable query matches
        for result in results:
            if result.comparable:
                assert result.xmlgl_value, result.pair.id

    def test_expressiveness_gaps_as_expected(self, results):
        by_id = {r.pair.id: r for r in results}
        assert by_id["q6-aggregation"].status() == "XML-GL-ONLY"
        assert by_id["q8-recursion"].status() == "WG-LOG-ONLY"

    def test_agreement_across_seeds(self):
        for seed in (0, 7):
            for result in compare_catalog(bibliography(20, seed=seed)):
                if result.comparable:
                    assert result.agree, (seed, result.pair.id)

    def test_report_format(self, results):
        text = report(results)
        assert "q1-selection" in text
        assert "AGREE" in text


class TestFeatureMatrix:
    def test_all_demos_pass(self):
        rows = feature_matrix()  # raises if any demo fails
        assert len(rows) >= 12

    def test_expected_asymmetries(self):
        rows = {feature.id: (xg, wg) for feature, xg, wg in feature_matrix()}
        assert rows["recursion"] == (Support.UNSUPPORTED, Support.SUPPORTED)
        assert rows["grouping"] == (Support.SUPPORTED, Support.UNSUPPORTED)
        assert rows["aggregation"] == (Support.SUPPORTED, Support.PARTIAL)
        assert rows["schema-free"][0] is Support.SUPPORTED
        assert rows["views"] == (Support.UNSUPPORTED, Support.SUPPORTED)

    def test_shared_capabilities(self):
        rows = {feature.id: (xg, wg) for feature, xg, wg in feature_matrix()}
        for shared in ("negation", "join", "regex", "schema-definition"):
            xg, wg = rows[shared]
            assert xg is Support.SUPPORTED and wg is Support.SUPPORTED, shared

    def test_render(self):
        text = render_matrix()
        assert "XML-GL" in text and "WG-Log" in text
        assert "✓" in text and "✗" in text and "~" in text
