"""End-to-end integration tests across every subsystem."""

import pytest

from repro.session import QuerySession
from repro.ssd import parse_document, parse_dtd, serialize, validate
from repro.ssd.paths import evaluate_path
from repro.visual import XmlglEditor, load_diagram, save_diagram
from repro.wglog import (
    apply_program,
    document_to_instance,
    parse_wglog,
)
from repro.wglog.datalog import to_datalog
from repro.workloads import BIB_DTD, bibliography, site_graph, site_schema
from repro.analysis.xmlgl_schema import schema_diagnostics
from repro.xmlgl import evaluate_rule, to_path
from repro.xmlgl.dsl import parse_rule
from repro.xmlgl.schema import dtd_to_schema


class TestFullXmlglPipeline:
    """workload → schema check → editor → persist → compile → run →
    validate the result → cross-check via the path engine."""

    def test_pipeline(self, tmp_path):
        doc = bibliography(40, seed=5)
        dtd = parse_dtd(BIB_DTD)
        assert validate(doc, dtd) == []
        schema, _ = dtd_to_schema(dtd, "bib")

        # author the query through editor gestures
        editor = XmlglEditor("pipeline")
        bib = editor.add_element_box("bib", node_id="R", anchored=True)
        book = editor.add_element_box("book", node_id="B")
        editor.draw_arc(bib, book)
        title = editor.add_element_box("title", node_id="T")
        editor.draw_arc(book, title)

        result_box = editor.add_construct_box("titles")
        editor.add_triangle(result_box, "T")

        # persist the drawing and reopen it
        path = tmp_path / "drawing.json"
        editor.save(str(path))
        reopened = XmlglEditor.open(str(path))
        rule = reopened.compile()

        # the query is schema-satisfiable
        assert schema_diagnostics(rule.queries[0], schema) == []

        # run it
        result = evaluate_rule(rule, doc)
        books = len(doc.root.find_all("book"))
        assert len(result.find_all("title")) == books

        # cross-check through the translated path expression
        path_expr = to_path(rule.queries[0], "T")
        assert len(evaluate_path(path_expr, doc)) == books

    def test_session_refinement_over_workload(self):
        doc = bibliography(30, seed=2)
        session = QuerySession(doc)
        all_books = session.run(
            "query { book as B } construct { r { count(B) } }"
        )
        recent = session.run(
            "query { book as B { @year as Y } where Y >= 1995 }"
            " construct { r { count(B) } }"
        )
        assert int(recent.root.text_content()) <= int(all_books.root.text_content())
        assert session.back().index == 0


class TestFullWglogPipeline:
    """workload → schema conformance → rules (DSL) → datalog reading →
    generative fixpoint → query the derived structure → export."""

    def test_pipeline(self):
        schema = site_schema()
        site = site_graph(pages=25, seed=4)
        assert schema.conform(site) == []

        source = """
        rule base {
          match { a: Page  b: Page  a -link-> b }
          construct { a -reach-> b }
        }
        rule step {
          match { a: Page  b: Page  c: Page  a -reach-> b  b -link-> c }
          construct { a -reach-> c }
        }
        rule hub {
          match { p: Page  q: Page  p -reach-> q }
          construct { h: HubList collect  h -hub-> p }
        }
        """
        _, rules = parse_wglog(source)
        # every rule has a logical reading
        for rule in rules:
            assert ":-" in to_datalog(rule)
        apply_program(site, rules)
        reach = sum(1 for e in site.relationship_edges() if e.label == "reach")
        assert reach > 0
        hubs = site.entities("HubList")
        assert len(hubs) == 1
        # applying again changes nothing
        assert apply_program(site, rules) == 0

    def test_xml_to_graph_and_back_query_parity(self):
        doc = bibliography(20, seed=6)
        instance, _ = document_to_instance(doc)
        # same query in both worlds
        xg = parse_rule(
            "query { book as B { title as T } } construct { r { collect T } }"
        )
        xg_titles = {
            e.text_content()
            for e in evaluate_rule(xg, doc).find_all("title")
        }
        from repro.wglog import parse_rule as wg_parse
        from repro.wglog.semantics import query as wg_query

        wg = wg_parse("rule t { match { b: book  t: title  b -child-> t } }")
        wg_titles = {
            str(instance.slot_value(binding["t"], "text"))
            for binding in wg_query(wg, instance)
        }
        assert xg_titles == wg_titles
