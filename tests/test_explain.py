"""Tests for the EXPLAIN facility (repro.explain)."""

import json

import pytest

from repro.engine.options import MatchOptions
from repro.explain import explain
from repro.ssd import parse_document
from repro.xmlgl.dsl import parse_rule

PIPELINE = MatchOptions(engine="pipeline")

DOC = parse_document(
    '<bib>'
    '<book year="1999" cites="e2"><title>A</title></book>'
    '<book year="1990" cites="e1"><title>B</title></book>'
    '<entry id="e1"><title>X</title></entry>'
    '<entry id="e2"><title>Y</title></entry>'
    "</bib>"
)

CHAIN = (
    "query { book as B { title as T } } construct { r { collect T } }"
)
FIG_Q3 = (
    "query { book as B  * as C { title as T } where B.cites = C.id }"
    " construct { r { collect T } }"
)
ORDERED = (
    "query { book as B { ord title as T } }"
    " construct { r { collect T } }"
)
UNSAT = (
    'query { book as B { @year as Y } where Y > 5 and Y < 3 }'
    " construct { r { collect B } }"
)


class TestExplainDigest:
    def test_pipeline_fragment_with_forest_and_semijoins(self):
        report = explain(CHAIN, DOC, options=PIPELINE)
        assert report.engine == "pipeline"
        assert not report.preflight_skipped
        assert len(report.graphs) == 1
        [fragment] = report.graphs[0].fragments
        assert fragment.decision == "pipeline"
        assert sorted(fragment.variables) == ["B", "T"]
        assert fragment.order  # cost-chosen join order
        assert fragment.forest == [{"var": "T", "parent": "B"}]
        assert fragment.pool_sizes["B"] == 2
        directions = {sj.direction for sj in fragment.semijoins}
        assert directions == {"bottom-up", "top-down"}
        for sj in fragment.semijoins:
            assert sj.before >= sj.after >= 0
        assert fragment.assembled_rows == 2

    def test_join_query_has_two_fragments(self):
        report = explain(FIG_Q3, DOC)
        [graph] = report.graphs
        assert len(graph.fragments) == 2
        variables = sorted(tuple(sorted(f.variables)) for f in graph.fragments)
        assert variables == [("B",), ("C", "T")]

    def test_fallback_reason_surfaces(self):
        report = explain(ORDERED, DOC)
        [fragment] = report.graphs[0].fragments
        assert fragment.decision == "fallback"
        assert fragment.reason == "ordered"

    def test_preflight_skip_short_circuits(self):
        report = explain(UNSAT, DOC)
        assert report.preflight_skipped
        assert report.graphs == []
        assert "unsatisfiable" in report.render_text()

    def test_rule_objects_accepted(self):
        report = explain(parse_rule(CHAIN), DOC)
        assert "book" in report.query  # unparsed back to DSL text
        assert report.graphs[0].fragments

    def test_index_lookup_recorded(self):
        report = explain(CHAIN, DOC)
        assert report.index_lookups
        assert report.index_lookups[0]["outcome"] in {"built", "hit"}

    def test_construct_block(self):
        report = explain(CHAIN, DOC)
        assert report.construct["bindings"] == 2
        assert report.construct["nodes"] >= 1


class TestSyntheticDefault:
    def test_no_sources_uses_bibliography_and_says_so(self):
        report = explain(CHAIN)
        assert report.synthetic_source
        assert "built-in bibliography" in report.render_text()

    def test_explicit_sources_not_flagged(self):
        report = explain(CHAIN, DOC)
        assert not report.synthetic_source


class TestAdaptiveExplain:
    def test_cost_chosen_backtracking_surfaces(self):
        # adaptive on a tiny document with the tuple pipeline (columnar
        # off — its deep materialisation discount would flip this tiny
        # chain to pipeline): the walk is cheaper than materialising
        # pools + relations, and the report says so
        report = explain(
            CHAIN, DOC, options=MatchOptions(engine="adaptive", columnar=False)
        )
        assert report.engine == "adaptive"
        [fragment] = report.graphs[0].fragments
        assert fragment.decision == "backtracking"
        assert fragment.reason == "cost"
        assert fragment.est_pipeline >= fragment.est_backtracking > 0
        assert "cost-chosen backtracking" in report.render_text()

    def test_plan_source_cached_on_repeat(self):
        from repro.engine.cache import DocumentIndexCache
        from repro.engine.plan_cache import PlanCache

        indexes, plans = DocumentIndexCache(), PlanCache()
        first = explain(CHAIN, DOC, indexes=indexes, plans=plans)
        assert first.plan_source == "compiled"
        assert "plan: compiled" in first.render_text()
        second = explain(CHAIN, DOC, indexes=indexes, plans=plans)
        assert second.plan_source == "cached"
        assert "plan: cached" in second.render_text()
        assert second.stats.plan_cache_hits == 1


class TestRendering:
    def test_text_mentions_plan_ingredients(self):
        text = explain(CHAIN, DOC, options=PIPELINE).render_text()
        assert "join forest" in text
        assert "join order" in text
        assert "semi-join" in text
        assert "pools" in text
        assert "pipeline" in text

    def test_json_round_trips(self):
        payload = json.loads(explain(CHAIN, DOC, options=PIPELINE).render_json())
        assert payload["engine"] == "pipeline"
        [fragment] = payload["graphs"][0]["fragments"]
        assert fragment["decision"] == "pipeline"
        assert fragment["semijoins"]
        assert payload["trace"]["spans"]  # raw span tree ships too

    def test_render_dispatch(self):
        report = explain(CHAIN, DOC)
        assert report.render("text") == report.render_text()
        assert report.render("json") == report.render_json()
        with pytest.raises(ValueError):
            report.render("yaml")
