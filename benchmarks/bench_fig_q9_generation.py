"""FIG-Q9 — WG-Log generative rules (GraphLog's derived-link figures).

The sibling rule, the ∀-negated root rule and the two-rule transitive
closure, applied generatively over site graphs.  Shape checks: derivation
counts match direct graph computations and the fixpoint is idempotent.
"""

import pytest

from repro.graph.traversal import reachable_by_labels
from repro.wglog import apply_program, apply_rule, satisfies
from repro.wglog import parse_rule as parse_wg
from repro.wglog.dsl import parse_wglog

SIBLING = parse_wg(
    """
    rule sibling {
      match { i: Index  p1: Page  p2: Page  i -index-> p1  i -index-> p2 }
      construct { p1 -sibling-> p2 }
    }
    """
)
ROOT = parse_wg(
    """
    rule root {
      match { d: Index  s: Index  no s -index-> d }
      construct { d.isroot = 'yes' }
    }
    """
)
_, CLOSURE = parse_wglog(
    """
    rule base {
      match { a: Page  b: Page  a -link-> b }
      construct { a -reach-> b }
    }
    rule step {
      match { a: Page  b: Page  c: Page  a -reach-> b  b -link-> c }
      construct { a -reach-> c }
    }
    """
)


@pytest.mark.parametrize("pages", [40, 120])
def test_sibling_derivation(benchmark, site, pages):
    def run():
        instance = site(pages)
        added = apply_rule(instance, SIBLING, injective=True)
        return instance, added

    instance, added = benchmark(run)
    assert added > 0
    assert satisfies(instance, SIBLING, injective=True)
    # derived edge count == ordered sibling pairs under shared indexes
    expected = 0
    for index in instance.entities("Index"):
        indexed = [
            e.target
            for e in instance.relationships(index, "index")
            if instance.label(e.target) == "Page"
        ]
        expected += len(indexed) * (len(indexed) - 1)
    derived = sum(1 for e in instance.relationship_edges() if e.label == "sibling")
    assert derived == expected


@pytest.mark.parametrize("pages", [40, 120])
def test_root_rule(benchmark, site, pages):
    def run():
        instance = site(pages)
        apply_rule(instance, ROOT)
        return instance

    instance = benchmark(run)
    indexed_indexes = {
        e.target
        for e in instance.relationship_edges()
        if e.label == "index" and instance.label(e.target) == "Index"
    }
    for index in instance.entities("Index"):
        expected = "yes" if index not in indexed_indexes else None
        assert instance.slot_value(index, "isroot") == expected


@pytest.mark.parametrize("pages", [20, 40])
def test_transitive_closure_fixpoint(benchmark, site, pages):
    def run():
        instance = site(pages, seed=1)
        apply_program(instance, CLOSURE, max_rounds=200)
        return instance

    instance = benchmark(run)
    # reach edges == pairwise reachability over Page link edges
    derived = {
        (e.source, e.target)
        for e in instance.relationship_edges()
        if e.label == "reach"
    }
    expected = set()
    for page in instance.entities("Page"):
        for target in reachable_by_labels(instance.graph, page, edge_label="link"):
            if instance.label(target) == "Page":
                expected.add((page, target))
    assert derived == expected
    # idempotence: one more full application adds nothing
    assert apply_program(instance, CLOSURE) == 0
