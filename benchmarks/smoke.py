"""Convenience wrapper so the smoke-runner is discoverable next to the
benchmarks it samples::

    python benchmarks/smoke.py [-o BENCH_matcher.json] [--repeat N]

Equivalent to ``PYTHONPATH=src python -m repro.bench_smoke``.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench_smoke import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
