"""TAB-1 — the expressiveness comparison table, regenerated.

The paper's central artifact is a qualitative comparison of XML-GL and
WG-Log.  This benchmark recomputes the matrix (every cell is a running
demo), asserts the expected asymmetries, and measures how long the full
demo suite takes (a proxy for "the whole comparison still executes").
"""

from repro.compare import Support, feature_matrix, render_matrix


def test_table1_regenerates(benchmark):
    rows = benchmark(feature_matrix)
    by_id = {feature.id: (xg, wg) for feature, xg, wg in rows}

    # the shape of the paper's table: where each language wins
    assert by_id["schema-free"][0] is Support.SUPPORTED          # XML-GL
    assert by_id["schema-checked"][1] is Support.SUPPORTED       # WG-Log
    assert by_id["ordered"] == (Support.SUPPORTED, Support.UNSUPPORTED)
    assert by_id["grouping"] == (Support.SUPPORTED, Support.UNSUPPORTED)
    assert by_id["aggregation"][0] is Support.SUPPORTED
    assert by_id["recursion"] == (Support.UNSUPPORTED, Support.SUPPORTED)
    assert by_id["views"] == (Support.UNSUPPORTED, Support.SUPPORTED)
    # and where they meet
    for shared in ("negation", "join", "regex", "schema-definition"):
        assert by_id[shared][0] is not Support.UNSUPPORTED
        assert by_id[shared][1] is not Support.UNSUPPORTED

    print()
    print(render_matrix(rows))
