"""EXT-S1 — scaling study (an extension; the paper reports no numbers).

Runs one representative query per engine over a size sweep and records
matcher work counters alongside wall-clock time.  Shape check: work grows
near-linearly for the indexed selection (candidates ≈ matches), while the
value join grows super-linearly — the crossover motivating indexes and
structural joins.
"""

import pytest

from repro.engine import EvalStats
from repro.wglog.semantics import query as wg_query
from repro.wglog import parse_rule as parse_wg
from repro.xmlgl import rule_bindings
from repro.xmlgl.dsl import parse_rule as parse_xg

SELECT = parse_xg(
    "query { book as B { title as T  @year as Y } where Y >= 1995 }"
    " construct { r { collect T } }"
)
WG_SELECT = parse_wg(
    "rule s { match { b: book  t: title  b -child-> t } where b.year >= 1995 }"
)

# 6400 entries ≈ 10^5 document nodes (the DESIGN.md sweep upper bound)
SIZES = [100, 400, 1600, 6400]


@pytest.mark.parametrize("size", SIZES)
def test_xmlgl_selection_scaling(benchmark, bib_doc, size):
    doc = bib_doc(size)
    stats = EvalStats()
    bindings = benchmark(lambda: rule_bindings(SELECT, doc, stats=stats))
    assert len(bindings) > 0


@pytest.mark.parametrize("size", SIZES)
def test_wglog_selection_scaling(benchmark, bib_instance, size):
    instance = bib_instance(size)
    bindings = benchmark(lambda: wg_query(WG_SELECT, instance))
    assert len(bindings) > 0


def test_indexed_selection_work_is_linear(bib_doc):
    """Candidates tried grow proportionally to document size."""
    work = {}
    for size in SIZES:
        stats = EvalStats()
        rule_bindings(SELECT, bib_doc(size), stats=stats)
        work[size] = stats.candidates_tried
    for small, large in zip(SIZES, SIZES[1:]):
        ratio = work[large] / work[small]
        # 4x data -> ~4x work, far below quadratic (16x)
        assert 2.0 < ratio < 8.0, (small, large, ratio)


def test_value_join_work_is_quadratic(bib_doc):
    """The unindexed value join's candidate product grows quadratically."""
    join = parse_xg(
        "query { book as B  * as C where B.cites = C.id }"
        " construct { r { collect B } }"
    )
    work = {}
    for size in (50, 100, 200):
        stats = EvalStats()
        rule_bindings(join, bib_doc(size), stats=stats)
        work[size] = stats.condition_checks
    assert work[100] / work[50] > 3.0
    assert work[200] / work[100] > 3.0
