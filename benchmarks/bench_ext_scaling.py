"""EXT-S1 — scaling study (an extension; the paper reports no numbers).

Runs one representative query per engine over a size sweep and records
matcher work counters alongside wall-clock time.  Shape check: work grows
near-linearly for the indexed selection (candidates ≈ matches), while the
value join grows super-linearly — the crossover motivating indexes and
structural joins.

The sharded runs time :meth:`~repro.engine.shard.ShardedExecutor.map_corpus`
over a multi-document corpus and attach the per-shard wall times and the
driver-side merge overhead to the benchmark record (``extra_info``), so
the trajectory distinguishes worker time from merge tax.
"""

import pytest

from repro.engine import EvalStats
from repro.engine.shard import ShardedExecutor, shard_document
from repro.wglog.semantics import query as wg_query
from repro.wglog import parse_rule as parse_wg
from repro.workloads import bibliography
from repro.xmlgl import rule_bindings
from repro.xmlgl.dsl import parse_rule as parse_xg
from repro.xmlgl.unparse import unparse_rule

SELECT = parse_xg(
    "query { book as B { title as T  @year as Y } where Y >= 1995 }"
    " construct { r { collect T } }"
)
WG_SELECT = parse_wg(
    "rule s { match { b: book  t: title  b -child-> t } where b.year >= 1995 }"
)

# 6400 entries ≈ 10^5 document nodes (the DESIGN.md sweep upper bound)
SIZES = [100, 400, 1600, 6400]


@pytest.mark.parametrize("size", SIZES)
def test_xmlgl_selection_scaling(benchmark, bib_doc, size):
    doc = bib_doc(size)
    stats = EvalStats()
    bindings = benchmark(lambda: rule_bindings(SELECT, doc, stats=stats))
    assert len(bindings) > 0


@pytest.mark.parametrize("size", SIZES)
def test_wglog_selection_scaling(benchmark, bib_instance, size):
    instance = bib_instance(size)
    bindings = benchmark(lambda: wg_query(WG_SELECT, instance))
    assert len(bindings) > 0


def test_indexed_selection_work_is_linear(bib_doc):
    """Candidates tried grow proportionally to document size."""
    work = {}
    for size in SIZES:
        stats = EvalStats()
        rule_bindings(SELECT, bib_doc(size), stats=stats)
        work[size] = stats.candidates_tried
    for small, large in zip(SIZES, SIZES[1:]):
        ratio = work[large] / work[small]
        # 4x data -> ~4x work, far below quadratic (16x)
        assert 2.0 < ratio < 8.0, (small, large, ratio)


SELECT_TEXT = unparse_rule(SELECT)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_sharded_corpus_scaling(benchmark, workers):
    """map_corpus over 16 documents at 1/2/4 workers.

    Wall time is the benchmark metric; ``extra_info`` records each
    shard's own wall clock and the merge overhead from the last round, so
    regressions can be attributed to worker-side evaluation vs
    driver-side reassembly.
    """
    corpus = {
        f"doc{position}": bibliography(100, seed=position)
        for position in range(16)
    }
    executor = ShardedExecutor(max_workers=workers)
    runs = []

    def run():
        outcome = executor.map_corpus(SELECT_TEXT, corpus, shards=workers)
        runs.append(outcome)
        return outcome

    outcome = benchmark.pedantic(run, rounds=3, iterations=1)
    assert outcome.ok
    assert outcome.stats.bindings_produced > 0
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["shard_seconds"] = outcome.shard_seconds
    benchmark.extra_info["merge_seconds"] = outcome.merge_seconds


def test_sharded_single_document_split(benchmark):
    """One 1600-entry document split into 4 contiguous shards and mapped."""
    document = bibliography(1600, seed=0)
    pieces = shard_document(document, 4)
    corpus = {f"shard{position}": piece for position, piece in enumerate(pieces)}
    executor = ShardedExecutor(max_workers=4)

    def run():
        return executor.map_corpus(SELECT_TEXT, corpus, shards=len(pieces))

    outcome = benchmark.pedantic(run, rounds=3, iterations=1)
    assert outcome.ok
    benchmark.extra_info["shards"] = len(pieces)
    benchmark.extra_info["shard_seconds"] = outcome.shard_seconds
    benchmark.extra_info["merge_seconds"] = outcome.merge_seconds


def test_value_join_work_is_quadratic(bib_doc):
    """The unindexed value join's candidate product grows quadratically."""
    join = parse_xg(
        "query { book as B  * as C where B.cites = C.id }"
        " construct { r { collect B } }"
    )
    work = {}
    for size in (50, 100, 200):
        stats = EvalStats()
        rule_bindings(join, bib_doc(size), stats=stats)
        work[size] = stats.condition_checks
    assert work[100] / work[50] > 3.0
    assert work[200] / work[100] > 3.0
