"""EXT-A1 — ablations of the XML-GL matcher's design choices.

Toggles the two optimisations DESIGN.md calls out — the label index and
the selectivity planner — on a multi-box query and checks both the result
invariance (all four configurations agree) and the work ordering (index
avoids full scans; the planner reduces candidates tried on skewed
patterns).
"""

import pytest

from repro.engine import EvalStats
from repro.xmlgl import MatchOptions, match
from repro.xmlgl.dsl import parse_rule as parse_xg

RULE = parse_xg(
    """
    query {
      book as B { publisher as P  title as T  @year as Y }
      where Y >= 1995
    }
    construct { r { collect T } }
    """
)
GRAPH = RULE.queries[0]

CONFIGS = {
    "indexed+planned": MatchOptions(use_planner=True, use_index=True),
    "indexed": MatchOptions(use_planner=False, use_index=True),
    "planned": MatchOptions(use_planner=True, use_index=False),
    "baseline": MatchOptions(use_planner=False, use_index=False),
}


@pytest.mark.parametrize("config", list(CONFIGS), ids=list(CONFIGS))
def test_ablation_timing(benchmark, bib_doc, bib_index, config):
    doc = bib_doc(400)
    index = bib_index(400)
    options = CONFIGS[config]
    bindings = benchmark(lambda: match(GRAPH, doc, options=options, index=index))
    assert len(bindings) > 0


def test_all_configs_agree(bib_doc, bib_index):
    doc = bib_doc(400)
    index = bib_index(400)
    results = {
        name: len(match(GRAPH, doc, options=options, index=index))
        for name, options in CONFIGS.items()
    }
    assert len(set(results.values())) == 1, results


def test_index_eliminates_full_scans(bib_doc, bib_index):
    doc = bib_doc(400)
    index = bib_index(400)
    indexed_stats = EvalStats()
    match(GRAPH, doc, options=CONFIGS["indexed+planned"], index=index,
          stats=indexed_stats)
    scan_stats = EvalStats()
    match(GRAPH, doc, options=CONFIGS["planned"], index=index, stats=scan_stats)
    assert indexed_stats.full_scans == 0
    assert scan_stats.full_scans > 0
    assert indexed_stats.index_lookups > 0


def test_planner_reduces_candidates_on_skew(bib_doc, bib_index):
    """With a rare box (publisher) present, starting there prunes work."""
    doc = bib_doc(400)
    index = bib_index(400)
    planned, unplanned = EvalStats(), EvalStats()
    match(GRAPH, doc, options=CONFIGS["indexed+planned"], index=index,
          stats=planned)
    match(GRAPH, doc, options=CONFIGS["indexed"], index=index, stats=unplanned)
    assert planned.candidates_tried <= unplanned.candidates_tried


# ---------------------------------------------------------------------------
# EXT-A2: neighbour narrowing in the generic (WG-Log) matcher
# ---------------------------------------------------------------------------

from repro.graph.matching import MatchSpec, find_homomorphisms
from repro.graph.labeled_graph import LabeledGraph


def _wg_join_pattern() -> LabeledGraph:
    pattern = LabeledGraph()
    pattern.add_node("b", "book")
    pattern.add_node("c", "*")
    pattern.add_node("t", "title")
    pattern.add_edge("b", "c", "cites")
    pattern.add_edge("c", "t", "child")
    return pattern


@pytest.mark.parametrize("narrow", [True, False], ids=["narrowed", "unnarrowed"])
def test_narrowing_ablation_timing(benchmark, bib_instance, narrow):
    instance = bib_instance(100)
    pattern = _wg_join_pattern()
    spec = MatchSpec(injective=False, narrow=narrow)
    matches = benchmark(
        lambda: list(find_homomorphisms(pattern, instance.graph, spec))
    )
    assert matches


def test_narrowing_preserves_results(bib_instance):
    instance = bib_instance(100)
    pattern = _wg_join_pattern()
    key = lambda m: tuple(sorted(m.items()))
    narrowed = sorted(
        map(key, find_homomorphisms(pattern, instance.graph,
                                    MatchSpec(injective=False, narrow=True)))
    )
    unnarrowed = sorted(
        map(key, find_homomorphisms(pattern, instance.graph,
                                    MatchSpec(injective=False, narrow=False)))
    )
    assert narrowed == unnarrowed
