"""FIG-Q7 — restructuring: nest by year (list icon + for-each).

XML-GL's distinguishing feature: the construct part regroups the flat
bibliography under per-year elements.  Shape check: the year groups
partition the books and come out sorted.
"""

import pytest

from repro.xmlgl import evaluate_rule
from repro.xmlgl.dsl import parse_rule as parse_xg

NEST = parse_xg(
    """
    query { book as B { @year as Y  title as T } }
    construct {
      by-year { year for Y sortby Y { value Y  books { collect T } } }
    }
    """
)
UNNEST = parse_xg(
    """
    query { book as B { @year as Y  title as T } }
    construct { flat { row for B { value Y  copy T } } }
    """
)


@pytest.mark.parametrize("size", [100, 400])
def test_nest_by_year(benchmark, bib_doc, size):
    doc = bib_doc(size)
    result = benchmark(lambda: evaluate_rule(NEST, doc))
    books = doc.root.find_all("book")
    years = [y.immediate_text() for y in result.find_all("year")]
    assert years == sorted(years)
    assert set(years) == {b.get("year") for b in books}
    total = sum(
        len(y.find("books").find_all("title")) for y in result.find_all("year")
    )
    assert total == len(books)


@pytest.mark.parametrize("size", [100, 400])
def test_unnest_flat(benchmark, bib_doc, size):
    doc = bib_doc(size)
    result = benchmark(lambda: evaluate_rule(UNNEST, doc))
    assert len(result.find_all("row")) == len(doc.root.find_all("book"))
