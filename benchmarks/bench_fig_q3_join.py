"""FIG-Q3 — the citation join in both languages.

XML-GL joins via a condition over ID/IDREF values (a value join, evaluated
as selection over the candidate product); WG-Log's bridge resolves IDREFs
into edges, turning the same query into structural matching.  Shape check:
both return the same cited-pairs, and the structural join stays much
cheaper than the value join as size grows — the advantage graph data
models claim over flat reference attributes.
"""

import time

import pytest

from repro.xmlgl import rule_bindings
from repro.xmlgl.dsl import parse_rule as parse_xg
from repro.wglog import parse_rule as parse_wg
from repro.wglog.semantics import query as wg_query

XG = parse_xg(
    """
    query { book as B  * as C { title as T } where B.cites = C.id }
    construct { r { collect T } }
    """
)
WG = parse_wg("rule q3 { match { b: book  c: *  t: title  b -cites-> c  c -child-> t } }")


def xg_pairs(doc):
    return {
        (b["B"].get("id"), b["C"].get("id")) for b in rule_bindings(XG, doc)
    }


def wg_pairs(instance):
    return {
        (instance.slot_value(b["b"], "id"), instance.slot_value(b["c"], "id"))
        for b in wg_query(WG, instance)
    }


@pytest.mark.parametrize("size", [30, 60])
def test_xmlgl_value_join(benchmark, bib_doc, size):
    doc = bib_doc(size)
    pairs = benchmark(lambda: xg_pairs(doc))
    assert pairs  # the generator always emits citations at these sizes


@pytest.mark.parametrize("size", [30, 60])
def test_wglog_structural_join(benchmark, bib_instance, size):
    instance = bib_instance(size)
    pairs = benchmark(lambda: wg_pairs(instance))
    assert pairs


@pytest.mark.parametrize("size", [30, 60])
def test_join_results_agree(bib_doc, bib_instance, size):
    xg = {pair for pair in xg_pairs(bib_doc(size)) if None not in pair}
    wg = wg_pairs(bib_instance(size))
    # XML-GL binds only book citers; restrict WG pairs the same way
    doc = bib_doc(size)
    book_ids = {b.get("id") for b in doc.root.find_all("book")}
    wg_books = {(s, t) for s, t in wg if s in book_ids}
    assert xg == wg_books


def test_structural_join_wins_at_scale(bib_doc, bib_instance):
    """The crossover claim: structural joins beat value joins as data grows."""
    size = 60
    doc, instance = bib_doc(size), bib_instance(size)
    start = time.perf_counter()
    xg_pairs(doc)
    value_join = time.perf_counter() - start
    start = time.perf_counter()
    wg_pairs(instance)
    structural_join = time.perf_counter() - start
    assert structural_join < value_join
