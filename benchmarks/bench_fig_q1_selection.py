"""FIG-Q1 — selection/projection in both languages.

"All book titles" over a generated bibliography, as an XML-GL extract ∥
construct rule and as a WG-Log red-only rule over the bridged graph.
The shape check: both languages return the same number of titles, and
runtime grows roughly linearly with document size.
"""

import pytest

from repro.xmlgl import evaluate_rule
from repro.xmlgl.dsl import parse_rule as parse_xg
from repro.wglog import parse_rule as parse_wg
from repro.wglog.semantics import query as wg_query

XG = parse_xg(
    "query { book as B { title as T } } construct { titles { collect T } }"
)
WG = parse_wg("rule q1 { match { b: book  t: title  b -child-> t } }")

SIZES = [50, 200]


@pytest.mark.parametrize("size", SIZES)
def test_xmlgl_selection(benchmark, bib_doc, size):
    doc = bib_doc(size)
    result = benchmark(lambda: evaluate_rule(XG, doc))
    books = len(doc.root.find_all("book"))
    assert len(result.find_all("title")) == books


@pytest.mark.parametrize("size", SIZES)
def test_wglog_selection(benchmark, bib_doc, bib_instance, size):
    instance = bib_instance(size)
    bindings = benchmark(lambda: wg_query(WG, instance))
    books = len(bib_doc(size).root.find_all("book"))
    assert len(bindings) == books
