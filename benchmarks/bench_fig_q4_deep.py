"""FIG-Q4 — arbitrary-depth queries.

XML-GL's starred arc and WG-Log's dashed path edge over recursively nested
section documents.  Shape check: the starred arc finds exactly the
``fanout**(depth-1)`` leaf paragraphs regardless of nesting depth, and a
direct-child query finds none of them.
"""

import pytest

from repro.wglog.bridge import document_to_instance
from repro.wglog import parse_rule as parse_wg
from repro.wglog.semantics import query as wg_query
from repro.xmlgl import evaluate_rule
from repro.xmlgl.dsl import parse_rule as parse_xg

DEEP_XG = parse_xg(
    "query { root report as R { deep para as P } } construct { r { collect P } }"
)
SHALLOW_XG = parse_xg(
    "query { root report as R { para as P } } construct { r { collect P } }"
)
DEEP_WG = parse_wg("rule deep { match { r: report  p: para  r -child*-> p } }")

DEPTHS = [4, 7]


@pytest.mark.parametrize("depth", DEPTHS)
def test_xmlgl_starred_arc(benchmark, sections_doc, depth):
    doc = sections_doc(depth)
    result = benchmark(lambda: evaluate_rule(DEEP_XG, doc))
    assert len(result.find_all("para")) == 2 ** (depth - 1)


@pytest.mark.parametrize("depth", DEPTHS)
def test_wglog_path_edge(benchmark, sections_doc, depth):
    doc = sections_doc(depth)
    instance, _ = document_to_instance(doc)
    bindings = benchmark(lambda: wg_query(DEEP_WG, instance))
    assert len(bindings) == 2 ** (depth - 1)


def test_shallow_finds_nothing(sections_doc):
    doc = sections_doc(5)
    result = evaluate_rule(SHALLOW_XG, doc)
    assert len(result.find_all("para")) == 0
