"""FIG-Q6 — aggregation: XML-GL's functions vs WG-Log's collector.

XML-GL computes COUNT/SUM/MIN/MAX/AVG; WG-Log's triangle only *collects*.
Shape check: the XML-GL aggregates equal values computed directly from the
data, and the WG-Log collector gathers exactly one node per match.
"""

import pytest

from repro.ssd.datatypes import coerce
from repro.wglog import apply_rule
from repro.wglog import parse_rule as parse_wg
from repro.xmlgl import evaluate_rule
from repro.xmlgl.dsl import parse_rule as parse_xg

AGG = parse_xg(
    """
    query { book as B { price as P { text as PT } } }
    construct {
      stats { n { count(B) } min { min(PT) } max { max(PT) } avg { avg(PT) } }
    }
    """
)
COLLECT = parse_wg(
    "rule all { match { w: Work } construct { l: Cat collect  l -has-> w } }"
)


@pytest.mark.parametrize("size", [100, 400])
def test_xmlgl_aggregates(benchmark, bib_doc, size):
    doc = bib_doc(size)
    result = benchmark(lambda: evaluate_rule(AGG, doc))
    prices = [
        coerce(b.find("price").text_content())
        for b in doc.root.find_all("book")
    ]
    assert result.find("n").text_content() == str(len(prices))
    assert float(result.find("min").text_content()) == min(prices)
    assert float(result.find("max").text_content()) == max(prices)
    assert abs(float(result.find("avg").text_content()) - sum(prices) / len(prices)) < 1e-9


@pytest.mark.parametrize("works", [80, 240])
def test_wglog_collector(benchmark, museum, works):
    def run():
        instance = museum(works)
        apply_rule(instance, COLLECT)
        return instance

    instance = benchmark(run)
    catalogues = instance.entities("Cat")
    assert len(catalogues) == 1
    assert len(instance.relationships(catalogues[0], "has")) == works
