"""EXT-P1 — the path fragment: graphical matcher vs path engine.

For queries in the overlapping fragment (tree-shaped, see
``repro.xmlgl.translate``), the same question can be answered by the
graphical matcher or by the translated path expression.  This benchmark
measures both on identical inputs and asserts identical answers — the
agreement is the differential-oracle property; the timings show what the
binding machinery costs relative to pure navigation.
"""

import pytest

from repro.ssd.paths import evaluate_path
from repro.xmlgl import match, to_path
from repro.xmlgl.dsl import parse_rule

QUERIES = {
    "chain": """
        query { root bib as R { book as B { title as T } } }
        construct { r { collect T } }
    """,
    "deep": """
        query { root report as R { deep para as P } }
        construct { r { collect P } }
    """,
    "filtered": """
        query { book as B { @year = "1999" as Y  not publisher as P } }
        construct { r { collect B } }
    """,
}


def _graph_and_target(name):
    rule = parse_rule(QUERIES[name])
    graph = rule.queries[0]
    target = {"chain": "T", "deep": "P", "filtered": "B"}[name]
    return graph, target


def _doc(name, bib_doc, sections_doc):
    return sections_doc(7) if name == "deep" else bib_doc(400)


def _index(name, bib_index, sections_index):
    return sections_index(7) if name == "deep" else bib_index(400)


@pytest.mark.parametrize("name", list(QUERIES))
def test_graphical_matcher(benchmark, bib_doc, bib_index, sections_doc,
                           sections_index, name):
    graph, target = _graph_and_target(name)
    doc = _doc(name, bib_doc, sections_doc)
    # prebuilt index: measure query evaluation, not index construction
    index = _index(name, bib_index, sections_index)
    bindings = benchmark(lambda: match(graph, doc, index=index))
    assert len(bindings) > 0


@pytest.mark.parametrize("name", list(QUERIES))
def test_path_engine(benchmark, bib_doc, sections_doc, name):
    graph, target = _graph_and_target(name)
    doc = _doc(name, bib_doc, sections_doc)
    path = to_path(graph, target)
    elements = benchmark(lambda: evaluate_path(path, doc))
    assert len(elements) > 0


@pytest.mark.parametrize("name", list(QUERIES))
def test_oracle_agreement(bib_doc, sections_doc, name):
    graph, target = _graph_and_target(name)
    doc = _doc(name, bib_doc, sections_doc)
    via_matcher = {id(b[target]) for b in match(graph, doc)}
    via_paths = {id(e) for e in evaluate_path(to_path(graph, target), doc)}
    assert via_matcher == via_paths
