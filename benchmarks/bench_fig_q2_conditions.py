"""FIG-Q2 — predicate evaluation in both languages.

Attribute and text predicates ("books after Y cheaper than P") at two
selectivities.  Shape check: the two languages select the same entry
count, and the more selective predicate never returns more rows.
"""

import pytest

from repro.xmlgl import evaluate_rule
from repro.xmlgl.dsl import parse_rule as parse_xg
from repro.wglog import parse_rule as parse_wg
from repro.wglog.semantics import query as wg_query


def xg_rule(year: int) -> str:
    return f"""
        query {{ book as B {{ @year as Y  title as T }} where Y >= {year} }}
        construct {{ r {{ collect T }} }}
    """


def wg_rule(year: int) -> str:
    return f"""
        rule q2 {{ match {{ b: book  t: title  b -child-> t }}
                   where b.year >= {year} }}
    """


@pytest.mark.parametrize("year", [1990, 1998])
def test_xmlgl_predicates(benchmark, bib_doc, year):
    doc = bib_doc(200)
    rule = parse_xg(xg_rule(year))
    result = benchmark(lambda: evaluate_rule(rule, doc))
    expected = sum(
        1 for b in doc.root.find_all("book") if int(b.get("year")) >= year
    )
    assert len(result.find_all("title")) == expected


@pytest.mark.parametrize("year", [1990, 1998])
def test_wglog_predicates(benchmark, bib_doc, bib_instance, year):
    instance = bib_instance(200)
    rule = parse_wg(wg_rule(year))
    bindings = benchmark(lambda: wg_query(rule, instance))
    doc = bib_doc(200)
    expected = sum(
        1 for b in doc.root.find_all("book") if int(b.get("year")) >= year
    )
    assert len(bindings) == expected


def test_selectivity_ordering(bib_doc, bib_instance):
    """More selective predicates return fewer rows in both engines."""
    doc = bib_doc(200)
    instance = bib_instance(200)
    xg_counts = [
        len(evaluate_rule(parse_xg(xg_rule(year)), doc).find_all("title"))
        for year in (1985, 1995, 2000)
    ]
    wg_counts = [
        len(wg_query(parse_wg(wg_rule(year)), instance))
        for year in (1985, 1995, 2000)
    ]
    assert xg_counts == sorted(xg_counts, reverse=True)
    assert xg_counts == wg_counts
