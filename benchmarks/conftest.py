"""Shared fixtures for the benchmark harness.

Datasets are generated once per session and cached by (kind, size, seed);
document indexes are prebuilt so benchmarks measure query evaluation, not
index construction (matching how the engines are used interactively).
"""

import pytest

from repro.engine import DocumentIndex
from repro.wglog.bridge import document_to_instance
from repro.workloads import bibliography, museum_graph, nested_sections, site_graph

_CACHE: dict = {}


def _cached(key, factory):
    if key not in _CACHE:
        _CACHE[key] = factory()
    return _CACHE[key]


@pytest.fixture
def bib_doc():
    """bibliography(size, seed) -> Document, cached."""

    def make(size: int, seed: int = 0):
        return _cached(("bib", size, seed), lambda: bibliography(size, seed=seed))

    return make


@pytest.fixture
def bib_index(bib_doc):
    """Prebuilt DocumentIndex for a bibliography."""

    def make(size: int, seed: int = 0):
        doc = bib_doc(size, seed)
        return _cached(("bibidx", size, seed), lambda: DocumentIndex(doc))

    return make


@pytest.fixture
def bib_instance(bib_doc):
    """Bridged instance graph of a bibliography."""

    def make(size: int, seed: int = 0):
        doc = bib_doc(size, seed)
        return _cached(
            ("bibinst", size, seed), lambda: document_to_instance(doc)[0]
        )

    return make


@pytest.fixture
def sections_index(sections_doc):
    """Prebuilt DocumentIndex for a nested-sections document."""

    def make(depth: int, fanout: int = 2):
        doc = sections_doc(depth, fanout)
        return _cached(("sectionsidx", depth, fanout), lambda: DocumentIndex(doc))

    return make


@pytest.fixture
def sections_doc():
    """nested_sections(depth, fanout) -> Document, cached."""

    def make(depth: int, fanout: int = 2):
        return _cached(
            ("sections", depth, fanout),
            lambda: nested_sections(depth=depth, fanout=fanout, seed=0),
        )

    return make


@pytest.fixture
def site():
    """site_graph(pages) -> InstanceGraph (fresh copy: rules mutate it)."""

    def make(pages: int, seed: int = 0):
        base = _cached(("site", pages, seed), lambda: site_graph(pages, seed=seed))
        return base.copy()

    return make


@pytest.fixture
def museum():
    """museum_graph(works) -> InstanceGraph (fresh copy)."""

    def make(works: int, seed: int = 0):
        base = _cached(("museum", works, seed), lambda: museum_graph(works, seed=seed))
        return base.copy()

    return make
