"""FIG-D1 — the figures themselves: layout and rendering of every catalog
query in both languages.

The paper's "evaluation" is its drawn examples; this benchmark regenerates
each drawing (AST → layout → SVG), checks determinism and round-trip
fidelity, and measures layout+render time.  Run with ``--benchmark-only -s``
to also see the ASCII figures.
"""

import pytest

from repro.compare import CATALOG
from repro.visual import (
    diagram_to_wglog,
    diagram_to_xmlgl,
    render_ascii,
    render_svg,
    wglog_rule_diagram,
    xmlgl_rule_diagram,
)
from repro.wglog import parse_rule as parse_wg
from repro.xmlgl.dsl import parse_rule as parse_xg

XG_PAIRS = [(p.id, p.xmlgl_source) for p in CATALOG if p.xmlgl_source]
WG_PAIRS = [(p.id, p.wglog_source) for p in CATALOG if p.wglog_source]


@pytest.mark.parametrize("pair_id,source", XG_PAIRS, ids=[i for i, _ in XG_PAIRS])
def test_xmlgl_figures(benchmark, pair_id, source):
    rule = parse_xg(source)

    def render():
        diagram = xmlgl_rule_diagram(rule)
        return diagram, render_svg(diagram)

    diagram, svg = benchmark(render)
    assert svg.startswith("<svg")
    # determinism and round trip
    assert render_svg(xmlgl_rule_diagram(rule)) == svg
    back = diagram_to_xmlgl(diagram)
    assert set(back.queries[0].nodes) == set(rule.queries[0].nodes)


@pytest.mark.parametrize("pair_id,source", WG_PAIRS, ids=[i for i, _ in WG_PAIRS])
def test_wglog_figures(benchmark, pair_id, source):
    rule = parse_wg(source)

    def render():
        diagram = wglog_rule_diagram(rule)
        return diagram, render_svg(diagram)

    diagram, svg = benchmark(render)
    assert svg.startswith("<svg")
    assert diagram_to_wglog(diagram).describe() == rule.describe()


def test_ascii_gallery():
    """Print every catalog figure (visible with -s)."""
    print()
    for pair in CATALOG:
        if pair.xmlgl_source:
            print(f"--- {pair.id} (XML-GL) ---")
            print(render_ascii(xmlgl_rule_diagram(parse_xg(pair.xmlgl_source))))
        if pair.wglog_source:
            print(f"--- {pair.id} (WG-Log) ---")
            print(render_ascii(wglog_rule_diagram(parse_wg(pair.wglog_source))))
