"""FIG-Q8 — XML-GL schema graphs vs DTDs (the BOOK DTD figure).

Benchmarks both validators over generated bibliographies and asserts they
accept/reject the same documents; also measures the DTD→schema
translation itself.  Shape check: valid data passes both; a corrupted
document fails both.
"""

import pytest

from repro.ssd import parse_dtd
from repro.ssd import validate as dtd_validate
from repro.workloads import BIB_DTD, bibliography
from repro.xmlgl.schema import dtd_to_schema

DTD = parse_dtd(BIB_DTD)
SCHEMA, _NOTES = dtd_to_schema(DTD, "bib")


@pytest.mark.parametrize("size", [100, 400])
def test_dtd_validation(benchmark, bib_doc, size):
    doc = bib_doc(size)
    violations = benchmark(lambda: dtd_validate(doc, DTD))
    assert violations == []


@pytest.mark.parametrize("size", [100, 400])
def test_xmlgl_schema_validation(benchmark, bib_doc, size):
    doc = bib_doc(size)
    violations = benchmark(lambda: SCHEMA.validate(doc))
    assert violations == []


def test_translation_benchmark(benchmark):
    schema, notes = benchmark(lambda: dtd_to_schema(DTD, "bib"))
    assert schema.nodes


def test_validators_agree_on_corruption(bib_doc):
    doc = bibliography(50, seed=9)
    # corrupt: a book loses its title (content model violation)
    book = doc.root.find("book")
    book.remove(book.find("title"))
    assert dtd_validate(doc, DTD)
    assert SCHEMA.validate(doc)
