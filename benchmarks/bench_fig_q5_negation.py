"""FIG-Q5 — negation in both languages.

XML-GL's crossed arc (books without a publisher) and WG-Log's crossed edge
with ∀-semantics (pages nothing links to).  Shape check: negated and
positive counts partition the data.
"""

import pytest

from repro.xmlgl import rule_bindings
from repro.xmlgl.dsl import parse_rule as parse_xg
from repro.wglog import parse_rule as parse_wg
from repro.wglog.semantics import query as wg_query

WITHOUT = parse_xg(
    "query { book as B { not publisher as P } } construct { r { collect B } }"
)
WITH = parse_xg(
    "query { book as B { publisher as P } } construct { r { collect B } }"
)
WG_UNLINKED = parse_wg(
    """
    rule unlinked {
      match { p: Page  s: Page  no s -link-> p }
      where name(p) = 'Page'
    }
    """
)


@pytest.mark.parametrize("size", [100, 400])
def test_xmlgl_negation(benchmark, bib_doc, size):
    doc = bib_doc(size)
    without = benchmark(lambda: rule_bindings(WITHOUT, doc))
    with_pub = rule_bindings(WITH, doc)
    books = len(doc.root.find_all("book"))
    assert len(without) + len(with_pub) == books
    assert len(without) > 0 and len(with_pub) > 0


@pytest.mark.parametrize("pages", [50, 150])
def test_wglog_forall_negation(benchmark, site, pages):
    instance = site(pages)
    unlinked = benchmark(lambda: wg_query(WG_UNLINKED, instance))
    # count pages with an incoming link from another Page, directly
    linked = {
        e.target
        for e in instance.relationship_edges()
        if e.label == "link" and instance.label(e.target) == "Page"
    }
    assert len(unlinked) == len(instance.entities("Page")) - len(linked)
