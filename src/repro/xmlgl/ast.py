"""Query-side AST of XML-GL.

An XML-GL query is drawn as a *graph*: labelled boxes for elements, hollow
circles for PCDATA content, filled circles for attributes, and directed
containment edges.  This module is the abstract syntax of that drawing —
each class corresponds to one visual construct:

===========================  =============================================
Visual construct             AST class / flag
===========================  =============================================
labelled box                 :class:`ElementPattern` (tag)
box labelled ``*`` / blank   :class:`ElementPattern` with ``tag=None``
hollow circle                :class:`TextPattern`
filled circle                :class:`AttributePattern`
plain containment arc        :class:`ContainmentEdge`
arc crossed by a tick        ``ContainmentEdge(ordered=True)``
arc starred with ``*``       ``ContainmentEdge(deep=True)``
crossed-out arc              ``ContainmentEdge(negated=True)``
shared sub-node (DAG)        two edges pointing at the same node id (join)
predicate annotation         conditions on the owning :class:`QueryGraph`
or-arc over edges            :class:`OrGroup` of alternative edge sets
===========================  =============================================

Node ids double as the variable names visible to conditions and to the
construct part, which is exactly how the visual language works: there are
no separate variables, the drawing's nodes *are* the variables.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from ..engine.conditions import Condition
from ..errors import QueryStructureError

__all__ = [
    "ElementPattern",
    "TextPattern",
    "AttributePattern",
    "QueryNode",
    "ContainmentEdge",
    "OrGroup",
    "QueryGraph",
]


@dataclass(frozen=True)
class ElementPattern:
    """A box: matches one element.

    Args:
        id: node id / variable name (unique in the query graph).
        tag: required element tag, or ``None`` for a wildcard box.
        anchored: when true this pattern only matches the *root* element of
            its source document (a box drawn at the very top of the query,
            directly under the document icon).
    """

    id: str
    tag: Optional[str] = None
    anchored: bool = False

    def describe(self) -> str:
        label = self.tag if self.tag is not None else "*"
        return f"[{label}]({self.id})"


@dataclass(frozen=True)
class TextPattern:
    """A hollow circle: matches the PCDATA content of its parent element.

    The bound value is the parent's immediate text (concatenated direct
    text children).  A parent with no non-empty immediate text does not
    match.  ``value`` / ``regex`` constrain the text.
    """

    id: str
    value: Optional[str] = None
    regex: Optional[str] = None

    def __post_init__(self) -> None:
        # Compile once at construction; the matcher fullmatches this per
        # candidate, so re-resolving through re's cache there is waste.
        object.__setattr__(
            self,
            "compiled_regex",
            re.compile(self.regex) if self.regex is not None else None,
        )

    def describe(self) -> str:
        constraint = self.value if self.value is not None else (
            f"/{self.regex}/" if self.regex else ""
        )
        return f"({constraint})({self.id})"


@dataclass(frozen=True)
class AttributePattern:
    """A filled circle: matches attribute ``name`` of its parent element.

    The bound value is the attribute's string value.  Parents lacking the
    attribute do not match.  ``value`` / ``regex`` constrain the value.
    """

    id: str
    name: str
    value: Optional[str] = None
    regex: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "compiled_regex",
            re.compile(self.regex) if self.regex is not None else None,
        )

    def describe(self) -> str:
        return f"(@{self.name})({self.id})"


QueryNode = Union[ElementPattern, TextPattern, AttributePattern]


@dataclass(frozen=True)
class ContainmentEdge:
    """A containment arc from a parent element box to a child node.

    Flags mirror the visual annotations:

    * ``deep`` — the ``*``-starred arc: the child element may occur at any
      depth below the parent (only meaningful for element children).
    * ``ordered`` — the arc crossed by a short stroke: among the ordered
      arcs of one parent, matched children must occur in the same relative
      document order as the arcs were drawn (their ``position``).
    * ``negated`` — the crossed-out arc: the parent must contain **no**
      match of the child subpattern.
    * ``position`` — drawing order of the arc among its siblings; gives
      ``ordered`` its meaning and fixes construct-side child order.
    """

    parent: str
    child: str
    deep: bool = False
    ordered: bool = False
    negated: bool = False
    position: int = 0

    def describe(self) -> str:
        marks = "".join(
            m
            for m, flag in (("*", self.deep), ("'", self.ordered), ("!", self.negated))
            if flag
        )
        return f"{self.parent} -{marks}-> {self.child}"


@dataclass(frozen=True)
class OrGroup:
    """An or-arc spanning alternative edges.

    At least one of the ``alternatives`` (each a tuple of edges forming one
    branch) must match.  Edges inside an OrGroup must not also be listed as
    plain edges of the graph.
    """

    alternatives: tuple[tuple[ContainmentEdge, ...], ...]


@dataclass
class QueryGraph:
    """The extract (left) part of an XML-GL rule.

    Attributes:
        nodes: node id -> pattern node.
        edges: plain containment arcs.
        or_groups: or-arcs over alternative containment arcs.
        conditions: predicate annotations; operand variables are node ids.
        source: name of the input document this graph queries (resolved by
            the evaluator against its document set; ``None`` = default doc).
    """

    nodes: dict[str, QueryNode] = field(default_factory=dict)
    edges: list[ContainmentEdge] = field(default_factory=list)
    or_groups: list[OrGroup] = field(default_factory=list)
    conditions: list[Condition] = field(default_factory=list)
    source: Optional[str] = None

    # -- construction ---------------------------------------------------------

    def add_node(self, node: QueryNode) -> QueryNode:
        """Add a pattern node; duplicate ids raise."""
        if node.id in self.nodes:
            raise QueryStructureError(f"duplicate query node id {node.id!r}")
        self.nodes[node.id] = node
        return node

    def add_edge(self, edge: ContainmentEdge) -> ContainmentEdge:
        """Add a containment arc; endpoints must exist (parent an element)."""
        self._check_edge(edge)
        self.edges.append(edge)
        return edge

    def add_or_group(self, group: OrGroup) -> OrGroup:
        """Add an or-arc; each alternative's edges are checked."""
        if not group.alternatives:
            raise QueryStructureError("or-group needs at least one alternative")
        for branch in group.alternatives:
            for edge in branch:
                self._check_edge(edge)
        self.or_groups.append(group)
        return group

    def add_condition(self, condition: Condition) -> Condition:
        """Attach a predicate annotation."""
        self.conditions.append(condition)
        return condition

    def _check_edge(self, edge: ContainmentEdge) -> None:
        parent = self.nodes.get(edge.parent)
        child = self.nodes.get(edge.child)
        if parent is None:
            raise QueryStructureError(f"edge parent {edge.parent!r} is not a node")
        if child is None:
            raise QueryStructureError(f"edge child {edge.child!r} is not a node")
        if not isinstance(parent, ElementPattern):
            raise QueryStructureError(
                f"containment parent {edge.parent!r} must be an element box"
            )
        if edge.deep and not isinstance(child, ElementPattern):
            raise QueryStructureError(
                f"starred (deep) arc to {edge.child!r} requires an element child"
            )

    # -- inspection -----------------------------------------------------------

    def all_edges(self) -> Iterator[ContainmentEdge]:
        """Plain edges plus every or-group branch edge."""
        yield from self.edges
        for group in self.or_groups:
            for branch in group.alternatives:
                yield from branch

    def element_nodes(self) -> list[ElementPattern]:
        """All element boxes (insertion order)."""
        return [n for n in self.nodes.values() if isinstance(n, ElementPattern)]

    def positive_edges(self) -> list[ContainmentEdge]:
        """Plain, non-negated edges."""
        return [e for e in self.edges if not e.negated]

    def negated_edges(self) -> list[ContainmentEdge]:
        """Crossed-out edges."""
        return [e for e in self.edges if e.negated]

    def children_of(self, node_id: str) -> list[ContainmentEdge]:
        """Outgoing plain edges of ``node_id``, by drawing position."""
        return sorted(
            (e for e in self.edges if e.parent == node_id),
            key=lambda e: e.position,
        )

    def parents_of(self, node_id: str) -> list[str]:
        """Parents of ``node_id`` over plain non-negated edges."""
        return [e.parent for e in self.edges if e.child == node_id and not e.negated]

    def roots(self) -> list[str]:
        """Element boxes without any incoming containment (entry points)."""
        has_parent = {e.child for e in self.all_edges()}
        return [n.id for n in self.element_nodes() if n.id not in has_parent]

    # -- validation -----------------------------------------------------------

    def validate(self) -> None:
        """Structural well-formedness; raises :class:`QueryStructureError`.

        Checks: at least one element box, no dangling text/attribute nodes,
        no containment cycles over positive edges, negated subtrees are not
        shared with positive structure, or-group branches introduce no
        duplicates of plain edges.
        """
        if not self.element_nodes():
            raise QueryStructureError("query graph has no element box")
        reachable_children = {e.child for e in self.all_edges()}
        for node in self.nodes.values():
            if isinstance(node, (TextPattern, AttributePattern)):
                if node.id not in reachable_children:
                    raise QueryStructureError(
                        f"{type(node).__name__} {node.id!r} has no parent arc"
                    )
        self._check_acyclic()
        self._check_negated_subtrees()
        plain = {(e.parent, e.child) for e in self.edges}
        for group in self.or_groups:
            for branch in group.alternatives:
                for edge in branch:
                    if (edge.parent, edge.child) in plain:
                        raise QueryStructureError(
                            f"edge {edge.describe()} occurs both plainly and in an or-group"
                        )

    def _check_acyclic(self) -> None:
        children: dict[str, list[str]] = {}
        for edge in self.all_edges():
            children.setdefault(edge.parent, []).append(edge.child)
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {node_id: WHITE for node_id in self.nodes}

        def visit(node_id: str) -> None:
            colour[node_id] = GREY
            for child in children.get(node_id, ()):
                if colour[child] == GREY:
                    raise QueryStructureError(
                        f"containment cycle through {child!r}"
                    )
                if colour[child] == WHITE:
                    visit(child)
            colour[node_id] = BLACK

        for node_id in self.nodes:
            if colour[node_id] == WHITE:
                visit(node_id)

    def _check_negated_subtrees(self) -> None:
        """A crossed arc's child subtree must be private to the negation.

        Edges *inside* the subtree are allowed (they form the negated
        subpattern); what is forbidden is an arc from outside the subtree
        into it, which would make a node both positively bound and negated.
        """
        for edge in self.negated_edges():
            subtree = {edge.child}
            stack = [edge.child]
            while stack:
                node_id = stack.pop()
                for sub_edge in self.edges:
                    if sub_edge.parent == node_id and sub_edge.child not in subtree:
                        subtree.add(sub_edge.child)
                        stack.append(sub_edge.child)
            for other in self.all_edges():
                if other is edge:
                    continue
                if other.child in subtree and other.parent not in subtree:
                    raise QueryStructureError(
                        f"negated node {other.child!r} is shared with "
                        "positive structure"
                    )

    def describe(self) -> str:
        """Compact multi-line textual rendering (for logs and tests)."""
        lines = [n.describe() for n in self.nodes.values()]
        lines += [e.describe() for e in self.edges]
        for group in self.or_groups:
            branches = " | ".join(
                "{" + ", ".join(e.describe() for e in branch) + "}"
                for branch in group.alternatives
            )
            lines.append(f"or: {branches}")
        lines += [f"where {c}" for c in self.conditions]
        return "\n".join(lines)
