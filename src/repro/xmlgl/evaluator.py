"""Rule and program evaluation for XML-GL.

Ties the pieces together: match every extract graph against its source
document, join the binding sets (shared predicates realise multi-document
joins), filter by rule-level conditions, and run the construct tree.
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from ..engine.bindings import BindingSet
from ..engine.cache import DocumentIndexCache, shared_cache
from ..engine.conditions import DocumentAccessor
from ..engine.limits import QueryBudget, arm_budget, mark_truncated, truncate_element
from ..engine.stats import EvalStats
from ..engine.trace import Tracer, span as trace_span
from ..errors import BudgetExceeded, EvaluationError
from ..ssd.model import Document, Element
from .ast import QueryGraph
from .construct import build
from .matcher import MatchOptions, match
from .rule import Program, Rule

__all__ = ["evaluate_rule", "evaluate_program", "rule_bindings"]

_ACCESSOR = DocumentAccessor()

Sources = Union[Document, Mapping[str, Document]]


def _resolve_source(graph: QueryGraph, sources: Sources) -> Document:
    if isinstance(sources, Document):
        if graph.source is not None:
            raise EvaluationError(
                f"extract graph names source {graph.source!r} but only a "
                "single unnamed document was supplied"
            )
        return sources
    if graph.source is None:
        if len(sources) == 1:
            return next(iter(sources.values()))
        raise EvaluationError(
            "extract graph has no source name; supply a single document or "
            "name the graph's source"
        )
    try:
        return sources[graph.source]
    except KeyError:
        raise EvaluationError(f"unknown source document {graph.source!r}")


def rule_bindings(
    rule: Rule,
    sources: Sources,
    *,
    options: Optional[MatchOptions] = None,
    trace: Optional[bool] = None,
    budget: Optional[QueryBudget] = None,
    stats: Optional[EvalStats] = None,
    indexes: Optional[DocumentIndexCache] = None,
    preflight: bool = True,
) -> BindingSet:
    """Matched and joined bindings of a rule (before construction).

    The keyword-only ``options=`` / ``trace=`` / ``budget=`` trio is the
    unified run contract shared with :func:`evaluate_rule`,
    :meth:`repro.session.QuerySession.run` and WG-Log's
    :func:`~repro.wglog.semantics.query`: ``trace`` overrides
    ``options.trace`` for this call, ``budget`` overrides
    ``options.budget``, and both default to deferring to the options.

    ``indexes`` is the :class:`~repro.engine.cache.DocumentIndexCache` to
    reuse :class:`DocumentIndex` snapshots from; it defaults to the shared
    process-wide cache, so repeated queries over one document build its
    index once.  Callers that mutate a document between evaluations must
    invalidate it (see :mod:`repro.engine.cache`).

    ``preflight`` (default on) runs the static satisfiability pre-flight
    first: a rule proved to match nothing — contradictory predicates, an
    impossible anchoring — returns an empty binding set without touching
    any document, counted in ``stats.preflight_skips``.
    """
    stats = stats if stats is not None else EvalStats()
    tracing = trace if trace is not None else (
        options.trace if options is not None else False
    )
    if tracing and stats.trace is None:
        stats.trace = Tracer()
    effective_budget = budget if budget is not None else (
        options.budget if options is not None else None
    )
    # Arm here (not in match) so one deadline spans preflight-to-construct.
    arm_budget(stats, effective_budget)
    if preflight:
        from ..analysis.preflight import xmlgl_preflight

        with trace_span(stats.trace, "preflight") as preflight_span:
            verdict = xmlgl_preflight(rule)
            if preflight_span is not None:
                preflight_span["skipped"] = verdict is not None
        if verdict is not None:
            stats.preflight_skips += 1
            return BindingSet()
    cache = indexes if indexes is not None else shared_cache
    combined: Optional[BindingSet] = None
    for position, graph in enumerate(rule.queries):
        document = _resolve_source(graph, sources)
        index = cache.get(document, stats=stats)
        with trace_span(
            stats.trace,
            "match",
            graph=position,
            source=graph.source or "-",
            engine=(options or MatchOptions()).resolved_engine(),
            language="xmlgl",
        ) as match_span:
            bindings = match(
                graph, document, options=options, index=index, stats=stats
            )
            if match_span is not None:
                match_span["bindings"] = len(bindings)
        combined = bindings if combined is None else combined.join(bindings)
        if not combined:
            return BindingSet()
    assert combined is not None
    for condition in rule.conditions:
        combined = combined.select(
            lambda b, c=condition: c.evaluate(b, _ACCESSOR)
        )
    return combined


def evaluate_rule(
    rule: Rule,
    sources: Sources,
    *,
    options: Optional[MatchOptions] = None,
    trace: Optional[bool] = None,
    budget: Optional[QueryBudget] = None,
    stats: Optional[EvalStats] = None,
    indexes: Optional[DocumentIndexCache] = None,
) -> Element:
    """Evaluate one rule to its constructed result element.

    Accepts the unified keyword-only ``options=`` / ``trace=`` / ``budget=``
    contract (see :func:`rule_bindings`).  When a budget caps
    ``max_result_nodes``, the constructed tree is checked after building:
    under ``on_limit="raise"`` an oversized result raises
    :class:`~repro.errors.BudgetExceeded`; under ``"partial"`` it is pruned
    in document order to the cap (well-formed, every kept node retains its
    ancestors) and flagged ``stats.extra["truncated"]``.
    """
    stats = stats if stats is not None else EvalStats()
    bindings = rule_bindings(
        rule,
        sources,
        options=options,
        trace=trace,
        budget=budget,
        stats=stats,
        indexes=indexes,
    )
    state = stats.budget
    with trace_span(stats.trace, "construct") as construct_span:
        if state is not None:
            try:
                state.poll()
            except BudgetExceeded as exc:
                # Partial mode: a deadline expiring *between* matching and
                # construction must not discard the gathered bindings —
                # build the (possibly already truncated) result anyway.
                # Cancellation is not a BudgetExceeded and still aborts.
                if not state.budget.partial:
                    raise
                if not stats.extra.get("truncated"):
                    mark_truncated(stats, exc.limit)
        result = build(rule.construct, bindings)
        if state is not None:
            try:
                state.check_result_nodes(result.size())
            except BudgetExceeded as exc:
                if not state.budget.partial:
                    raise
                max_nodes = state.budget.max_result_nodes
                assert max_nodes is not None
                truncate_element(result, max_nodes)
                mark_truncated(stats, exc.limit)
        if construct_span is not None:
            construct_span["bindings"] = len(bindings)
            construct_span["nodes"] = result.size()
    return result


def evaluate_program(
    program: Program,
    sources: Sources,
    *,
    options: Optional[MatchOptions] = None,
    trace: Optional[bool] = None,
    budget: Optional[QueryBudget] = None,
    stats: Optional[EvalStats] = None,
) -> Document:
    """Evaluate a program: union of rule results under a common root.

    Single-rule programs with ``unwrap=True`` return the rule's own result
    element as document root.  Chained programs feed each named rule's
    result to the rules after it as a source document of that name.
    """
    indexes = shared_cache
    if program.chained:
        pool: dict[str, Document] = (
            {"input": sources} if isinstance(sources, Document) else dict(sources)
        )
        results = []
        for rule in program.rules:
            result = evaluate_rule(
                rule, pool, options=options, trace=trace, budget=budget,
                stats=stats, indexes=indexes,
            )
            results.append(result)
            if rule.name:
                pool[rule.name] = Document(result.copy())
    else:
        results = [
            evaluate_rule(
                rule, sources, options=options, trace=trace, budget=budget,
                stats=stats, indexes=indexes,
            )
            for rule in program.rules
        ]
    if program.unwrap and len(results) == 1:
        return Document(results[0])
    wrapper = Element(program.result_tag)
    for result in results:
        wrapper.append(result)
    return Document(wrapper)
