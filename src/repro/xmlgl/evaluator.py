"""Rule and program evaluation for XML-GL.

Ties the pieces together: match every extract graph against its source
document, join the binding sets (shared predicates realise multi-document
joins), filter by rule-level conditions, and run the construct tree.

Repeated queries skip the front half entirely: :func:`lookup_or_compile`
keys a :class:`~repro.engine.plan_cache.CompiledPlan` — the parsed rule,
its static-preflight verdict and one compiled
:class:`~repro.xmlgl.matcher.CompiledGraphPlan` per extract graph — by the
query text's digest and the participating indexes' stats epochs, and
:func:`rule_bindings` / :func:`evaluate_rule` accept the cached plan via
``plan=`` so parse, validation, preflight and graph analysis all amortise
to one execution.
"""

from __future__ import annotations

import hashlib
from typing import Mapping, Optional, Union

from ..engine.bindings import BindingSet
from ..engine.cache import DocumentIndexCache, shared_cache
from ..engine.conditions import DocumentAccessor
from ..engine.limits import QueryBudget, arm_budget, mark_truncated, truncate_element
from ..engine.plan_cache import CompiledPlan, PlanCache, shared_plans
from ..engine.stats import EvalStats
from ..engine.trace import Tracer, span as trace_span
from ..errors import BudgetExceeded, EvaluationError
from ..ssd.model import Document, Element
from .ast import QueryGraph
from .construct import build
from .matcher import MatchOptions, compile_graph, match
from .rule import Program, Rule

__all__ = [
    "compile_plan",
    "evaluate_rule",
    "evaluate_program",
    "lookup_or_compile",
    "rule_bindings",
]

_ACCESSOR = DocumentAccessor()

Sources = Union[Document, Mapping[str, Document]]


def _resolve_source(graph: QueryGraph, sources: Sources) -> Document:
    if isinstance(sources, Document):
        if graph.source is not None:
            raise EvaluationError(
                f"extract graph names source {graph.source!r} but only a "
                "single unnamed document was supplied"
            )
        return sources
    if graph.source is None:
        if len(sources) == 1:
            return next(iter(sources.values()))
        raise EvaluationError(
            "extract graph has no source name; supply a single document or "
            "name the graph's source"
        )
    try:
        return sources[graph.source]
    except KeyError:
        raise EvaluationError(f"unknown source document {graph.source!r}")


def _note_rewrite(stats: EvalStats, report: object) -> None:
    """Mirror a rewrite report's counters into ``stats.extra``.

    Called both when a rewrite runs and when a cached plan carrying one is
    served, so every evaluation's stats describe the plan it actually ran
    (``rewrite_merged=2`` etc. — the names mirror
    :data:`repro.analysis.rewrite.COUNTERS`).
    """
    counters = getattr(report, "counters", None)
    if not counters:
        return
    for name, value in counters.items():
        stats.bump(f"rewrite_{name}", value)


def _run_rewrite(rule: Rule, stats: EvalStats) -> tuple[Rule, object]:
    """The ``rewrite`` span: run the static rewrite layer over ``rule``."""
    from ..analysis.rewrite import rewrite_rule

    with trace_span(stats.trace, "rewrite") as rewrite_span:
        rewritten, report = rewrite_rule(rule)
        if rewrite_span is not None:
            rewrite_span["summary"] = report.describe()
            rewrite_span["changed"] = report.changed
    _note_rewrite(stats, report)
    return rewritten, report


def _finish_plan(
    rule: Rule, report: object, stats: EvalStats
) -> CompiledPlan:
    """Preflight + per-graph compilation of an (already rewritten) rule."""
    from ..analysis.preflight import xmlgl_preflight

    skip = bool(getattr(report, "static_false", False))
    if not skip:
        stats.preflight_runs += 1
        skip = xmlgl_preflight(rule) is not None
    return CompiledPlan(
        rule=rule,
        preflight_skip=skip,
        graph_plans=()
        if skip
        else tuple(compile_graph(graph) for graph in rule.queries),
        rewrite=report,
    )


def compile_plan(
    rule: Rule,
    *,
    rewrite: bool = True,
    stats: Optional[EvalStats] = None,
) -> CompiledPlan:
    """Analyse ``rule`` once: rewrite, preflight verdict, per-graph plans.

    With ``rewrite`` on (the default) the static rewrite layer runs first
    and the plan carries the *rewritten* rule plus its
    :class:`~repro.analysis.rewrite.RewriteReport`; a rewrite that proves
    the query empty, like a contradictory preflight verdict, is recorded
    as ``preflight_skip`` with no graph plans — evaluation of the cached
    plan short-circuits exactly like the live preflight would.
    """
    stats = stats if stats is not None else EvalStats()
    report: object = None
    if rewrite:
        rule, report = _run_rewrite(rule, stats)
    return _finish_plan(rule, report, stats)


def lookup_or_compile(
    query: Union[str, Rule],
    sources: Sources,
    *,
    parsed: Optional[Rule] = None,
    indexes: Optional[DocumentIndexCache] = None,
    stats: Optional[EvalStats] = None,
    plans: Optional[PlanCache] = None,
    rewrite: bool = True,
) -> tuple[Rule, Optional[str], CompiledPlan]:
    """The plan-cache front door: ``(rule, source_text, compiled plan)``.

    Plans are stored under the digest of the query's **canonical rewritten
    form** (:func:`repro.analysis.rewrite.canonical_rule_text`) paired
    with the stats epochs of every source document's index — so two
    textually different but semantically equal queries share one compiled
    plan, and a mutated-and-reinvalidated document rebuilds its index
    under a fresh epoch so stale plans can never be served.  A cheap alias
    map keyed by the raw text's digest fronts the canonical entries: a
    warm repeat of the *identical* text resolves without parsing at all.
    Indexes are resolved through ``indexes`` (the shared cache by
    default), which doubles as the index prewarm for the evaluation.

    On a hit the parse, validation, rewrite, preflight and graph analysis
    are all skipped (``stats.plan_cache_hits``, trace event
    ``plan.cache.hit``) and the cached plan's rewrite counters are
    replayed into ``stats.extra``; on a miss the query is parsed — unless
    the caller supplies ``parsed`` — rewritten under a ``rewrite`` span,
    and compiled under a ``plan.cache.compile`` span, then cached.  With
    ``rewrite=False`` the raw text digest keys the entry directly and no
    canonical sharing happens (the returned rule is the drawn one).
    """
    stats = stats if stats is not None else EvalStats()
    tracer = stats.trace
    if isinstance(query, str):
        source_text = query
    else:
        from .unparse import unparse_rule

        parsed = query
        source_text = None
    digest = hashlib.sha256(
        (source_text if source_text is not None else unparse_rule(parsed)).encode()
    ).hexdigest()
    cache = indexes if indexes is not None else shared_cache
    documents = (
        [sources] if isinstance(sources, Document) else list(sources.values())
    )
    epochs = tuple(
        cache.get(document, stats=stats).stats_epoch for document in documents
    )
    plan_cache = plans if plans is not None else shared_plans

    def _hit(
        plan: CompiledPlan, *, canonical: bool, replay: bool = True
    ) -> CompiledPlan:
        stats.plan_cache_hits += 1
        if tracer is not None:
            tracer.event("plan.cache.hit", key=digest[:12], canonical=canonical)
        if replay:
            # warm hit: no rewrite ran this call, so surface the cached
            # plan's rewrite outcome in this evaluation's stats
            _note_rewrite(stats, plan.rewrite)
        return plan

    if not rewrite:
        # raw-keyed, no canonical sharing: the verbatim-evaluation path
        raw_key = (("raw", digest), epochs)
        plan = plan_cache.get(raw_key)
        if plan is not None:
            return _hit(plan, canonical=False).rule, source_text, plan
        stats.plan_cache_misses += 1
        if tracer is not None:
            tracer.event("plan.cache.miss", key=digest[:12])
        if parsed is None:
            from .dsl import parse_rule

            with trace_span(tracer, "parse", query=len(source_text or "")):
                parsed = parse_rule(source_text)
        with trace_span(tracer, "plan.cache.compile", key=digest[:12]):
            plan = compile_plan(parsed, rewrite=False, stats=stats)
        plan_cache.put(raw_key, plan)
        return parsed, source_text, plan

    alias_key = (digest, epochs)
    target = plan_cache.resolve_alias(alias_key)
    if target is not None:
        plan = plan_cache.get(target)
        if plan is not None:
            return _hit(plan, canonical=False).rule, source_text, plan
        # stale alias: the entry aged out — fall through to a normal miss
    if parsed is None:
        from .dsl import parse_rule

        with trace_span(tracer, "parse", query=len(source_text or "")):
            parsed = parse_rule(source_text)
    rewritten, report = _run_rewrite(parsed, stats)
    from ..analysis.rewrite import canonical_rule_text

    canonical_digest = hashlib.sha256(
        canonical_rule_text(rewritten).encode()
    ).hexdigest()
    canonical_key = (("canon", canonical_digest), epochs)
    plan = plan_cache.get(canonical_key)
    if plan is not None:
        # a semantically equal query compiled this plan under another text;
        # this call's own rewrite already recorded its counters
        plan_cache.put_alias(alias_key, canonical_key)
        return _hit(plan, canonical=True, replay=False).rule, source_text, plan
    stats.plan_cache_misses += 1
    if tracer is not None:
        tracer.event("plan.cache.miss", key=digest[:12])
    with trace_span(tracer, "plan.cache.compile", key=canonical_digest[:12]):
        plan = _finish_plan(rewritten, report, stats)
    plan_cache.put(canonical_key, plan)
    plan_cache.put_alias(alias_key, canonical_key)
    return rewritten, source_text, plan


def rule_bindings(
    rule: Rule,
    sources: Sources,
    *,
    options: Optional[MatchOptions] = None,
    trace: Optional[bool] = None,
    budget: Optional[QueryBudget] = None,
    stats: Optional[EvalStats] = None,
    indexes: Optional[DocumentIndexCache] = None,
    preflight: bool = True,
    plan: Optional[CompiledPlan] = None,
) -> BindingSet:
    """Matched and joined bindings of a rule (before construction).

    The keyword-only ``options=`` / ``trace=`` / ``budget=`` trio is the
    unified run contract shared with :func:`evaluate_rule`,
    :meth:`repro.session.QuerySession.run` and WG-Log's
    :func:`~repro.wglog.semantics.query`: ``trace`` overrides
    ``options.trace`` for this call, ``budget`` overrides
    ``options.budget``, and both default to deferring to the options.

    ``indexes`` is the :class:`~repro.engine.cache.DocumentIndexCache` to
    reuse :class:`DocumentIndex` snapshots from; it defaults to the shared
    process-wide cache, so repeated queries over one document build its
    index once.  Callers that mutate a document between evaluations must
    invalidate it (see :mod:`repro.engine.cache`).

    ``preflight`` (default on) runs the static satisfiability pre-flight
    first: a rule proved to match nothing — contradictory predicates, an
    impossible anchoring — returns an empty binding set without touching
    any document, counted in ``stats.preflight_skips``.

    ``plan`` is a :func:`compile_plan` result *for this rule* (usually via
    :func:`lookup_or_compile`): the live preflight and each graph's
    compilation are skipped in favour of the cached analysis.
    """
    stats = stats if stats is not None else EvalStats()
    tracing = trace if trace is not None else (
        options.trace if options is not None else False
    )
    if tracing and stats.trace is None:
        stats.trace = Tracer()
    effective_budget = budget if budget is not None else (
        options.budget if options is not None else None
    )
    # Arm here (not in match) so one deadline spans preflight-to-construct.
    arm_budget(stats, effective_budget)
    if plan is not None:
        with trace_span(stats.trace, "preflight") as preflight_span:
            if preflight_span is not None:
                preflight_span["cached"] = True
                preflight_span["skipped"] = plan.preflight_skip
        if plan.preflight_skip:
            stats.preflight_skips += 1
            return BindingSet()
    elif preflight:
        from ..analysis.preflight import xmlgl_preflight

        with trace_span(stats.trace, "preflight") as preflight_span:
            stats.preflight_runs += 1
            verdict = xmlgl_preflight(rule)
            if preflight_span is not None:
                preflight_span["skipped"] = verdict is not None
        if verdict is not None:
            stats.preflight_skips += 1
            return BindingSet()
    cache = indexes if indexes is not None else shared_cache
    combined: Optional[BindingSet] = None
    for position, graph in enumerate(rule.queries):
        document = _resolve_source(graph, sources)
        index = cache.get(document, stats=stats)
        with trace_span(
            stats.trace,
            "match",
            graph=position,
            source=graph.source or "-",
            engine=(options or MatchOptions()).resolved_engine(),
            language="xmlgl",
        ) as match_span:
            bindings = match(
                graph,
                document,
                options=options,
                index=index,
                stats=stats,
                plan=plan.graph_plans[position] if plan is not None else None,
            )
            if match_span is not None:
                match_span["bindings"] = len(bindings)
        combined = bindings if combined is None else combined.join(bindings)
        if not combined:
            return BindingSet()
    assert combined is not None
    for condition in rule.conditions:
        combined = combined.select(
            lambda b, c=condition: c.evaluate(b, _ACCESSOR)
        )
    return combined


def evaluate_rule(
    rule: Rule,
    sources: Sources,
    *,
    options: Optional[MatchOptions] = None,
    trace: Optional[bool] = None,
    budget: Optional[QueryBudget] = None,
    stats: Optional[EvalStats] = None,
    indexes: Optional[DocumentIndexCache] = None,
    plan: Optional[CompiledPlan] = None,
) -> Element:
    """Evaluate one rule to its constructed result element.

    Accepts the unified keyword-only ``options=`` / ``trace=`` / ``budget=``
    contract (see :func:`rule_bindings`, including ``plan=`` for cached
    compiled plans).  When a budget caps
    ``max_result_nodes``, the constructed tree is checked after building:
    under ``on_limit="raise"`` an oversized result raises
    :class:`~repro.errors.BudgetExceeded`; under ``"partial"`` it is pruned
    in document order to the cap (well-formed, every kept node retains its
    ancestors) and flagged ``stats.extra["truncated"]``.
    """
    stats = stats if stats is not None else EvalStats()
    bindings = rule_bindings(
        rule,
        sources,
        options=options,
        trace=trace,
        budget=budget,
        stats=stats,
        indexes=indexes,
        plan=plan,
    )
    state = stats.budget
    with trace_span(stats.trace, "construct") as construct_span:
        if state is not None:
            try:
                state.poll()
            except BudgetExceeded as exc:
                # Partial mode: a deadline expiring *between* matching and
                # construction must not discard the gathered bindings —
                # build the (possibly already truncated) result anyway.
                # Cancellation is not a BudgetExceeded and still aborts.
                if not state.budget.partial:
                    raise
                if not stats.extra.get("truncated"):
                    mark_truncated(stats, exc.limit)
        result = build(rule.construct, bindings)
        if state is not None:
            try:
                state.check_result_nodes(result.size())
            except BudgetExceeded as exc:
                if not state.budget.partial:
                    raise
                max_nodes = state.budget.max_result_nodes
                assert max_nodes is not None
                truncate_element(result, max_nodes)
                mark_truncated(stats, exc.limit)
        if construct_span is not None:
            construct_span["bindings"] = len(bindings)
            construct_span["nodes"] = result.size()
    return result


def evaluate_program(
    program: Program,
    sources: Sources,
    *,
    options: Optional[MatchOptions] = None,
    trace: Optional[bool] = None,
    budget: Optional[QueryBudget] = None,
    stats: Optional[EvalStats] = None,
) -> Document:
    """Evaluate a program: union of rule results under a common root.

    Single-rule programs with ``unwrap=True`` return the rule's own result
    element as document root.  Chained programs feed each named rule's
    result to the rules after it as a source document of that name.

    Each rule is compiled through :func:`compile_plan` first, so the
    static rewrite layer applies (disable with ``options.rewrite=False`` /
    ``repro run --no-rewrite``) and evaluation runs the rewritten rule.
    """
    indexes = shared_cache
    rewrite = options.rewrite if options is not None else True
    plan_stats = stats if stats is not None else EvalStats()

    def run_one(rule: Rule, pool: Sources) -> Element:
        plan = compile_plan(rule, rewrite=rewrite, stats=plan_stats)
        return evaluate_rule(
            plan.rule, pool, options=options, trace=trace, budget=budget,
            stats=stats, indexes=indexes, plan=plan,
        )

    if program.chained:
        pool: dict[str, Document] = (
            {"input": sources} if isinstance(sources, Document) else dict(sources)
        )
        results = []
        for rule in program.rules:
            result = run_one(rule, pool)
            results.append(result)
            if rule.name:
                pool[rule.name] = Document(result.copy())
    else:
        results = [run_one(rule, sources) for rule in program.rules]
    if program.unwrap and len(results) == 1:
        return Document(results[0])
    wrapper = Element(program.result_tag)
    for result in results:
        wrapper.append(result)
    return Document(wrapper)
