"""XML-GL: the graphical query and restructuring language for XML.

Public API:

* AST — :class:`QueryGraph`, pattern nodes, :class:`ContainmentEdge`,
  construct nodes (:class:`NewElement`, :class:`Collect`, ...);
* builders — :class:`QueryBuilder` and the ``elem``/``collect``/``cmp``
  helper family;
* evaluation — :func:`match` (bindings), :func:`evaluate_rule` /
  :func:`evaluate_program` (result documents);
* textual DSL — :func:`parse_rule` / :func:`parse_program` (see
  :mod:`repro.xmlgl.dsl` for the grammar);
* schemas — :mod:`repro.xmlgl.schema`: XML-GL graphs as a schema formalism
  subsuming DTDs.
"""

from .ast import (
    AttributePattern,
    ContainmentEdge,
    ElementPattern,
    OrGroup,
    QueryGraph,
    TextPattern,
)
from .builder import (
    QueryBuilder,
    aggregate,
    and_,
    arith,
    attr,
    attribute_const,
    attribute_from,
    cmp,
    collect,
    content,
    copy_of,
    elem,
    group,
    lit,
    name_of,
    not_,
    or_,
    regex,
    text,
    value_of,
)
from .construct import (
    Aggregate,
    Collect,
    Copy,
    GroupBy,
    NewAttribute,
    NewElement,
    TextFrom,
    TextLiteral,
    build,
)
from .evaluator import evaluate_program, evaluate_rule, rule_bindings
from .matcher import MatchOptions, match
from .rule import Program, Rule
from .translate import TranslationError, to_path, translatable
from .containment import ContainmentError, contains, equivalent
from .unparse import unparse_program, unparse_rule

__all__ = [
    # query ast
    "QueryGraph", "ElementPattern", "TextPattern", "AttributePattern",
    "ContainmentEdge", "OrGroup",
    # construct ast
    "NewElement", "NewAttribute", "TextLiteral", "TextFrom", "Copy",
    "Collect", "GroupBy", "Aggregate", "build",
    # rules
    "Rule", "Program",
    # builders
    "QueryBuilder", "cmp", "attr", "content", "name_of", "lit", "arith",
    "regex", "and_", "or_", "not_", "elem", "text", "value_of", "copy_of",
    "collect", "group", "aggregate", "attribute_const", "attribute_from",
    # evaluation
    "match", "MatchOptions", "evaluate_rule", "evaluate_program",
    "rule_bindings",
    # translation
    "to_path", "translatable", "TranslationError",
    "unparse_rule", "unparse_program",
    "contains", "equivalent", "ContainmentError",
]
