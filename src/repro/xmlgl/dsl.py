r"""Textual concrete syntax for XML-GL.

The language is visual; its reference syntax is the drawing.  For headless
use (tests, scripts, benchmarks) this module provides an equivalent textual
form.  The mapping is one-to-one with the visual vocabulary, so a parsed
rule renders back to the same diagram.

Grammar (EBNF, ``[]`` optional, ``*`` repetition)::

    program    = rule_block+ | rule
    rule_block = "rule" [NAME] "{" rule "}"
    rule       = query+ construct
    query      = "query" [NAME] "{" node* [where] "}"   -- NAME names the source
    node       = flag* tag ["as" ID] [body]
    flag       = "root" | "deep" | "not" | "ord"
    tag        = NAME | "*"
    body       = "{" item* "}"
    item       = node
               | "@" NAME [constraint] ["as" ID]
               | "text" [constraint] ["as" ID]
               | "or" "{" node+ ("|" node+)* "}"
    constraint = "=" STRING | "~" REGEX
    where      = "where" cond
    cond       = conj ("or" conj)*
    conj       = unit ("and" unit)*
    unit       = "not" unit | "(" cond ")" | comparison
    comparison = operand (CMP operand | "~" REGEX)
    operand    = summand (("+"|"-") summand)*
    summand    = factor (("*"|"/") factor)*
    factor     = NUMBER | STRING | ID ["." NAME] | "name" "(" ID ")"
               | "(" operand ")"
    construct  = "construct" "{" cnode "}"
    cnode      = NAME [cattrs] ["for" ID ("," ID)*] ["sortby" ID] [cbody]
    cattrs     = "(" NAME "=" (STRING | "$" ID) ("," NAME "=" ...)* ")"
    cbody      = "{" citem* "}"
    citem      = cnode
               | ("copy" | "collect") ID ["shallow"]
               | "text" STRING
               | "value" ID
               | "group" ID ("," ID)* "{" citem* "}"
               | AGG "(" ID ")"            -- AGG in count/sum/min/max/avg

Lexical notes: ``ID``/``NAME`` are ``[A-Za-z_][A-Za-z0-9_\-]*``; ``STRING``
is single- or double-quoted; ``REGEX`` is ``/.../`` (backslash escapes
``/``); ``CMP`` is ``= != < <= > >=``; ``#`` starts a line comment.  In
conditions a bare ``ID`` denotes the bound node's text content and
``ID.name`` an attribute — exactly the two value views the visual language
attaches predicates to.

Example::

    query {
      root bib {
        book as B {
          @year as Y
          title as T { text as TT }
          deep author as A
          not cdrom
        }
      }
      where B.year >= 1995 and TT ~ /.*Web.*/
    }
    construct {
      result {
        entry for B { copy T  collect A }
      }
    }
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from ..engine.conditions import (
    And,
    Arith,
    AttributeOf,
    Comparison,
    Condition,
    Const,
    ContentOf,
    NameOf,
    Not,
    Operand,
    Or,
    Regex,
)
from ..errors import QuerySyntaxError
from ..ssd.datatypes import coerce
from .ast import (
    AttributePattern,
    ContainmentEdge,
    ElementPattern,
    OrGroup,
    QueryGraph,
    TextPattern,
)
from .construct import (
    Aggregate,
    Collect,
    ConstructNode,
    Copy,
    GroupBy,
    NewAttribute,
    NewElement,
    TextFrom,
    TextLiteral,
)
from .rule import Program, Rule

__all__ = ["parse_rule", "parse_program", "parse_condition"]

_AGGREGATES = {"count", "sum", "min", "max", "avg"}
_CMP_OPS = {"=", "!=", "<", "<=", ">", ">="}


@dataclass
class _Token:
    kind: str  # name, number, string, regex, punct
    value: str
    line: int
    column: int


_PUNCT = [
    "<=", ">=", "!=", "{", "}", "(", ")", ",", "|", "@", "=", "~",
    "<", ">", "+", "-", "*", "/", ".", "$",
]

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_\-]*")
_NUMBER_RE = re.compile(r"\d+(\.\d+)?")


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    line, column = 1, 1
    pos = 0
    n = len(source)
    while pos < n:
        ch = source[pos]
        if ch == "\n":
            line += 1
            column = 1
            pos += 1
            continue
        if ch in " \t\r":
            pos += 1
            column += 1
            continue
        if ch == "#":
            while pos < n and source[pos] != "\n":
                pos += 1
            continue
        if ch in "'\"":
            end = source.find(ch, pos + 1)
            if end == -1:
                raise QuerySyntaxError("unterminated string", line, column)
            value = source[pos + 1 : end]
            tokens.append(_Token("string", value, line, column))
            column += end - pos + 1
            pos = end + 1
            continue
        if ch == "/" and tokens and tokens[-1].kind == "punct" and tokens[-1].value == "~":
            # regex literal only directly after '~'
            index = pos + 1
            chunks: list[str] = []
            while index < n and source[index] != "/":
                if source[index] == "\\" and index + 1 < n and source[index + 1] == "/":
                    chunks.append("/")
                    index += 2
                else:
                    chunks.append(source[index])
                    index += 1
            if index >= n:
                raise QuerySyntaxError("unterminated regex", line, column)
            tokens.append(_Token("regex", "".join(chunks), line, column))
            column += index - pos + 1
            pos = index + 1
            continue
        match = _NUMBER_RE.match(source, pos)
        if match:
            tokens.append(_Token("number", match.group(), line, column))
            column += len(match.group())
            pos = match.end()
            continue
        match = _NAME_RE.match(source, pos)
        if match:
            tokens.append(_Token("name", match.group(), line, column))
            column += len(match.group())
            pos = match.end()
            continue
        for punct in _PUNCT:
            if source.startswith(punct, pos):
                tokens.append(_Token("punct", punct, line, column))
                column += len(punct)
                pos += len(punct)
                break
        else:
            raise QuerySyntaxError(f"unexpected character {ch!r}", line, column)
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, source: str) -> None:
        self._tokens = _tokenize(source)
        self._pos = 0
        self._edge_position = 0
        self._fresh = 0

    # -- token plumbing --------------------------------------------------------

    def _peek(self, offset: int = 0) -> Optional[_Token]:
        index = self._pos + offset
        return self._tokens[index] if index < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QuerySyntaxError("unexpected end of input")
        self._pos += 1
        return token

    def _error(self, message: str) -> QuerySyntaxError:
        token = self._peek()
        if token is None:
            return QuerySyntaxError(f"{message} (at end of input)")
        return QuerySyntaxError(
            f"{message}, found {token.value!r}", token.line, token.column
        )

    def _at_punct(self, value: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "punct" and token.value == value

    def _at_name(self, value: Optional[str] = None) -> bool:
        token = self._peek()
        if token is None or token.kind != "name":
            return False
        return value is None or token.value == value

    def _expect_punct(self, value: str) -> None:
        if not self._at_punct(value):
            raise self._error(f"expected {value!r}")
        self._next()

    def _expect_name(self, value: Optional[str] = None) -> str:
        if not self._at_name(value):
            raise self._error(f"expected {'a name' if value is None else repr(value)}")
        return self._next().value

    def _eat_name(self, value: str) -> bool:
        if self._at_name(value):
            self._next()
            return True
        return False

    # -- program / rule ----------------------------------------------------------

    def parse_program(self) -> Program:
        chained = self._eat_name("chained")
        if chained and not self._at_name("rule"):
            raise self._error("'chained' must be followed by rule blocks")
        if self._at_name("rule"):
            rules = []
            while self._at_name("rule"):
                self._next()
                name = None
                if self._at_name() and not self._at_name("query"):
                    name = self._next().value
                self._expect_punct("{")
                rule = self.parse_rule()
                rule.name = name
                self._expect_punct("}")
                rules.append(rule)
            self._expect_end()
            return Program(rules, unwrap=False, chained=chained)
        rule = self.parse_rule()
        self._expect_end()
        return Program([rule])

    def _expect_end(self) -> None:
        if self._peek() is not None:
            raise self._error("trailing input after program")

    def parse_rule(self) -> Rule:
        queries: list[QueryGraph] = []
        rule_conditions: list[Condition] = []
        while self._at_name("query"):
            graph = self._parse_query()
            queries.append(graph)
        if not queries:
            raise self._error("expected 'query'")
        if self._at_name("where"):  # cross-graph conditions
            self._next()
            rule_conditions.append(self._parse_condition())
        if not self._at_name("construct"):
            raise self._error("expected 'construct'")
        self._next()
        self._expect_punct("{")
        construct = self._parse_cnode()
        self._expect_punct("}")
        return Rule(queries, construct, conditions=rule_conditions)

    # -- query side ---------------------------------------------------------------

    def _parse_query(self) -> QueryGraph:
        self._expect_name("query")
        source = None
        if self._at_name():
            source = self._next().value
        self._expect_punct("{")
        graph = QueryGraph(source=source)
        while not self._at_punct("}") and not self._at_name("where"):
            self._parse_node(graph, parent=None)
        if self._eat_name("where"):
            graph.add_condition(self._parse_condition())
        self._expect_punct("}")
        return graph

    def _generate_id(self, graph: QueryGraph, stem: str) -> str:
        candidate = stem
        while candidate in graph.nodes:
            self._fresh += 1
            candidate = f"{stem}_{self._fresh}"
        return candidate

    def _parse_flags(self) -> dict[str, bool]:
        flags = {"root": False, "deep": False, "not": False, "ord": False}
        while self._at_name() and self._peek().value in flags:
            # 'not'/'deep'/... might legitimately be a tag if followed by
            # something that cannot continue a node; keep it simple: these
            # words are reserved in query bodies.
            flags[self._next().value] = True
        return flags

    def _parse_node(self, graph: QueryGraph, parent: Optional[str]) -> str:
        flags = self._parse_flags()
        token = self._peek()
        if token is None:
            raise self._error("expected an element pattern")
        if self._at_punct("*"):
            self._next()
            tag: Optional[str] = None
        elif token.kind == "name":
            tag = self._next().value
        else:
            raise self._error("expected a tag name or '*'")
        node_id = None
        if self._eat_name("as"):
            node_id = self._expect_name()
        node_id = node_id or self._generate_id(graph, tag or "any")
        graph.add_node(ElementPattern(node_id, tag, anchored=flags["root"]))
        if parent is not None:
            self._edge_position += 1
            graph.add_edge(
                ContainmentEdge(
                    parent, node_id,
                    deep=flags["deep"], ordered=flags["ord"],
                    negated=flags["not"], position=self._edge_position,
                )
            )
        elif flags["deep"] or flags["not"] or flags["ord"]:
            raise self._error("'deep'/'not'/'ord' need a parent element")
        if self._at_punct("{"):
            self._next()
            while not self._at_punct("}"):
                self._parse_item(graph, node_id)
            self._next()
        return node_id

    def _parse_item(self, graph: QueryGraph, parent: str) -> None:
        # `not` may also negate attribute/text circles (crossed value arcs)
        negated_value = False
        if (
            self._at_name("not")
            and self._peek(1) is not None
            and (
                (self._peek(1).kind == "punct" and self._peek(1).value == "@")
                or (self._peek(1).kind == "name" and self._peek(1).value == "text")
            )
        ):
            self._next()
            negated_value = True
        if self._at_punct("@"):
            self._next()
            name = self._expect_name()
            value, pattern = self._parse_constraint()
            node_id = None
            if self._eat_name("as"):
                node_id = self._expect_name()
            node_id = node_id or self._generate_id(graph, f"{parent}_{name}")
            graph.add_node(AttributePattern(node_id, name, value=value, regex=pattern))
            self._edge_position += 1
            graph.add_edge(
                ContainmentEdge(
                    parent, node_id,
                    negated=negated_value, position=self._edge_position,
                )
            )
            return
        if self._at_name("text"):
            self._next()
            value, pattern = self._parse_constraint()
            node_id = None
            if self._eat_name("as"):
                node_id = self._expect_name()
            node_id = node_id or self._generate_id(graph, f"{parent}_text")
            graph.add_node(TextPattern(node_id, value=value, regex=pattern))
            self._edge_position += 1
            graph.add_edge(
                ContainmentEdge(
                    parent, node_id,
                    negated=negated_value, position=self._edge_position,
                )
            )
            return
        if self._at_name("or"):
            self._next()
            self._expect_punct("{")
            alternatives: list[tuple[ContainmentEdge, ...]] = []
            branch = self._parse_or_branch(graph, parent)
            alternatives.append(branch)
            while self._at_punct("|"):
                self._next()
                alternatives.append(self._parse_or_branch(graph, parent))
            self._expect_punct("}")
            graph.add_or_group(OrGroup(tuple(alternatives)))
            return
        self._parse_node(graph, parent)

    def _parse_or_branch(
        self, graph: QueryGraph, parent: str
    ) -> tuple[ContainmentEdge, ...]:
        """One or-branch: nodes are added to the graph, edges collected."""
        edges: list[ContainmentEdge] = []
        while not self._at_punct("|") and not self._at_punct("}"):
            before = len(graph.edges)
            self._parse_node(graph, parent)
            # Move the edges the node added (incl. nested ones) out of the
            # plain edge list: only the top edge belongs to the branch.
            top_edge = graph.edges[before]
            graph.edges.pop(before)
            edges.append(top_edge)
        if not edges:
            raise self._error("empty or-branch")
        return tuple(edges)

    def _parse_constraint(self) -> tuple[Optional[str], Optional[str]]:
        if self._at_punct("="):
            self._next()
            token = self._next()
            if token.kind not in ("string", "number", "name"):
                raise self._error("expected a constant after '='")
            return token.value, None
        if self._at_punct("~"):
            self._next()
            token = self._next()
            if token.kind != "regex":
                raise self._error("expected /regex/ after '~'")
            return None, token.value
        return None, None

    # -- conditions -----------------------------------------------------------------

    def _parse_condition(self) -> Condition:
        left = self._parse_conjunction()
        parts = [left]
        while self._eat_name("or"):
            parts.append(self._parse_conjunction())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def _parse_conjunction(self) -> Condition:
        parts = [self._parse_condition_unit()]
        while self._eat_name("and"):
            parts.append(self._parse_condition_unit())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def _parse_condition_unit(self) -> Condition:
        if self._eat_name("not"):
            return Not(self._parse_condition_unit())
        if self._at_punct("("):
            # Could be a parenthesised condition or a parenthesised operand;
            # conditions always contain a comparison operator at depth 0, so
            # scan ahead.
            if self._paren_holds_condition():
                self._next()
                condition = self._parse_condition()
                self._expect_punct(")")
                return condition
        return self._parse_comparison()

    def _paren_holds_condition(self) -> bool:
        depth = 0
        index = self._pos
        while index < len(self._tokens):
            token = self._tokens[index]
            if token.kind == "punct" and token.value == "(":
                depth += 1
            elif token.kind == "punct" and token.value == ")":
                depth -= 1
                if depth == 0:
                    return False
            elif depth == 1 and (
                (token.kind == "punct" and token.value in _CMP_OPS)
                or (token.kind == "name" and token.value in ("and", "or", "not"))
                or (token.kind == "punct" and token.value == "~")
            ):
                return True
            index += 1
        return False

    def _parse_comparison(self) -> Condition:
        left = self._parse_operand()
        if self._at_punct("~"):
            self._next()
            token = self._next()
            if token.kind != "regex":
                raise self._error("expected /regex/ after '~'")
            return Regex(left, token.value)
        token = self._peek()
        if token is None or token.kind != "punct" or token.value not in _CMP_OPS:
            raise self._error("expected a comparison operator")
        op = self._next().value
        right = self._parse_operand()
        return Comparison(op, left, right)

    def _parse_operand(self) -> Operand:
        left = self._parse_summand()
        while self._at_punct("+") or self._at_punct("-"):
            op = self._next().value
            left = Arith(op, left, self._parse_summand())
        return left

    def _parse_summand(self) -> Operand:
        left = self._parse_factor()
        while self._at_punct("*") or self._at_punct("/"):
            op = self._next().value
            left = Arith(op, left, self._parse_factor())
        return left

    def _parse_factor(self) -> Operand:
        token = self._peek()
        if token is None:
            raise self._error("expected an operand")
        if token.kind == "number":
            self._next()
            return Const(coerce(token.value))
        if token.kind == "string":
            self._next()
            return Const(token.value)
        if self._at_punct("("):
            self._next()
            operand = self._parse_operand()
            self._expect_punct(")")
            return operand
        if token.kind == "name":
            if token.value == "name" and self._peek(1) is not None and (
                self._peek(1).kind == "punct" and self._peek(1).value == "("
            ):
                self._next()
                self._next()
                variable = self._expect_name()
                self._expect_punct(")")
                return NameOf(variable)
            variable = self._next().value
            if self._at_punct("."):
                self._next()
                attribute = self._expect_name()
                return AttributeOf(variable, attribute)
            return ContentOf(variable)
        raise self._error("expected an operand")

    # -- construct side ---------------------------------------------------------------

    def _parse_cnode(self) -> NewElement:
        tag_from = None
        if self._at_punct("$"):
            # `$X` — heterogeneous construction: tag from X's element name
            self._next()
            tag_from = self._expect_name()
            tag = tag_from
        else:
            tag = self._expect_name()
        attributes: list[NewAttribute] = []
        if self._at_punct("("):
            self._next()
            while not self._at_punct(")"):
                name = self._expect_name()
                self._expect_punct("=")
                if self._at_punct("$"):
                    self._next()
                    attributes.append(
                        NewAttribute(name, from_variable=self._expect_name())
                    )
                else:
                    token = self._next()
                    if token.kind not in ("string", "number"):
                        raise self._error("expected a value or $variable")
                    attributes.append(NewAttribute(name, value=token.value))
                if self._at_punct(","):
                    self._next()
            self._next()
        for_each: list[str] = []
        if self._eat_name("for"):
            for_each.append(self._expect_name())
            while self._at_punct(","):
                self._next()
                for_each.append(self._expect_name())
        sort_by = None
        if self._eat_name("sortby"):
            sort_by = self._expect_name()
        children: list[ConstructNode] = []
        if self._at_punct("{"):
            self._next()
            while not self._at_punct("}"):
                children.append(self._parse_citem())
            self._next()
        return NewElement(
            tag, for_each=for_each, attributes=attributes,
            children=children, sort_by=sort_by, tag_from=tag_from,
        )

    def _parse_citem(self) -> ConstructNode:
        token = self._peek()
        if token is None:
            raise self._error("expected a construct item")
        if token.kind == "name" and token.value in ("copy", "collect"):
            kind = self._next().value
            variable = self._expect_name()
            deep = not self._eat_name("shallow")
            return (
                Copy(variable, deep=deep)
                if kind == "copy"
                else Collect(variable, deep=deep)
            )
        if token.kind == "name" and token.value == "text":
            self._next()
            literal = self._next()
            if literal.kind != "string":
                raise self._error("expected a string after 'text'")
            return TextLiteral(literal.value)
        if token.kind == "name" and token.value == "value":
            self._next()
            return TextFrom(self._expect_name())
        if token.kind == "name" and token.value == "group":
            self._next()
            variables = [self._expect_name()]
            while self._at_punct(","):
                self._next()
                variables.append(self._expect_name())
            self._expect_punct("{")
            children = []
            while not self._at_punct("}"):
                children.append(self._parse_citem())
            self._next()
            return GroupBy(variables, children)
        if (
            token.kind == "name"
            and token.value in _AGGREGATES
            and self._peek(1) is not None
            and self._peek(1).kind == "punct"
            and self._peek(1).value == "("
        ):
            function = self._next().value
            self._next()
            variable = self._expect_name()
            self._expect_punct(")")
            return Aggregate(function, variable)
        return self._parse_cnode()


def parse_rule(source: str) -> Rule:
    """Parse one rule (``query ... construct ...``)."""
    parser = _Parser(source)
    rule = parser.parse_rule()
    parser._expect_end()
    return rule


def parse_program(source: str) -> Program:
    """Parse a program: one bare rule, or several ``rule { ... }`` blocks."""
    return _Parser(source).parse_program()


def parse_condition(source: str) -> Condition:
    """Parse a standalone condition (the ``where`` grammar).

    Accepts what ``str(condition)`` produces for the condition AST, so
    conditions round-trip through text (used by diagram persistence).
    """
    parser = _Parser(source)
    condition = parser._parse_condition()
    parser._expect_end()
    return condition
