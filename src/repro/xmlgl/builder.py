"""Fluent programmatic builders for XML-GL rules.

The visual editor (``repro.visual.editor``) compiles drawings into the same
AST; this module is the ergonomic code-level way to assemble queries:

    q = QueryBuilder()
    book = q.box("book", id="B", parent=q.box("bib", anchored=True))
    q.attribute(book, "year", id="Y")
    title = q.box("title", parent=book)
    q.text(title, id="T")
    q.where(cmp(">=", attr("B", "year"), 1995))
    rule = Rule([q.graph()], elem("result", collect("B")))

Condition helpers (:func:`cmp`, :func:`attr`, :func:`content`, ...) build
:mod:`repro.engine.conditions` trees; construct helpers (:func:`elem`,
:func:`copy_of`, :func:`collect`, ...) build construct nodes.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..engine.conditions import (
    And,
    Arith,
    AttributeOf,
    Comparison,
    Condition,
    Const,
    ContentOf,
    NameOf,
    Not,
    Operand,
    Or,
    Regex,
)
from .ast import (
    AttributePattern,
    ContainmentEdge,
    ElementPattern,
    OrGroup,
    QueryGraph,
    TextPattern,
)
from .construct import (
    Aggregate,
    Collect,
    ConstructNode,
    Copy,
    GroupBy,
    NewAttribute,
    NewElement,
    TextFrom,
    TextLiteral,
)

__all__ = [
    "QueryBuilder",
    "cmp", "attr", "content", "name_of", "lit", "arith", "regex",
    "and_", "or_", "not_",
    "elem", "text", "value_of", "copy_of", "collect", "group", "aggregate",
    "attribute_const", "attribute_from",
]


class QueryBuilder:
    """Incremental construction of one extract graph."""

    def __init__(self, source: Optional[str] = None) -> None:
        self._graph = QueryGraph(source=source)
        self._fresh = 0
        self._edge_position = 0

    # -- nodes ----------------------------------------------------------------

    def _generate_id(self, stem: str) -> str:
        candidate = stem
        while candidate in self._graph.nodes:
            self._fresh += 1
            candidate = f"{stem}_{self._fresh}"
        return candidate

    def box(
        self,
        tag: Optional[str],
        id: Optional[str] = None,
        parent: Optional[str] = None,
        anchored: bool = False,
        deep: bool = False,
        ordered: bool = False,
    ) -> str:
        """Add an element box; returns its id.

        With ``parent`` given, also draws the containment arc (``deep`` /
        ``ordered`` flag the arc).
        """
        node_id = id or self._generate_id(tag or "any")
        self._graph.add_node(ElementPattern(node_id, tag, anchored=anchored))
        if parent is not None:
            self.contains(parent, node_id, deep=deep, ordered=ordered)
        return node_id

    def text(
        self,
        parent: str,
        id: Optional[str] = None,
        value: Optional[str] = None,
        regex: Optional[str] = None,
    ) -> str:
        """Add a hollow text circle under ``parent``; returns its id."""
        node_id = id or self._generate_id(f"{parent}_text")
        self._graph.add_node(TextPattern(node_id, value=value, regex=regex))
        self.contains(parent, node_id)
        return node_id

    def attribute(
        self,
        parent: str,
        name: str,
        id: Optional[str] = None,
        value: Optional[str] = None,
        regex: Optional[str] = None,
    ) -> str:
        """Add a filled attribute circle under ``parent``; returns its id."""
        node_id = id or self._generate_id(f"{parent}_{name}")
        self._graph.add_node(AttributePattern(node_id, name, value=value, regex=regex))
        self.contains(parent, node_id)
        return node_id

    # -- edges ----------------------------------------------------------------

    def contains(
        self,
        parent: str,
        child: str,
        deep: bool = False,
        ordered: bool = False,
        negated: bool = False,
    ) -> ContainmentEdge:
        """Draw a containment arc between two existing nodes."""
        self._edge_position += 1
        return self._graph.add_edge(
            ContainmentEdge(
                parent, child,
                deep=deep, ordered=ordered, negated=negated,
                position=self._edge_position,
            )
        )

    def negate(self, parent: str, child: str, deep: bool = False) -> ContainmentEdge:
        """Draw a crossed-out arc (the parent must not contain the child)."""
        return self.contains(parent, child, deep=deep, negated=True)

    def either(self, *branches: Sequence[ContainmentEdge]) -> OrGroup:
        """Add an or-arc over alternative edge tuples.

        Build each branch's edges with :meth:`detached_edge` so they are not
        also plain edges of the graph.
        """
        return self._graph.add_or_group(
            OrGroup(tuple(tuple(branch) for branch in branches))
        )

    def detached_edge(
        self,
        parent: str,
        child: str,
        deep: bool = False,
        ordered: bool = False,
    ) -> ContainmentEdge:
        """An edge object for or-group branches (not added to the graph)."""
        self._edge_position += 1
        return ContainmentEdge(
            parent, child, deep=deep, ordered=ordered, position=self._edge_position
        )

    # -- conditions & result ----------------------------------------------------

    def where(self, condition: Condition) -> "QueryBuilder":
        """Attach a predicate annotation."""
        self._graph.add_condition(condition)
        return self

    def graph(self) -> QueryGraph:
        """The (validated) graph built so far."""
        self._graph.validate()
        return self._graph


# ---------------------------------------------------------------------------
# Condition helpers
# ---------------------------------------------------------------------------

OperandLike = Union[Operand, str, int, float, bool]


def _operand(value: OperandLike) -> Operand:
    """Interpret shorthand: strings starting with ``$`` are variable refs."""
    if isinstance(value, (Const, ContentOf, AttributeOf, NameOf, Arith)):
        return value
    if isinstance(value, str) and value.startswith("$"):
        return ContentOf(value[1:])
    return Const(value)


def lit(value) -> Const:
    """A literal operand."""
    return Const(value)


def content(variable: str) -> ContentOf:
    """Text content of the node bound to ``variable``."""
    return ContentOf(variable)


def attr(variable: str, name: str) -> AttributeOf:
    """Attribute ``name`` of the node bound to ``variable``."""
    return AttributeOf(variable, name)


def name_of(variable: str) -> NameOf:
    """Tag name of the node bound to ``variable``."""
    return NameOf(variable)


def arith(op: str, left: OperandLike, right: OperandLike) -> Arith:
    """Arithmetic operand."""
    return Arith(op, _operand(left), _operand(right))


def cmp(op: str, left: OperandLike, right: OperandLike) -> Comparison:
    """Comparison condition, e.g. ``cmp("<", attr("B", "price"), 50)``."""
    return Comparison(op, _operand(left), _operand(right))


def regex(operand: OperandLike, pattern: str) -> Regex:
    """Regular-expression condition (full match)."""
    return Regex(_operand(operand), pattern)


def and_(*conditions: Condition) -> And:
    """Conjunction."""
    return And(tuple(conditions))


def or_(*conditions: Condition) -> Or:
    """Disjunction."""
    return Or(tuple(conditions))


def not_(condition: Condition) -> Not:
    """Negation."""
    return Not(condition)


# ---------------------------------------------------------------------------
# Construct helpers
# ---------------------------------------------------------------------------

def elem(
    tag: str,
    *children: ConstructNode,
    for_each: Optional[Sequence[str]] = None,
    attrs: Optional[Sequence[NewAttribute]] = None,
    sort_by: Optional[str] = None,
    tag_from: Optional[str] = None,
) -> NewElement:
    """A plain construct box (``tag_from`` takes the tag from a binding)."""
    return NewElement(
        tag,
        for_each=list(for_each or []),
        attributes=list(attrs or []),
        children=list(children),
        sort_by=sort_by,
        tag_from=tag_from,
    )


def text(literal: str) -> TextLiteral:
    """A constant text child."""
    return TextLiteral(literal)


def value_of(variable: str) -> TextFrom:
    """A text child carrying the bound node's content."""
    return TextFrom(variable)


def copy_of(variable: str, deep: bool = True) -> Copy:
    """Copy the bound element (starred arc = deep)."""
    return Copy(variable, deep=deep)


def collect(variable: str, deep: bool = True) -> Collect:
    """The triangle: all matched elements."""
    return Collect(variable, deep=deep)


def group(group_on: Sequence[str], *children: ConstructNode) -> GroupBy:
    """The list icon: children spliced once per group."""
    return GroupBy(list(group_on), list(children))


def aggregate(function: str, variable: str) -> Aggregate:
    """COUNT/SUM/MIN/MAX/AVG over the context."""
    return Aggregate(function, variable)


def attribute_const(name: str, value: str) -> NewAttribute:
    """A constructed constant attribute."""
    return NewAttribute(name, value=value)


def attribute_from(name: str, variable: str) -> NewAttribute:
    """A constructed attribute taking the bound node's content."""
    return NewAttribute(name, from_variable=variable)
