"""XML-GL rules and programs.

A *rule* is one drawn query: the extract graphs on the left (one per source
document), the construct graph on the right, separated by the vertical
line, plus any cross-graph predicate annotations (these express joins over
multiple documents).  A *program* is a set of rules whose results are
unioned under a common root — that is how the paper composes "complex
programs [...] of various rules".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..engine.conditions import Condition
from ..errors import QueryStructureError
from .ast import QueryGraph
from .construct import NewElement

__all__ = ["Rule", "Program"]


@dataclass
class Rule:
    """One extract ∥ construct pair.

    Attributes:
        queries: the extract graphs, one per queried document.
        construct: the construct tree (its root builds the result element).
        conditions: cross-graph predicates evaluated on the joined bindings
            (per-graph predicates live on the graphs themselves).
        name: optional label, used in diagrams and reports.
    """

    queries: list[QueryGraph]
    construct: NewElement
    conditions: list[Condition] = field(default_factory=list)
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.queries:
            raise QueryStructureError("a rule needs at least one extract graph")
        seen: set[str] = set()
        for graph in self.queries:
            overlap = seen & set(graph.nodes)
            if overlap:
                raise QueryStructureError(
                    f"node ids shared across extract graphs: {sorted(overlap)}"
                )
            seen |= set(graph.nodes)

    def validate(self) -> None:
        """Validate every extract graph (construct checked during build)."""
        for graph in self.queries:
            graph.validate()


@dataclass
class Program:
    """A set of rules evaluated over the same document collection.

    ``result_tag`` names the root element wrapping the union of all rule
    results (each rule contributes its constructed root element in order).
    A single-rule program with ``unwrap=True`` (the default) returns the
    rule's own constructed root unwrapped, matching how single queries are
    presented in the paper's figures.

    With ``chained=True`` each named rule's result document becomes an
    additional source for the rules after it (under the rule's name) —
    materialised views, the XML-GL counterpart of G-Log rule chaining.
    Chained rules run strictly in list order; forward references are
    unknown-source errors.
    """

    rules: list[Rule]
    result_tag: str = "result"
    unwrap: bool = True
    chained: bool = False

    def __post_init__(self) -> None:
        if not self.rules:
            raise QueryStructureError("a program needs at least one rule")
        if self.chained:
            names = [r.name for r in self.rules if r.name]
            if len(names) != len(set(names)):
                raise QueryStructureError(
                    "chained programs need distinct rule names"
                )
