"""Checking XML-GL queries against XML-GL schemas (back-compat wrapper).

The implementation moved to :mod:`repro.analysis.xmlgl_schema`, where the
checks report structured :class:`~repro.analysis.Diagnostic` objects with
stable ``XGS`` codes and node/edge anchors, and run as a registered pass
of the static-analysis subsystem (``repro lint --schema ...``).

This module keeps the original string-returning entry point for existing
callers: each diagnostic is rendered back to a human-readable warning
line (edge-anchored findings regain their ``arc 'P'->'C':`` prefix), and
repeated findings — e.g. one starred arc duplicated across or-group
branches — are reported once.

.. deprecated::
    The wrapper is deprecated; calling it emits a
    :class:`DeprecationWarning`.  Use
    :func:`repro.analysis.xmlgl_schema.schema_diagnostics` (structured
    diagnostics) or :func:`repro.analysis.analyze_rule` with a schema
    context instead.
"""

from __future__ import annotations

import warnings

from .ast import QueryGraph
from .schema import SchemaGraph

__all__ = ["check_query_against_schema"]


def check_query_against_schema(
    graph: QueryGraph, schema: SchemaGraph
) -> list[str]:
    """Warnings for query parts no schema-valid document can satisfy.

    Deprecated thin wrapper over
    :func:`repro.analysis.xmlgl_schema.schema_diagnostics`; use that
    directly — it reports structured diagnostics with stable codes
    instead of flat strings.
    """
    warnings.warn(
        "check_query_against_schema is deprecated; use "
        "repro.analysis.xmlgl_schema.schema_diagnostics (structured "
        "diagnostics with stable XGS codes) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..analysis.xmlgl_schema import schema_diagnostics

    lines: list[str] = []
    for diagnostic in schema_diagnostics(graph, schema):
        if diagnostic.edge is not None:
            source, target = diagnostic.edge
            lines.append(f"arc {source!r}->{target!r}: {diagnostic.message}")
        else:
            lines.append(diagnostic.message)
    return lines
