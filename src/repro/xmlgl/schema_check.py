"""Checking XML-GL queries against XML-GL schemas.

XML-GL is schema-*optional*: queries run on raw XML.  But when a schema
graph is available (drawn in XML-GL itself or translated from a DTD), an
editor can warn about queries that **cannot match any valid document** —
the assistance the schema-driven systems of the era (BBQ, WG-Log) offer.
This module implements that static check:

* a box whose tag is not declared in the schema,
* a containment arc ``parent → child`` with no corresponding schema edge
  (for starred arcs: no schema *path* from parent to child),
* an attribute circle naming an undeclared attribute, or a value
  constraint outside a declared enumeration / fixed value,
* a text circle under an element the schema gives no PCDATA.

Each problem is reported as a human-readable warning; an empty list means
the query is *satisfiable with respect to the schema* (not that it will
match a given document).  Wildcard boxes are never warned about.
"""

from __future__ import annotations

from collections import deque

from .ast import (
    AttributePattern,
    ContainmentEdge,
    ElementPattern,
    QueryGraph,
    TextPattern,
)
from .schema import SchemaAttribute, SchemaElement, SchemaGraph

__all__ = ["check_query_against_schema"]


def check_query_against_schema(
    graph: QueryGraph, schema: SchemaGraph
) -> list[str]:
    """Warnings for query parts no schema-valid document can satisfy."""
    schema.check()
    warnings: list[str] = []
    declared = {
        node.tag
        for node in schema.nodes.values()
        if isinstance(node, SchemaElement)
    }

    for node in graph.nodes.values():
        if isinstance(node, ElementPattern):
            if node.tag is not None and node.tag not in declared:
                warnings.append(
                    f"box {node.id!r}: element <{node.tag}> is not declared "
                    "in the schema"
                )
            if node.anchored and node.tag is not None and node.tag != schema.root:
                warnings.append(
                    f"box {node.id!r}: anchored to <{node.tag}> but the "
                    f"schema root is <{schema.root}>"
                )

    for edge in graph.all_edges():
        parent = graph.nodes[edge.parent]
        child = graph.nodes[edge.child]
        if not isinstance(parent, ElementPattern) or parent.tag is None:
            continue
        if parent.tag not in declared:
            continue  # already warned above
        if isinstance(child, AttributePattern):
            _check_attribute(parent.tag, child, edge, schema, warnings)
        elif isinstance(child, TextPattern):
            if not schema.allows_text(parent.tag):
                warnings.append(
                    f"text circle {child.id!r}: <{parent.tag}> has no PCDATA "
                    "in the schema"
                )
        elif isinstance(child, ElementPattern) and child.tag is not None:
            if child.tag not in declared:
                continue
            if edge.deep:
                if not _schema_reachable(schema, parent.tag, child.tag):
                    warnings.append(
                        f"starred arc {edge.parent!r}->{edge.child!r}: no "
                        f"containment path from <{parent.tag}> to "
                        f"<{child.tag}> in the schema"
                    )
            else:
                allowed = {
                    schema.nodes[e.child_id].tag  # type: ignore[union-attr]
                    for e in schema.element_edges(parent.tag)
                }
                if child.tag not in allowed:
                    warnings.append(
                        f"arc {edge.parent!r}->{edge.child!r}: <{child.tag}> "
                        f"is not a declared child of <{parent.tag}>"
                    )
    return warnings


def _check_attribute(
    parent_tag: str,
    pattern: AttributePattern,
    edge: ContainmentEdge,
    schema: SchemaGraph,
    warnings: list[str],
) -> None:
    declared: dict[str, SchemaAttribute] = {
        a.name: a for a in schema.attribute_nodes(parent_tag)
    }
    attribute = declared.get(pattern.name)
    if attribute is None:
        warnings.append(
            f"attribute circle {pattern.id!r}: <{parent_tag}> has no "
            f"attribute {pattern.name!r} in the schema"
        )
        return
    if pattern.value is not None:
        if attribute.values and pattern.value not in attribute.values:
            warnings.append(
                f"attribute circle {pattern.id!r}: value {pattern.value!r} "
                f"is outside the declared enumeration {attribute.values}"
            )
        if attribute.fixed is not None and pattern.value != attribute.fixed:
            warnings.append(
                f"attribute circle {pattern.id!r}: value {pattern.value!r} "
                f"differs from the fixed value {attribute.fixed!r}"
            )


def _schema_reachable(schema: SchemaGraph, source: str, target: str) -> bool:
    """Is there a (non-empty) containment path source → target?"""
    seen: set[str] = set()
    queue: deque[str] = deque([source])
    while queue:
        tag = queue.popleft()
        for edge in schema.element_edges(tag):
            child = schema.nodes[edge.child_id]
            assert isinstance(child, SchemaElement)
            if child.tag == target:
                return True
            if child.tag not in seen:
                seen.add(child.tag)
                queue.append(child.tag)
    return False
