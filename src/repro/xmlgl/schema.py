"""XML-GL graphs as a schema formalism.

The paper's second use of the query-graph vocabulary is *schema
definition*: an XML-GL graph enriched with multiplicity labels on its
edges (as in ER diagrams) and xor-arcs over alternatives describes a class
of valid documents, with "more expressive power than the DTD formalism"
(unordered content, arbitrary multiplicities) though without a primitive
type system.

This module implements

* the schema AST: :class:`SchemaGraph` with element / text / attribute
  nodes, multiplicity-labelled edges and xor-arcs,
* instance validation (:meth:`SchemaGraph.validate`),
* the DTD ⇄ XML-GL translation the paper illustrates with the BOOK DTD
  figure (:func:`dtd_to_schema`, :func:`schema_to_dtd`).

The DTD→schema direction is *approximating* for deeply nested content
particles (e.g. ``((a, b)+ | c)``): group structure beyond one level is
flattened to per-name multiplicities.  Every approximation is reported in
the returned ``notes`` so callers can tell exact from widened schemas —
this mirrors the paper's observation that the two formalisms are
incomparable in expressiveness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..errors import SchemaError
from ..ssd.dtd import (
    AttDefault,
    ChoiceParticle,
    ContentKind,
    ContentParticle,
    Dtd,
    ElementDecl,
    NameParticle,
    Repetition,
    SequenceParticle,
)
from ..ssd.model import Document, Element, Text

__all__ = [
    "SchemaElement",
    "SchemaText",
    "SchemaAttribute",
    "SchemaEdge",
    "XorArc",
    "SchemaGraph",
    "dtd_to_schema",
    "schema_to_dtd",
]


@dataclass(frozen=True)
class SchemaElement:
    """A schema box: one element type."""

    tag: str


@dataclass(frozen=True)
class SchemaText:
    """The hollow circle: PCDATA content of the parent."""

    id: str = "text"


@dataclass(frozen=True)
class SchemaAttribute:
    """A filled circle: an attribute of the parent.

    ``values`` restricts the attribute to an enumeration when non-empty;
    ``fixed`` pins it to one literal.
    """

    name: str
    required: bool = False
    values: tuple[str, ...] = ()
    fixed: Optional[str] = None


SchemaNodeKind = Union[SchemaElement, SchemaText, SchemaAttribute]


@dataclass(frozen=True)
class SchemaEdge:
    """A containment edge with a multiplicity label.

    ``min``/``max`` bound the number of child occurrences per parent
    instance (``max=None`` = unbounded).  ``ordered`` marks edges whose
    relative ``position`` constrains document order (the short-stroke
    annotation); unordered is the XML-GL default the paper highlights
    against DTDs.
    """

    parent: str          # parent element tag
    child_id: str        # child node id in the schema graph
    min: int = 1
    max: Optional[int] = 1
    ordered: bool = False
    position: int = 0

    def multiplicity(self) -> str:
        upper = "*" if self.max is None else str(self.max)
        return f"{self.min}..{upper}"


@dataclass(frozen=True)
class XorArc:
    """An xor-arc across edges of one parent: branches are exclusive.

    Each branch is a tuple of child-node ids; a valid instance uses
    children from at most one branch (exactly one when ``required``).
    """

    parent: str
    branches: tuple[tuple[str, ...], ...]
    required: bool = False


@dataclass
class SchemaGraph:
    """An XML-GL schema: nodes, multiplicity edges, xor-arcs, root tag."""

    root: str
    nodes: dict[str, SchemaNodeKind] = field(default_factory=dict)
    edges: list[SchemaEdge] = field(default_factory=list)
    xor_arcs: list[XorArc] = field(default_factory=list)

    # -- construction -----------------------------------------------------------

    def add_element(self, tag: str) -> str:
        """Declare an element type (id = tag); idempotent."""
        if tag not in self.nodes:
            self.nodes[tag] = SchemaElement(tag)
        elif not isinstance(self.nodes[tag], SchemaElement):
            raise SchemaError(f"node id {tag!r} already used by a non-element")
        return tag

    def add_text(self, parent: str, min: int = 0) -> str:
        """Allow PCDATA under ``parent``."""
        node_id = f"{parent}#text"
        self.nodes[node_id] = SchemaText(node_id)
        self.edges.append(SchemaEdge(parent, node_id, min=min, max=None))
        return node_id

    def add_attribute(
        self,
        parent: str,
        name: str,
        required: bool = False,
        values: tuple[str, ...] = (),
        fixed: Optional[str] = None,
    ) -> str:
        """Declare attribute ``name`` on ``parent``."""
        node_id = f"{parent}@{name}"
        self.nodes[node_id] = SchemaAttribute(name, required, values, fixed)
        self.edges.append(
            SchemaEdge(parent, node_id, min=1 if required else 0, max=1)
        )
        return node_id

    def contain(
        self,
        parent: str,
        child: str,
        min: int = 1,
        max: Optional[int] = 1,
        ordered: bool = False,
        position: int = 0,
    ) -> SchemaEdge:
        """Add a multiplicity-labelled containment edge between elements."""
        if parent not in self.nodes or not isinstance(self.nodes[parent], SchemaElement):
            raise SchemaError(f"unknown parent element {parent!r}")
        if child not in self.nodes:
            raise SchemaError(f"unknown child node {child!r}")
        edge = SchemaEdge(parent, child, min=min, max=max, ordered=ordered, position=position)
        self.edges.append(edge)
        return edge

    def xor(self, parent: str, *branches: tuple[str, ...], required: bool = False) -> XorArc:
        """Add an xor-arc across edges of ``parent``."""
        arc = XorArc(parent, tuple(tuple(b) for b in branches), required=required)
        self.xor_arcs.append(arc)
        return arc

    # -- accessors -------------------------------------------------------------

    def element_edges(self, parent: str) -> list[SchemaEdge]:
        """Containment edges from ``parent`` to child elements, by position."""
        return sorted(
            (
                e
                for e in self.edges
                if e.parent == parent and isinstance(self.nodes[e.child_id], SchemaElement)
            ),
            key=lambda e: e.position,
        )

    def attribute_nodes(self, parent: str) -> list[SchemaAttribute]:
        """Attribute declarations of ``parent``."""
        return [
            self.nodes[e.child_id]
            for e in self.edges
            if e.parent == parent and isinstance(self.nodes[e.child_id], SchemaAttribute)
        ]

    def allows_text(self, parent: str) -> bool:
        """True when PCDATA is allowed under ``parent``."""
        return any(
            e.parent == parent and isinstance(self.nodes[e.child_id], SchemaText)
            for e in self.edges
        )

    # -- validation ----------------------------------------------------------------

    def check(self) -> None:
        """Well-formedness of the schema itself."""
        if self.root not in self.nodes or not isinstance(
            self.nodes[self.root], SchemaElement
        ):
            raise SchemaError(f"schema root {self.root!r} is not a declared element")
        for edge in self.edges:
            if edge.parent not in self.nodes:
                raise SchemaError(f"edge parent {edge.parent!r} undeclared")
            if edge.child_id not in self.nodes:
                raise SchemaError(f"edge child {edge.child_id!r} undeclared")
            if edge.max is not None and edge.max < edge.min:
                raise SchemaError(f"edge {edge.parent}->{edge.child_id}: max < min")
        for arc in self.xor_arcs:
            edge_children = {e.child_id for e in self.edges if e.parent == arc.parent}
            for branch in arc.branches:
                for child_id in branch:
                    if child_id not in edge_children:
                        raise SchemaError(
                            f"xor branch member {child_id!r} has no edge from {arc.parent!r}"
                        )

    def validate(self, document: Document) -> list[str]:
        """Validate an instance document; returns violation messages."""
        self.check()
        violations: list[str] = []
        root = document.root
        if root is None:
            return ["document has no root element"]
        if root.tag != self.root:
            violations.append(
                f"root element <{root.tag}> does not match schema root <{self.root}>"
            )
            return violations
        self._validate_element(root, violations)
        return violations

    def _validate_element(self, element: Element, violations: list[str]) -> None:
        if element.tag not in self.nodes:
            violations.append(f"undeclared element <{element.tag}>")
            return
        self._check_attributes(element, violations)
        self._check_children(element, violations)
        for child in element.child_elements():
            self._validate_element(child, violations)

    def _check_attributes(self, element: Element, violations: list[str]) -> None:
        declared = {a.name: a for a in self.attribute_nodes(element.tag)}
        for name in element.attributes:
            if name not in declared:
                violations.append(
                    f"undeclared attribute {name!r} on <{element.tag}>"
                )
        for att in declared.values():
            value = element.get(att.name)
            if value is None:
                if att.required:
                    violations.append(
                        f"missing required attribute {att.name!r} on <{element.tag}>"
                    )
                continue
            if att.values and value not in att.values:
                violations.append(
                    f"attribute {att.name!r} on <{element.tag}> must be one of "
                    f"{att.values}, got {value!r}"
                )
            if att.fixed is not None and value != att.fixed:
                violations.append(
                    f"attribute {att.name!r} on <{element.tag}> is fixed to "
                    f"{att.fixed!r}"
                )

    def _check_children(self, element: Element, violations: list[str]) -> None:
        edges = self.element_edges(element.tag)
        by_tag: dict[str, SchemaEdge] = {}
        for edge in edges:
            node = self.nodes[edge.child_id]
            assert isinstance(node, SchemaElement)
            by_tag[node.tag] = edge

        counts: dict[str, int] = {}
        for child in element.child_elements():
            counts[child.tag] = counts.get(child.tag, 0) + 1
            if child.tag not in by_tag:
                violations.append(
                    f"<{child.tag}> not allowed under <{element.tag}>"
                )

        has_text = any(
            isinstance(c, Text) and c.data.strip() for c in element.children
        )
        if has_text and not self.allows_text(element.tag):
            violations.append(f"text content not allowed under <{element.tag}>")

        for tag, edge in by_tag.items():
            count = counts.get(tag, 0)
            if count < edge.min:
                violations.append(
                    f"<{element.tag}> needs at least {edge.min} <{tag}> "
                    f"children, found {count}"
                )
            if edge.max is not None and count > edge.max:
                violations.append(
                    f"<{element.tag}> allows at most {edge.max} <{tag}> "
                    f"children, found {count}"
                )

        self._check_order(element, violations)
        self._check_xor(element, counts, has_text, violations)

    def _check_order(self, element: Element, violations: list[str]) -> None:
        ordered_edges = [
            e for e in self.element_edges(element.tag) if e.ordered
        ]
        if len(ordered_edges) < 2:
            return
        rank: dict[str, int] = {}
        for order_index, edge in enumerate(ordered_edges):
            node = self.nodes[edge.child_id]
            assert isinstance(node, SchemaElement)
            rank[node.tag] = order_index
        last_rank = -1
        for child in element.child_elements():
            child_rank = rank.get(child.tag)
            if child_rank is None:
                continue  # unordered sibling type interleaves freely
            if child_rank < last_rank:
                violations.append(
                    f"<{child.tag}> out of order under <{element.tag}>"
                )
                return
            last_rank = child_rank

    def _check_xor(
        self,
        element: Element,
        counts: dict[str, int],
        has_text: bool,
        violations: list[str],
    ) -> None:
        for arc in self.xor_arcs:
            if arc.parent != element.tag:
                continue
            used = 0
            for branch in arc.branches:
                branch_used = False
                for child_id in branch:
                    node = self.nodes[child_id]
                    if isinstance(node, SchemaElement) and counts.get(node.tag, 0):
                        branch_used = True
                    if isinstance(node, SchemaText) and has_text:
                        branch_used = True
                if branch_used:
                    used += 1
            if used > 1:
                violations.append(
                    f"<{element.tag}>: xor branches used together"
                )
            if used == 0 and arc.required:
                violations.append(
                    f"<{element.tag}>: one xor branch is required"
                )

    def describe(self) -> str:
        """Compact textual rendering of the schema graph."""
        lines = [f"root {self.root}"]
        for edge in self.edges:
            node = self.nodes[edge.child_id]
            if isinstance(node, SchemaElement):
                flag = " ordered" if edge.ordered else ""
                lines.append(
                    f"{edge.parent} -> {node.tag} [{edge.multiplicity()}]{flag}"
                )
            elif isinstance(node, SchemaAttribute):
                need = " required" if node.required else ""
                lines.append(f"{edge.parent} @{node.name}{need}")
            else:
                lines.append(f"{edge.parent} #text")
        for arc in self.xor_arcs:
            branches = " xor ".join("|".join(b) for b in arc.branches)
            lines.append(f"{arc.parent}: {branches}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# DTD -> XML-GL schema
# ---------------------------------------------------------------------------

_REP_BOUNDS = {
    Repetition.ONE: (1, 1),
    Repetition.OPTIONAL: (0, 1),
    Repetition.STAR: (0, None),
    Repetition.PLUS: (1, None),
}


def dtd_to_schema(dtd: Dtd, root: str) -> tuple[SchemaGraph, list[str]]:
    """Translate a DTD into an XML-GL schema graph.

    Returns ``(schema, notes)`` where ``notes`` documents every widening
    applied to content models the edge/multiplicity vocabulary cannot
    express exactly (nested groups).
    """
    if root not in dtd.elements:
        raise SchemaError(f"DTD does not declare the requested root {root!r}")
    schema = SchemaGraph(root=root)
    notes: list[str] = []
    for decl in dtd.elements.values():
        schema.add_element(decl.name)
    for decl in dtd.elements.values():
        _translate_content(schema, decl, notes)
        for att in decl.attributes.values():
            schema.add_attribute(
                decl.name,
                att.name,
                required=att.default is AttDefault.REQUIRED,
                values=att.enumeration,
                fixed=att.value if att.default is AttDefault.FIXED else None,
            )
    schema.check()
    return schema, notes


def _translate_content(schema: SchemaGraph, decl: ElementDecl, notes: list[str]) -> None:
    model = decl.content
    if model.kind is ContentKind.EMPTY:
        return
    if model.kind is ContentKind.ANY:
        notes.append(f"<{decl.name}>: ANY content kept as 'any child declared in DTD'")
        for position, other in enumerate(schema.nodes):
            node = schema.nodes[other]
            if isinstance(node, SchemaElement):
                schema.contain(decl.name, other, min=0, max=None, position=position)
        schema.add_text(decl.name)
        return
    if model.kind is ContentKind.MIXED:
        schema.add_text(decl.name)
        branch_text = (f"{decl.name}#text",)
        element_ids = []
        for position, tag in enumerate(model.mixed_names):
            schema.add_element(tag)
            schema.contain(decl.name, tag, min=0, max=None, position=position)
            element_ids.append(tag)
        if element_ids:
            # mixed content: text freely interleaves; no xor needed
            pass
        return
    assert model.particle is not None
    _translate_particle(schema, decl.name, model.particle, notes)


def _translate_particle(
    schema: SchemaGraph,
    parent: str,
    particle: ContentParticle,
    notes: list[str],
) -> None:
    if isinstance(particle, NameParticle):
        low, high = _REP_BOUNDS[particle.repetition]
        schema.contain(parent, particle.name, min=low, max=high)
        return
    if isinstance(particle, SequenceParticle):
        group_low, group_high = _REP_BOUNDS[particle.repetition]
        exact = all(isinstance(item, NameParticle) for item in particle.items)
        if exact and group_low == 1 and group_high == 1:
            for position, item in enumerate(particle.items):
                assert isinstance(item, NameParticle)
                low, high = _REP_BOUNDS[item.repetition]
                schema.contain(
                    parent, item.name, min=low, max=high,
                    ordered=True, position=position,
                )
            return
        notes.append(
            f"<{parent}>: nested/repeated group {particle} widened to "
            "per-name multiplicities"
        )
        for position, item in enumerate(particle.items):
            _translate_widened(schema, parent, item, group_low, group_high, position, notes)
        return
    assert isinstance(particle, ChoiceParticle)
    group_low, group_high = _REP_BOUNDS[particle.repetition]
    simple = all(isinstance(item, NameParticle) for item in particle.items)
    if simple and group_high == 1:
        branches = []
        for position, item in enumerate(particle.items):
            assert isinstance(item, NameParticle)
            low, high = _REP_BOUNDS[item.repetition]
            schema.contain(parent, item.name, min=0, max=high, position=position)
            branches.append((item.name,))
        schema.xor(parent, *branches, required=group_low >= 1)
        return
    notes.append(
        f"<{parent}>: complex choice {particle} widened to optional children"
    )
    for position, item in enumerate(particle.items):
        _translate_widened(schema, parent, item, 0, group_high, position, notes)


def _translate_widened(
    schema: SchemaGraph,
    parent: str,
    particle: ContentParticle,
    group_low: int,
    group_high: Optional[int],
    position: int,
    notes: list[str],
) -> None:
    """Widen a nested particle to per-name bounds."""
    if isinstance(particle, NameParticle):
        low, high = _REP_BOUNDS[particle.repetition]
        low = min(low, group_low) if group_low == 0 else low
        if group_high is None:
            high = None
        elif high is not None:
            high = high * group_high
        if group_low == 0:
            low = 0
        schema.contain(parent, particle.name, min=low, max=high, position=position)
        return
    for sub_position, item in enumerate(particle.items):
        _translate_widened(
            schema, parent, item,
            0 if group_low == 0 or particle.repetition in (Repetition.OPTIONAL, Repetition.STAR) else group_low,
            None if group_high is None or particle.repetition in (Repetition.STAR, Repetition.PLUS) else group_high,
            position * 100 + sub_position,
            notes,
        )


# ---------------------------------------------------------------------------
# XML-GL schema -> DTD
# ---------------------------------------------------------------------------

def schema_to_dtd(schema: SchemaGraph) -> tuple[str, list[str]]:
    """Render a schema back to DTD text.

    Returns ``(dtd_text, notes)``; unordered content and arbitrary
    multiplicities are approximated (noted), since DTDs cannot express
    them — the direction of expressiveness the paper points out.
    """
    schema.check()
    notes: list[str] = []
    lines: list[str] = []
    element_tags = [
        node.tag for node in schema.nodes.values() if isinstance(node, SchemaElement)
    ]
    for tag in element_tags:
        edges = schema.element_edges(tag)
        allows_text = schema.allows_text(tag)
        if not edges and not allows_text:
            lines.append(f"<!ELEMENT {tag} EMPTY>")
        elif allows_text and not edges:
            lines.append(f"<!ELEMENT {tag} (#PCDATA)>")
        elif allows_text:
            names = " | ".join(
                schema.nodes[e.child_id].tag for e in edges  # type: ignore[union-attr]
            )
            lines.append(f"<!ELEMENT {tag} (#PCDATA | {names})*>")
            notes.append(f"<{tag}>: multiplicities relaxed by mixed content")
        else:
            unordered = [e for e in edges if not e.ordered]
            if unordered:
                notes.append(
                    f"<{tag}>: unordered children serialised in declaration order"
                )
            particles = []
            for edge in edges:
                child_tag = schema.nodes[edge.child_id].tag  # type: ignore[union-attr]
                suffix = _dtd_suffix(edge, notes, tag)
                particles.append(f"{child_tag}{suffix}")
            lines.append(f"<!ELEMENT {tag} ({', '.join(particles)})>")
        for att in schema.attribute_nodes(tag):
            if att.values:
                att_type = "(" + " | ".join(att.values) + ")"
            else:
                att_type = "CDATA"
            if att.fixed is not None:
                default = f'#FIXED "{att.fixed}"'
            elif att.required:
                default = "#REQUIRED"
            else:
                default = "#IMPLIED"
            lines.append(f"<!ATTLIST {tag} {att.name} {att_type} {default}>")
    return "\n".join(lines), notes


def _dtd_suffix(edge: SchemaEdge, notes: list[str], tag: str) -> str:
    if (edge.min, edge.max) == (1, 1):
        return ""
    if (edge.min, edge.max) == (0, 1):
        return "?"
    if (edge.min, edge.max) == (0, None):
        return "*"
    if (edge.min, edge.max) == (1, None):
        return "+"
    notes.append(
        f"<{tag}>: multiplicity {edge.multiplicity()} widened for DTD output"
    )
    return "*" if edge.min == 0 else "+"
