"""Unparsing: XML-GL ASTs back to canonical DSL text.

The inverse of :mod:`repro.xmlgl.dsl`: any rule or program renders to text
that re-parses to a structurally identical rule (property-tested), giving
the toolchain a canonical exchange format — editors compile drawings to
ASTs, the unparser turns them into files, the CLI runs the files.

Limitations mirror the grammar: node ids must be valid DSL names (the
builders and editors only generate such ids), and or-group branch edges
render inline under their parent.
"""

from __future__ import annotations

from ..engine.conditions import Condition
from ..errors import QueryStructureError
from .ast import (
    AttributePattern,
    ContainmentEdge,
    ElementPattern,
    QueryGraph,
    TextPattern,
)
from .construct import (
    Aggregate,
    Collect,
    ConstructNode,
    Copy,
    GroupBy,
    NewElement,
    TextFrom,
    TextLiteral,
)
from .rule import Program, Rule

__all__ = ["unparse_rule", "unparse_program"]

_INDENT = "  "


def unparse_program(program: Program) -> str:
    """Render a program in the DSL (bare rule, or named rule blocks)."""
    if len(program.rules) == 1 and program.unwrap and not program.chained:
        return unparse_rule(program.rules[0])
    blocks = []
    prefix = "chained\n" if program.chained else ""
    for rule in program.rules:
        name = f" {rule.name}" if rule.name else ""
        body = _indent(unparse_rule(rule))
        blocks.append(f"rule{name} {{\n{body}\n}}")
    return prefix + "\n".join(blocks)


def unparse_rule(rule: Rule) -> str:
    """Render one rule (``query ... construct ...``)."""
    parts = [_unparse_query(graph) for graph in rule.queries]
    for condition in rule.conditions:
        parts.append(f"where {_condition(condition)}")
    parts.append(
        "construct {\n" + _indent(_unparse_construct(rule.construct)) + "\n}"
    )
    return "\n".join(parts)


def _indent(text: str) -> str:
    return "\n".join(_INDENT + line for line in text.split("\n"))


def _condition(condition: Condition) -> str:
    # str(condition) is exactly the DSL condition grammar (tested).
    return str(condition)


# -- query side ----------------------------------------------------------------

def _unparse_query(graph: QueryGraph) -> str:
    source = f" {graph.source}" if graph.source else ""
    lines = [f"query{source} {{"]
    emitted: set[str] = set()
    for root_id in graph.roots():
        lines.append(_indent(_unparse_node(graph, root_id, None, emitted)))
    for condition in graph.conditions:
        lines.append(_indent(f"where {_condition(condition)}"))
    lines.append("}")
    return "\n".join(lines)


def _flags(edge: ContainmentEdge | None, node) -> str:
    flags = []
    if isinstance(node, ElementPattern) and node.anchored:
        flags.append("root")
    if edge is not None:
        if edge.deep:
            flags.append("deep")
        if edge.negated:
            flags.append("not")
        if edge.ordered:
            flags.append("ord")
    return "".join(f"{flag} " for flag in flags)


def _constraint(value, pattern) -> str:
    if value is not None:
        return f' = "{value}"'
    if pattern is not None:
        escaped = pattern.replace("/", "\\/")
        return f" ~ /{escaped}/"
    return ""


def _unparse_node(
    graph: QueryGraph,
    node_id: str,
    edge_in: ContainmentEdge | None,
    emitted: set[str],
) -> str:
    node = graph.nodes[node_id]
    if node_id in emitted:
        raise QueryStructureError(
            f"node {node_id!r} is shared (a DAG join); the DSL cannot "
            "express shared nodes — keep such rules in AST/diagram form"
        )
    emitted.add(node_id)
    if isinstance(node, (AttributePattern, TextPattern)):
        negation = "not " if edge_in is not None and edge_in.negated else ""
        head = f"@{node.name}" if isinstance(node, AttributePattern) else "text"
        return (
            f"{negation}{head}"
            f"{_constraint(node.value, node.regex)} as {node_id}"
        )
    assert isinstance(node, ElementPattern)
    tag = node.tag if node.tag is not None else "*"
    header = f"{_flags(edge_in, node)}{tag} as {node_id}"
    children = graph.children_of(node_id)
    group_lines = []
    for group in graph.or_groups:
        branches = []
        for branch in group.alternatives:
            rendered = [
                _unparse_node(graph, e.child, e, emitted)
                for e in branch
                if e.parent == node_id
            ]
            if rendered:
                branches.append(" ".join(rendered))
        if branches:
            group_lines.append("or { " + " | ".join(branches) + " }")
    if not children and not group_lines:
        return header
    body = [
        _unparse_node(graph, edge.child, edge, emitted) for edge in children
    ] + group_lines
    return header + " {\n" + _indent("\n".join(body)) + "\n}"


# -- construct side --------------------------------------------------------------

def _unparse_construct(node: ConstructNode) -> str:
    if isinstance(node, NewElement):
        tag = f"${node.tag_from}" if node.tag_from is not None else node.tag
        attrs = ""
        if node.attributes:
            rendered = []
            for attribute in node.attributes:
                if attribute.from_variable is not None:
                    rendered.append(f"{attribute.name} = ${attribute.from_variable}")
                else:
                    rendered.append(f'{attribute.name} = "{attribute.value}"')
            attrs = "(" + ", ".join(rendered) + ")"
        for_each = f" for {', '.join(node.for_each)}" if node.for_each else ""
        sort = f" sortby {node.sort_by}" if node.sort_by else ""
        header = f"{tag}{attrs}{for_each}{sort}"
        if not node.children:
            return header
        body = "\n".join(_unparse_construct(child) for child in node.children)
        return header + " {\n" + _indent(body) + "\n}"
    if isinstance(node, Copy):
        return f"copy {node.variable}" + ("" if node.deep else " shallow")
    if isinstance(node, Collect):
        return f"collect {node.variable}" + ("" if node.deep else " shallow")
    if isinstance(node, TextLiteral):
        return f'text "{node.text}"'
    if isinstance(node, TextFrom):
        return f"value {node.variable}"
    if isinstance(node, GroupBy):
        body = "\n".join(_unparse_construct(child) for child in node.children)
        return (
            f"group {', '.join(node.group_on)} {{\n" + _indent(body) + "\n}"
        )
    assert isinstance(node, Aggregate)
    return f"{node.function}({node.variable})"
