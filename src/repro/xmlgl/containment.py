"""Query containment for the positive tree fragment of XML-GL.

Containment (every answer of Q2 is an answer of Q1) is the basis of
visual-query optimisation — an editor can tell the user "this refinement
can only shrink the result".  For *positive tree patterns* (no negation,
no or-arcs, no conditions) containment coincides with the existence of a
**pattern homomorphism**: Q1 ⊇ Q2 iff Q1's pattern maps into Q2's pattern
preserving tags (wildcards map anywhere), containment edges (a child arc
must map to a child arc; a starred arc may map to any chain of arcs) and
value constraints.

``contains(q1, target1, q2, target2)`` tests whether Q1's answers for
``target1`` include Q2's answers for ``target2`` on **every** document.
The homomorphism test is *sound* throughout the fragment (a ``True`` is
always correct — property-checked against evaluation on random documents)
and *complete* for child-only patterns; with starred (descendant) arcs it
may answer ``False`` for some true containments, the known gap between
homomorphism and containment for tree patterns with ``//`` (Miklau &
Suciu).  Graphs outside the fragment raise :class:`ContainmentError`
rather than guessing.
"""

from __future__ import annotations

from ..errors import ReproError
from .ast import (
    AttributePattern,
    ContainmentEdge,
    ElementPattern,
    QueryGraph,
    TextPattern,
)

__all__ = ["ContainmentError", "contains", "equivalent"]


class ContainmentError(ReproError):
    """The graphs are outside the decidable positive tree fragment."""


def _check_fragment(graph: QueryGraph) -> None:
    if graph.or_groups:
        raise ContainmentError("or-arcs are outside the containment fragment")
    if graph.conditions:
        raise ContainmentError("conditions are outside the containment fragment")
    if graph.negated_edges():
        raise ContainmentError("negation is outside the containment fragment")
    parents: dict[str, int] = {}
    for edge in graph.edges:
        parents[edge.child] = parents.get(edge.child, 0) + 1
        if edge.ordered:
            raise ContainmentError("ordered arcs are outside the fragment")
    if any(count > 1 for count in parents.values()):
        raise ContainmentError("shared nodes (joins) are outside the fragment")
    if len(graph.roots()) != 1:
        raise ContainmentError("multi-root graphs are outside the fragment")


def _node_maps_to(container_node, containee_node) -> bool:
    """May a container pattern node map onto a containee pattern node?

    The containee is *more specific*; the container's constraints must be
    implied by the containee's.
    """
    if isinstance(container_node, ElementPattern):
        if not isinstance(containee_node, ElementPattern):
            return False
        if container_node.tag is not None and container_node.tag != containee_node.tag:
            return False
        if container_node.anchored and not containee_node.anchored:
            return False
        return True
    if isinstance(container_node, AttributePattern):
        if not isinstance(containee_node, AttributePattern):
            return False
        if container_node.name != containee_node.name:
            return False
        return _value_implied(container_node, containee_node)
    assert isinstance(container_node, TextPattern)
    if not isinstance(containee_node, TextPattern):
        return False
    return _value_implied(container_node, containee_node)


def _value_implied(container_node, containee_node) -> bool:
    if container_node.value is not None:
        return containee_node.value == container_node.value
    if container_node.regex is not None:
        # regex implication is undecidable in general; only identical
        # patterns are accepted (sound, incomplete — documented)
        return containee_node.regex == container_node.regex
    return True


def _descendants_via_edges(graph: QueryGraph, node_id: str) -> list[tuple[str, int]]:
    """(descendant, depth) pairs reachable via containment edges."""
    result = []
    stack = [(node_id, 0)]
    while stack:
        current, depth = stack.pop()
        for edge in graph.children_of(current):
            result.append((edge.child, depth + 1))
            stack.append((edge.child, depth + 1))
    return result


def contains(
    container: QueryGraph,
    container_target: str,
    containee: QueryGraph,
    containee_target: str,
) -> bool:
    """Is every ``containee_target`` answer also a ``container_target`` one?

    Both graphs must lie in the positive tree fragment.
    """
    _check_fragment(container)
    _check_fragment(containee)

    mapping: dict[str, str] = {container_target: containee_target}
    if not _node_maps_to(
        container.nodes[container_target], containee.nodes[containee_target]
    ):
        return False

    def extend(pairs: list[tuple[str, str]]) -> bool:
        """Map each container node in ``pairs`` and recurse over children."""
        for container_id, containee_id in pairs:
            for edge in container.children_of(container_id):
                if not _map_child(edge, containee_id):
                    return False
        return True

    def _map_child(edge: ContainmentEdge, containee_parent: str) -> bool:
        child = container.nodes[edge.child]
        if edge.deep:
            candidates = [
                target for target, _ in _descendants_via_edges(containee, containee_parent)
            ]
        else:
            candidates = [
                e.child for e in containee.children_of(containee_parent)
                if not e.deep
            ]
        for candidate in candidates:
            if not _node_maps_to(child, containee.nodes[candidate]):
                continue
            mapping[edge.child] = candidate
            if extend([(edge.child, candidate)]):
                return True
            del mapping[edge.child]
        return False

    # the target's ancestors in the container must map onto ancestors of
    # the containee target, preserving arc kinds upward
    if not _map_upwards(container, container_target, containee, containee_target, mapping):
        return False
    return extend([(container_target, containee_target)])


def _map_upwards(
    container: QueryGraph,
    container_id: str,
    containee: QueryGraph,
    containee_id: str,
    mapping: dict[str, str],
) -> bool:
    container_in = [e for e in container.edges if e.child == container_id]
    if not container_in:
        # container's spine ends here; an anchored top box must map to the
        # containee's anchored top — handled by _node_maps_to on the way
        return True
    edge = container_in[0]
    containee_in = [e for e in containee.edges if e.child == containee_id]
    if edge.deep:
        # any strict ancestor works
        current = containee_in
        ancestors = []
        seen = containee_id
        while current:
            parent = current[0].parent
            ancestors.append(parent)
            current = [e for e in containee.edges if e.child == parent]
        candidates = ancestors
    else:
        if not containee_in or containee_in[0].deep:
            return False
        candidates = [containee_in[0].parent]
    for candidate in candidates:
        if not _node_maps_to(container.nodes[edge.parent], containee.nodes[candidate]):
            continue
        mapping[edge.parent] = candidate
        if _map_upwards(container, edge.parent, containee, candidate, mapping):
            # the mapped ancestor's *other* children must also embed below it
            others = [
                e for e in container.children_of(edge.parent)
                if e.child != container_id
            ]
            ok = True
            for other in others:
                if not _embed_subtree(container, other, containee, candidate):
                    ok = False
                    break
            if ok:
                return True
        del mapping[edge.parent]
    return False


def _embed_subtree(
    container: QueryGraph,
    edge: ContainmentEdge,
    containee: QueryGraph,
    containee_parent: str,
) -> bool:
    """Does the container subtree under ``edge`` embed below the parent?"""
    child = container.nodes[edge.child]
    if edge.deep:
        candidates = [
            target for target, _ in _descendants_via_edges(containee, containee_parent)
        ]
    else:
        candidates = [
            e.child for e in containee.children_of(containee_parent) if not e.deep
        ]
    for candidate in candidates:
        if not _node_maps_to(child, containee.nodes[candidate]):
            continue
        if all(
            _embed_subtree(container, sub_edge, containee, candidate)
            for sub_edge in container.children_of(edge.child)
        ):
            return True
    return False


def equivalent(
    graph_a: QueryGraph, target_a: str, graph_b: QueryGraph, target_b: str
) -> bool:
    """Mutual containment: the two queries always return the same answers."""
    return contains(graph_a, target_a, graph_b, target_b) and contains(
        graph_b, target_b, graph_a, target_a
    )
