"""Construct-side AST of XML-GL and its evaluation.

The right-hand (construct) part of an XML-GL rule is again a graph of
boxes; its three aggregation primitives are (quoting the paper's visual
vocabulary):

* **plain boxes** — build one element *per matched instance* of the query
  nodes they reference (or exactly one element, when they reference none);
* **triangles** — collect *all* elements matched by the query node they
  point at, as one flat list;
* **list icons** — collect matched elements *grouped* by an explicit
  grouping condition, building one sublist per group.

This module gives those primitives a compositional semantics over
:class:`~repro.engine.bindings.BindingSet`:

Every construct node is evaluated in a *context* — the binding set that
survives to this point.  ``NewElement(for_each=[...])`` partitions the
context by the distinct values of its ``for_each`` variables and emits one
element per part (the plain box attached to a query node).  ``Collect``
emits a copy of each distinct element bound to its variable (the triangle).
``GroupBy`` partitions the context and splices its children once per group
(the list icon).  ``Aggregate`` emits the value of COUNT/SUM/MIN/MAX/AVG
over the context.  Copies are either *deep* (the starred construct arc:
take the whole subtree) or *shallow* (tag + attributes only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..engine.bindings import BindingSet
from ..errors import (
    EvaluationError,
    QueryStructureError,
    UnboundConstructVariable,
)
from ..ssd.datatypes import coerce
from ..ssd.model import Element
from ..ssd import navigation

__all__ = [
    "NewElement",
    "NewAttribute",
    "TextLiteral",
    "TextFrom",
    "Copy",
    "Collect",
    "GroupBy",
    "Aggregate",
    "ConstructNode",
    "build",
]


@dataclass
class NewAttribute:
    """An attribute on a :class:`NewElement`.

    ``value`` is a literal unless ``from_variable`` is set, in which case the
    attribute takes the text of the bound node (which must be functionally
    determined by the enclosing element's ``for_each`` context).
    """

    name: str
    value: Optional[str] = None
    from_variable: Optional[str] = None


@dataclass
class NewElement:
    """A plain construct box.

    Args:
        tag: tag of the constructed element.
        for_each: replication variables — one element is emitted per
            distinct combination of their values in the context (empty =
            exactly one element).
        attributes: constructed attributes.
        children: nested construct nodes, evaluated in the restricted
            context.
        sort_by: optional variable whose (coerced) value orders the
            replicated elements; default is first-match order.
        tag_from: take the tag from the *name* of the node bound to this
            variable instead of ``tag`` (heterogeneous construction — the
            name-carrying behaviour of XML-GL's unnamed boxes).  The
            variable must be functionally determined in the element's
            context, so it is usually combined with ``for_each``.
    """

    tag: str
    for_each: list[str] = field(default_factory=list)
    attributes: list[NewAttribute] = field(default_factory=list)
    children: list["ConstructNode"] = field(default_factory=list)
    sort_by: Optional[str] = None
    tag_from: Optional[str] = None


@dataclass
class TextLiteral:
    """A constant text child."""

    text: str


@dataclass
class TextFrom:
    """A text child taking the content of a bound node (or bound string)."""

    variable: str


@dataclass
class Copy:
    """Copy the single element bound to ``variable`` in this context.

    ``deep=True`` (the starred construct arc) copies the whole subtree;
    ``deep=False`` copies the element with attributes but no children.
    If the context binds several distinct elements, all are copied in
    document order — the degenerate case equals :class:`Collect`.
    """

    variable: str
    deep: bool = True


@dataclass
class Collect:
    """The triangle: copies of all distinct bound elements, document order."""

    variable: str
    deep: bool = True


@dataclass
class GroupBy:
    """The list icon: splice ``children`` once per distinct group.

    ``group_on`` names the grouping variables (the explicit grouping
    condition the list icon points at); children see only the group's
    bindings.
    """

    group_on: list[str]
    children: list["ConstructNode"] = field(default_factory=list)


_AGG_FUNCTIONS = {"count", "sum", "min", "max", "avg"}


@dataclass
class Aggregate:
    """An aggregation annotation: COUNT/SUM/MIN/MAX/AVG over the context.

    ``count`` counts *distinct* values of ``variable`` (element identity
    for nodes, value equality for strings).  The numeric functions operate
    on the bag of bound occurrences — element bindings are deduplicated by
    identity (join fan-out must not double-count a price element), while
    atomic bindings contribute once per row, so two books costing 9.99
    both enter the sum.
    """

    function: str
    variable: str

    def __post_init__(self) -> None:
        if self.function not in _AGG_FUNCTIONS:
            raise EvaluationError(f"unknown aggregate {self.function!r}")


ConstructNode = Union[
    NewElement, TextLiteral, TextFrom, Copy, Collect, GroupBy, Aggregate
]


def build(root: NewElement, bindings: BindingSet) -> Element:
    """Evaluate a construct tree against a binding set.

    Returns the root element.  The root's ``for_each`` must be empty (a
    query produces one result document).
    """
    if root.for_each:
        raise QueryStructureError("the construct root cannot be replicated")
    elements = _eval_new_element(root, bindings, root.tag)
    assert len(elements) == 1
    return elements[0]


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------

def _eval_node(node: ConstructNode, context: BindingSet, path: str) -> list:
    """Evaluate one construct node to a list of result children.

    ``path`` names the node's position in the construct tree (e.g.
    ``result/entry[0]``) so evaluation errors point back at the drawing.
    """
    if isinstance(node, NewElement):
        return _eval_new_element(node, context, path)
    if isinstance(node, TextLiteral):
        return [node.text]
    if isinstance(node, TextFrom):
        return [_text_of_context(node.variable, context, path)]
    if isinstance(node, Copy):
        return _copies(node.variable, node.deep, context)
    if isinstance(node, Collect):
        return _copies(node.variable, node.deep, context)
    if isinstance(node, GroupBy):
        results: list = []
        for _, group in context.group_by(node.group_on):
            for child_index, child in enumerate(node.children):
                results.extend(
                    _eval_node(child, group, f"{path}/[{child_index}]")
                )
        return results
    if isinstance(node, Aggregate):
        return [_aggregate(node, context)]
    raise EvaluationError(f"unknown construct node {node!r}")


def _eval_new_element(
    node: NewElement, context: BindingSet, path: str
) -> list[Element]:
    contexts: list[BindingSet]
    if node.for_each:
        groups = context.group_by(node.for_each)
        if node.sort_by is not None:
            groups.sort(key=lambda pair: _sort_key(node.sort_by, pair[1]))
        contexts = [group for _, group in groups]
    else:
        contexts = [context]
    elements = []
    for sub_context in contexts:
        element = Element(_resolve_tag(node, sub_context))
        for attribute in node.attributes:
            if attribute.from_variable is not None:
                element.set(
                    attribute.name,
                    str(_text_of_context(
                        attribute.from_variable,
                        sub_context,
                        f"{path}/@{attribute.name}",
                    )),
                )
            else:
                element.set(attribute.name, attribute.value or "")
        for child_index, child in enumerate(node.children):
            child_path = (
                f"{path}/{child.tag}[{child_index}]"
                if isinstance(child, NewElement)
                else f"{path}/[{child_index}]"
            )
            for result in _eval_node(child, sub_context, child_path):
                element.append(result)
        elements.append(element)
    return elements


def _resolve_tag(node: NewElement, context: BindingSet) -> str:
    if node.tag_from is None:
        return node.tag
    values = _distinct_values(node.tag_from, context)
    if len(values) != 1:
        raise EvaluationError(
            f"tag_from variable {node.tag_from!r} must be functionally "
            f"determined ({len(values)} distinct values); add it to for_each"
        )
    value = values[0]
    if not isinstance(value, Element):
        raise EvaluationError(
            f"tag_from variable {node.tag_from!r} must bind an element"
        )
    return value.tag


def _distinct_values(variable: str, context: BindingSet) -> list:
    """Distinct bound values of ``variable``, first-seen order."""
    seen: set = set()
    values = []
    for binding in context:
        if variable not in binding:
            continue
        value = binding[variable]
        key = id(value) if isinstance(value, Element) else ("atom", value)
        if key in seen:
            continue
        seen.add(key)
        values.append(value)
    return values


def _document_order_keys(elements: list[Element]) -> dict[int, tuple]:
    """Document-order sort keys, one traversal per distinct tree."""
    keys: dict[int, tuple] = {}
    wanted = {id(e) for e in elements}
    tops: dict[int, Element] = {}
    for element in elements:
        top = element
        while top.parent is not None:
            top = top.parent  # type: ignore[assignment]
        tops.setdefault(id(top), top)
    for tree_index, top in enumerate(tops.values()):
        for position, node in enumerate(navigation.document_order(top)):
            if id(node) in wanted:
                keys[id(node)] = (tree_index, position)
    return keys


def _copies(variable: str, deep: bool, context: BindingSet) -> list:
    values = _distinct_values(variable, context)
    elements = [v for v in values if isinstance(v, Element)]
    atoms = [v for v in values if not isinstance(v, Element)]
    order = _document_order_keys(elements)
    elements.sort(key=lambda e: order[id(e)])
    results: list = []
    for element in elements:
        if deep:
            results.append(element.copy())
        else:
            results.append(Element(element.tag, dict(element.attributes)))
    results.extend(str(a) for a in atoms)
    return results


def _text_of_context(variable: str, context: BindingSet, where: Optional[str] = None):
    values = _distinct_values(variable, context)
    if not values:
        raise UnboundConstructVariable(variable, where)
    if len(values) > 1:
        raise EvaluationError(
            f"variable {variable!r} is not functionally determined here "
            f"({len(values)} distinct values); replicate with for_each or group"
        )
    value = values[0]
    if isinstance(value, Element):
        return value.text_content()
    return str(value)


def _sort_key(variable: str, group: BindingSet):
    for binding in group:
        if variable in binding:
            value = binding[variable]
            text = value.text_content() if isinstance(value, Element) else value
            coerced = coerce(text)
            # Mixed numeric/string sort keys must not compare; namespace them.
            if isinstance(coerced, (int, float)) and not isinstance(coerced, bool):
                return (0, coerced, "")
            return (1, 0, str(coerced))
    return (2, 0, "")


def _numeric_occurrences(variable: str, context: BindingSet) -> list:
    """Bag of bound occurrences: elements by identity, atoms per row."""
    seen_elements: set[int] = set()
    values = []
    for binding in context:
        if variable not in binding:
            continue
        value = binding[variable]
        if isinstance(value, Element):
            if id(value) in seen_elements:
                continue
            seen_elements.add(id(value))
        values.append(value)
    return values


def _aggregate(node: Aggregate, context: BindingSet) -> str:
    if node.function == "count":
        return str(len(_distinct_values(node.variable, context)))
    values = _numeric_occurrences(node.variable, context)
    numbers = []
    for value in values:
        text = value.text_content() if isinstance(value, Element) else value
        number = coerce(text)
        if isinstance(number, bool) or not isinstance(number, (int, float)):
            raise EvaluationError(
                f"{node.function} over non-numeric value {text!r}"
            )
        numbers.append(number)
    if not numbers:
        return "0" if node.function == "sum" else ""
    if node.function == "sum":
        result = sum(numbers)
    elif node.function == "min":
        result = min(numbers)
    elif node.function == "max":
        result = max(numbers)
    else:  # avg
        result = sum(numbers) / len(numbers)
    if isinstance(result, float) and result.is_integer():
        result = int(result)
    return str(result)
