"""Evaluation of XML-GL extract graphs against documents.

The matcher enumerates every assignment of the query graph's nodes to
document nodes such that

* element boxes map to elements with the required tag (wildcards to any),
* containment arcs map to parent/child (or ancestor/descendant for starred
  arcs) relationships,
* hollow circles bind the parent's immediate text, filled circles bind
  attribute values, honouring their constant/regex constraints,
* crossed-out arcs have **no** embedding of their subpattern,
* ordered arcs respect relative document order, and
* every predicate annotation holds.

Shared sub-nodes (the DAG case) come out naturally: a node id is assigned
once, so two arcs pointing at it force the *same* document node — that is
XML-GL's join.  Matching is homomorphic: two different boxes may map to the
same element.

Or-arcs are evaluated by branch expansion: one branch per or-group is
chosen, the resulting plain graph matched, and the binding sets unioned
(with duplicate elimination across branches).

Three engines share this module (``MatchOptions.engine``):

* ``"pipeline"`` (default) evaluates **set-at-a-time**: the paper's
  queries-are-graphs idiom makes every extract graph a relational join
  plan, so each acyclic query fragment is compiled to per-box candidate
  pools (from the :class:`~repro.engine.index.DocumentIndex`) plus binary
  edge relations, single-box predicates and required circles are pushed
  down into the pools, a Yannakakis semi-join reduction removes dangling
  candidates over a cost-chosen join tree, and hash joins assemble the
  binding set.  Value joins — ``=`` conditions linking otherwise
  disconnected fragments — become hash equi-joins instead of filtered
  cross products.  Fragments the pipeline cannot cover (undirected cycles,
  ordered arcs, negation parents) fall back to the backtracking core *per
  fragment* (counted in ``stats.pipeline_fallbacks``).
* ``"backtracking"`` is the node-at-a-time core: boxes ordered with
  :func:`repro.engine.planner.plan_order`, candidates narrowed dynamically
  from already-assigned neighbours via the interval-encoded index
  (descendant pools are bisect ranges, ancestor tests two integer
  comparisons; candidates drawn from such pools satisfy every incident arc
  *by construction* and are counted as ``interval_candidates``, not
  ``candidates_tried``).
* ``"naive"`` is backtracking with the index disabled — subtree walks and
  per-candidate ancestor chases — the ablation baseline (EXT-A1 in
  DESIGN.md) and the differential oracle for both other engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Iterable, Iterator, Optional, Sequence

from ..engine.bindings import Binding, BindingSet
from ..engine.conditions import (
    Arith,
    AttributeOf,
    Comparison,
    Condition,
    Const,
    ContentOf,
    DocumentAccessor,
    NameOf,
    Operand,
    condition_variables,
)
from ..engine.index import DocumentIndex
from ..engine.joins import equijoin_key
from ..engine.limits import arm_budget, mark_truncated
from ..engine.narrowing import intersect_pools
from ..engine.options import MatchOptions
from ..engine.pipeline import connected_components, evaluate_forest, is_forest, relation_for
from ..engine.planner import plan_order
from ..engine.stats import EvalStats
from ..engine.trace import Tracer, span as trace_span
from ..errors import BudgetExceeded, QueryStructureError
from ..ssd.model import Document, Element
from .ast import (
    AttributePattern,
    ContainmentEdge,
    ElementPattern,
    QueryGraph,
    TextPattern,
)

__all__ = ["MatchOptions", "match"]

_ACCESSOR = DocumentAccessor()


def match(
    graph: QueryGraph,
    document: Document,
    options: Optional[MatchOptions] = None,
    index: Optional[DocumentIndex] = None,
    stats: Optional[EvalStats] = None,
) -> BindingSet:
    """All bindings of ``graph`` in ``document``.

    Element boxes bind :class:`~repro.ssd.model.Element` nodes; text and
    attribute circles bind strings.  The graph is validated first.

    ``index`` must be an index *of* ``document``; when omitted a fresh one
    is built (callers evaluating many queries over one frozen document
    should pass :func:`repro.engine.cache.get_index` instead).
    """
    graph.validate()
    _check_condition_scope(graph)
    options = options or MatchOptions()
    stats = stats if stats is not None else EvalStats()
    if options.trace and stats.trace is None:
        stats.trace = Tracer()
    budget = arm_budget(stats, options.budget)
    index = index or DocumentIndex(document)
    engine = options.resolved_engine()

    results = BindingSet()
    with stats.timed():
        seen: set[tuple] = set()
        multiple_branches = bool(graph.or_groups)
        try:
            for expanded in _expand_or_groups(graph):
                prep = _prepare(expanded, document, index, options, stats)
                if prep is None:
                    continue
                if engine == "pipeline":
                    produced: Iterator[Binding] = _match_pipeline(prep)
                else:
                    produced = _match_backtracking(prep)
                for binding in produced:
                    if multiple_branches:
                        key = binding.key()
                        if key in seen:
                            continue
                        seen.add(key)
                    if budget is not None:
                        # Check before adding so a partial result holds at
                        # most max_bindings rows.
                        budget.check_bindings(stats.bindings_produced + 1)
                    results.add(binding)
                    stats.bindings_produced += 1
        except BudgetExceeded as exc:
            # Cancellation (QueryCancelled) is not a budget trip and always
            # propagates; budget trips honour the on_limit policy.
            if budget is None or not budget.budget.partial:
                raise
            mark_truncated(stats, exc.limit)
    return results


# ---------------------------------------------------------------------------
# Or-group expansion
# ---------------------------------------------------------------------------

def _expand_or_groups(graph: QueryGraph) -> Iterator[QueryGraph]:
    """Yield one plain graph per combination of or-group branches.

    Nodes reachable only through *unchosen* branches are pruned from each
    expansion — they are not part of that disjunct and must not constrain
    the match.
    """
    if not graph.or_groups:
        yield graph
        return
    branch_lists = [group.alternatives for group in graph.or_groups]
    had_parent = {e.child for e in graph.all_edges()}
    for choice in product(*branch_lists):
        expanded = QueryGraph(
            nodes=dict(graph.nodes),
            edges=list(graph.edges),
            or_groups=[],
            conditions=list(graph.conditions),
            source=graph.source,
        )
        for branch in choice:
            expanded.edges.extend(branch)
        _prune_unchosen(expanded, had_parent)
        yield expanded


def _prune_unchosen(expanded: QueryGraph, had_parent: set[str]) -> None:
    """Drop nodes that lost their only incoming arc to an unchosen branch."""
    changed = True
    while changed:
        changed = False
        with_parent = {e.child for e in expanded.edges}
        for node_id in list(expanded.nodes):
            if node_id in had_parent and node_id not in with_parent:
                del expanded.nodes[node_id]
                expanded.edges = [
                    e
                    for e in expanded.edges
                    if e.parent != node_id and e.child != node_id
                ]
                changed = True


# ---------------------------------------------------------------------------
# Shared preparation
# ---------------------------------------------------------------------------

def _check_condition_scope(graph: QueryGraph) -> None:
    """Conditions may not reach into negated subtrees."""
    negated: set[str] = set()
    for edge in graph.negated_edges():
        stack = [edge.child]
        while stack:
            node_id = stack.pop()
            if node_id in negated:
                continue
            negated.add(node_id)
            stack.extend(e.child for e in graph.edges if e.parent == node_id)
    for condition in graph.conditions:
        overlap = condition_variables(condition) & negated
        if overlap:
            raise QueryStructureError(
                f"condition {condition} references negated node(s) {sorted(overlap)}"
            )


def _active_nodes(graph: QueryGraph) -> set[str]:
    """Nodes taking part in positive matching of this (plain) graph."""
    active: set[str] = set()
    incident: set[str] = set()
    for edge in graph.edges:
        incident.add(edge.parent)
        if edge.negated:
            continue
        active.add(edge.parent)
        active.add(edge.child)
    for node in graph.nodes.values():
        if isinstance(node, ElementPattern) and node.id not in incident:
            # isolated box (or box only acting as negation parent)
            active.add(node.id)
    # Parents of negated edges must be matched even if otherwise isolated.
    for edge in graph.negated_edges():
        active.add(edge.parent)
    # Remove nodes that are only inside negated subtrees.
    negated_only = set()
    for edge in graph.negated_edges():
        stack = [edge.child]
        while stack:
            node_id = stack.pop()
            if node_id in negated_only:
                continue
            negated_only.add(node_id)
            stack.extend(e.child for e in graph.edges if e.parent == node_id)
    return active - negated_only


@dataclass
class _Prep:
    """One expanded (plain) graph, digested for either engine."""

    graph: QueryGraph
    document: Document
    index: DocumentIndex
    options: MatchOptions
    stats: EvalStats
    element_ids: list[str]
    element_edges: list[ContainmentEdge]
    value_edges: list[ContainmentEdge]
    negated_edges: list[ContainmentEdge]
    static_candidates: dict[str, list[Element]]
    static_sets: dict[str, set[int]]
    adjacency: dict[str, list[str]] = field(default_factory=dict)
    use_intervals: bool = True


def _prepare(
    graph: QueryGraph,
    document: Document,
    index: DocumentIndex,
    options: MatchOptions,
    stats: EvalStats,
) -> Optional[_Prep]:
    """Digest one plain graph; ``None`` when it cannot bind anything."""
    active = _active_nodes(graph)
    element_ids = [n.id for n in graph.element_nodes() if n.id in active]
    if not element_ids:
        return None

    element_edges = [
        e
        for e in graph.edges
        if not e.negated
        and e.parent in active
        and e.child in active
        and isinstance(graph.nodes[e.child], ElementPattern)
    ]
    value_edges = [
        e
        for e in graph.edges
        if not e.negated
        and e.parent in active
        and isinstance(graph.nodes[e.child], (TextPattern, AttributePattern))
    ]
    negated_edges = [e for e in graph.negated_edges() if e.parent in active]

    # attribute circles required (non-negated) below each box: their names
    # narrow the box's static candidates through the attribute index
    attr_hints: dict[str, list[str]] = {}
    for edge in value_edges:
        child = graph.nodes[edge.child]
        if isinstance(child, AttributePattern) and not edge.negated:
            attr_hints.setdefault(edge.parent, []).append(child.name)

    static_candidates = {
        node_id: _static_candidates(
            graph.nodes[node_id], document, index, options, stats,
            attr_hints.get(node_id, []),
        )
        for node_id in element_ids
    }
    if any(not c for c in static_candidates.values()):
        return None
    static_sets = {
        node_id: {id(e) for e in cands}
        for node_id, cands in static_candidates.items()
    }
    adjacency: dict[str, list[str]] = {n: [] for n in element_ids}
    for edge in element_edges:
        adjacency[edge.parent].append(edge.child)
        adjacency[edge.child].append(edge.parent)

    return _Prep(
        graph=graph,
        document=document,
        index=index,
        options=options,
        stats=stats,
        element_ids=element_ids,
        element_edges=element_edges,
        value_edges=value_edges,
        negated_edges=negated_edges,
        static_candidates=static_candidates,
        static_sets=static_sets,
        adjacency=adjacency,
        use_intervals=not options.scans_only(),
    )


# ---------------------------------------------------------------------------
# Backtracking core (node-at-a-time)
# ---------------------------------------------------------------------------

def _match_backtracking(prep: _Prep) -> Iterator[Binding]:
    """The node-at-a-time engine: one backtracking pass over every box."""
    for row in _fragment_bindings(prep, prep.element_ids):
        full = Binding(row)
        ok = True
        for condition in prep.graph.conditions:
            prep.stats.condition_checks += 1
            if not condition.evaluate(full, _ACCESSOR):
                ok = False
                break
        if ok:
            yield full


def _fragment_bindings(
    prep: _Prep, fragment_ids: Sequence[str]
) -> Iterator[dict[str, object]]:
    """Backtracking enumeration of one query fragment.

    Yields complete assignments for ``fragment_ids`` — ordered arcs,
    negated arcs and value circles of the fragment resolved — as plain
    dicts.  Rule-level conditions are *not* applied here; the pipeline
    applies them after fragments are combined, the backtracking engine
    right after this generator.  With ``fragment_ids`` covering every box
    this is exactly the legacy single-pass engine.
    """
    graph, index, options, stats = prep.graph, prep.index, prep.options, prep.stats
    budget = stats.budget
    ids = set(fragment_ids)
    element_edges = [
        e for e in prep.element_edges if e.parent in ids and e.child in ids
    ]
    value_edges = [e for e in prep.value_edges if e.parent in ids]
    negated_edges = [e for e in prep.negated_edges if e.parent in ids]
    static_candidates = prep.static_candidates
    static_sets = prep.static_sets
    use_intervals = prep.use_intervals

    adjacency: dict[str, list[str]] = {n: [] for n in fragment_ids}
    for edge in element_edges:
        adjacency[edge.parent].append(edge.child)
        adjacency[edge.child].append(edge.parent)

    def estimate(node_id: str) -> int:
        """Selectivity: global tag count, sharpened to the count within an
        already-pinned parent's subtree when the pattern fixes one."""
        base = len(static_candidates[node_id])
        if not use_intervals:
            return base
        node = graph.nodes[node_id]
        best = base
        for edge in element_edges:
            if edge.child != node_id:
                continue
            parents = static_candidates[edge.parent]
            if len(parents) != 1 or not index.covers(parents[0]):
                continue
            anchor = parents[0]
            if edge.deep:
                within = index.tag_count_within(anchor, node.tag)
            else:
                within = sum(
                    1
                    for child in anchor.child_elements()
                    if node.tag is None or child.tag == node.tag
                )
            best = min(best, within)
        if best < base:
            stats.bump("selectivity_refinements")
        return best

    order = plan_order(
        list(fragment_ids),
        estimate=estimate,
        adjacency=adjacency,
        enabled=options.use_planner,
    )

    edges_by_endpoint: dict[str, list[ContainmentEdge]] = {
        n: [] for n in fragment_ids
    }
    for edge in element_edges:
        edges_by_endpoint[edge.parent].append(edge)
        edges_by_endpoint[edge.child].append(edge)

    # ordered-arc groups are fixed by the query: group and sort them once,
    # not per produced binding
    ordered_by_parent: dict[str, list[ContainmentEdge]] = {}
    for edge in element_edges:
        if edge.ordered:
            ordered_by_parent.setdefault(edge.parent, []).append(edge)
    ordered_groups = [
        sorted(edges, key=lambda e: e.position)
        for edges in ordered_by_parent.values()
        if len(edges) >= 2
    ]

    assignment: dict[str, Element] = {}

    def structural_ok(edge: ContainmentEdge) -> bool:
        parent = assignment.get(edge.parent)
        child = assignment.get(edge.child)
        if parent is None or child is None:
            return True
        stats.edge_checks += 1
        if edge.deep:
            if use_intervals and index.covers(parent) and index.covers(child):
                return index.is_ancestor(parent, child)
            return any(anc is parent for anc in child.ancestors())
        return child.parent is parent

    def pool_for(edge: ContainmentEdge, node_id: str) -> Optional[Sequence[Element]]:
        """Candidate pool one incident edge contributes, or ``None`` when
        the edge's other endpoint is not assigned yet."""
        if edge.child == node_id and edge.parent in assignment:
            parent = assignment[edge.parent]
            if not edge.deep:
                return parent.child_elements()
            if use_intervals and index.covers(parent):
                stats.interval_lookups += 1
                tag = graph.nodes[node_id].tag
                if tag is not None:
                    return index.descendants_with_tag(parent, tag)
                return index.descendants(parent)
            return [e for e in parent.iter() if e is not parent]
        if edge.parent == node_id and edge.child in assignment:
            child = assignment[edge.child]
            if edge.deep:
                return list(child.ancestors())
            return [child.parent] if isinstance(child.parent, Element) else []
        return None

    def candidates_for(node_id: str) -> tuple[Sequence[Element], bool]:
        """``(candidates, verified)`` — every incident assigned edge
        contributes one pool, so pool-intersection membership *is* the
        conjunction of those arcs: verified candidates skip per-candidate
        structural re-checks (one wholesale ``edge_checks`` per pool)."""
        pools: list[Sequence[Element]] = []
        for edge in edges_by_endpoint[node_id]:
            pool = pool_for(edge, node_id)
            if pool is not None:
                pools.append(pool)
        if not pools:
            return static_candidates[node_id], False
        narrowed = intersect_pools(pools, allowed=static_sets[node_id], key=id)
        if use_intervals:
            stats.edge_checks += len(pools)
            return narrowed, True
        return narrowed, False

    def backtrack(position: int) -> Iterator[dict[str, Element]]:
        if position == len(order):
            yield dict(assignment)
            return
        node_id = order[position]
        candidates, verified = candidates_for(node_id)
        if verified:
            for candidate in candidates:
                stats.interval_candidates += 1
                if budget is not None:
                    budget.charge()
                assignment[node_id] = candidate
                yield from backtrack(position + 1)
                del assignment[node_id]
        else:
            incident = edges_by_endpoint[node_id]
            for candidate in candidates:
                stats.candidates_tried += 1
                if budget is not None:
                    budget.charge()
                assignment[node_id] = candidate
                if all(structural_ok(e) for e in incident):
                    yield from backtrack(position + 1)
                del assignment[node_id]

    for element_binding in backtrack(0):
        if not _ordered_ok(ordered_groups, element_binding, index, stats):
            continue
        if not _negations_ok(
            graph, negated_edges, element_binding, index, use_intervals, stats
        ):
            continue
        yield from _resolve_value_patterns(
            graph, value_edges, element_binding, stats
        )


# ---------------------------------------------------------------------------
# Set-at-a-time pipeline
# ---------------------------------------------------------------------------

def _match_pipeline(prep: _Prep) -> Iterator[Binding]:
    """The set-at-a-time engine: semi-join pipeline with per-fragment
    fallback; see the module docstring for the plan shape."""
    graph, stats = prep.graph, prep.stats
    tracer = stats.trace

    # A circle with several parent arcs resolves against each in edge
    # order (last write wins); that interleaving is inherently
    # tuple-at-a-time, so keep the legacy core for the whole expansion.
    circle_parents: dict[str, int] = {}
    for edge in prep.value_edges:
        circle_parents[edge.child] = circle_parents.get(edge.child, 0) + 1
    if any(count > 1 for count in circle_parents.values()):
        stats.pipeline_fallbacks += 1
        stats.bump("fallback_multi-parent-circle")
        with trace_span(
            tracer,
            "match.fragment",
            variables=list(prep.element_ids),
            decision="fallback",
            reason="multi-parent-circle",
        ):
            yield from _match_backtracking(prep)
        return

    values_by_parent: dict[str, list[ContainmentEdge]] = {}
    for edge in prep.value_edges:
        values_by_parent.setdefault(edge.parent, []).append(edge)

    components = connected_components(
        prep.element_ids, [(e.parent, e.child) for e in prep.element_edges]
    )
    comp_plans: list[tuple[list[str], list[ContainmentEdge], Optional[str]]] = []
    coverable_nodes: set[str] = set()
    for component in components:
        ids = [n for n in prep.element_ids if n in component]
        edges = [
            e
            for e in prep.element_edges
            if e.parent in component and e.child in component
        ]
        fallback_reason = _fallback_reason(prep, component, edges)
        if fallback_reason is None:
            coverable_nodes |= component
        comp_plans.append((ids, edges, fallback_reason))

    pushed, consumed = _push_down_conditions(
        graph, prep.element_ids, values_by_parent, coverable_nodes
    )

    fragments: list[tuple[set[str], list[dict[str, object]]]] = []
    for ids, edges, fallback_reason in comp_plans:
        decision = "pipeline" if fallback_reason is None else "fallback"
        with trace_span(
            tracer,
            "match.fragment",
            variables=ids,
            decision=decision,
            reason=fallback_reason,
        ) as fragment_span:
            if fallback_reason is None:
                stats.pipeline_fragments += 1
                rows_before = 0 if stats.budget is None else stats.budget.rows
                try:
                    rows = _setwise_fragment(
                        prep, ids, edges, values_by_parent, pushed
                    )
                except BudgetExceeded as exc:
                    if exc.limit != "max_hashjoin_rows":
                        raise
                    # Degradation ladder step 1: the fragment's materialised
                    # relations / join rows blew the memory-ish cap, so
                    # discard them and re-run this fragment on the
                    # backtracking core (bounded memory, node-at-a-time).
                    rows = _degrade_fragment(
                        prep, ids, pushed, fragment_span, rows_before
                    )
            else:
                stats.pipeline_fallbacks += 1
                stats.bump(f"fallback_{fallback_reason}")
                rows = list(_fragment_bindings(prep, ids))
            if fragment_span is not None:
                fragment_span["rows"] = len(rows)
        if not rows:
            return  # conjunctive semantics: one empty fragment, no bindings
        variables = set(ids) | {
            e.child for n in ids for e in values_by_parent.get(n, ())
        }
        fragments.append((variables, rows))

    rows_before_combine = 0 if stats.budget is None else stats.budget.rows
    try:
        rows = _combine_fragments(graph.conditions, fragments, consumed, stats)
        remaining = [
            c for i, c in enumerate(graph.conditions) if i not in consumed
        ]
    except BudgetExceeded as exc:
        if exc.limit != "max_hashjoin_rows":
            raise
        # Degradation ladder, combine stage: the *cross-fragment* hash
        # join blew the row cap.  Discard the joined rows and re-run the
        # whole graph on the backtracking core (bounded memory), which
        # re-checks every rule-level condition itself.
        stats.pipeline_fallbacks += 1
        stats.bump("fallback_budget")
        stats.bump("degraded_fragments")
        assert stats.budget is not None
        stats.budget.rows = rows_before_combine
        if tracer is not None:
            tracer.event("degraded", scope="combine", reason="budget")
        rows = list(_fragment_bindings(prep, list(prep.element_ids)))
        remaining = list(graph.conditions)
    final: list[dict[str, object]] = []
    for row in rows:
        ok = True
        for condition in remaining:
            stats.condition_checks += 1
            if not condition.evaluate(row, _ACCESSOR):  # type: ignore[arg-type]
                ok = False
                break
        if ok:
            final.append(row)
    # Canonical result order: document order over the boxes in drawing
    # order (the backtracking engines emit nested-loop order, which
    # coincides for tree queries; sorting keeps construction — ``collect``
    # output — deterministic regardless of join order).
    position = prep.index.position
    final.sort(
        key=lambda row: tuple(position(row[n]) for n in prep.element_ids)  # type: ignore[arg-type]
    )
    for row in final:
        yield Binding(row)


def _degrade_fragment(
    prep: _Prep,
    ids: list[str],
    pushed: dict[str, list[Condition]],
    fragment_span,
    rows_before: int,
) -> list[dict[str, object]]:
    """Re-run one fragment on the backtracking core after a row-cap trip.

    Records the stable fallback reason ``budget`` exactly like the static
    fallback reasons (counter ``fallback_budget``, span ``decision`` /
    ``reason`` attributes digested by ``explain()``) plus the governance
    counter ``degraded_fragments``.  The abandoned fragment's row charge is
    refunded (back to ``rows_before``) so sibling fragments keep their
    headroom — those rows were discarded, not kept.

    The fragment's pushed-down conditions (already consumed from the final
    filter) are re-applied here: the backtracking core does not see pool
    filters, so skipping them would leak rows the pipeline would have cut.
    """
    stats = prep.stats
    budget = stats.budget
    stats.pipeline_fallbacks += 1
    stats.bump("fallback_budget")
    stats.bump("degraded_fragments")
    if budget is not None:
        budget.rows = rows_before
    if fragment_span is not None:
        fragment_span["decision"] = "fallback"
        fragment_span["reason"] = "budget"
    if stats.trace is not None:
        stats.trace.event("degraded", reason="budget", variables=list(ids))
    rows = list(_fragment_bindings(prep, ids))
    conditions = [c for n in ids for c in pushed.get(n, ())]
    if conditions:
        kept = []
        for row in rows:
            ok = True
            for condition in conditions:
                stats.condition_checks += 1
                if not condition.evaluate(row, _ACCESSOR):  # type: ignore[arg-type]
                    ok = False
                    break
            if ok:
                kept.append(row)
        rows = kept
    return rows


def _fallback_reason(
    prep: _Prep, component: set[str], edges: list[ContainmentEdge]
) -> Optional[str]:
    """Why one fragment cannot run on the semi-join pipeline (or ``None``).

    Ordered arcs (an n-ary constraint over siblings), negation parents and
    cyclic / multi-edge skeletons stay on the backtracking core.  The
    returned reason string is stable — EXPLAIN output, fallback counters
    (``stats.extra["fallback_<reason>"]``) and the trace all carry it.
    """
    if any(e.ordered for e in edges):
        return "ordered"
    if any(e.parent in component for e in prep.negated_edges):
        return "negated"
    if not is_forest(component, [(e.parent, e.child) for e in edges]):
        return "cyclic"
    return None


def _operand_variables(operand: Operand) -> set[str]:
    if isinstance(operand, Const):
        return set()
    if isinstance(operand, (ContentOf, NameOf, AttributeOf)):
        return {operand.variable}
    if isinstance(operand, Arith):
        return _operand_variables(operand.left) | _operand_variables(operand.right)
    return set()


def _push_down_conditions(
    graph: QueryGraph,
    element_ids: list[str],
    values_by_parent: dict[str, list[ContainmentEdge]],
    coverable_nodes: set[str],
) -> tuple[dict[str, list[Condition]], set[int]]:
    """Assign single-box conditions to their box's candidate pool.

    A condition whose variables all belong to one box's *cluster* — the box
    plus its value circles — evaluates identically on the pool row and on
    the final binding, so it filters the pool before any join.  Only boxes
    of set-at-a-time fragments consume conditions (fallback fragments leave
    them for the final filter).  Returns the per-box pushed conditions and
    the set of consumed condition indexes.
    """
    clusters = {
        n: {n} | {e.child for e in values_by_parent.get(n, ())}
        for n in element_ids
    }
    pushed: dict[str, list[Condition]] = {}
    consumed: set[int] = set()
    for idx, condition in enumerate(graph.conditions):
        variables = condition_variables(condition)
        if not variables:
            continue
        for node_id in element_ids:
            if node_id in coverable_nodes and variables <= clusters[node_id]:
                pushed.setdefault(node_id, []).append(condition)
                consumed.add(idx)
                break
    return pushed, consumed


def _setwise_fragment(
    prep: _Prep,
    ids: list[str],
    edges: list[ContainmentEdge],
    values_by_parent: dict[str, list[ContainmentEdge]],
    pushed: dict[str, list[Condition]],
) -> list[dict[str, object]]:
    """Evaluate one acyclic fragment set-at-a-time.

    Pools are filtered by required circles and pushed-down predicates,
    edge relations materialised from the cheaper side (cost-estimated from
    the interval index), then reduced and hash-joined by
    :func:`repro.engine.pipeline.evaluate_forest`.
    """
    graph, stats = prep.graph, prep.stats
    tracer = stats.trace
    pools: dict[str, list[Element]] = {}
    value_rows: dict[str, dict[int, dict[str, str]]] = {}
    with trace_span(tracer, "fragment.pools") as pools_span:
        for node_id in ids:
            pool, values = _filtered_pool(
                prep,
                node_id,
                values_by_parent.get(node_id, ()),
                pushed.get(node_id, ()),
            )
            if pools_span is not None:
                pools_span.attributes.setdefault("sizes", {})[node_id] = len(pool)
            if not pool:
                return []
            pools[node_id] = pool
            value_rows[node_id] = values

    relations = []
    with trace_span(tracer, "fragment.relations") as relations_span:
        for edge in edges:
            relation = relation_for(
                edge.parent, edge.child, _edge_pairs(prep, edge, pools), stats, key=id
            )
            if relations_span is not None:
                relations_span.attributes.setdefault("pairs", {})[
                    f"{edge.parent}-{edge.child}"
                ] = len(relation)
            if not relation.pairs:
                return []
            relations.append(relation)

    rows: list[dict[str, object]] = []
    for assignment in evaluate_forest(
        pools, relations, stats, planner_enabled=prep.options.use_planner
    ):
        row: dict[str, object] = dict(assignment)
        for node_id in ids:
            extra = value_rows[node_id].get(id(assignment[node_id]))
            if extra:
                row.update(extra)
        rows.append(row)
    return rows


def _filtered_pool(
    prep: _Prep,
    node_id: str,
    value_edges: Sequence[ContainmentEdge],
    conditions: Sequence[Condition],
) -> tuple[list[Element], dict[int, dict[str, str]]]:
    """A box's candidate pool with circles resolved and predicates applied."""
    graph, stats = prep.graph, prep.stats
    budget = stats.budget
    pool: list[Element] = []
    values: dict[int, dict[str, str]] = {}
    for element in prep.static_candidates[node_id]:
        if budget is not None:
            budget.charge()
        row: dict[str, object] = {node_id: element}
        ok = True
        for edge in value_edges:
            node = graph.nodes[edge.child]
            stats.condition_checks += 1
            value = _value_of(node, element)
            if value is None:
                ok = False
                break
            row[edge.child] = value
        if not ok:
            continue
        for condition in conditions:
            stats.condition_checks += 1
            if not condition.evaluate(row, _ACCESSOR):  # type: ignore[arg-type]
                ok = False
                break
        if not ok:
            continue
        pool.append(element)
        if len(row) > 1:
            del row[node_id]
            values[id(element)] = row  # type: ignore[assignment]
    return pool, values


def _edge_pairs(
    prep: _Prep, edge: ContainmentEdge, pools: dict[str, list[Element]]
) -> Iterator[tuple[Element, Element]]:
    """Candidate pairs satisfying one containment arc.

    Direct arcs probe each child's parent pointer (O(child pool)).  Deep
    arcs are enumerated from whichever side the interval index estimates
    cheaper: per-parent descendant slices (bisect ranges) versus per-child
    ancestor walks.
    """
    parent_pool = pools[edge.parent]
    child_pool = pools[edge.child]
    index, stats = prep.index, prep.stats
    budget = stats.budget
    if not edge.deep:
        parent_ids = {id(e) for e in parent_pool}
        for child in child_pool:
            parent = child.parent
            if isinstance(parent, Element) and id(parent) in parent_ids:
                yield (parent, child)
        return

    tag = prep.graph.nodes[edge.child].tag
    # Cost estimates from the index: slices cost their output, ancestor
    # walks cost their depth.
    parent_cost = sum(index.tag_count_within(p, tag) for p in parent_pool)
    child_cost = sum(index.depth(c) for c in child_pool)
    if parent_cost <= child_cost:
        child_ids = {id(c) for c in child_pool}
        for parent in parent_pool:
            stats.interval_lookups += 1
            descendants = (
                index.descendants_with_tag(parent, tag)
                if tag is not None
                else index.descendants(parent)
            )
            for child in descendants:
                if budget is not None:
                    budget.charge()
                if id(child) in child_ids:
                    yield (parent, child)
    else:
        parent_ids = {id(p) for p in parent_pool}
        for child in child_pool:
            for ancestor in child.ancestors():
                if budget is not None:
                    budget.charge()
                if id(ancestor) in parent_ids:
                    yield (ancestor, child)


def _combine_fragments(
    conditions: Sequence[Condition],
    fragments: list[tuple[set[str], list[dict[str, object]]]],
    consumed: set[int],
    stats: EvalStats,
) -> list[dict[str, object]]:
    """Merge fragment row sets: hash equi-joins where a ``=`` condition
    links two fragments, cross products otherwise.

    Consumed condition indexes are added to ``consumed`` so the final
    filter skips them.  Smallest fragments merge first.
    """
    if not fragments:
        return []
    join_conditions = [
        (idx, condition, _operand_variables(condition.left),
         _operand_variables(condition.right))
        for idx, condition in enumerate(conditions)
        if idx not in consumed
        and isinstance(condition, Comparison)
        and condition.op == "="
        and _operand_variables(condition.left)
        and _operand_variables(condition.right)
    ]
    pending = sorted(fragments, key=lambda f: len(f[1]))
    current_vars, current_rows = pending.pop(0)
    current_vars = set(current_vars)
    while pending:
        pick = None
        for idx, condition, left_vars, right_vars in join_conditions:
            if idx in consumed:
                continue
            for position, (frag_vars, _) in enumerate(pending):
                if left_vars <= current_vars and right_vars <= frag_vars:
                    pick = (idx, condition.left, condition.right, position)
                    break
                if right_vars <= current_vars and left_vars <= frag_vars:
                    pick = (idx, condition.right, condition.left, position)
                    break
            if pick:
                break
        if pick:
            idx, current_operand, other_operand, position = pick
            frag_vars, frag_rows = pending.pop(position)
            current_rows = _hash_equijoin(
                current_rows, current_operand, frag_rows, other_operand, stats
            )
            consumed.add(idx)
        else:
            frag_vars, frag_rows = pending.pop(0)
            current_rows = [
                {**row, **other} for row in current_rows for other in frag_rows
            ]
            stats.hashjoin_rows += len(current_rows)
            if stats.budget is not None:
                stats.budget.add_rows(len(current_rows))
        current_vars |= frag_vars
        if not current_rows:
            return []
    return current_rows


def _hash_equijoin(
    left_rows: list[dict[str, object]],
    left_operand: Operand,
    right_rows: list[dict[str, object]],
    right_operand: Operand,
    stats: EvalStats,
) -> list[dict[str, object]]:
    """Join two row sets on computed operand values.

    Keys normalise through :func:`repro.engine.joins.equijoin_key`, so the
    join accepts exactly the pairs ``Comparison("=")`` would — rows whose
    operand is ``None`` or fails to evaluate never match.
    """
    table: dict[object, list[dict[str, object]]] = {}
    for row in right_rows:
        stats.condition_checks += 1
        try:
            value = right_operand.evaluate(row, _ACCESSOR)  # type: ignore[arg-type]
        except (TypeError, KeyError):
            continue
        key = equijoin_key(value)
        if key is None:
            continue
        table.setdefault(key, []).append(row)
    joined: list[dict[str, object]] = []
    for row in left_rows:
        stats.condition_checks += 1
        try:
            value = left_operand.evaluate(row, _ACCESSOR)  # type: ignore[arg-type]
        except (TypeError, KeyError):
            continue
        key = equijoin_key(value)
        if key is None:
            continue
        for other in table.get(key, ()):
            joined.append({**row, **other})
    stats.hashjoin_rows += len(joined)
    if stats.budget is not None:
        stats.budget.add_rows(len(joined))
    return joined


# ---------------------------------------------------------------------------
# Shared leaf helpers
# ---------------------------------------------------------------------------

def _static_candidates(
    node: ElementPattern,
    document: Document,
    index: DocumentIndex,
    options: MatchOptions,
    stats: EvalStats,
    required_attributes: list[str],
) -> list[Element]:
    if node.anchored:
        root = document.root
        if root is None:
            return []
        if node.tag is not None and root.tag != node.tag:
            return []
        return [root]
    if options.scans_only():
        stats.full_scans += 1
        if node.tag is None:
            return list(document.iter())
        return [e for e in document.iter() if e.tag == node.tag]
    # indexed: start from the smallest pool among the tag pool and the
    # required-attribute pools, then filter by the remaining criteria
    pools: list[tuple[Element, ...]] = []
    if node.tag is not None:
        stats.index_lookups += 1
        pools.append(index.elements_with_tag(node.tag))
    for name in required_attributes:
        stats.index_lookups += 1
        pools.append(index.elements_with_attribute(name))
    if not pools:
        stats.full_scans += 1
        return list(document.iter())
    base = min(pools, key=len)
    return [
        e
        for e in base
        if (node.tag is None or e.tag == node.tag)
        and all(name in e.attributes for name in required_attributes)
    ]


def _ordered_ok(
    ordered_groups: list[list[ContainmentEdge]],
    assignment: dict[str, Element],
    index: DocumentIndex,
    stats: EvalStats,
) -> bool:
    """Ordered arcs of one parent must match in drawing order."""
    for edges_sorted in ordered_groups:
        positions = []
        for edge in edges_sorted:
            child = assignment.get(edge.child)
            if child is None:
                continue
            try:
                positions.append(index.position(child))
            except KeyError:
                return False  # child from another document cannot be ordered
        stats.edge_checks += 1
        if positions != sorted(positions) or len(set(positions)) != len(positions):
            return False
    return True


def _resolve_value_patterns(
    graph: QueryGraph,
    value_edges: list[ContainmentEdge],
    element_binding: dict[str, Element],
    stats: EvalStats,
) -> Iterator[dict[str, object]]:
    """Extend an element assignment with text/attribute bindings.

    Each circle resolves deterministically (at most one value per parent),
    so this yields zero or one extended binding.
    """
    binding: dict[str, object] = dict(element_binding)
    for edge in value_edges:
        parent = element_binding.get(edge.parent)
        if parent is None:
            return
        node = graph.nodes[edge.child]
        value = _value_of(node, parent)
        stats.condition_checks += 1
        if value is None:
            return
        binding[edge.child] = value
    yield binding


def _value_of(node, parent: Element) -> Optional[str]:
    """Resolve a text/attribute circle under ``parent``; ``None`` = no match."""
    if isinstance(node, TextPattern):
        text = parent.immediate_text().strip()
        if not text:
            return None
        if node.value is not None and text != node.value:
            return None
        if node.compiled_regex is not None and node.compiled_regex.fullmatch(text) is None:
            return None
        return text
    assert isinstance(node, AttributePattern)
    value = parent.get(node.name)
    if value is None:
        return None
    if node.value is not None and value != node.value:
        return None
    if node.compiled_regex is not None and node.compiled_regex.fullmatch(value) is None:
        return None
    return value


def _negations_ok(
    graph: QueryGraph,
    negated_edges: list[ContainmentEdge],
    element_binding: dict[str, Element],
    index: DocumentIndex,
    use_intervals: bool,
    stats: EvalStats,
) -> bool:
    for edge in negated_edges:
        parent = element_binding.get(edge.parent)
        if parent is None:
            continue
        if _subtree_exists(graph, edge, parent, index, use_intervals, stats):
            return False
    return True


def _subtree_exists(
    graph: QueryGraph,
    edge: ContainmentEdge,
    parent: Element,
    index: DocumentIndex,
    use_intervals: bool,
    stats: EvalStats,
) -> bool:
    """Does any embedding of ``edge.child``'s subpattern exist under ``parent``?"""
    node = graph.nodes[edge.child]
    if isinstance(node, (TextPattern, AttributePattern)):
        stats.condition_checks += 1
        return _value_of(node, parent) is not None
    assert isinstance(node, ElementPattern)
    pool: Sequence[Element]
    if edge.deep:
        if use_intervals and index.covers(parent):
            stats.interval_lookups += 1
            pool = (
                index.descendants_with_tag(parent, node.tag)
                if node.tag is not None
                else index.descendants(parent)
            )
        else:
            pool = [e for e in parent.iter(node.tag) if e is not parent]
    else:
        pool = [
            c
            for c in parent.child_elements()
            if node.tag is None or c.tag == node.tag
        ]
    child_edges = graph.children_of(node.id)
    for candidate in pool:
        stats.candidates_tried += 1
        if stats.budget is not None:
            stats.budget.charge()
        if all(
            _subtree_exists(graph, child_edge, candidate, index, use_intervals, stats)
            for child_edge in child_edges
            if not child_edge.negated
        ) and all(
            not _subtree_exists(graph, child_edge, candidate, index, use_intervals, stats)
            for child_edge in child_edges
            if child_edge.negated
        ):
            return True
    return False
