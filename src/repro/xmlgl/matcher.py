"""Evaluation of XML-GL extract graphs against documents.

The matcher enumerates every assignment of the query graph's nodes to
document nodes such that

* element boxes map to elements with the required tag (wildcards to any),
* containment arcs map to parent/child (or ancestor/descendant for starred
  arcs) relationships,
* hollow circles bind the parent's immediate text, filled circles bind
  attribute values, honouring their constant/regex constraints,
* crossed-out arcs have **no** embedding of their subpattern,
* ordered arcs respect relative document order, and
* every predicate annotation holds.

Shared sub-nodes (the DAG case) come out naturally: a node id is assigned
once, so two arcs pointing at it force the *same* document node — that is
XML-GL's join.  Matching is homomorphic: two different boxes may map to the
same element.

Or-arcs are evaluated by branch expansion: one branch per or-group is
chosen, the resulting plain graph matched, and the binding sets unioned
(with duplicate elimination across branches).

Matching is split into two phases.  :func:`compile_graph` performs every
document-independent analysis once — validation, condition-scope checks,
or-group branch expansion, edge classification, fragment discovery with
hard-fallback reasons, condition pushdown assignment — producing a
:class:`CompiledGraphPlan` that :func:`match` accepts via ``plan=`` so
repeated queries (through the plan cache,
:mod:`repro.engine.plan_cache`) skip the analysis entirely.  Document-
dependent state (candidate pools) is prepared per evaluation.

Four engines share this module (``MatchOptions.engine``):

* ``"adaptive"`` (default) runs the pipeline's fragment loop but decides
  **per fragment** between set-at-a-time and backtracking evaluation by
  comparing estimated costs (:mod:`repro.engine.estimator`,
  :func:`repro.engine.planner.choose_fragment_engine`).  Fragments with
  pushed-down predicates stay set-at-a-time (pool pre-filtering is the
  pipeline's structural advantage); the shape-based hard fallbacks below
  apply unchanged.  Cost-chosen backtracking fragments carry the trace
  decision ``backtracking`` / reason ``cost``.
* ``"pipeline"`` evaluates **set-at-a-time**: the paper's
  queries-are-graphs idiom makes every extract graph a relational join
  plan, so each acyclic query fragment is compiled to per-box candidate
  pools (from the :class:`~repro.engine.index.DocumentIndex`) plus binary
  edge relations, single-box predicates and required circles are pushed
  down into the pools, a Yannakakis semi-join reduction removes dangling
  candidates over a cost-chosen join tree, and hash joins assemble the
  binding set.  Value joins — ``=`` conditions linking otherwise
  disconnected fragments — become hash equi-joins instead of filtered
  cross products.  Fragments the pipeline cannot cover (undirected cycles,
  ordered arcs, negation parents) fall back to the backtracking core *per
  fragment* (counted in ``stats.pipeline_fallbacks``).
* ``"backtracking"`` is the node-at-a-time core: boxes ordered with
  :func:`repro.engine.planner.plan_order`, candidates narrowed dynamically
  from already-assigned neighbours via the interval-encoded index
  (descendant pools are bisect ranges, ancestor tests two integer
  comparisons; candidates drawn from such pools satisfy every incident arc
  *by construction* and are counted as ``interval_candidates``, not
  ``candidates_tried``).
* ``"naive"`` is backtracking with the index disabled — subtree walks and
  per-candidate ancestor chases — the ablation baseline (EXT-A1 in
  DESIGN.md) and the differential oracle for both other engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Iterable, Iterator, Optional, Sequence

from ..engine.bindings import Binding, BindingSet
from ..engine.columns import containment_count, containment_pairs, direct_pairs
from ..engine.conditions import (
    Arith,
    AttributeOf,
    Comparison,
    Condition,
    Const,
    ContentOf,
    DocumentAccessor,
    NameOf,
    Operand,
    condition_variables,
)
from ..engine.estimator import CardinalityEstimator
from ..engine.index import DocumentIndex
from ..engine.joins import equijoin_key
from ..engine.limits import arm_budget, mark_truncated
from ..engine.narrowing import intersect_pools
from ..engine.options import MatchOptions
from ..engine.pipeline import (
    column_relation_for,
    connected_components,
    evaluate_forest,
    evaluate_forest_columns,
    is_forest,
    relation_for,
)
from ..engine.planner import FragmentCosts, choose_fragment_engine, plan_order
from ..engine.stats import EvalStats
from ..engine.trace import Tracer, span as trace_span
from ..errors import BudgetExceeded, QueryStructureError
from ..ssd.model import Document, Element
from .ast import (
    AttributePattern,
    ContainmentEdge,
    ElementPattern,
    QueryGraph,
    TextPattern,
)

__all__ = ["CompiledGraphPlan", "MatchOptions", "compile_graph", "match"]

_ACCESSOR = DocumentAccessor()


def match(
    graph: QueryGraph,
    document: Document,
    options: Optional[MatchOptions] = None,
    index: Optional[DocumentIndex] = None,
    stats: Optional[EvalStats] = None,
    plan: Optional["CompiledGraphPlan"] = None,
) -> BindingSet:
    """All bindings of ``graph`` in ``document``.

    Element boxes bind :class:`~repro.ssd.model.Element` nodes; text and
    attribute circles bind strings.  The graph is validated first.

    ``index`` must be an index *of* ``document``; when omitted a fresh one
    is built (callers evaluating many queries over one frozen document
    should pass :func:`repro.engine.cache.get_index` instead).

    ``plan`` is a :func:`compile_graph` result *for this graph*: the
    document-independent analysis (validation included) is then skipped —
    the plan-cache fast path.  When omitted the graph is compiled here.
    """
    if plan is None:
        plan = compile_graph(graph)
    options = options or MatchOptions()
    stats = stats if stats is not None else EvalStats()
    if options.trace and stats.trace is None:
        stats.trace = Tracer()
    budget = arm_budget(stats, options.budget)
    index = index or DocumentIndex(document)
    engine = options.resolved_engine()

    results = BindingSet()
    with stats.timed():
        seen: set[tuple] = set()
        multiple_branches = plan.multiple_branches
        try:
            for branch in plan.branches:
                prep = _prepare(branch, document, index, options, stats)
                if prep is None:
                    continue
                if engine in ("pipeline", "adaptive"):
                    produced: Iterator[Binding] = _match_pipeline(
                        prep, adaptive=engine == "adaptive"
                    )
                else:
                    produced = _match_backtracking(prep)
                for binding in produced:
                    if multiple_branches:
                        key = binding.key()
                        if key in seen:
                            continue
                        seen.add(key)
                    if budget is not None:
                        # Check before adding so a partial result holds at
                        # most max_bindings rows.
                        budget.check_bindings(stats.bindings_produced + 1)
                    results.add(binding)
                    stats.bindings_produced += 1
        except BudgetExceeded as exc:
            # Cancellation (QueryCancelled) is not a budget trip and always
            # propagates; budget trips honour the on_limit policy.
            if budget is None or not budget.budget.partial:
                raise
            mark_truncated(stats, exc.limit)
    return results


# ---------------------------------------------------------------------------
# Or-group expansion
# ---------------------------------------------------------------------------

def _expand_or_groups(graph: QueryGraph) -> Iterator[QueryGraph]:
    """Yield one plain graph per combination of or-group branches.

    Nodes reachable only through *unchosen* branches are pruned from each
    expansion — they are not part of that disjunct and must not constrain
    the match.
    """
    if not graph.or_groups:
        yield graph
        return
    branch_lists = [group.alternatives for group in graph.or_groups]
    had_parent = {e.child for e in graph.all_edges()}
    for choice in product(*branch_lists):
        expanded = QueryGraph(
            nodes=dict(graph.nodes),
            edges=list(graph.edges),
            or_groups=[],
            conditions=list(graph.conditions),
            source=graph.source,
        )
        for branch in choice:
            expanded.edges.extend(branch)
        _prune_unchosen(expanded, had_parent)
        yield expanded


def _prune_unchosen(expanded: QueryGraph, had_parent: set[str]) -> None:
    """Drop nodes that lost their only incoming arc to an unchosen branch."""
    changed = True
    while changed:
        changed = False
        with_parent = {e.child for e in expanded.edges}
        for node_id in list(expanded.nodes):
            if node_id in had_parent and node_id not in with_parent:
                del expanded.nodes[node_id]
                expanded.edges = [
                    e
                    for e in expanded.edges
                    if e.parent != node_id and e.child != node_id
                ]
                changed = True


# ---------------------------------------------------------------------------
# Compilation (document-independent analysis)
# ---------------------------------------------------------------------------

class _FragmentLocals:
    """Query-only digests of one fragment, shared by every evaluation.

    :func:`_fragment_bindings` used to recompute these per *call* — once
    per fallback fragment per document, and again per degradation re-run.
    They depend only on the branch plan and the fragment's id set, so the
    plan computes them once and caches them (satellite micro-opt, measured
    in bench_smoke).
    """

    __slots__ = (
        "element_edges",
        "value_edges",
        "negated_edges",
        "adjacency",
        "edges_by_endpoint",
        "ordered_groups",
    )

    def __init__(self, branch: "_BranchPlan", fragment_ids: tuple[str, ...]):
        ids = set(fragment_ids)
        self.element_edges = [
            e for e in branch.element_edges if e.parent in ids and e.child in ids
        ]
        self.value_edges = [e for e in branch.value_edges if e.parent in ids]
        self.negated_edges = [e for e in branch.negated_edges if e.parent in ids]
        self.adjacency: dict[str, list[str]] = {n: [] for n in fragment_ids}
        self.edges_by_endpoint: dict[str, list[ContainmentEdge]] = {
            n: [] for n in fragment_ids
        }
        for edge in self.element_edges:
            self.adjacency[edge.parent].append(edge.child)
            self.adjacency[edge.child].append(edge.parent)
            self.edges_by_endpoint[edge.parent].append(edge)
            self.edges_by_endpoint[edge.child].append(edge)
        # ordered-arc groups are fixed by the query: group and sort them
        # once, not per produced binding
        ordered_by_parent: dict[str, list[ContainmentEdge]] = {}
        for edge in self.element_edges:
            if edge.ordered:
                ordered_by_parent.setdefault(edge.parent, []).append(edge)
        self.ordered_groups = [
            sorted(edges, key=lambda e: e.position)
            for edges in ordered_by_parent.values()
            if len(edges) >= 2
        ]


@dataclass
class _BranchPlan:
    """One expanded (plain) branch, fully analysed without any document.

    Everything here depends only on the query graph, so a branch plan is
    immutable-by-convention and safe to share across evaluations and
    threads (the plan cache does both).  ``consumed`` is a *frozen* set:
    :func:`_combine_fragments` mutates its working copy while equi-joining,
    so every evaluation copies it first.
    """

    graph: QueryGraph
    element_ids: list[str]
    element_edges: list[ContainmentEdge]
    value_edges: list[ContainmentEdge]
    negated_edges: list[ContainmentEdge]
    attr_hints: dict[str, list[str]]
    adjacency: dict[str, list[str]]
    values_by_parent: dict[str, list[ContainmentEdge]]
    #: Non-negated circles with a constant/regex constraint, per parent box
    #: — these prefilter the box's static pool for every engine.
    constrained_circles: dict[str, list[object]]
    multi_parent_circle: bool
    #: ``(ids, edges, hard_fallback_reason)`` per connected fragment.
    components: list[tuple[list[str], list[ContainmentEdge], Optional[str]]]
    pushed: dict[str, list[Condition]]
    consumed: frozenset[int]
    #: Per-fragment locals cache, keyed by the fragment's id tuple.  Filled
    #: lazily; recomputation is idempotent, so concurrent warm-up from the
    #: shared plan cache is benign.
    _locals: dict[tuple[str, ...], _FragmentLocals] = field(
        default_factory=dict, repr=False, compare=False
    )

    def fragment_locals(self, fragment_ids: Sequence[str]) -> _FragmentLocals:
        key = tuple(fragment_ids)
        locals_ = self._locals.get(key)
        if locals_ is None:
            locals_ = self._locals[key] = _FragmentLocals(self, key)
        return locals_


@dataclass
class CompiledGraphPlan:
    """The compiled form of one extract graph: analysed or-branches."""

    branches: list[_BranchPlan]
    multiple_branches: bool


def compile_graph(graph: QueryGraph) -> CompiledGraphPlan:
    """Analyse ``graph`` once: everything :func:`match` needs that does
    not depend on the document.

    Validates the graph and checks condition scope (so a cached plan
    implies a valid query), expands or-groups, and digests each branch.
    Branches proved empty (no active boxes) are dropped here.
    """
    graph.validate()
    _check_condition_scope(graph)
    branches = []
    for expanded in _expand_or_groups(graph):
        branch = _compile_branch(expanded)
        if branch is not None:
            branches.append(branch)
    return CompiledGraphPlan(
        branches=branches, multiple_branches=bool(graph.or_groups)
    )


def _compile_branch(graph: QueryGraph) -> Optional[_BranchPlan]:
    """Digest one plain (or-free) graph; ``None`` when it has no boxes."""
    active = _active_nodes(graph)
    element_ids = [n.id for n in graph.element_nodes() if n.id in active]
    if not element_ids:
        return None

    element_edges = [
        e
        for e in graph.edges
        if not e.negated
        and e.parent in active
        and e.child in active
        and isinstance(graph.nodes[e.child], ElementPattern)
    ]
    value_edges = [
        e
        for e in graph.edges
        if not e.negated
        and e.parent in active
        and isinstance(graph.nodes[e.child], (TextPattern, AttributePattern))
    ]
    negated_edges = [e for e in graph.negated_edges() if e.parent in active]

    # attribute circles required (non-negated) below each box: their names
    # narrow the box's static candidates through the attribute index
    attr_hints: dict[str, list[str]] = {}
    for edge in value_edges:
        child = graph.nodes[edge.child]
        if isinstance(child, AttributePattern):
            attr_hints.setdefault(edge.parent, []).append(child.name)

    adjacency: dict[str, list[str]] = {n: [] for n in element_ids}
    for edge in element_edges:
        adjacency[edge.parent].append(edge.child)
        adjacency[edge.child].append(edge.parent)

    values_by_parent: dict[str, list[ContainmentEdge]] = {}
    circle_parents: dict[str, int] = {}
    for edge in value_edges:
        values_by_parent.setdefault(edge.parent, []).append(edge)
        circle_parents[edge.child] = circle_parents.get(edge.child, 0) + 1
    multi_parent_circle = any(count > 1 for count in circle_parents.values())

    constrained_circles: dict[str, list[object]] = {}
    for edge in value_edges:
        child = graph.nodes[edge.child]
        if child.value is not None or child.compiled_regex is not None:
            constrained_circles.setdefault(edge.parent, []).append(child)

    components: list[tuple[list[str], list[ContainmentEdge], Optional[str]]] = []
    for component in connected_components(
        element_ids, [(e.parent, e.child) for e in element_edges]
    ):
        ids = [n for n in element_ids if n in component]
        edges = [
            e
            for e in element_edges
            if e.parent in component and e.child in component
        ]
        components.append(
            (ids, edges, _fallback_reason(negated_edges, component, edges))
        )

    pushed, consumed = _push_down_conditions(graph, element_ids, values_by_parent)
    return _BranchPlan(
        graph=graph,
        element_ids=element_ids,
        element_edges=element_edges,
        value_edges=value_edges,
        negated_edges=negated_edges,
        attr_hints=attr_hints,
        adjacency=adjacency,
        values_by_parent=values_by_parent,
        constrained_circles=constrained_circles,
        multi_parent_circle=multi_parent_circle,
        components=components,
        pushed=pushed,
        consumed=frozenset(consumed),
    )


# ---------------------------------------------------------------------------
# Shared preparation
# ---------------------------------------------------------------------------

def _check_condition_scope(graph: QueryGraph) -> None:
    """Conditions may not reach into negated subtrees."""
    negated: set[str] = set()
    for edge in graph.negated_edges():
        stack = [edge.child]
        while stack:
            node_id = stack.pop()
            if node_id in negated:
                continue
            negated.add(node_id)
            stack.extend(e.child for e in graph.edges if e.parent == node_id)
    for condition in graph.conditions:
        overlap = condition_variables(condition) & negated
        if overlap:
            raise QueryStructureError(
                f"condition {condition} references negated node(s) {sorted(overlap)}"
            )


def _active_nodes(graph: QueryGraph) -> set[str]:
    """Nodes taking part in positive matching of this (plain) graph."""
    active: set[str] = set()
    incident: set[str] = set()
    for edge in graph.edges:
        incident.add(edge.parent)
        if edge.negated:
            continue
        active.add(edge.parent)
        active.add(edge.child)
    for node in graph.nodes.values():
        if isinstance(node, ElementPattern) and node.id not in incident:
            # isolated box (or box only acting as negation parent)
            active.add(node.id)
    # Parents of negated edges must be matched even if otherwise isolated.
    for edge in graph.negated_edges():
        active.add(edge.parent)
    # Remove nodes that are only inside negated subtrees.
    negated_only = set()
    for edge in graph.negated_edges():
        stack = [edge.child]
        while stack:
            node_id = stack.pop()
            if node_id in negated_only:
                continue
            negated_only.add(node_id)
            stack.extend(e.child for e in graph.edges if e.parent == node_id)
    return active - negated_only


@dataclass
class _Prep:
    """One compiled branch bound to a document: pools plus run context."""

    branch: _BranchPlan
    document: Document
    index: DocumentIndex
    options: MatchOptions
    stats: EvalStats
    static_candidates: dict[str, list[Element]]
    use_intervals: bool = True
    #: Run coverable fragments on the columnar kernels (pre-id pools,
    #: :mod:`repro.engine.columns`).  Requires the interval index.
    use_columns: bool = True
    #: Lazy caches: membership id-sets feed only the backtracking core and
    #: pre columns only the columnar pipeline, so neither is built until an
    #: engine actually asks (a pure-pipeline run never pays for sets, a
    #: pure-backtracking run never pays for columns).
    _static_sets: dict[str, set[int]] = field(default_factory=dict, repr=False)
    _static_pres: dict[str, Sequence[int]] = field(default_factory=dict, repr=False)

    def static_set(self, node_id: str) -> set[int]:
        """Membership id-set of the node's static pool (cached)."""
        cached = self._static_sets.get(node_id)
        if cached is None:
            cached = self._static_sets[node_id] = {
                id(e) for e in self.static_candidates[node_id]
            }
        return cached

    def static_pres(self, node_id: str) -> Sequence[int]:
        """Sorted pre column of the node's static pool (cached).

        *Pristine* pools — nothing dropped from a single index pool — are
        recognised by length (static narrowing only ever removes
        elements, so equal size means equal set) and reuse the index's own
        sorted pre arrays with zero copying; every other pool pays one
        ``pre`` lookup per element.  Static pools inherit document order
        from the index, so the columns are ascending by construction.
        """
        cached = self._static_pres.get(node_id)
        if cached is None:
            pool = self.static_candidates[node_id]
            index = self.index
            tag = self.graph.nodes[node_id].tag
            if tag is not None and len(pool) == index.tag_count(tag):
                cached = index.tag_pres(tag)
            elif tag is None and len(pool) == index.element_count():
                cached = index.all_pres()
            else:
                cached = index.pres_of(pool)
            self._static_pres[node_id] = cached
        return cached

    # Pass-throughs so the engine code reads one object, whether the
    # analysis was cached or compiled this call.
    @property
    def graph(self) -> QueryGraph:
        return self.branch.graph

    @property
    def element_ids(self) -> list[str]:
        return self.branch.element_ids

    @property
    def element_edges(self) -> list[ContainmentEdge]:
        return self.branch.element_edges

    @property
    def value_edges(self) -> list[ContainmentEdge]:
        return self.branch.value_edges

    @property
    def negated_edges(self) -> list[ContainmentEdge]:
        return self.branch.negated_edges

    @property
    def adjacency(self) -> dict[str, list[str]]:
        return self.branch.adjacency


def _prepare(
    branch: _BranchPlan,
    document: Document,
    index: DocumentIndex,
    options: MatchOptions,
    stats: EvalStats,
) -> Optional[_Prep]:
    """Bind one compiled branch to a document; ``None`` when some box's
    pool is empty (the branch cannot bind anything)."""
    graph = branch.graph
    use_intervals = not options.scans_only()
    static_candidates: dict[str, list[Element]] = {}
    for node_id in branch.element_ids:
        pool = _static_candidates(
            graph.nodes[node_id], document, index, options, stats,
            branch.attr_hints.get(node_id, []),
        )
        # Constant/regex circles are per-element filters known statically:
        # apply them to the pool once, so *both* engines enumerate only
        # elements that can still resolve every constrained circle (the
        # ext_paths/filtered fix — without this, a fallback fragment scans
        # the unfiltered pool exactly like the naive engine).
        constrained = branch.constrained_circles.get(node_id)
        if constrained and use_intervals and pool:
            kept = []
            for element in pool:
                stats.condition_checks += len(constrained)
                if all(
                    _value_of(circle, element) is not None
                    for circle in constrained
                ):
                    kept.append(element)
            if len(kept) < len(pool):
                stats.bump("circle_prefiltered", len(pool) - len(kept))
            pool = kept
        if not pool:
            return None
        static_candidates[node_id] = pool
    return _Prep(
        branch=branch,
        document=document,
        index=index,
        options=options,
        stats=stats,
        static_candidates=static_candidates,
        use_intervals=use_intervals,
        use_columns=use_intervals and options.columnar,
    )


# ---------------------------------------------------------------------------
# Backtracking core (node-at-a-time)
# ---------------------------------------------------------------------------

def _match_backtracking(prep: _Prep) -> Iterator[Binding]:
    """The node-at-a-time engine: one backtracking pass over every box."""
    for row in _fragment_bindings(prep, prep.element_ids):
        full = Binding(row)
        ok = True
        for condition in prep.graph.conditions:
            prep.stats.condition_checks += 1
            if not condition.evaluate(full, _ACCESSOR):
                ok = False
                break
        if ok:
            yield full


def _fragment_bindings(
    prep: _Prep,
    fragment_ids: Sequence[str],
    pools: Optional[dict[str, list[Element]]] = None,
) -> Iterator[dict[str, object]]:
    """Backtracking enumeration of one query fragment.

    Yields complete assignments for ``fragment_ids`` — ordered arcs,
    negated arcs and value circles of the fragment resolved — as plain
    dicts.  Rule-level conditions are *not* applied here; the pipeline
    applies them after fragments are combined, the backtracking engine
    right after this generator.  With ``fragment_ids`` covering every box
    this is exactly the legacy single-pass engine.  ``pools`` overrides
    per-box candidate pools (pushed-down conditions applied by
    :func:`_pushdown_pools`) without touching the shared preparation.
    """
    graph, index, options, stats = prep.graph, prep.index, prep.options, prep.stats
    budget = stats.budget
    locals_ = prep.branch.fragment_locals(fragment_ids)
    element_edges = locals_.element_edges
    value_edges = locals_.value_edges
    negated_edges = locals_.negated_edges
    adjacency = locals_.adjacency
    static_candidates = prep.static_candidates
    override_sets: dict[str, set[int]] = {}
    if pools:
        static_candidates = {**static_candidates, **pools}
        override_sets = {n: {id(e) for e in pool} for n, pool in pools.items()}

    def allowed_for(node_id: str) -> set[int]:
        override = override_sets.get(node_id)
        return override if override is not None else prep.static_set(node_id)

    use_intervals = prep.use_intervals

    def estimate(node_id: str) -> int:
        """Selectivity: global tag count, sharpened to the count within an
        already-pinned parent's subtree when the pattern fixes one."""
        base = len(static_candidates[node_id])
        if not use_intervals:
            return base
        node = graph.nodes[node_id]
        best = base
        for edge in element_edges:
            if edge.child != node_id:
                continue
            parents = static_candidates[edge.parent]
            if len(parents) != 1 or not index.covers(parents[0]):
                continue
            anchor = parents[0]
            if edge.deep:
                within = index.tag_count_within(anchor, node.tag)
            else:
                within = sum(
                    1
                    for child in anchor.child_elements()
                    if node.tag is None or child.tag == node.tag
                )
            best = min(best, within)
        if best < base:
            stats.bump("selectivity_refinements")
        return best

    order = plan_order(
        list(fragment_ids),
        estimate=estimate,
        adjacency=adjacency,
        enabled=options.use_planner,
    )

    edges_by_endpoint = locals_.edges_by_endpoint
    ordered_groups = locals_.ordered_groups

    assignment: dict[str, Element] = {}

    def structural_ok(edge: ContainmentEdge) -> bool:
        parent = assignment.get(edge.parent)
        child = assignment.get(edge.child)
        if parent is None or child is None:
            return True
        stats.edge_checks += 1
        if edge.deep:
            if use_intervals and index.covers(parent) and index.covers(child):
                return index.is_ancestor(parent, child)
            return any(anc is parent for anc in child.ancestors())
        return child.parent is parent

    def pool_for(edge: ContainmentEdge, node_id: str) -> Optional[Sequence[Element]]:
        """Candidate pool one incident edge contributes, or ``None`` when
        the edge's other endpoint is not assigned yet."""
        if edge.child == node_id and edge.parent in assignment:
            parent = assignment[edge.parent]
            if not edge.deep:
                return parent.child_elements()
            if use_intervals and index.covers(parent):
                stats.interval_lookups += 1
                tag = graph.nodes[node_id].tag
                if tag is not None:
                    return index.descendants_with_tag(parent, tag)
                return index.descendants(parent)
            return [e for e in parent.iter() if e is not parent]
        if edge.parent == node_id and edge.child in assignment:
            child = assignment[edge.child]
            if edge.deep:
                return list(child.ancestors())
            return [child.parent] if isinstance(child.parent, Element) else []
        return None

    def candidates_for(node_id: str) -> tuple[Sequence[Element], bool]:
        """``(candidates, verified)`` — every incident assigned edge
        contributes one pool, so pool-intersection membership *is* the
        conjunction of those arcs: verified candidates skip per-candidate
        structural re-checks (one wholesale ``edge_checks`` per pool)."""
        pools: list[Sequence[Element]] = []
        for edge in edges_by_endpoint[node_id]:
            pool = pool_for(edge, node_id)
            if pool is not None:
                pools.append(pool)
        if not pools:
            return static_candidates[node_id], False
        narrowed = intersect_pools(pools, allowed=allowed_for(node_id), key=id)
        if use_intervals:
            stats.edge_checks += len(pools)
            return narrowed, True
        return narrowed, False

    def backtrack(position: int) -> Iterator[dict[str, Element]]:
        if position == len(order):
            yield dict(assignment)
            return
        node_id = order[position]
        candidates, verified = candidates_for(node_id)
        if verified:
            for candidate in candidates:
                stats.interval_candidates += 1
                if budget is not None:
                    budget.charge()
                assignment[node_id] = candidate
                yield from backtrack(position + 1)
                del assignment[node_id]
        else:
            incident = edges_by_endpoint[node_id]
            for candidate in candidates:
                stats.candidates_tried += 1
                if budget is not None:
                    budget.charge()
                assignment[node_id] = candidate
                if all(structural_ok(e) for e in incident):
                    yield from backtrack(position + 1)
                del assignment[node_id]

    for element_binding in backtrack(0):
        if not _ordered_ok(ordered_groups, element_binding, index, stats):
            continue
        if not _negations_ok(
            graph, negated_edges, element_binding, index, use_intervals, stats
        ):
            continue
        yield from _resolve_value_patterns(
            graph, value_edges, element_binding, stats
        )


# ---------------------------------------------------------------------------
# Set-at-a-time pipeline
# ---------------------------------------------------------------------------

def _match_pipeline(prep: _Prep, adaptive: bool = False) -> Iterator[Binding]:
    """The set-at-a-time engine: semi-join pipeline with per-fragment
    fallback; see the module docstring for the plan shape.

    With ``adaptive=True`` each coverable fragment is cost-compared first
    (:func:`_adaptive_decision`) and runs on the backtracking core when the
    estimator says node-at-a-time is cheaper; hard fallbacks and the
    cross-fragment combine stage are identical under both modes.
    """
    branch = prep.branch
    graph, stats = prep.graph, prep.stats
    tracer = stats.trace

    # A circle with several parent arcs resolves against each in edge
    # order (last write wins); that interleaving is inherently
    # tuple-at-a-time, so keep the legacy core for the whole expansion.
    if branch.multi_parent_circle:
        stats.pipeline_fallbacks += 1
        stats.bump("fallback_multi-parent-circle")
        with trace_span(
            tracer,
            "match.fragment",
            variables=list(prep.element_ids),
            decision="fallback",
            reason="multi-parent-circle",
        ):
            yield from _match_backtracking(prep)
        return

    values_by_parent = branch.values_by_parent
    pushed = branch.pushed
    consumed = set(branch.consumed)

    fragments: list[tuple[set[str], list[dict[str, object]]]] = []
    for ids, edges, fallback_reason in branch.components:
        decision = "pipeline" if fallback_reason is None else "fallback"
        costs: Optional[FragmentCosts] = None
        if adaptive and fallback_reason is None:
            costs = _adaptive_decision(prep, ids, edges)
            if costs is not None and costs.engine == "backtracking":
                decision = "backtracking"
        with trace_span(
            tracer,
            "match.fragment",
            variables=ids,
            decision=decision,
            reason="cost" if decision == "backtracking" else fallback_reason,
        ) as fragment_span:
            if fragment_span is not None and costs is not None:
                fragment_span["est_pipeline"] = round(costs.pipeline, 1)
                fragment_span["est_backtracking"] = round(costs.backtracking, 1)
            if decision == "pipeline":
                if adaptive:
                    stats.bump("adaptive_pipeline")
                stats.pipeline_fragments += 1
                setwise = (
                    _setwise_fragment_columns
                    if prep.use_columns
                    else _setwise_fragment
                )
                if fragment_span is not None:
                    fragment_span["kernel"] = (
                        "columnar" if prep.use_columns else "tuple"
                    )
                rows_before = 0 if stats.budget is None else stats.budget.rows
                try:
                    rows = setwise(
                        prep, ids, edges, values_by_parent, pushed
                    )
                except BudgetExceeded as exc:
                    if exc.limit != "max_hashjoin_rows":
                        raise
                    # Degradation ladder step 1: the fragment's materialised
                    # relations / join rows blew the memory-ish cap, so
                    # discard them and re-run this fragment on the
                    # backtracking core (bounded memory, node-at-a-time).
                    rows = _degrade_fragment(
                        prep, ids, pushed, fragment_span, rows_before
                    )
            elif decision == "backtracking":
                stats.bump("adaptive_backtracking")
                rows = list(
                    _fragment_bindings(
                        prep, ids, pools=_pushdown_pools(prep, ids)
                    )
                )
            else:
                stats.pipeline_fallbacks += 1
                stats.bump(f"fallback_{fallback_reason}")
                rows = list(
                    _fragment_bindings(
                        prep, ids, pools=_pushdown_pools(prep, ids)
                    )
                )
            if fragment_span is not None:
                fragment_span["rows"] = len(rows)
        if not rows:
            return  # conjunctive semantics: one empty fragment, no bindings
        variables = set(ids) | {
            e.child for n in ids for e in values_by_parent.get(n, ())
        }
        fragments.append((variables, rows))

    rows_before_combine = 0 if stats.budget is None else stats.budget.rows
    try:
        rows = _combine_fragments(graph.conditions, fragments, consumed, stats)
        remaining = [
            c for i, c in enumerate(graph.conditions) if i not in consumed
        ]
    except BudgetExceeded as exc:
        if exc.limit != "max_hashjoin_rows":
            raise
        # Degradation ladder, combine stage: the *cross-fragment* hash
        # join blew the row cap.  Discard the joined rows and re-run the
        # whole graph on the backtracking core (bounded memory), which
        # re-checks every rule-level condition itself.
        stats.pipeline_fallbacks += 1
        stats.bump("fallback_budget")
        stats.bump("degraded_fragments")
        assert stats.budget is not None
        stats.budget.rows = rows_before_combine
        if tracer is not None:
            tracer.event("degraded", scope="combine", reason="budget")
        rows = list(_fragment_bindings(prep, list(prep.element_ids)))
        remaining = list(graph.conditions)
    final: list[dict[str, object]] = []
    for row in rows:
        ok = True
        for condition in remaining:
            stats.condition_checks += 1
            if not condition.evaluate(row, _ACCESSOR):  # type: ignore[arg-type]
                ok = False
                break
        if ok:
            final.append(row)
    # Canonical result order: document order over the boxes in drawing
    # order (the backtracking engines emit nested-loop order, which
    # coincides for tree queries; sorting keeps construction — ``collect``
    # output — deterministic regardless of join order).
    position = prep.index.position
    final.sort(
        key=lambda row: tuple(position(row[n]) for n in prep.element_ids)  # type: ignore[arg-type]
    )
    for row in final:
        yield Binding(row)


def _degrade_fragment(
    prep: _Prep,
    ids: list[str],
    pushed: dict[str, list[Condition]],
    fragment_span,
    rows_before: int,
) -> list[dict[str, object]]:
    """Re-run one fragment on the backtracking core after a row-cap trip.

    Records the stable fallback reason ``budget`` exactly like the static
    fallback reasons (counter ``fallback_budget``, span ``decision`` /
    ``reason`` attributes digested by ``explain()``) plus the governance
    counter ``degraded_fragments``.  The abandoned fragment's row charge is
    refunded (back to ``rows_before``) so sibling fragments keep their
    headroom — those rows were discarded, not kept.

    The fragment's pushed-down conditions (already consumed from the final
    filter) are re-applied here: the backtracking core does not see pool
    filters, so skipping them would leak rows the pipeline would have cut.
    """
    stats = prep.stats
    budget = stats.budget
    stats.pipeline_fallbacks += 1
    stats.bump("fallback_budget")
    stats.bump("degraded_fragments")
    if budget is not None:
        budget.rows = rows_before
    if fragment_span is not None:
        fragment_span["decision"] = "fallback"
        fragment_span["reason"] = "budget"
    if stats.trace is not None:
        stats.trace.event("degraded", reason="budget", variables=list(ids))
    rows = list(_fragment_bindings(prep, ids))
    conditions = [c for n in ids for c in pushed.get(n, ())]
    if conditions:
        kept = []
        for row in rows:
            ok = True
            for condition in conditions:
                stats.condition_checks += 1
                if not condition.evaluate(row, _ACCESSOR):  # type: ignore[arg-type]
                    ok = False
                    break
            if ok:
                kept.append(row)
        rows = kept
    return rows


def _fallback_reason(
    negated_edges: list[ContainmentEdge],
    component: set[str],
    edges: list[ContainmentEdge],
) -> Optional[str]:
    """Why one fragment cannot run on the semi-join pipeline (or ``None``).

    Ordered arcs (an n-ary constraint over siblings), negation parents and
    cyclic / multi-edge skeletons stay on the backtracking core.  These are
    the *hard* fallbacks — correctness, not cost — so the adaptive engine
    honours them before consulting the estimator.  The returned reason
    string is stable — EXPLAIN output, fallback counters
    (``stats.extra["fallback_<reason>"]``) and the trace all carry it.
    """
    if any(e.ordered for e in edges):
        return "ordered"
    if any(e.parent in component for e in negated_edges):
        return "negated"
    if not is_forest(component, [(e.parent, e.child) for e in edges]):
        return "cyclic"
    return None


def _pushdown_pools(
    prep: _Prep, ids: Sequence[str]
) -> Optional[dict[str, list[Element]]]:
    """Per-box pool overrides applying pushed-down conditions.

    Conditions consumed by push-down never reach the final filter, so
    fragments that run node-at-a-time (hard fallback or cost-chosen
    backtracking) must apply them to their pools here — otherwise rows the
    pipeline would have cut leak through.  Returns ``None`` when the
    fragment has nothing pushed.
    """
    branch = prep.branch
    overrides: dict[str, list[Element]] = {}
    for node_id in ids:
        conditions = branch.pushed.get(node_id)
        if not conditions:
            continue
        pool, _ = _filtered_pool(
            prep,
            node_id,
            branch.values_by_parent.get(node_id, ()),
            conditions,
        )
        overrides[node_id] = pool
    return overrides or None


def _adaptive_decision(
    prep: _Prep, ids: list[str], edges: list[ContainmentEdge]
) -> Optional[FragmentCosts]:
    """Cost-compare one coverable fragment's two engines, or ``None``.

    ``None`` means "no decision — run the pipeline": either the fragment
    has pushed-down predicates (set-at-a-time applies them while building
    pools, a leverage the walk-based cost model does not see) or the index
    carries no statistics to estimate from.
    """
    branch = prep.branch
    if any(branch.pushed.get(node_id) for node_id in ids):
        return None
    statistics = getattr(prep.index, "statistics", None)
    if statistics is None:
        return None
    estimator = CardinalityEstimator(statistics)
    graph = prep.graph
    pool_sizes = {
        node_id: len(prep.static_candidates[node_id]) for node_id in ids
    }
    edge_estimates = [
        (
            edge.parent,
            edge.child,
            estimator.scaled_edge_pairs(
                graph.nodes[edge.parent].tag,
                graph.nodes[edge.child].tag,
                edge.deep,
                pool_sizes[edge.parent],
                pool_sizes[edge.child],
            ),
        )
        for edge in edges
    ]
    return choose_fragment_engine(
        pool_sizes,
        edge_estimates,
        enabled=prep.options.use_planner,
        columnar=prep.use_columns,
    )


def _operand_variables(operand: Operand) -> set[str]:
    if isinstance(operand, Const):
        return set()
    if isinstance(operand, (ContentOf, NameOf, AttributeOf)):
        return {operand.variable}
    if isinstance(operand, Arith):
        return _operand_variables(operand.left) | _operand_variables(operand.right)
    return set()


def _push_down_conditions(
    graph: QueryGraph,
    element_ids: list[str],
    values_by_parent: dict[str, list[ContainmentEdge]],
) -> tuple[dict[str, list[Condition]], set[int]]:
    """Assign single-box conditions to their box's candidate pool.

    A condition whose variables all belong to one box's *cluster* — the box
    plus its value circles — evaluates identically on the pool row and on
    the final binding, so it filters the pool before any join.  Every box
    consumes its conditions, whatever engine its fragment runs on:
    set-at-a-time fragments filter pools in :func:`_filtered_pool`,
    backtracking fragments through :func:`_pushdown_pools`.  Returns the
    per-box pushed conditions and the set of consumed condition indexes.
    """
    clusters = {
        n: {n} | {e.child for e in values_by_parent.get(n, ())}
        for n in element_ids
    }
    pushed: dict[str, list[Condition]] = {}
    consumed: set[int] = set()
    for idx, condition in enumerate(graph.conditions):
        variables = condition_variables(condition)
        if not variables:
            continue
        for node_id in element_ids:
            if variables <= clusters[node_id]:
                pushed.setdefault(node_id, []).append(condition)
                consumed.add(idx)
                break
    return pushed, consumed


def _setwise_fragment(
    prep: _Prep,
    ids: list[str],
    edges: list[ContainmentEdge],
    values_by_parent: dict[str, list[ContainmentEdge]],
    pushed: dict[str, list[Condition]],
) -> list[dict[str, object]]:
    """Evaluate one acyclic fragment set-at-a-time.

    Pools are filtered by required circles and pushed-down predicates,
    edge relations materialised from the cheaper side (cost-estimated from
    the interval index), then reduced and hash-joined by
    :func:`repro.engine.pipeline.evaluate_forest`.
    """
    graph, stats = prep.graph, prep.stats
    tracer = stats.trace
    pools: dict[str, list[Element]] = {}
    value_rows: dict[str, dict[int, dict[str, str]]] = {}
    with trace_span(tracer, "fragment.pools") as pools_span:
        for node_id in ids:
            pool, values = _filtered_pool(
                prep,
                node_id,
                values_by_parent.get(node_id, ()),
                pushed.get(node_id, ()),
            )
            if pools_span is not None:
                pools_span.attributes.setdefault("sizes", {})[node_id] = len(pool)
            if not pool:
                return []
            pools[node_id] = pool
            value_rows[node_id] = values

    relations = []
    with trace_span(tracer, "fragment.relations") as relations_span:
        for edge in edges:
            relation = relation_for(
                edge.parent, edge.child, _edge_pairs(prep, edge, pools), stats, key=id
            )
            if relations_span is not None:
                relations_span.attributes.setdefault("pairs", {})[
                    f"{edge.parent}-{edge.child}"
                ] = len(relation)
            if not relation.pairs:
                return []
            relations.append(relation)

    rows: list[dict[str, object]] = []
    for assignment in evaluate_forest(
        pools, relations, stats, planner_enabled=prep.options.use_planner
    ):
        row: dict[str, object] = dict(assignment)
        for node_id in ids:
            extra = value_rows[node_id].get(id(assignment[node_id]))
            if extra:
                row.update(extra)
        rows.append(row)
    return rows


def _setwise_fragment_columns(
    prep: _Prep,
    ids: list[str],
    edges: list[ContainmentEdge],
    values_by_parent: dict[str, list[ContainmentEdge]],
    pushed: dict[str, list[Condition]],
) -> list[dict[str, object]]:
    """Evaluate one acyclic fragment on the columnar kernels.

    The columnar twin of :func:`_setwise_fragment`: pools become sorted
    ``pre``-id columns as soon as circle/predicate filtering is done,
    relations are materialised by the interval kernels
    (:mod:`repro.engine.columns`) instead of per-candidate enumeration,
    and node objects are looked up in the index's ``pre -> element`` side
    table only for the surviving assembled rows.
    """
    stats, index = prep.stats, prep.index
    tracer = stats.trace
    budget = stats.budget
    stats.bump("columnar_fragments")
    pools: dict[str, Sequence[int]] = {}
    value_rows: dict[str, dict[int, dict[str, str]]] = {}
    with trace_span(tracer, "fragment.pools") as pools_span:
        for node_id in ids:
            circles = values_by_parent.get(node_id, ())
            conditions = pushed.get(node_id, ())
            values: dict[int, dict[str, str]] = {}
            if not circles and not conditions:
                # Nothing to resolve or filter: adopt the static pool's
                # pre column wholesale — for pristine index pools this is
                # the index's own array, no per-element work at all.
                column: Sequence[int] = prep.static_pres(node_id)
                if budget is not None:
                    budget.charge(len(column))
            else:
                pool, values = _filtered_pool(prep, node_id, circles, conditions)
                column = index.pres_of(pool)
            if pools_span is not None:
                pools_span.attributes.setdefault("sizes", {})[node_id] = len(
                    column
                )
            if not len(column):
                return []
            pools[node_id] = column
            value_rows[node_id] = values

    relations = []
    with trace_span(tracer, "fragment.relations") as relations_span:
        for edge in edges:
            relation = column_relation_for(
                edge.parent, edge.child, _column_edge_pairs(prep, edge, pools),
                stats,
            )
            if relations_span is not None:
                relations_span.attributes.setdefault("pairs", {})[
                    f"{edge.parent}-{edge.child}"
                ] = len(relation)
            if not len(relation):
                return []
            relations.append(relation)

    order, int_rows = evaluate_forest_columns(
        pools, relations, stats, planner_enabled=prep.options.use_planner
    )
    table = index.element_table()
    rows: list[dict[str, object]] = []
    for int_row in int_rows:
        row: dict[str, object] = {}
        for var, pre in zip(order, int_row):
            element = table[pre]
            row[var] = element
            extra = value_rows[var].get(id(element))
            if extra:
                row.update(extra)
        rows.append(row)
    return rows


def _column_edge_pairs(
    prep: _Prep, edge: ContainmentEdge, pools: dict[str, Sequence[int]]
) -> tuple[Sequence[int], Sequence[int]]:
    """Column pairs satisfying one containment arc (sorted pre columns).

    Direct arcs probe each child's slot in the ``parent_pre`` column
    (O(child pool)); deep arcs become one bisect range per parent over the
    child column — no descendant enumeration, no ancestor walks.  When a
    budget is armed, deep pair counts are known *before* materialisation
    (:func:`containment_count` is pure bisect arithmetic), so the row cap
    trips without ever building the oversized pair set.
    """
    index, stats = prep.index, prep.stats
    budget = stats.budget
    parent_col = pools[edge.parent]
    child_col = pools[edge.child]
    if not edge.deep:
        left, right = direct_pairs(
            parent_col, index.parent_pre_column(), child_col
        )
        if budget is not None:
            budget.charge(len(child_col))
            budget.add_rows(len(left))
        return left, right
    posts = index.post_column()
    stats.interval_lookups += len(parent_col)
    if budget is not None:
        budget.charge(len(parent_col) + len(child_col))
        budget.add_rows(containment_count(parent_col, posts, child_col))
    return containment_pairs(parent_col, posts, child_col)


def _filtered_pool(
    prep: _Prep,
    node_id: str,
    value_edges: Sequence[ContainmentEdge],
    conditions: Sequence[Condition],
) -> tuple[list[Element], dict[int, dict[str, str]]]:
    """A box's candidate pool with circles resolved and predicates applied."""
    graph, stats = prep.graph, prep.stats
    budget = stats.budget
    pool: list[Element] = []
    values: dict[int, dict[str, str]] = {}
    for element in prep.static_candidates[node_id]:
        if budget is not None:
            budget.charge()
        row: dict[str, object] = {node_id: element}
        ok = True
        for edge in value_edges:
            node = graph.nodes[edge.child]
            stats.condition_checks += 1
            value = _value_of(node, element)
            if value is None:
                ok = False
                break
            row[edge.child] = value
        if not ok:
            continue
        for condition in conditions:
            stats.condition_checks += 1
            if not condition.evaluate(row, _ACCESSOR):  # type: ignore[arg-type]
                ok = False
                break
        if not ok:
            continue
        pool.append(element)
        if len(row) > 1:
            del row[node_id]
            values[id(element)] = row  # type: ignore[assignment]
    return pool, values


def _edge_pairs(
    prep: _Prep, edge: ContainmentEdge, pools: dict[str, list[Element]]
) -> Iterator[tuple[Element, Element]]:
    """Candidate pairs satisfying one containment arc.

    Direct arcs probe each child's parent pointer (O(child pool)).  Deep
    arcs are enumerated from whichever side the interval index estimates
    cheaper: per-parent descendant slices (bisect ranges) versus per-child
    ancestor walks.
    """
    parent_pool = pools[edge.parent]
    child_pool = pools[edge.child]
    index, stats = prep.index, prep.stats
    budget = stats.budget
    if not edge.deep:
        parent_ids = {id(e) for e in parent_pool}
        for child in child_pool:
            parent = child.parent
            if isinstance(parent, Element) and id(parent) in parent_ids:
                yield (parent, child)
        return

    tag = prep.graph.nodes[edge.child].tag
    # Cost estimates from the index: slices cost their output, ancestor
    # walks cost their depth.
    parent_cost = sum(index.tag_count_within(p, tag) for p in parent_pool)
    child_cost = sum(index.depth(c) for c in child_pool)
    if parent_cost <= child_cost:
        child_ids = {id(c) for c in child_pool}
        for parent in parent_pool:
            stats.interval_lookups += 1
            descendants = (
                index.descendants_with_tag(parent, tag)
                if tag is not None
                else index.descendants(parent)
            )
            for child in descendants:
                if budget is not None:
                    budget.charge()
                if id(child) in child_ids:
                    yield (parent, child)
    else:
        parent_ids = {id(p) for p in parent_pool}
        for child in child_pool:
            for ancestor in child.ancestors():
                if budget is not None:
                    budget.charge()
                if id(ancestor) in parent_ids:
                    yield (ancestor, child)


def _combine_fragments(
    conditions: Sequence[Condition],
    fragments: list[tuple[set[str], list[dict[str, object]]]],
    consumed: set[int],
    stats: EvalStats,
) -> list[dict[str, object]]:
    """Merge fragment row sets: hash equi-joins where a ``=`` condition
    links two fragments, cross products otherwise.

    Consumed condition indexes are added to ``consumed`` so the final
    filter skips them.  Smallest fragments merge first.
    """
    if not fragments:
        return []
    join_conditions = [
        (idx, condition, _operand_variables(condition.left),
         _operand_variables(condition.right))
        for idx, condition in enumerate(conditions)
        if idx not in consumed
        and isinstance(condition, Comparison)
        and condition.op == "="
        and _operand_variables(condition.left)
        and _operand_variables(condition.right)
    ]
    pending = sorted(fragments, key=lambda f: len(f[1]))
    current_vars, current_rows = pending.pop(0)
    current_vars = set(current_vars)
    while pending:
        pick = None
        for idx, condition, left_vars, right_vars in join_conditions:
            if idx in consumed:
                continue
            for position, (frag_vars, _) in enumerate(pending):
                if left_vars <= current_vars and right_vars <= frag_vars:
                    pick = (idx, condition.left, condition.right, position)
                    break
                if right_vars <= current_vars and left_vars <= frag_vars:
                    pick = (idx, condition.right, condition.left, position)
                    break
            if pick:
                break
        if pick:
            idx, current_operand, other_operand, position = pick
            frag_vars, frag_rows = pending.pop(position)
            current_rows = _hash_equijoin(
                current_rows, current_operand, frag_rows, other_operand, stats
            )
            consumed.add(idx)
        else:
            frag_vars, frag_rows = pending.pop(0)
            current_rows = [
                {**row, **other} for row in current_rows for other in frag_rows
            ]
            stats.hashjoin_rows += len(current_rows)
            if stats.budget is not None:
                stats.budget.add_rows(len(current_rows))
        current_vars |= frag_vars
        if not current_rows:
            return []
    return current_rows


def _hash_equijoin(
    left_rows: list[dict[str, object]],
    left_operand: Operand,
    right_rows: list[dict[str, object]],
    right_operand: Operand,
    stats: EvalStats,
) -> list[dict[str, object]]:
    """Join two row sets on computed operand values.

    Keys normalise through :func:`repro.engine.joins.equijoin_key`, so the
    join accepts exactly the pairs ``Comparison("=")`` would — rows whose
    operand is ``None`` or fails to evaluate never match.
    """
    table: dict[object, list[dict[str, object]]] = {}
    for row in right_rows:
        stats.condition_checks += 1
        try:
            value = right_operand.evaluate(row, _ACCESSOR)  # type: ignore[arg-type]
        except (TypeError, KeyError):
            continue
        key = equijoin_key(value)
        if key is None:
            continue
        table.setdefault(key, []).append(row)
    joined: list[dict[str, object]] = []
    for row in left_rows:
        stats.condition_checks += 1
        try:
            value = left_operand.evaluate(row, _ACCESSOR)  # type: ignore[arg-type]
        except (TypeError, KeyError):
            continue
        key = equijoin_key(value)
        if key is None:
            continue
        for other in table.get(key, ()):
            joined.append({**row, **other})
    stats.hashjoin_rows += len(joined)
    if stats.budget is not None:
        stats.budget.add_rows(len(joined))
    return joined


# ---------------------------------------------------------------------------
# Shared leaf helpers
# ---------------------------------------------------------------------------

def _static_candidates(
    node: ElementPattern,
    document: Document,
    index: DocumentIndex,
    options: MatchOptions,
    stats: EvalStats,
    required_attributes: list[str],
) -> list[Element]:
    if node.anchored:
        root = document.root
        if root is None:
            return []
        if node.tag is not None and root.tag != node.tag:
            return []
        return [root]
    if options.scans_only():
        stats.full_scans += 1
        if node.tag is None:
            return list(document.iter())
        return [e for e in document.iter() if e.tag == node.tag]
    # indexed: start from the smallest pool among the tag pool and the
    # required-attribute pools, then filter by the remaining criteria
    pools: list[tuple[Element, ...]] = []
    if node.tag is not None:
        stats.index_lookups += 1
        pools.append(index.elements_with_tag(node.tag))
    for name in required_attributes:
        stats.index_lookups += 1
        pools.append(index.elements_with_attribute(name))
    if not pools:
        # Wildcard box with no attribute hints: every element qualifies.
        # The index's pre-order table *is* that pool in document order —
        # no tree walk needed (still a full scan for accounting purposes).
        stats.full_scans += 1
        return list(index.all_elements())
    base = min(pools, key=len)
    return [
        e
        for e in base
        if (node.tag is None or e.tag == node.tag)
        and all(name in e.attributes for name in required_attributes)
    ]


def _ordered_ok(
    ordered_groups: list[list[ContainmentEdge]],
    assignment: dict[str, Element],
    index: DocumentIndex,
    stats: EvalStats,
) -> bool:
    """Ordered arcs of one parent must match in drawing order."""
    for edges_sorted in ordered_groups:
        positions = []
        for edge in edges_sorted:
            child = assignment.get(edge.child)
            if child is None:
                continue
            try:
                positions.append(index.position(child))
            except KeyError:
                return False  # child from another document cannot be ordered
        stats.edge_checks += 1
        if positions != sorted(positions) or len(set(positions)) != len(positions):
            return False
    return True


def _resolve_value_patterns(
    graph: QueryGraph,
    value_edges: list[ContainmentEdge],
    element_binding: dict[str, Element],
    stats: EvalStats,
) -> Iterator[dict[str, object]]:
    """Extend an element assignment with text/attribute bindings.

    Each circle resolves deterministically (at most one value per parent),
    so this yields zero or one extended binding.
    """
    binding: dict[str, object] = dict(element_binding)
    for edge in value_edges:
        parent = element_binding.get(edge.parent)
        if parent is None:
            return
        node = graph.nodes[edge.child]
        value = _value_of(node, parent)
        stats.condition_checks += 1
        if value is None:
            return
        binding[edge.child] = value
    yield binding


def _value_of(node, parent: Element) -> Optional[str]:
    """Resolve a text/attribute circle under ``parent``; ``None`` = no match."""
    if isinstance(node, TextPattern):
        text = parent.immediate_text().strip()
        if not text:
            return None
        if node.value is not None and text != node.value:
            return None
        if node.compiled_regex is not None and node.compiled_regex.fullmatch(text) is None:
            return None
        return text
    assert isinstance(node, AttributePattern)
    value = parent.get(node.name)
    if value is None:
        return None
    if node.value is not None and value != node.value:
        return None
    if node.compiled_regex is not None and node.compiled_regex.fullmatch(value) is None:
        return None
    return value


def _negations_ok(
    graph: QueryGraph,
    negated_edges: list[ContainmentEdge],
    element_binding: dict[str, Element],
    index: DocumentIndex,
    use_intervals: bool,
    stats: EvalStats,
) -> bool:
    for edge in negated_edges:
        parent = element_binding.get(edge.parent)
        if parent is None:
            continue
        if _subtree_exists(graph, edge, parent, index, use_intervals, stats):
            return False
    return True


def _subtree_exists(
    graph: QueryGraph,
    edge: ContainmentEdge,
    parent: Element,
    index: DocumentIndex,
    use_intervals: bool,
    stats: EvalStats,
) -> bool:
    """Does any embedding of ``edge.child``'s subpattern exist under ``parent``?"""
    node = graph.nodes[edge.child]
    if isinstance(node, (TextPattern, AttributePattern)):
        stats.condition_checks += 1
        return _value_of(node, parent) is not None
    assert isinstance(node, ElementPattern)
    pool: Sequence[Element]
    if edge.deep:
        if use_intervals and index.covers(parent):
            stats.interval_lookups += 1
            pool = (
                index.descendants_with_tag(parent, node.tag)
                if node.tag is not None
                else index.descendants(parent)
            )
        else:
            pool = [e for e in parent.iter(node.tag) if e is not parent]
    else:
        pool = [
            c
            for c in parent.child_elements()
            if node.tag is None or c.tag == node.tag
        ]
    child_edges = graph.children_of(node.id)
    for candidate in pool:
        stats.candidates_tried += 1
        if stats.budget is not None:
            stats.budget.charge()
        if all(
            _subtree_exists(graph, child_edge, candidate, index, use_intervals, stats)
            for child_edge in child_edges
            if not child_edge.negated
        ) and all(
            not _subtree_exists(graph, child_edge, candidate, index, use_intervals, stats)
            for child_edge in child_edges
            if child_edge.negated
        ):
            return True
    return False
