"""Evaluation of XML-GL extract graphs against documents.

The matcher enumerates every assignment of the query graph's nodes to
document nodes such that

* element boxes map to elements with the required tag (wildcards to any),
* containment arcs map to parent/child (or ancestor/descendant for starred
  arcs) relationships,
* hollow circles bind the parent's immediate text, filled circles bind
  attribute values, honouring their constant/regex constraints,
* crossed-out arcs have **no** embedding of their subpattern,
* ordered arcs respect relative document order, and
* every predicate annotation holds.

Shared sub-nodes (the DAG case) come out naturally: a node id is assigned
once, so two arcs pointing at it force the *same* document node — that is
XML-GL's join.  Matching is homomorphic: two different boxes may map to the
same element.

Or-arcs are evaluated by branch expansion: one branch per or-group is
chosen, the resulting plain graph matched, and the binding sets unioned
(with duplicate elimination across branches).

The backtracking core orders boxes with :func:`repro.engine.planner.plan_order`
and narrows candidates dynamically from already-assigned neighbours.  With
the index enabled (the default), structural questions are answered by the
:class:`~repro.engine.index.DocumentIndex` interval encoding: descendant
pools are bisect ranges over per-tag pre-order arrays, ancestor tests are
two integer comparisons, and candidates drawn from such pools already
satisfy every incident arc *by construction*, so no per-candidate
structural re-verification happens (they are counted as
``interval_candidates``, not ``candidates_tried``).  With ``use_index``
off, the matcher falls back to the naive scan path — subtree walks and
per-candidate ancestor chases — which is the ablation baseline (EXT-A1 in
DESIGN.md) and the differential oracle for the indexed path.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator, Optional, Sequence

from ..engine.bindings import Binding, BindingSet
from ..engine.conditions import DocumentAccessor, condition_variables
from ..engine.index import DocumentIndex
from ..engine.narrowing import intersect_pools
from ..engine.planner import plan_order
from ..engine.stats import EvalStats
from ..errors import QueryStructureError
from ..ssd.model import Document, Element
from .ast import (
    AttributePattern,
    ContainmentEdge,
    ElementPattern,
    QueryGraph,
    TextPattern,
)

__all__ = ["MatchOptions", "match"]

_ACCESSOR = DocumentAccessor()


@dataclass
class MatchOptions:
    """Evaluation switches (ablation knobs EXT-A1 in DESIGN.md)."""

    use_planner: bool = True
    use_index: bool = True


def match(
    graph: QueryGraph,
    document: Document,
    options: Optional[MatchOptions] = None,
    index: Optional[DocumentIndex] = None,
    stats: Optional[EvalStats] = None,
) -> BindingSet:
    """All bindings of ``graph`` in ``document``.

    Element boxes bind :class:`~repro.ssd.model.Element` nodes; text and
    attribute circles bind strings.  The graph is validated first.

    ``index`` must be an index *of* ``document``; when omitted a fresh one
    is built (callers evaluating many queries over one frozen document
    should pass :func:`repro.engine.cache.get_index` instead).
    """
    graph.validate()
    _check_condition_scope(graph)
    options = options or MatchOptions()
    stats = stats if stats is not None else EvalStats()
    index = index or DocumentIndex(document)

    results = BindingSet()
    with stats.timed():
        seen: set[tuple] = set()
        multiple_branches = bool(graph.or_groups)
        for expanded in _expand_or_groups(graph):
            for binding in _match_plain(expanded, document, index, options, stats):
                if multiple_branches:
                    key = binding.key()
                    if key in seen:
                        continue
                    seen.add(key)
                results.add(binding)
                stats.bindings_produced += 1
    return results


# ---------------------------------------------------------------------------
# Or-group expansion
# ---------------------------------------------------------------------------

def _expand_or_groups(graph: QueryGraph) -> Iterator[QueryGraph]:
    """Yield one plain graph per combination of or-group branches.

    Nodes reachable only through *unchosen* branches are pruned from each
    expansion — they are not part of that disjunct and must not constrain
    the match.
    """
    if not graph.or_groups:
        yield graph
        return
    branch_lists = [group.alternatives for group in graph.or_groups]
    had_parent = {e.child for e in graph.all_edges()}
    for choice in product(*branch_lists):
        expanded = QueryGraph(
            nodes=dict(graph.nodes),
            edges=list(graph.edges),
            or_groups=[],
            conditions=list(graph.conditions),
            source=graph.source,
        )
        for branch in choice:
            expanded.edges.extend(branch)
        _prune_unchosen(expanded, had_parent)
        yield expanded


def _prune_unchosen(expanded: QueryGraph, had_parent: set[str]) -> None:
    """Drop nodes that lost their only incoming arc to an unchosen branch."""
    changed = True
    while changed:
        changed = False
        with_parent = {e.child for e in expanded.edges}
        for node_id in list(expanded.nodes):
            if node_id in had_parent and node_id not in with_parent:
                del expanded.nodes[node_id]
                expanded.edges = [
                    e
                    for e in expanded.edges
                    if e.parent != node_id and e.child != node_id
                ]
                changed = True


# ---------------------------------------------------------------------------
# Plain-graph matching
# ---------------------------------------------------------------------------

def _check_condition_scope(graph: QueryGraph) -> None:
    """Conditions may not reach into negated subtrees."""
    negated: set[str] = set()
    for edge in graph.negated_edges():
        stack = [edge.child]
        while stack:
            node_id = stack.pop()
            if node_id in negated:
                continue
            negated.add(node_id)
            stack.extend(e.child for e in graph.edges if e.parent == node_id)
    for condition in graph.conditions:
        overlap = condition_variables(condition) & negated
        if overlap:
            raise QueryStructureError(
                f"condition {condition} references negated node(s) {sorted(overlap)}"
            )


def _active_nodes(graph: QueryGraph) -> set[str]:
    """Nodes taking part in positive matching of this (plain) graph."""
    active: set[str] = set()
    incident: set[str] = set()
    for edge in graph.edges:
        incident.add(edge.parent)
        if edge.negated:
            continue
        active.add(edge.parent)
        active.add(edge.child)
    for node in graph.nodes.values():
        if isinstance(node, ElementPattern) and node.id not in incident:
            # isolated box (or box only acting as negation parent)
            active.add(node.id)
    # Parents of negated edges must be matched even if otherwise isolated.
    for edge in graph.negated_edges():
        active.add(edge.parent)
    # Remove nodes that are only inside negated subtrees.
    negated_only = set()
    for edge in graph.negated_edges():
        stack = [edge.child]
        while stack:
            node_id = stack.pop()
            if node_id in negated_only:
                continue
            negated_only.add(node_id)
            stack.extend(e.child for e in graph.edges if e.parent == node_id)
    return active - negated_only


def _match_plain(
    graph: QueryGraph,
    document: Document,
    index: DocumentIndex,
    options: MatchOptions,
    stats: EvalStats,
) -> Iterator[Binding]:
    active = _active_nodes(graph)
    element_ids = [
        n.id for n in graph.element_nodes() if n.id in active
    ]
    if not element_ids:
        return

    element_edges = [
        e
        for e in graph.edges
        if not e.negated
        and e.parent in active
        and e.child in active
        and isinstance(graph.nodes[e.child], ElementPattern)
    ]
    value_edges = [
        e
        for e in graph.edges
        if not e.negated
        and e.parent in active
        and isinstance(graph.nodes[e.child], (TextPattern, AttributePattern))
    ]
    negated_edges = [e for e in graph.negated_edges() if e.parent in active]

    # attribute circles required (non-negated) below each box: their names
    # narrow the box's static candidates through the attribute index
    attr_hints: dict[str, list[str]] = {}
    for edge in value_edges:
        child = graph.nodes[edge.child]
        if isinstance(child, AttributePattern) and not edge.negated:
            attr_hints.setdefault(edge.parent, []).append(child.name)

    static_candidates = {
        node_id: _static_candidates(
            graph.nodes[node_id], document, index, options, stats,
            attr_hints.get(node_id, []),
        )
        for node_id in element_ids
    }
    if any(not c for c in static_candidates.values()):
        return
    static_sets = {
        node_id: {id(e) for e in cands}
        for node_id, cands in static_candidates.items()
    }

    adjacency: dict[str, list[str]] = {n: [] for n in element_ids}
    for edge in element_edges:
        adjacency[edge.parent].append(edge.child)
        adjacency[edge.child].append(edge.parent)

    use_intervals = options.use_index

    def estimate(node_id: str) -> int:
        """Selectivity: global tag count, sharpened to the count within an
        already-pinned parent's subtree when the pattern fixes one."""
        base = len(static_candidates[node_id])
        if not use_intervals:
            return base
        node = graph.nodes[node_id]
        best = base
        for edge in element_edges:
            if edge.child != node_id:
                continue
            parents = static_candidates[edge.parent]
            if len(parents) != 1 or not index.covers(parents[0]):
                continue
            anchor = parents[0]
            if edge.deep:
                within = index.tag_count_within(anchor, node.tag)
            else:
                within = sum(
                    1
                    for child in anchor.child_elements()
                    if node.tag is None or child.tag == node.tag
                )
            best = min(best, within)
        if best < base:
            stats.bump("selectivity_refinements")
        return best

    order = plan_order(
        element_ids,
        estimate=estimate,
        adjacency=adjacency,
        enabled=options.use_planner,
    )

    edges_by_endpoint: dict[str, list[ContainmentEdge]] = {n: [] for n in element_ids}
    for edge in element_edges:
        edges_by_endpoint[edge.parent].append(edge)
        edges_by_endpoint[edge.child].append(edge)

    # ordered-arc groups are fixed by the query: group and sort them once,
    # not per produced binding
    ordered_by_parent: dict[str, list[ContainmentEdge]] = {}
    for edge in element_edges:
        if edge.ordered:
            ordered_by_parent.setdefault(edge.parent, []).append(edge)
    ordered_groups = [
        sorted(edges, key=lambda e: e.position)
        for edges in ordered_by_parent.values()
        if len(edges) >= 2
    ]

    assignment: dict[str, Element] = {}

    def structural_ok(edge: ContainmentEdge) -> bool:
        parent = assignment.get(edge.parent)
        child = assignment.get(edge.child)
        if parent is None or child is None:
            return True
        stats.edge_checks += 1
        if edge.deep:
            if use_intervals and index.covers(parent) and index.covers(child):
                return index.is_ancestor(parent, child)
            return any(anc is parent for anc in child.ancestors())
        return child.parent is parent

    def pool_for(edge: ContainmentEdge, node_id: str) -> Optional[Sequence[Element]]:
        """Candidate pool one incident edge contributes, or ``None`` when
        the edge's other endpoint is not assigned yet."""
        if edge.child == node_id and edge.parent in assignment:
            parent = assignment[edge.parent]
            if not edge.deep:
                return parent.child_elements()
            if use_intervals and index.covers(parent):
                stats.interval_lookups += 1
                tag = graph.nodes[node_id].tag
                if tag is not None:
                    return index.descendants_with_tag(parent, tag)
                return index.descendants(parent)
            return [e for e in parent.iter() if e is not parent]
        if edge.parent == node_id and edge.child in assignment:
            child = assignment[edge.child]
            if edge.deep:
                return list(child.ancestors())
            return [child.parent] if isinstance(child.parent, Element) else []
        return None

    def candidates_for(node_id: str) -> tuple[Sequence[Element], bool]:
        """``(candidates, verified)`` — every incident assigned edge
        contributes one pool, so pool-intersection membership *is* the
        conjunction of those arcs: verified candidates skip per-candidate
        structural re-checks (one wholesale ``edge_checks`` per pool)."""
        pools: list[Sequence[Element]] = []
        for edge in edges_by_endpoint[node_id]:
            pool = pool_for(edge, node_id)
            if pool is not None:
                pools.append(pool)
        if not pools:
            return static_candidates[node_id], False
        narrowed = intersect_pools(pools, allowed=static_sets[node_id], key=id)
        if use_intervals:
            stats.edge_checks += len(pools)
            return narrowed, True
        return narrowed, False

    def backtrack(position: int) -> Iterator[dict[str, Element]]:
        if position == len(order):
            yield dict(assignment)
            return
        node_id = order[position]
        candidates, verified = candidates_for(node_id)
        if verified:
            for candidate in candidates:
                stats.interval_candidates += 1
                assignment[node_id] = candidate
                yield from backtrack(position + 1)
                del assignment[node_id]
        else:
            incident = edges_by_endpoint[node_id]
            for candidate in candidates:
                stats.candidates_tried += 1
                assignment[node_id] = candidate
                if all(structural_ok(e) for e in incident):
                    yield from backtrack(position + 1)
                del assignment[node_id]

    for element_binding in backtrack(0):
        if not _ordered_ok(ordered_groups, element_binding, index, stats):
            continue
        if not _negations_ok(
            graph, negated_edges, element_binding, index, use_intervals, stats
        ):
            continue
        for binding in _resolve_value_patterns(
            graph, value_edges, element_binding, stats
        ):
            full = Binding(binding)
            ok = True
            for condition in graph.conditions:
                stats.condition_checks += 1
                if not condition.evaluate(full, _ACCESSOR):
                    ok = False
                    break
            if ok:
                yield full


def _static_candidates(
    node: ElementPattern,
    document: Document,
    index: DocumentIndex,
    options: MatchOptions,
    stats: EvalStats,
    required_attributes: list[str],
) -> list[Element]:
    if node.anchored:
        root = document.root
        if root is None:
            return []
        if node.tag is not None and root.tag != node.tag:
            return []
        return [root]
    if not options.use_index:
        stats.full_scans += 1
        if node.tag is None:
            return list(document.iter())
        return [e for e in document.iter() if e.tag == node.tag]
    # indexed: start from the smallest pool among the tag pool and the
    # required-attribute pools, then filter by the remaining criteria
    pools: list[tuple[Element, ...]] = []
    if node.tag is not None:
        stats.index_lookups += 1
        pools.append(index.elements_with_tag(node.tag))
    for name in required_attributes:
        stats.index_lookups += 1
        pools.append(index.elements_with_attribute(name))
    if not pools:
        stats.full_scans += 1
        return list(document.iter())
    base = min(pools, key=len)
    return [
        e
        for e in base
        if (node.tag is None or e.tag == node.tag)
        and all(name in e.attributes for name in required_attributes)
    ]


def _ordered_ok(
    ordered_groups: list[list[ContainmentEdge]],
    assignment: dict[str, Element],
    index: DocumentIndex,
    stats: EvalStats,
) -> bool:
    """Ordered arcs of one parent must match in drawing order."""
    for edges_sorted in ordered_groups:
        positions = []
        for edge in edges_sorted:
            child = assignment.get(edge.child)
            if child is None:
                continue
            try:
                positions.append(index.position(child))
            except KeyError:
                return False  # child from another document cannot be ordered
        stats.edge_checks += 1
        if positions != sorted(positions) or len(set(positions)) != len(positions):
            return False
    return True


def _resolve_value_patterns(
    graph: QueryGraph,
    value_edges: list[ContainmentEdge],
    element_binding: dict[str, Element],
    stats: EvalStats,
) -> Iterator[dict[str, object]]:
    """Extend an element assignment with text/attribute bindings.

    Each circle resolves deterministically (at most one value per parent),
    so this yields zero or one extended binding.
    """
    binding: dict[str, object] = dict(element_binding)
    for edge in value_edges:
        parent = element_binding.get(edge.parent)
        if parent is None:
            return
        node = graph.nodes[edge.child]
        value = _value_of(node, parent)
        stats.condition_checks += 1
        if value is None:
            return
        binding[edge.child] = value
    yield binding


def _value_of(node, parent: Element) -> Optional[str]:
    """Resolve a text/attribute circle under ``parent``; ``None`` = no match."""
    if isinstance(node, TextPattern):
        text = parent.immediate_text().strip()
        if not text:
            return None
        if node.value is not None and text != node.value:
            return None
        if node.compiled_regex is not None and node.compiled_regex.fullmatch(text) is None:
            return None
        return text
    assert isinstance(node, AttributePattern)
    value = parent.get(node.name)
    if value is None:
        return None
    if node.value is not None and value != node.value:
        return None
    if node.compiled_regex is not None and node.compiled_regex.fullmatch(value) is None:
        return None
    return value


def _negations_ok(
    graph: QueryGraph,
    negated_edges: list[ContainmentEdge],
    element_binding: dict[str, Element],
    index: DocumentIndex,
    use_intervals: bool,
    stats: EvalStats,
) -> bool:
    for edge in negated_edges:
        parent = element_binding.get(edge.parent)
        if parent is None:
            continue
        if _subtree_exists(graph, edge, parent, index, use_intervals, stats):
            return False
    return True


def _subtree_exists(
    graph: QueryGraph,
    edge: ContainmentEdge,
    parent: Element,
    index: DocumentIndex,
    use_intervals: bool,
    stats: EvalStats,
) -> bool:
    """Does any embedding of ``edge.child``'s subpattern exist under ``parent``?"""
    node = graph.nodes[edge.child]
    if isinstance(node, (TextPattern, AttributePattern)):
        stats.condition_checks += 1
        return _value_of(node, parent) is not None
    assert isinstance(node, ElementPattern)
    pool: Sequence[Element]
    if edge.deep:
        if use_intervals and index.covers(parent):
            stats.interval_lookups += 1
            pool = (
                index.descendants_with_tag(parent, node.tag)
                if node.tag is not None
                else index.descendants(parent)
            )
        else:
            pool = [e for e in parent.iter(node.tag) if e is not parent]
    else:
        pool = [
            c
            for c in parent.child_elements()
            if node.tag is None or c.tag == node.tag
        ]
    child_edges = graph.children_of(node.id)
    for candidate in pool:
        stats.candidates_tried += 1
        if all(
            _subtree_exists(graph, child_edge, candidate, index, use_intervals, stats)
            for child_edge in child_edges
            if not child_edge.negated
        ) and all(
            not _subtree_exists(graph, child_edge, candidate, index, use_intervals, stats)
            for child_edge in child_edges
            if child_edge.negated
        ):
            return True
    return False
