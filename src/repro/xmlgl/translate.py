"""Translating XML-GL extraction graphs to path expressions.

The paper positions graphical languages against the navigational textual
ones; this module makes the correspondence concrete for the overlapping
fragment: a *tree-shaped* extraction graph (single root, no shared
sub-nodes, no or-arcs, no predicate annotations) is exactly a path
expression with nested predicates.

``to_path(graph, node)`` produces a :class:`~repro.ssd.paths.PathExpression`
whose result set equals the set of elements the matcher binds to ``node``
— asserted by the differential tests, which use the path engine as an
independent oracle for the matcher.  Graphs outside the fragment raise
:class:`TranslationError` listing the offending construct; that *list* is
itself informative: it is precisely the visual constructs that go beyond
navigation (joins, disjunction, value predicates over two nodes).
"""

from __future__ import annotations

from typing import Optional

from ..errors import ReproError
from ..ssd.paths import PathExpression, Predicate, Step
from .ast import (
    AttributePattern,
    ContainmentEdge,
    ElementPattern,
    QueryGraph,
    TextPattern,
)

__all__ = ["TranslationError", "translatable", "to_path"]


class TranslationError(ReproError):
    """The graph uses constructs with no path-expression counterpart."""


def translatable(graph: QueryGraph) -> Optional[str]:
    """``None`` when the graph lies in the path fragment, else the reason."""
    if graph.or_groups:
        return "or-arcs (disjunction) have no path counterpart"
    if graph.conditions:
        return "predicate annotations over variables need joins"
    parents: dict[str, int] = {}
    for edge in graph.edges:
        parents[edge.child] = parents.get(edge.child, 0) + 1
        if edge.ordered:
            return "ordered arcs need sibling-position predicates"
    for node_id, count in parents.items():
        if count > 1:
            return f"node {node_id!r} is shared (a join)"
    roots = graph.roots()
    if len(roots) != 1:
        return f"{len(roots)} roots: multi-root graphs express products"
    for node in graph.nodes.values():
        if isinstance(node, (TextPattern, AttributePattern)) and node.regex:
            return "regex constraints are not in the path subset"
    return None


def to_path(graph: QueryGraph, node_id: str) -> PathExpression:
    """The path expression selecting ``node_id``'s bindings."""
    reason = translatable(graph)
    if reason is not None:
        raise TranslationError(reason)
    node = graph.nodes.get(node_id)
    if not isinstance(node, ElementPattern):
        raise TranslationError("only element boxes translate to paths")

    # walk up from the target to the root; each entry pairs a node with the
    # (unique, non-negated) containment arc leading *into* it
    spine: list[tuple[Optional[ContainmentEdge], str]] = []
    current = node_id
    while True:
        incoming = [e for e in graph.edges if e.child == current and not e.negated]
        edge = incoming[0] if incoming else None
        spine.append((edge, current))
        if edge is None:
            break
        current = edge.parent
    spine.reverse()
    root_id = spine[0][1]
    if root_id not in graph.roots():
        raise TranslationError(
            f"target {node_id!r} hangs off a negated arc; not selectable"
        )

    on_spine = {entry[1] for entry in spine}
    steps: list[Step] = []
    for index, (edge_in, spine_node) in enumerate(spine):
        pattern = graph.nodes[spine_node]
        assert isinstance(pattern, ElementPattern)
        if index == 0:
            axis = "child" if pattern.anchored else "descendant"
        else:
            assert edge_in is not None
            axis = "descendant" if edge_in.deep else "child"
        next_on_spine = spine[index + 1][1] if index + 1 < len(spine) else None
        predicates = _predicates_for(graph, spine_node, next_on_spine, on_spine)
        steps.append(Step(axis, pattern.tag, tuple(predicates)))
    return PathExpression(tuple(steps), absolute=True)


def _predicates_for(
    graph: QueryGraph,
    node_id: str,
    next_on_spine: Optional[str],
    on_spine: set[str],
) -> list[Predicate]:
    predicates: list[Predicate] = []
    for edge in graph.children_of(node_id):
        if edge.child == next_on_spine and not edge.negated:
            continue
        child = graph.nodes[edge.child]
        if isinstance(child, AttributePattern):
            predicates.append(
                Predicate("attr", child.name, child.value, negated=edge.negated)
            )
        elif isinstance(child, TextPattern):
            predicates.append(
                Predicate("text", "", child.value, negated=edge.negated)
            )
        else:
            assert isinstance(child, ElementPattern)
            sub = _subtree_path(graph, edge)
            predicates.append(
                Predicate("child", negated=edge.negated, path=sub)
            )
    return predicates


def _subtree_path(graph: QueryGraph, edge: ContainmentEdge) -> PathExpression:
    """The relative path of a non-spine subtree rooted at ``edge.child``."""
    child = graph.nodes[edge.child]
    assert isinstance(child, ElementPattern)
    axis = "descendant" if edge.deep else "child"
    predicates = _predicates_for(graph, edge.child, None, set())
    first = Step(axis, child.tag, tuple(predicates))
    return PathExpression((first,), absolute=False)
