"""AST → diagram: drawing the queries.

Every figure in the paper is a drawn query; this module produces those
drawings from the ASTs.  The mapping is lossless: each shape/connector
carries the language-level facts in ``meta`` (node ids, flags), exactly
what a structured GUI editor stores per widget, so
:mod:`repro.visual.parse_diagram` can reconstruct the AST and the
round-trip ``rule → diagram → rule`` is the identity (property-tested).
"""

from __future__ import annotations

from typing import Optional

from ..xmlgl.ast import (
    AttributePattern,
    ElementPattern,
    QueryGraph,
    TextPattern,
)
from ..xmlgl.construct import (
    Aggregate,
    Collect,
    ConstructNode,
    Copy,
    GroupBy,
    NewElement,
    TextFrom,
    TextLiteral,
)
from ..xmlgl.rule import Rule
from ..wglog.ast import Color, RuleGraph
from .diagram import Diagram
from .layout import layered_layout, side_by_side
from .shapes import Connector, Shape, ShapeKind, StrokeStyle

__all__ = ["xmlgl_rule_diagram", "wglog_rule_diagram"]


# ---------------------------------------------------------------------------
# XML-GL
# ---------------------------------------------------------------------------

def _query_shape(node, graph_index: int) -> Shape:
    shape_id = f"q:{node.id}"
    if isinstance(node, ElementPattern):
        return Shape(
            shape_id,
            ShapeKind.BOX,
            label=node.tag if node.tag is not None else "*",
            meta={
                "role": "element",
                "node": node.id,
                "tag": node.tag,
                "anchored": node.anchored,
                "graph": graph_index,
            },
        )
    if isinstance(node, TextPattern):
        label = node.value if node.value is not None else (
            f"/{node.regex}/" if node.regex else ""
        )
        return Shape(
            shape_id,
            ShapeKind.CIRCLE_HOLLOW,
            label=label,
            meta={
                "role": "text",
                "node": node.id,
                "value": node.value,
                "regex": node.regex,
                "graph": graph_index,
            },
        )
    assert isinstance(node, AttributePattern)
    label = node.name
    if node.value is not None:
        label += f"={node.value}"
    elif node.regex is not None:
        label += f"~/{node.regex}/"
    return Shape(
        shape_id,
        ShapeKind.CIRCLE_FILLED,
        label=label,
        meta={
            "role": "attribute",
            "node": node.id,
            "name": node.name,
            "value": node.value,
            "regex": node.regex,
            "graph": graph_index,
        },
    )


def _edge_connector(diagram: Diagram, edge, graph_index: int, extra_meta: Optional[dict] = None) -> Connector:
    annotation = "".join(
        mark
        for mark, flag in (("*", edge.deep), ("'", edge.ordered))
        if flag
    )
    meta = {
        "role": "containment",
        "deep": edge.deep,
        "ordered": edge.ordered,
        "negated": edge.negated,
        "position": edge.position,
        "graph": graph_index,
    }
    if extra_meta:
        meta.update(extra_meta)
    return Connector(
        diagram.fresh_id("c"),
        f"q:{edge.parent}",
        f"q:{edge.child}",
        annotation=annotation,
        crossed=edge.negated,
        meta=meta,
    )


def _render_query_graph(diagram: Diagram, graph: QueryGraph, graph_index: int) -> list[str]:
    ids: list[str] = []
    for node in graph.nodes.values():
        shape = _query_shape(node, graph_index)
        diagram.add_shape(shape)
        ids.append(shape.id)
    for edge in graph.edges:
        diagram.add_connector(_edge_connector(diagram, edge, graph_index))
    for group_index, group in enumerate(graph.or_groups):
        for branch_index, branch in enumerate(group.alternatives):
            for edge in branch:
                connector = _edge_connector(
                    diagram, edge, graph_index,
                    extra_meta={
                        "or_group": group_index,
                        "or_branch": branch_index,
                    },
                )
                connector.label = f"or{group_index + 1}.{branch_index + 1}"
                diagram.add_connector(connector)
    for condition_index, condition in enumerate(graph.conditions):
        shape = Shape(
            f"q:cond:{graph_index}:{condition_index}",
            ShapeKind.LABEL,
            label=f"where {condition}",
            meta={
                "role": "condition",
                "condition": condition,
                "graph": graph_index,
            },
        )
        diagram.add_shape(shape)
        ids.append(shape.id)
    if graph.source:
        shape = Shape(
            f"q:src:{graph_index}",
            ShapeKind.LABEL,
            label=f"source: {graph.source}",
            meta={"role": "source", "source": graph.source, "graph": graph_index},
        )
        diagram.add_shape(shape)
        ids.append(shape.id)
    return ids


def _construct_shape(diagram: Diagram, node: ConstructNode, path: str) -> str:
    shape_id = f"c:{path}"
    if isinstance(node, NewElement):
        label = node.tag
        if node.for_each:
            label += f" ∀{','.join(node.for_each)}"
        attributes = [
            (a.name, a.value, a.from_variable) for a in node.attributes
        ]
        diagram.add_shape(
            Shape(
                shape_id, ShapeKind.BOX, label=label, stroke=StrokeStyle.THICK,
                meta={
                    "role": "new_element",
                    "tag": node.tag,
                    "for_each": list(node.for_each),
                    "sort_by": node.sort_by,
                    "attributes": attributes,
                    "tag_from": node.tag_from,
                },
            )
        )
        if node.tag_from is not None:
            _bind(diagram, shape_id, node.tag_from)
        for index, child in enumerate(node.children):
            child_id = _construct_shape(diagram, child, f"{path}.{index}")
            diagram.add_connector(
                Connector(
                    diagram.fresh_id("c"), shape_id, child_id,
                    stroke=StrokeStyle.THICK,
                    meta={"role": "construct_child", "position": index},
                )
            )
        return shape_id
    if isinstance(node, (Copy, Collect)):
        kind = ShapeKind.TRIANGLE if isinstance(node, Collect) else ShapeKind.BOX
        role = "collect" if isinstance(node, Collect) else "copy"
        star = "*" if node.deep else ""
        diagram.add_shape(
            Shape(
                shape_id, kind, label=f"{node.variable}{star}",
                stroke=StrokeStyle.THICK,
                meta={"role": role, "variable": node.variable, "deep": node.deep},
            )
        )
        _bind(diagram, shape_id, node.variable)
        return shape_id
    if isinstance(node, GroupBy):
        diagram.add_shape(
            Shape(
                shape_id, ShapeKind.LIST_ICON,
                label=",".join(node.group_on), stroke=StrokeStyle.THICK,
                meta={"role": "group", "group_on": list(node.group_on)},
            )
        )
        for index, child in enumerate(node.children):
            child_id = _construct_shape(diagram, child, f"{path}.{index}")
            diagram.add_connector(
                Connector(
                    diagram.fresh_id("c"), shape_id, child_id,
                    stroke=StrokeStyle.THICK,
                    meta={"role": "construct_child", "position": index},
                )
            )
        return shape_id
    if isinstance(node, TextLiteral):
        diagram.add_shape(
            Shape(
                shape_id, ShapeKind.CIRCLE_HOLLOW, label=repr(node.text),
                stroke=StrokeStyle.THICK,
                meta={"role": "text_literal", "text": node.text},
            )
        )
        return shape_id
    if isinstance(node, TextFrom):
        diagram.add_shape(
            Shape(
                shape_id, ShapeKind.CIRCLE_HOLLOW, label=node.variable,
                stroke=StrokeStyle.THICK,
                meta={"role": "text_from", "variable": node.variable},
            )
        )
        _bind(diagram, shape_id, node.variable)
        return shape_id
    assert isinstance(node, Aggregate)
    diagram.add_shape(
        Shape(
            shape_id, ShapeKind.CIRCLE_HOLLOW,
            label=f"{node.function}({node.variable})",
            stroke=StrokeStyle.THICK,
            meta={
                "role": "aggregate",
                "function": node.function,
                "variable": node.variable,
            },
        )
    )
    _bind(diagram, shape_id, node.variable)
    return shape_id


def _bind(diagram: Diagram, construct_shape: str, variable: str) -> None:
    """Dashed reference line from a construct shape to its query node."""
    query_shape = f"q:{variable}"
    if query_shape in diagram:
        diagram.add_connector(
            Connector(
                diagram.fresh_id("c"), construct_shape, query_shape,
                stroke=StrokeStyle.DASHED, arrow=False,
                meta={"role": "binding", "variable": variable},
            )
        )


def xmlgl_rule_diagram(rule: Rule, layout: bool = True) -> Diagram:
    """Draw an XML-GL rule: extract part ∥ construct part."""
    diagram = Diagram(title=rule.name or "xml-gl rule")
    left_ids: list[str] = []
    for graph_index, graph in enumerate(rule.queries):
        left_ids.extend(_render_query_graph(diagram, graph, graph_index))
    for condition_index, condition in enumerate(rule.conditions):
        shape = Shape(
            f"q:rulecond:{condition_index}",
            ShapeKind.LABEL,
            label=f"where {condition}",
            meta={"role": "rule_condition", "condition": condition},
        )
        diagram.add_shape(shape)
        left_ids.append(shape.id)
    separator = Shape("sep", ShapeKind.SEPARATOR, meta={"role": "separator"})
    diagram.add_shape(separator)
    root_id = _construct_shape(diagram, rule.construct, "0")
    right_ids = [s.id for s in diagram.shapes() if s.id.startswith("c:")]
    if layout:
        side_by_side(diagram, left_ids, right_ids, separator_id="sep")
    assert root_id in diagram
    return diagram


# ---------------------------------------------------------------------------
# WG-Log
# ---------------------------------------------------------------------------

def wglog_rule_diagram(rule: RuleGraph, layout: bool = True) -> Diagram:
    """Draw a WG-Log rule: one graph, thin (red) and thick (green) parts."""
    diagram = Diagram(title=rule.name or "wg-log rule")
    for node in rule.nodes.values():
        stroke = StrokeStyle.THICK if node.color is Color.GREEN else StrokeStyle.THIN
        kind = ShapeKind.TRIANGLE if node.collector else ShapeKind.BOX
        diagram.add_shape(
            Shape(
                f"n:{node.id}", kind, label=node.label or "*", stroke=stroke,
                meta={
                    "role": "wg_node",
                    "node": node.id,
                    "label": node.label,
                    "color": node.color.value,
                    "collector": node.collector,
                },
            )
        )
    for edge in rule.edges:
        stroke = StrokeStyle.THICK if edge.color is Color.GREEN else (
            StrokeStyle.DASHED if edge.path else StrokeStyle.THIN
        )
        diagram.add_connector(
            Connector(
                diagram.fresh_id("c"), f"n:{edge.source}", f"n:{edge.target}",
                label=edge.label, stroke=stroke, crossed=edge.crossed,
                meta={
                    "role": "wg_edge",
                    "label": edge.label,
                    "color": edge.color.value,
                    "crossed": edge.crossed,
                    "path": edge.path,
                },
            )
        )
    for index, assertion in enumerate(rule.slot_assertions):
        if assertion.value is not None:
            label = f"{assertion.name}={assertion.value!r}"
        else:
            label = f"{assertion.name}={assertion.from_node}.{assertion.from_slot}"
        shape_id = f"slot:{index}"
        diagram.add_shape(
            Shape(
                shape_id, ShapeKind.CIRCLE_FILLED, label=label,
                stroke=StrokeStyle.THICK,
                meta={
                    "role": "wg_slot",
                    "node": assertion.node,
                    "name": assertion.name,
                    "value": assertion.value,
                    "from_node": assertion.from_node,
                    "from_slot": assertion.from_slot,
                },
            )
        )
        diagram.add_connector(
            Connector(
                diagram.fresh_id("c"), f"n:{assertion.node}", shape_id,
                stroke=StrokeStyle.THICK,
                meta={"role": "wg_slot_edge"},
            )
        )
    for index, condition in enumerate(rule.conditions):
        diagram.add_shape(
            Shape(
                f"cond:{index}", ShapeKind.LABEL, label=f"where {condition}",
                meta={"role": "wg_condition", "condition": condition},
            )
        )
    if layout:
        layered_layout(diagram)
    return diagram
