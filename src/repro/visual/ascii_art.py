"""ASCII rendering of diagrams.

A coarse character-grid view used in tests, logs and terminals, where SVG
cannot be inspected.  The renderer scales the laid-out coordinates onto a
character canvas, draws each shape's outline, then routes connectors as
straight character lines with direction-dependent arrowheads; crossed
connectors get an ``X`` at their midpoint, dashed (path) ones use ``.``,
thick (green/construct) ones use ``=``.
"""

from __future__ import annotations

from .diagram import Diagram
from .shapes import Connector, Shape, ShapeKind, StrokeStyle

__all__ = ["render_ascii"]

_X_SCALE = 8.0
_Y_SCALE = 14.0


class _Canvas:
    def __init__(self, width: int, height: int) -> None:
        self.grid = [[" "] * width for _ in range(height)]
        self.width = width
        self.height = height

    def put(self, x: int, y: int, char: str, force: bool = False) -> None:
        if 0 <= x < self.width and 0 <= y < self.height:
            if force or self.grid[y][x] == " ":
                self.grid[y][x] = char

    def text(self, x: int, y: int, text: str) -> None:
        for offset, char in enumerate(text):
            self.put(x + offset, y, char, force=True)

    def render(self) -> str:
        return "\n".join("".join(row).rstrip() for row in self.grid)


def render_ascii(diagram: Diagram) -> str:
    """Render a laid-out diagram to a character grid."""
    min_x, min_y, max_x, max_y = diagram.bounds()
    width = int((max_x - min_x) / _X_SCALE) + 20
    height = int((max_y - min_y) / _Y_SCALE) + 6
    canvas = _Canvas(max(width, 20), max(height, 5))

    def to_grid(x: float, y: float) -> tuple[int, int]:
        return (int((x - min_x) / _X_SCALE) + 1, int((y - min_y) / _Y_SCALE) + 1)

    for connector in diagram.connectors():
        _draw_connector(canvas, diagram, connector, to_grid)
    for shape in diagram.shapes():
        _draw_shape(canvas, shape, to_grid)
    lines = [f"== {diagram.title} ==" ] if diagram.title else []
    return "\n".join(lines + [canvas.render()])


def _draw_shape(canvas: _Canvas, shape: Shape, to_grid) -> None:
    left, top = to_grid(shape.x, shape.y)
    right, bottom = to_grid(shape.x + shape.width, shape.y + shape.height)
    right = max(right, left + len(shape.label) + 1)
    if shape.kind is ShapeKind.BOX:
        border = "=" if shape.stroke is StrokeStyle.THICK else "-"
        for x in range(left, right + 1):
            canvas.put(x, top, border, force=True)
            canvas.put(x, bottom, border, force=True)
        for y in range(top, bottom + 1):
            canvas.put(left, y, "|", force=True)
            canvas.put(right, y, "|", force=True)
        for corner_x, corner_y in ((left, top), (right, top), (left, bottom), (right, bottom)):
            canvas.put(corner_x, corner_y, "+", force=True)
        canvas.text(left + 1, (top + bottom) // 2, shape.label[: right - left - 1])
    elif shape.kind is ShapeKind.CIRCLE_HOLLOW:
        canvas.text(left, (top + bottom) // 2, f"({shape.label or ' '})")
    elif shape.kind is ShapeKind.CIRCLE_FILLED:
        canvas.text(left, (top + bottom) // 2, f"(*{shape.label or ''}*)")
    elif shape.kind is ShapeKind.TRIANGLE:
        mid = (left + right) // 2
        canvas.put(mid, top, "^", force=True)
        canvas.text(left, bottom, "/__\\")
        if shape.label:
            canvas.text(left, bottom + 1, shape.label)
    elif shape.kind is ShapeKind.LIST_ICON:
        canvas.text(left, top, "[≡]" if shape.width < 40 else "[list]")
        if shape.label:
            canvas.text(left, top + 1, shape.label)
    elif shape.kind is ShapeKind.LABEL:
        canvas.text(left, top, shape.label)
    elif shape.kind is ShapeKind.SEPARATOR:
        for y in range(top, bottom + 1):
            canvas.put(left, y, "#", force=True)
    if shape.crossed:
        cx, cy = to_grid(*shape.center)
        canvas.put(cx, cy, "X", force=True)


def _draw_connector(canvas: _Canvas, diagram: Diagram, connector: Connector, to_grid) -> None:
    source = diagram.shape(connector.source)
    target = diagram.shape(connector.target)
    x1, y1 = to_grid(*source.center)
    x2, y2 = to_grid(*target.center)
    if connector.stroke is StrokeStyle.THICK:
        char = "="
    elif connector.stroke is StrokeStyle.DASHED:
        char = "."
    else:
        char = "*"
    steps = max(abs(x2 - x1), abs(y2 - y1), 1)
    for step in range(steps + 1):
        t = step / steps
        canvas.put(round(x1 + (x2 - x1) * t), round(y1 + (y2 - y1) * t), char)
    if connector.arrow:
        head = _arrow_head(x2 - x1, y2 - y1)
        canvas.put(round(x1 + (x2 - x1) * 0.8), round(y1 + (y2 - y1) * 0.8), head, force=True)
    mid_x, mid_y = (x1 + x2) // 2, (y1 + y2) // 2
    if connector.crossed:
        canvas.put(mid_x, mid_y, "X", force=True)
    annotation = " ".join(filter(None, (connector.label, connector.annotation)))
    if annotation:
        canvas.text(mid_x + 1, mid_y, annotation)


def _arrow_head(dx: int, dy: int) -> str:
    if abs(dx) >= abs(dy):
        return ">" if dx >= 0 else "<"
    return "v" if dy >= 0 else "^"
