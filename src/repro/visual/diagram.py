"""The headless diagram scene graph.

A :class:`Diagram` is what an interactive editor would keep in memory: a
set of shapes and the connectors between them, plus free annotations.  It
knows nothing about query semantics — the mappings in
:mod:`repro.visual.render_query` and :mod:`repro.visual.parse_diagram`
translate between diagrams and the two languages' ASTs.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import DiagramError
from .shapes import Connector, Shape, ShapeKind

__all__ = ["Diagram"]


class Diagram:
    """Shapes + connectors with id-based lookup and structural checks."""

    def __init__(self, title: str = "") -> None:
        self.title = title
        self._shapes: dict[str, Shape] = {}
        self._connectors: dict[str, Connector] = {}
        self._fresh = 0

    # -- ids ------------------------------------------------------------------

    def fresh_id(self, stem: str = "s") -> str:
        """An id unused by any shape or connector."""
        while True:
            self._fresh += 1
            candidate = f"{stem}{self._fresh}"
            if candidate not in self._shapes and candidate not in self._connectors:
                return candidate

    # -- mutation ---------------------------------------------------------------

    def add_shape(self, shape: Shape) -> Shape:
        """Add a shape; duplicate ids raise."""
        if shape.id in self._shapes:
            raise DiagramError(f"duplicate shape id {shape.id!r}")
        self._shapes[shape.id] = shape
        return shape

    def add_connector(self, connector: Connector) -> Connector:
        """Add a connector; endpoints must exist."""
        if connector.id in self._connectors:
            raise DiagramError(f"duplicate connector id {connector.id!r}")
        for endpoint in (connector.source, connector.target):
            if endpoint not in self._shapes:
                raise DiagramError(f"connector endpoint {endpoint!r} is not a shape")
        self._connectors[connector.id] = connector
        return connector

    def remove_shape(self, shape_id: str) -> None:
        """Remove a shape and all incident connectors."""
        if shape_id not in self._shapes:
            raise DiagramError(f"unknown shape {shape_id!r}")
        del self._shapes[shape_id]
        for connector_id in [
            c.id
            for c in self._connectors.values()
            if c.source == shape_id or c.target == shape_id
        ]:
            del self._connectors[connector_id]

    def remove_connector(self, connector_id: str) -> None:
        """Remove one connector."""
        if connector_id not in self._connectors:
            raise DiagramError(f"unknown connector {connector_id!r}")
        del self._connectors[connector_id]

    # -- access ---------------------------------------------------------------

    def shape(self, shape_id: str) -> Shape:
        """Shape by id; raises :class:`DiagramError` when absent."""
        try:
            return self._shapes[shape_id]
        except KeyError:
            raise DiagramError(f"unknown shape {shape_id!r}")

    def connector(self, connector_id: str) -> Connector:
        """Connector by id."""
        try:
            return self._connectors[connector_id]
        except KeyError:
            raise DiagramError(f"unknown connector {connector_id!r}")

    def shapes(self) -> Iterator[Shape]:
        """All shapes, insertion order."""
        return iter(self._shapes.values())

    def connectors(self) -> Iterator[Connector]:
        """All connectors, insertion order."""
        return iter(self._connectors.values())

    def shapes_of_kind(self, kind: ShapeKind) -> list[Shape]:
        """Shapes of one kind."""
        return [s for s in self._shapes.values() if s.kind is kind]

    def connectors_from(self, shape_id: str) -> list[Connector]:
        """Outgoing connectors of a shape."""
        return [c for c in self._connectors.values() if c.source == shape_id]

    def connectors_to(self, shape_id: str) -> list[Connector]:
        """Incoming connectors of a shape."""
        return [c for c in self._connectors.values() if c.target == shape_id]

    def __contains__(self, shape_id: str) -> bool:
        return shape_id in self._shapes

    def __len__(self) -> int:
        return len(self._shapes)

    # -- geometry ---------------------------------------------------------------

    def bounds(self) -> tuple[float, float, float, float]:
        """(min_x, min_y, max_x, max_y) over all shapes (post-layout)."""
        placed = [s for s in self._shapes.values()]
        if not placed:
            return (0.0, 0.0, 0.0, 0.0)
        return (
            min(s.x for s in placed),
            min(s.y for s in placed),
            max(s.x + s.width for s in placed),
            max(s.y + s.height for s in placed),
        )

    def validate(self) -> None:
        """Structural checks: connector endpoints exist, separator count."""
        for connector in self._connectors.values():
            for endpoint in (connector.source, connector.target):
                if endpoint not in self._shapes:
                    raise DiagramError(
                        f"connector {connector.id!r} endpoint {endpoint!r} missing"
                    )
        separators = self.shapes_of_kind(ShapeKind.SEPARATOR)
        if len(separators) > 1:
            raise DiagramError("a rule diagram has at most one separator")

    def __repr__(self) -> str:
        return (
            f"Diagram({self.title!r}, shapes={len(self._shapes)}, "
            f"connectors={len(self._connectors)})"
        )
