"""SVG rendering of diagrams.

Produces standalone, deterministic SVG documents: boxes, hollow/filled
circles, the triangle and list-icon construct primitives, the rule
separator, and connectors with arrowheads, stroke styles (thin / thick /
dashed), negation crosses and midpoint annotations — the full visual
vocabulary of both languages.
"""

from __future__ import annotations

from .diagram import Diagram
from .shapes import Connector, Shape, ShapeKind, StrokeStyle

__all__ = ["render_svg"]

_FONT = 'font-family="monospace" font-size="12"'


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _stroke_attrs(stroke: StrokeStyle) -> str:
    if stroke is StrokeStyle.THICK:
        return 'stroke="#1a7f37" stroke-width="2.6"'
    if stroke is StrokeStyle.DASHED:
        return 'stroke="#333333" stroke-width="1.2" stroke-dasharray="6 4"'
    return 'stroke="#b02a2a" stroke-width="1.2"'


def render_svg(diagram: Diagram) -> str:
    """Render a laid-out diagram to an SVG document string."""
    min_x, min_y, max_x, max_y = diagram.bounds()
    width = max(max_x + 24, 120)
    height = max(max_y + 24, 80)
    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        "<defs>"
        '<marker id="arrow" markerWidth="9" markerHeight="7" refX="8" refY="3.5" '
        'orient="auto"><polygon points="0 0, 9 3.5, 0 7" fill="#333"/></marker>'
        "</defs>",
        f'<rect width="{width:.0f}" height="{height:.0f}" fill="white"/>',
    ]
    if diagram.title:
        parts.append(
            f'<text x="{width / 2:.1f}" y="14" text-anchor="middle" {_FONT} '
            f'font-weight="bold">{_escape(diagram.title)}</text>'
        )
    for connector in diagram.connectors():
        parts.append(_render_connector(diagram, connector))
    for shape in diagram.shapes():
        parts.append(_render_shape(shape))
    parts.append("</svg>")
    return "\n".join(parts)


def _render_shape(shape: Shape) -> str:
    cx, cy = shape.center
    stroke = _stroke_attrs(shape.stroke)
    label = _escape(shape.label)
    pieces: list[str] = []
    if shape.kind is ShapeKind.BOX:
        pieces.append(
            f'<rect x="{shape.x:.1f}" y="{shape.y:.1f}" width="{shape.width:.1f}" '
            f'height="{shape.height:.1f}" rx="3" fill="#fdfdf5" {stroke}/>'
        )
        pieces.append(_text(cx, cy + 4, label))
    elif shape.kind is ShapeKind.CIRCLE_HOLLOW:
        pieces.append(
            f'<ellipse cx="{cx:.1f}" cy="{cy:.1f}" rx="{shape.width / 2:.1f}" '
            f'ry="{shape.height / 2:.1f}" fill="white" {stroke}/>'
        )
        if label:
            pieces.append(_text(cx, cy + 4, label))
    elif shape.kind is ShapeKind.CIRCLE_FILLED:
        pieces.append(
            f'<ellipse cx="{cx:.1f}" cy="{cy:.1f}" rx="{shape.width / 2:.1f}" '
            f'ry="{shape.height / 2:.1f}" fill="#444" {stroke}/>'
        )
        if label:
            pieces.append(_text(cx, cy - shape.height / 2 - 4, label))
    elif shape.kind is ShapeKind.TRIANGLE:
        points = (
            f"{cx:.1f},{shape.y:.1f} {shape.x:.1f},{shape.y + shape.height:.1f} "
            f"{shape.x + shape.width:.1f},{shape.y + shape.height:.1f}"
        )
        pieces.append(f'<polygon points="{points}" fill="#eef6ee" {stroke}/>')
        if label:
            pieces.append(_text(cx, shape.y + shape.height + 12, label))
    elif shape.kind is ShapeKind.LIST_ICON:
        pieces.append(
            f'<rect x="{shape.x:.1f}" y="{shape.y:.1f}" width="{shape.width:.1f}" '
            f'height="{shape.height:.1f}" fill="#eef2f8" {stroke}/>'
        )
        for row in range(1, 4):
            line_y = shape.y + row * shape.height / 4
            pieces.append(
                f'<line x1="{shape.x + 4:.1f}" y1="{line_y:.1f}" '
                f'x2="{shape.x + shape.width - 4:.1f}" y2="{line_y:.1f}" '
                'stroke="#666" stroke-width="1"/>'
            )
        if label:
            pieces.append(_text(cx, shape.y + shape.height + 12, label))
    elif shape.kind is ShapeKind.LABEL:
        pieces.append(
            f'<text x="{shape.x:.1f}" y="{shape.y + 12:.1f}" {_FONT} '
            f'fill="#555">{label}</text>'
        )
    elif shape.kind is ShapeKind.SEPARATOR:
        pieces.append(
            f'<line x1="{shape.x:.1f}" y1="{shape.y:.1f}" x2="{shape.x:.1f}" '
            f'y2="{shape.y + shape.height:.1f}" stroke="#222" stroke-width="2"/>'
        )
    if shape.crossed:
        pieces.append(_cross(cx, cy))
    return "\n".join(pieces)


def _text(x: float, y: float, label: str) -> str:
    return (
        f'<text x="{x:.1f}" y="{y:.1f}" text-anchor="middle" {_FONT}>'
        f"{label}</text>"
    )


def _cross(x: float, y: float, radius: float = 7.0) -> str:
    return (
        f'<line x1="{x - radius:.1f}" y1="{y - radius:.1f}" '
        f'x2="{x + radius:.1f}" y2="{y + radius:.1f}" stroke="#b00" stroke-width="2"/>'
        f'<line x1="{x - radius:.1f}" y1="{y + radius:.1f}" '
        f'x2="{x + radius:.1f}" y2="{y - radius:.1f}" stroke="#b00" stroke-width="2"/>'
    )


def _anchor_point(shape: Shape, towards: tuple[float, float]) -> tuple[float, float]:
    """Point on the shape's border towards the other endpoint."""
    cx, cy = shape.center
    tx, ty = towards
    dx, dy = tx - cx, ty - cy
    if dx == 0 and dy == 0:
        return (cx, cy)
    half_w = shape.width / 2 or 1.0
    half_h = shape.height / 2 or 1.0
    scale = 1.0 / max(abs(dx) / half_w, abs(dy) / half_h)
    return (cx + dx * scale, cy + dy * scale)


def _render_connector(diagram: Diagram, connector: Connector) -> str:
    source = diagram.shape(connector.source)
    target = diagram.shape(connector.target)
    x1, y1 = _anchor_point(source, target.center)
    x2, y2 = _anchor_point(target, source.center)
    stroke = _stroke_attrs(connector.stroke)
    marker = ' marker-end="url(#arrow)"' if connector.arrow else ""
    pieces = [
        f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
        f"{stroke}{marker}/>"
    ]
    mid_x, mid_y = (x1 + x2) / 2, (y1 + y2) / 2
    if connector.label:
        pieces.append(
            f'<text x="{mid_x:.1f}" y="{mid_y - 5:.1f}" text-anchor="middle" '
            f'{_FONT} fill="#333">{_escape(connector.label)}</text>'
        )
    if connector.annotation:
        pieces.append(
            f'<text x="{mid_x + 8:.1f}" y="{mid_y + 12:.1f}" {_FONT} '
            f'fill="#7a4" font-weight="bold">{_escape(connector.annotation)}</text>'
        )
    if connector.crossed:
        pieces.append(_cross(mid_x, mid_y))
    return "\n".join(pieces)
