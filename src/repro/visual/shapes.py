"""Shape vocabulary of the graphical languages.

Both languages draw from a small set of primitives; this module defines
them as data.  The repro hint suggests a Qt GUI, which is unavailable
offline — instead shapes live in a headless scene graph
(:mod:`repro.visual.diagram`) that the layout engine positions and the
SVG/ASCII renderers draw.  Every figure of the paper is expressible with:

==============  =====================================================
ShapeKind       used for
==============  =====================================================
BOX             XML-GL element patterns, construct boxes, WG-Log
                entity rectangles (thick stroke = green part)
CIRCLE_HOLLOW   XML-GL PCDATA circles
CIRCLE_FILLED   XML-GL attribute circles
TRIANGLE        the collect-all construct primitive / WG-Log collector
LIST_ICON       the grouping (list) construct primitive
LABEL           free-floating annotations (conditions, multiplicities)
SEPARATOR       the vertical extract ∥ construct divider of a rule
==============  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
__all__ = ["ShapeKind", "StrokeStyle", "Shape", "Connector"]


class ShapeKind(Enum):
    """The visual primitive a shape renders as."""

    BOX = auto()
    CIRCLE_HOLLOW = auto()
    CIRCLE_FILLED = auto()
    TRIANGLE = auto()
    LIST_ICON = auto()
    LABEL = auto()
    SEPARATOR = auto()


class StrokeStyle(Enum):
    """Stroke weight/pattern, semantically loaded in both languages.

    THIN is the query colour (WG-Log red), THICK the construction colour
    (WG-Log green), DASHED the regular-path arrow inherited from GraphLog.
    """

    THIN = "thin"
    THICK = "thick"
    DASHED = "dashed"


@dataclass
class Shape:
    """One shape in a diagram.

    Geometry (``x``/``y`` = top-left, ``width``/``height``) is filled in by
    the layout engine; ``meta`` carries the language-level identity (node
    id, flags) that the diagram→AST mapping reads back — exactly the data a
    GUI editor would keep per widget.
    """

    id: str
    kind: ShapeKind
    label: str = ""
    stroke: StrokeStyle = StrokeStyle.THIN
    crossed: bool = False
    x: float = 0.0
    y: float = 0.0
    width: float = 0.0
    height: float = 0.0
    meta: dict = field(default_factory=dict)

    @property
    def center(self) -> tuple[float, float]:
        """Geometric centre (valid after layout)."""
        return (self.x + self.width / 2, self.y + self.height / 2)


@dataclass
class Connector:
    """A drawn arc between two shapes.

    ``annotation`` renders next to the arc midpoint (XML-GL's ``*`` star
    or ordered tick, WG-Log edge labels).  ``crossed`` draws the negation
    cross; ``stroke`` distinguishes query/construct/path arcs; ``arrow``
    chooses whether an arrowhead is drawn at the target.
    """

    id: str
    source: str
    target: str
    label: str = ""
    annotation: str = ""
    stroke: StrokeStyle = StrokeStyle.THIN
    crossed: bool = False
    arrow: bool = True
    meta: dict = field(default_factory=dict)
