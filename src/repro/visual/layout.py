"""Deterministic diagram layout.

Query graphs are (near-)hierarchical, so the main algorithm is a layered
(Sugiyama-style) layout:

1. *Layering* — longest-path layering over the connector DAG (cycles are
   broken by ignoring back edges found by DFS);
2. *Ordering* — within each layer, a few barycenter sweeps reduce
   crossings;
3. *Coordinates* — layers become rows; shapes are sized from their labels
   and spaced evenly, parents centred over their children where possible.

The layout is deterministic (no randomness), so rendered figures are
stable across runs — important because benchmark FIG-D1 diffs the SVG
output.  ``side_by_side`` lays two sub-diagram halves (extract ∥
construct) left and right of a separator, the paper's rule arrangement.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from .diagram import Diagram
from .shapes import Shape, ShapeKind

__all__ = ["size_shape", "layered_layout", "side_by_side"]

#: Geometry constants (pixel-ish units used by the SVG renderer).
CHAR_WIDTH = 7.5
BOX_HEIGHT = 28.0
CIRCLE_DIAMETER = 26.0
H_GAP = 36.0
V_GAP = 52.0
MARGIN = 24.0


def size_shape(shape: Shape) -> None:
    """Assign width/height from the shape's kind and label length."""
    if shape.kind is ShapeKind.BOX:
        shape.width = max(44.0, CHAR_WIDTH * len(shape.label) + 16)
        shape.height = BOX_HEIGHT
    elif shape.kind in (ShapeKind.CIRCLE_HOLLOW, ShapeKind.CIRCLE_FILLED):
        shape.width = shape.height = CIRCLE_DIAMETER
        if shape.label:
            shape.width = max(CIRCLE_DIAMETER, CHAR_WIDTH * len(shape.label) + 10)
    elif shape.kind is ShapeKind.TRIANGLE:
        shape.width = 34.0
        shape.height = 30.0
    elif shape.kind is ShapeKind.LIST_ICON:
        shape.width = 34.0
        shape.height = 30.0
    elif shape.kind is ShapeKind.LABEL:
        shape.width = CHAR_WIDTH * len(shape.label) + 8
        shape.height = 18.0
    elif shape.kind is ShapeKind.SEPARATOR:
        shape.width = 2.0
        shape.height = 10.0  # stretched later


def _break_cycles(
    nodes: list[str], successors: dict[str, list[str]]
) -> dict[str, list[str]]:
    """Successor map with DFS back edges removed (keeps the layout a DAG)."""
    acyclic: dict[str, list[str]] = {n: [] for n in nodes}
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {n: WHITE for n in nodes}

    def visit(node: str) -> None:
        colour[node] = GREY
        for succ in successors.get(node, ()):
            if colour[succ] == GREY:
                continue  # back edge dropped
            acyclic[node].append(succ)
            if colour[succ] == WHITE:
                visit(succ)
        colour[node] = BLACK

    for node in nodes:
        if colour[node] == WHITE:
            visit(node)
    return acyclic


def _layering(nodes: list[str], successors: dict[str, list[str]]) -> dict[str, int]:
    """Longest-path layer assignment (roots at layer 0)."""
    in_degree = {n: 0 for n in nodes}
    for node in nodes:
        for succ in successors[node]:
            in_degree[succ] += 1
    layer = {n: 0 for n in nodes}
    queue = deque(n for n in nodes if in_degree[n] == 0)
    while queue:
        node = queue.popleft()
        for succ in successors[node]:
            layer[succ] = max(layer[succ], layer[node] + 1)
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                queue.append(succ)
    return layer


def _barycenter_order(
    layers: list[list[str]],
    successors: dict[str, list[str]],
    sweeps: int = 3,
) -> None:
    """Reduce crossings by ordering each layer by neighbour barycenters."""
    predecessors: dict[str, list[str]] = {n: [] for row in layers for n in row}
    for node, succs in successors.items():
        for succ in succs:
            predecessors[succ].append(node)

    def sort_row(row: list[str], reference: dict[str, int], links: dict[str, list[str]]) -> None:
        def barycenter(node: str) -> float:
            positions = [reference[n] for n in links[node] if n in reference]
            return sum(positions) / len(positions) if positions else reference.get(node, 0)

        row.sort(key=barycenter)

    for _ in range(sweeps):
        for index in range(1, len(layers)):
            reference = {n: i for i, n in enumerate(layers[index - 1])}
            sort_row(layers[index], reference, predecessors)
        for index in range(len(layers) - 2, -1, -1):
            reference = {n: i for i, n in enumerate(layers[index + 1])}
            sort_row(layers[index], reference, successors)


def layered_layout(
    diagram: Diagram,
    shape_ids: Optional[Iterable[str]] = None,
    origin: tuple[float, float] = (MARGIN, MARGIN),
) -> tuple[float, float]:
    """Position the given shapes (default: all) hierarchically.

    Returns the (width, height) of the laid-out block.  LABEL shapes are
    stacked under the hierarchy; SEPARATORs are ignored (positioned by
    :func:`side_by_side`).
    """
    ids = list(shape_ids) if shape_ids is not None else [s.id for s in diagram.shapes()]
    shapes = [diagram.shape(i) for i in ids]
    for shape in shapes:
        size_shape(shape)
    graph_nodes = [
        s.id for s in shapes if s.kind not in (ShapeKind.LABEL, ShapeKind.SEPARATOR)
    ]
    labels = [s for s in shapes if s.kind is ShapeKind.LABEL]
    node_set = set(graph_nodes)
    successors: dict[str, list[str]] = {n: [] for n in graph_nodes}
    for connector in diagram.connectors():
        if connector.source in node_set and connector.target in node_set:
            successors[connector.source].append(connector.target)

    acyclic = _break_cycles(graph_nodes, successors)
    layer_of = _layering(graph_nodes, acyclic)
    depth = max(layer_of.values(), default=0) + 1
    layers: list[list[str]] = [[] for _ in range(depth)]
    for node in graph_nodes:
        layers[layer_of[node]].append(node)
    _barycenter_order(layers, acyclic)

    origin_x, origin_y = origin
    max_width = 0.0
    y = origin_y
    for row in layers:
        x = origin_x
        row_height = 0.0
        for node in row:
            shape = diagram.shape(node)
            shape.x = x
            shape.y = y
            x += shape.width + H_GAP
            row_height = max(row_height, shape.height)
        max_width = max(max_width, x - H_GAP - origin_x if row else 0.0)
        y += row_height + V_GAP
    if layers and layers[-1] == []:
        y -= V_GAP
    # centre parents over their children (single pass, top-down rows stay)
    for index in range(depth - 2, -1, -1):
        for node in layers[index]:
            children = [c for c in acyclic[node] if layer_of[c] == index + 1]
            if not children:
                continue
            xs = [diagram.shape(c).center[0] for c in children]
            shape = diagram.shape(node)
            shape.x = sum(xs) / len(xs) - shape.width / 2
    _resolve_overlaps(diagram, layers)

    block_bottom = y - V_GAP
    for label in labels:
        label.x = origin_x
        label.y = block_bottom + V_GAP / 2
        block_bottom = label.y + label.height
        max_width = max(max_width, label.width)

    return (max_width, block_bottom - origin_y)


def _resolve_overlaps(diagram: Diagram, layers: list[list[str]]) -> None:
    """Push shapes right until no two in a row overlap (keeps centring)."""
    for row in layers:
        ordered = sorted(row, key=lambda n: diagram.shape(n).x)
        cursor = None
        for node in ordered:
            shape = diagram.shape(node)
            if cursor is not None and shape.x < cursor:
                shape.x = cursor
            cursor = shape.x + shape.width + H_GAP / 2


def side_by_side(
    diagram: Diagram,
    left_ids: Iterable[str],
    right_ids: Iterable[str],
    separator_id: Optional[str] = None,
) -> None:
    """Arrange two halves around a vertical separator (the rule layout)."""
    left_width, left_height = layered_layout(diagram, left_ids, origin=(MARGIN, MARGIN))
    separator_x = MARGIN + left_width + H_GAP
    right_origin = (separator_x + H_GAP, MARGIN)
    right_width, right_height = layered_layout(diagram, right_ids, origin=right_origin)
    height = max(left_height, right_height)
    if separator_id is not None:
        separator = diagram.shape(separator_id)
        separator.x = separator_x
        separator.y = MARGIN / 2
        separator.width = 2.0
        separator.height = height + MARGIN
