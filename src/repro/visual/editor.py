"""Headless query editors.

These classes stand in for the paper's interactive GUI (the repro
environment has no Qt): each public method is one *editor gesture* — drop
a box, draw an arc, cross an arc out, annotate a predicate — applied to
the same diagram model a GUI canvas would hold.  ``undo``/``redo`` work on
whole-diagram snapshots, and ``compile()`` turns the current drawing into
the language AST via :mod:`repro.visual.parse_diagram`, so everything the
GUI would let a user author is exercisable from tests and scripts.
"""

from __future__ import annotations

import copy
from typing import Optional, Sequence

from ..engine.conditions import Condition
from ..errors import DiagramError
from ..xmlgl.rule import Rule
from ..wglog.ast import RuleGraph
from .diagram import Diagram
from .layout import layered_layout, side_by_side
from .parse_diagram import diagram_to_wglog, diagram_to_xmlgl
from .render_query import wglog_rule_diagram, xmlgl_rule_diagram
from .shapes import Connector, Shape, ShapeKind, StrokeStyle
from .svg import render_svg
from .ascii_art import render_ascii

__all__ = ["XmlglEditor", "WglogEditor"]


class _BaseEditor:
    """Snapshot-based undo/redo over a diagram."""

    def __init__(self, title: str = "") -> None:
        self.diagram = Diagram(title=title)
        self._undo_stack: list[Diagram] = []
        self._redo_stack: list[Diagram] = []

    def _checkpoint(self) -> None:
        self._undo_stack.append(copy.deepcopy(self.diagram))
        self._redo_stack.clear()

    def undo(self) -> bool:
        """Undo the last gesture; returns False when nothing to undo."""
        if not self._undo_stack:
            return False
        self._redo_stack.append(self.diagram)
        self.diagram = self._undo_stack.pop()
        return True

    def redo(self) -> bool:
        """Redo the last undone gesture."""
        if not self._redo_stack:
            return False
        self._undo_stack.append(self.diagram)
        self.diagram = self._redo_stack.pop()
        return True

    def delete(self, shape_id: str) -> None:
        """Delete a shape (and its arcs) — the eraser gesture."""
        self._checkpoint()
        self.diagram.remove_shape(shape_id)

    def to_svg(self) -> str:
        """Render the current drawing as SVG."""
        return render_svg(self.diagram)

    def to_ascii(self) -> str:
        """Render the current drawing as ASCII art."""
        return render_ascii(self.diagram)

    def save(self, path: str) -> None:
        """Persist the current drawing (JSON, see ``visual.persist``)."""
        from .persist import save_diagram

        with open(path, "w", encoding="utf-8") as handle:
            handle.write(save_diagram(self.diagram))

    @classmethod
    def open(cls, path: str) -> "_BaseEditor":
        """Reopen a saved drawing in a fresh editor (empty undo history)."""
        from .persist import load_diagram

        with open(path, "r", encoding="utf-8") as handle:
            diagram = load_diagram(handle.read())
        editor = cls(title=diagram.title)
        editor.diagram = diagram
        return editor


class XmlglEditor(_BaseEditor):
    """Gesture-level authoring of XML-GL rules."""

    def __init__(self, title: str = "") -> None:
        super().__init__(title)
        self._construct_count = 0

    # -- query-side gestures -------------------------------------------------

    def add_element_box(
        self,
        tag: Optional[str],
        node_id: Optional[str] = None,
        anchored: bool = False,
        graph: int = 0,
    ) -> str:
        """Drop an element box on the extract canvas; returns its shape id."""
        self._checkpoint()
        node_id = node_id or self.diagram.fresh_id("n")
        shape = Shape(
            f"q:{node_id}", ShapeKind.BOX,
            label=tag if tag is not None else "*",
            meta={
                "role": "element", "node": node_id, "tag": tag,
                "anchored": anchored, "graph": graph,
            },
        )
        self.diagram.add_shape(shape)
        return shape.id

    def add_text_circle(
        self,
        parent_shape: str,
        value: Optional[str] = None,
        regex: Optional[str] = None,
        node_id: Optional[str] = None,
    ) -> str:
        """Drop a hollow circle under an element box and draw its arc."""
        self._checkpoint()
        parent = self.diagram.shape(parent_shape)
        node_id = node_id or self.diagram.fresh_id("t")
        shape = Shape(
            f"q:{node_id}", ShapeKind.CIRCLE_HOLLOW,
            label=value or (f"/{regex}/" if regex else ""),
            meta={
                "role": "text", "node": node_id, "value": value,
                "regex": regex, "graph": parent.meta["graph"],
            },
        )
        self.diagram.add_shape(shape)
        self._containment(parent, shape)
        return shape.id

    def add_attribute_circle(
        self,
        parent_shape: str,
        name: str,
        value: Optional[str] = None,
        regex: Optional[str] = None,
        node_id: Optional[str] = None,
    ) -> str:
        """Drop a filled circle under an element box and draw its arc."""
        self._checkpoint()
        parent = self.diagram.shape(parent_shape)
        node_id = node_id or self.diagram.fresh_id("a")
        shape = Shape(
            f"q:{node_id}", ShapeKind.CIRCLE_FILLED, label=name,
            meta={
                "role": "attribute", "node": node_id, "name": name,
                "value": value, "regex": regex, "graph": parent.meta["graph"],
            },
        )
        self.diagram.add_shape(shape)
        self._containment(parent, shape)
        return shape.id

    def _containment(self, parent: Shape, child: Shape, **flags) -> Connector:
        position = 1 + sum(
            1
            for c in self.diagram.connectors()
            if c.meta.get("role") == "containment"
        )
        connector = Connector(
            self.diagram.fresh_id("c"), parent.id, child.id,
            annotation="".join(
                m for m, f in (("*", flags.get("deep")), ("'", flags.get("ordered"))) if f
            ),
            crossed=bool(flags.get("negated")),
            meta={
                "role": "containment",
                "deep": bool(flags.get("deep")),
                "ordered": bool(flags.get("ordered")),
                "negated": bool(flags.get("negated")),
                "position": position,
                "graph": parent.meta["graph"],
            },
        )
        return self.diagram.add_connector(connector)

    def draw_arc(
        self,
        parent_shape: str,
        child_shape: str,
        deep: bool = False,
        ordered: bool = False,
    ) -> str:
        """Draw a containment arc between two existing boxes."""
        self._checkpoint()
        parent = self.diagram.shape(parent_shape)
        child = self.diagram.shape(child_shape)
        if parent.meta.get("role") != "element":
            raise DiagramError("containment arcs start at element boxes")
        return self._containment(parent, child, deep=deep, ordered=ordered).id

    def cross_out(self, connector_id: str) -> None:
        """Cross an arc out — the negation gesture."""
        self._checkpoint()
        connector = self.diagram.connector(connector_id)
        connector.crossed = True
        connector.meta["negated"] = True

    def annotate_condition(self, condition: Condition, graph: int = 0) -> str:
        """Attach a predicate annotation to the extract part."""
        self._checkpoint()
        shape = Shape(
            self.diagram.fresh_id("cond"), ShapeKind.LABEL,
            label=f"where {condition}",
            meta={"role": "condition", "condition": condition, "graph": graph},
        )
        self.diagram.add_shape(shape)
        return shape.id

    def set_source(self, source: str, graph: int = 0) -> str:
        """Name the source document of one extract graph."""
        self._checkpoint()
        shape = Shape(
            self.diagram.fresh_id("src"), ShapeKind.LABEL,
            label=f"source: {source}",
            meta={"role": "source", "source": source, "graph": graph},
        )
        self.diagram.add_shape(shape)
        return shape.id

    # -- construct-side gestures ----------------------------------------------

    def add_construct_box(
        self,
        tag: str,
        parent_shape: Optional[str] = None,
        for_each: Sequence[str] = (),
        sort_by: Optional[str] = None,
        attributes: Sequence[tuple] = (),
    ) -> str:
        """Drop a construct box (thick stroke) right of the separator."""
        self._checkpoint()
        self._construct_count += 1
        shape = Shape(
            f"c:{self._construct_count}", ShapeKind.BOX, label=tag,
            stroke=StrokeStyle.THICK,
            meta={
                "role": "new_element", "tag": tag,
                "for_each": list(for_each), "sort_by": sort_by,
                "attributes": [tuple(a) for a in attributes],
            },
        )
        self.diagram.add_shape(shape)
        if parent_shape is not None:
            self._construct_child(parent_shape, shape.id)
        return shape.id

    def add_triangle(self, parent_shape: str, variable: str, deep: bool = True) -> str:
        """Drop the collect-all triangle pointing at a query node."""
        self._checkpoint()
        self._construct_count += 1
        shape = Shape(
            f"c:{self._construct_count}", ShapeKind.TRIANGLE,
            label=f"{variable}{'*' if deep else ''}",
            stroke=StrokeStyle.THICK,
            meta={"role": "collect", "variable": variable, "deep": deep},
        )
        self.diagram.add_shape(shape)
        self._construct_child(parent_shape, shape.id)
        return shape.id

    def add_copy(self, parent_shape: str, variable: str, deep: bool = True) -> str:
        """Drop a copy box bound to a query node."""
        self._checkpoint()
        self._construct_count += 1
        shape = Shape(
            f"c:{self._construct_count}", ShapeKind.BOX,
            label=f"{variable}{'*' if deep else ''}",
            stroke=StrokeStyle.THICK,
            meta={"role": "copy", "variable": variable, "deep": deep},
        )
        self.diagram.add_shape(shape)
        self._construct_child(parent_shape, shape.id)
        return shape.id

    def add_list_icon(self, parent_shape: str, group_on: Sequence[str]) -> str:
        """Drop the grouping list icon."""
        self._checkpoint()
        self._construct_count += 1
        shape = Shape(
            f"c:{self._construct_count}", ShapeKind.LIST_ICON,
            label=",".join(group_on), stroke=StrokeStyle.THICK,
            meta={"role": "group", "group_on": list(group_on)},
        )
        self.diagram.add_shape(shape)
        self._construct_child(parent_shape, shape.id)
        return shape.id

    def add_text_node(self, parent_shape: str, text: str) -> str:
        """Drop a constant text circle into the construct part."""
        self._checkpoint()
        self._construct_count += 1
        shape = Shape(
            f"c:{self._construct_count}", ShapeKind.CIRCLE_HOLLOW,
            label=repr(text), stroke=StrokeStyle.THICK,
            meta={"role": "text_literal", "text": text},
        )
        self.diagram.add_shape(shape)
        self._construct_child(parent_shape, shape.id)
        return shape.id

    def add_value_node(self, parent_shape: str, variable: str) -> str:
        """Drop a circle carrying a bound node's text."""
        self._checkpoint()
        self._construct_count += 1
        shape = Shape(
            f"c:{self._construct_count}", ShapeKind.CIRCLE_HOLLOW,
            label=variable, stroke=StrokeStyle.THICK,
            meta={"role": "text_from", "variable": variable},
        )
        self.diagram.add_shape(shape)
        self._construct_child(parent_shape, shape.id)
        return shape.id

    def add_aggregate(self, parent_shape: str, function: str, variable: str) -> str:
        """Drop an aggregation annotation (COUNT/SUM/...)."""
        self._checkpoint()
        self._construct_count += 1
        shape = Shape(
            f"c:{self._construct_count}", ShapeKind.CIRCLE_HOLLOW,
            label=f"{function}({variable})", stroke=StrokeStyle.THICK,
            meta={"role": "aggregate", "function": function, "variable": variable},
        )
        self.diagram.add_shape(shape)
        self._construct_child(parent_shape, shape.id)
        return shape.id

    def _construct_child(self, parent_shape: str, child_shape: str) -> None:
        position = sum(
            1
            for c in self.diagram.connectors_from(parent_shape)
            if c.meta.get("role") == "construct_child"
        )
        self.diagram.add_connector(
            Connector(
                self.diagram.fresh_id("c"), parent_shape, child_shape,
                stroke=StrokeStyle.THICK,
                meta={"role": "construct_child", "position": position},
            )
        )

    # -- compile / render -----------------------------------------------------

    def compile(self) -> Rule:
        """The current drawing as an XML-GL rule (validated)."""
        rule = diagram_to_xmlgl(self.diagram)
        rule.validate()
        return rule

    def arrange(self) -> None:
        """Run the rule layout (extract ∥ construct) on the drawing."""
        left = [s.id for s in self.diagram.shapes() if not s.id.startswith("c:")]
        right = [s.id for s in self.diagram.shapes() if s.id.startswith("c:")]
        if "sep" not in self.diagram:
            self.diagram.add_shape(
                Shape("sep", ShapeKind.SEPARATOR, meta={"role": "separator"})
            )
        side_by_side(self.diagram, left, right, separator_id="sep")

    @classmethod
    def from_rule(cls, rule: Rule) -> "XmlglEditor":
        """Open an existing rule in the editor."""
        editor = cls(title=rule.name or "")
        editor.diagram = xmlgl_rule_diagram(rule)
        return editor


class WglogEditor(_BaseEditor):
    """Gesture-level authoring of WG-Log rules."""

    def add_rectangle(
        self,
        label: Optional[str],
        node_id: Optional[str] = None,
        green: bool = False,
        collector: bool = False,
    ) -> str:
        """Drop a rectangle; thin = query (red), thick = derive (green)."""
        self._checkpoint()
        node_id = node_id or self.diagram.fresh_id("n")
        shape = Shape(
            f"n:{node_id}",
            ShapeKind.TRIANGLE if collector else ShapeKind.BOX,
            label=label or "*",
            stroke=StrokeStyle.THICK if green else StrokeStyle.THIN,
            meta={
                "role": "wg_node", "node": node_id, "label": label,
                "color": "green" if green else "red", "collector": collector,
            },
        )
        self.diagram.add_shape(shape)
        return shape.id

    def draw_arrow(
        self,
        source_shape: str,
        target_shape: str,
        label: str,
        green: bool = False,
        crossed: bool = False,
        path: bool = False,
    ) -> str:
        """Draw a labelled arrow; flags mirror the pen choices."""
        self._checkpoint()
        stroke = StrokeStyle.THICK if green else (
            StrokeStyle.DASHED if path else StrokeStyle.THIN
        )
        connector = Connector(
            self.diagram.fresh_id("c"), source_shape, target_shape,
            label=label, stroke=stroke, crossed=crossed,
            meta={
                "role": "wg_edge", "label": label,
                "color": "green" if green else "red",
                "crossed": crossed, "path": path,
            },
        )
        return self.diagram.add_connector(connector).id

    def assert_slot(
        self,
        node_shape: str,
        name: str,
        value=None,
        from_node: Optional[str] = None,
        from_slot: Optional[str] = None,
    ) -> str:
        """Attach a green slot rectangle to a node."""
        self._checkpoint()
        node = self.diagram.shape(node_shape)
        label = f"{name}={value!r}" if value is not None else (
            f"{name}={from_node}.{from_slot or name}"
        )
        shape = Shape(
            self.diagram.fresh_id("slot"), ShapeKind.CIRCLE_FILLED,
            label=label, stroke=StrokeStyle.THICK,
            meta={
                "role": "wg_slot", "node": node.meta["node"], "name": name,
                "value": value, "from_node": from_node,
                "from_slot": from_slot or name,
            },
        )
        self.diagram.add_shape(shape)
        self.diagram.add_connector(
            Connector(
                self.diagram.fresh_id("c"), node_shape, shape.id,
                stroke=StrokeStyle.THICK, meta={"role": "wg_slot_edge"},
            )
        )
        return shape.id

    def annotate_condition(self, condition: Condition) -> str:
        """Attach a predicate annotation."""
        self._checkpoint()
        shape = Shape(
            self.diagram.fresh_id("cond"), ShapeKind.LABEL,
            label=f"where {condition}",
            meta={"role": "wg_condition", "condition": condition},
        )
        self.diagram.add_shape(shape)
        return shape.id

    def compile(self) -> RuleGraph:
        """The current drawing as a WG-Log rule (validated)."""
        rule = diagram_to_wglog(self.diagram)
        rule.validate()
        return rule

    def arrange(self) -> None:
        """Run the hierarchical layout on the drawing."""
        layered_layout(self.diagram)

    @classmethod
    def from_rule(cls, rule: RuleGraph) -> "WglogEditor":
        """Open an existing rule in the editor."""
        editor = cls(title=rule.name or "")
        editor.diagram = wglog_rule_diagram(rule)
        return editor
