"""Saving and loading diagrams (editor sessions) as JSON.

A GUI editor must persist drawings; the headless editors do too.  Shapes
and connectors serialise field-by-field; the one non-JSON value in the
scene graph — condition objects carried in ``meta`` — round-trips through
the textual condition grammar (``str(condition)`` ⇄
:func:`repro.xmlgl.dsl.parse_condition`).

``save_diagram`` → JSON string; ``load_diagram`` → :class:`Diagram`.  The
pair is inverse up to float formatting, so a saved session reopens into
the same drawing and compiles to the same rule (tested).
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import DiagramError
from .diagram import Diagram
from .shapes import Connector, Shape, ShapeKind, StrokeStyle

__all__ = ["save_diagram", "load_diagram"]

_CONDITION_KEY = "condition"
_FORMAT_VERSION = 1


def _encode_meta(meta: dict) -> dict:
    encoded: dict[str, Any] = {}
    for key, value in meta.items():
        if key == _CONDITION_KEY:
            encoded[key] = {"__condition__": str(value)}
        elif isinstance(value, tuple):
            encoded[key] = list(value)
        else:
            encoded[key] = value
    return encoded


def _decode_meta(meta: dict) -> dict:
    from ..xmlgl.dsl import parse_condition

    decoded: dict[str, Any] = {}
    for key, value in meta.items():
        if (
            key == _CONDITION_KEY
            and isinstance(value, dict)
            and "__condition__" in value
        ):
            decoded[key] = parse_condition(value["__condition__"])
        elif key == "attributes" and isinstance(value, list):
            decoded[key] = [tuple(item) for item in value]
        else:
            decoded[key] = value
    return decoded


def save_diagram(diagram: Diagram) -> str:
    """Serialise a diagram to a JSON string."""
    payload = {
        "version": _FORMAT_VERSION,
        "title": diagram.title,
        "shapes": [
            {
                "id": shape.id,
                "kind": shape.kind.name,
                "label": shape.label,
                "stroke": shape.stroke.value,
                "crossed": shape.crossed,
                "x": shape.x,
                "y": shape.y,
                "width": shape.width,
                "height": shape.height,
                "meta": _encode_meta(shape.meta),
            }
            for shape in diagram.shapes()
        ],
        "connectors": [
            {
                "id": connector.id,
                "source": connector.source,
                "target": connector.target,
                "label": connector.label,
                "annotation": connector.annotation,
                "stroke": connector.stroke.value,
                "crossed": connector.crossed,
                "arrow": connector.arrow,
                "meta": _encode_meta(connector.meta),
            }
            for connector in diagram.connectors()
        ],
    }
    return json.dumps(payload, indent=2, ensure_ascii=False)


def load_diagram(text: str) -> Diagram:
    """Rebuild a diagram from :func:`save_diagram` output."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise DiagramError(f"not a diagram file: {error}")
    if not isinstance(payload, dict) or "shapes" not in payload:
        raise DiagramError("not a diagram file: missing 'shapes'")
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise DiagramError(f"unsupported diagram format version {version!r}")
    diagram = Diagram(title=payload.get("title", ""))
    for entry in payload["shapes"]:
        try:
            kind = ShapeKind[entry["kind"]]
            stroke = StrokeStyle(entry.get("stroke", "thin"))
        except (KeyError, ValueError) as error:
            raise DiagramError(f"bad shape entry: {error}")
        diagram.add_shape(
            Shape(
                entry["id"],
                kind,
                label=entry.get("label", ""),
                stroke=stroke,
                crossed=entry.get("crossed", False),
                x=entry.get("x", 0.0),
                y=entry.get("y", 0.0),
                width=entry.get("width", 0.0),
                height=entry.get("height", 0.0),
                meta=_decode_meta(entry.get("meta", {})),
            )
        )
    for entry in payload.get("connectors", []):
        diagram.add_connector(
            Connector(
                entry["id"],
                entry["source"],
                entry["target"],
                label=entry.get("label", ""),
                annotation=entry.get("annotation", ""),
                stroke=StrokeStyle(entry.get("stroke", "thin")),
                crossed=entry.get("crossed", False),
                arrow=entry.get("arrow", True),
                meta=_decode_meta(entry.get("meta", {})),
            )
        )
    return diagram
