"""The visual layer: diagrams, layout, rendering, headless editors.

This package is the offline substitute for the GUI the paper's systems
assume: a diagram scene graph (:class:`Diagram`), a deterministic layered
layout, SVG and ASCII renderers, lossless AST⇄diagram mappings for both
languages, and gesture-level editors (:class:`XmlglEditor`,
:class:`WglogEditor`) with undo/redo that compile drawings to runnable
queries.
"""

from .ascii_art import render_ascii
from .diagram import Diagram
from .editor import WglogEditor, XmlglEditor
from .layout import layered_layout, side_by_side
from .parse_diagram import diagram_to_wglog, diagram_to_xmlgl
from .persist import load_diagram, save_diagram
from .render_query import wglog_rule_diagram, xmlgl_rule_diagram
from .shapes import Connector, Shape, ShapeKind, StrokeStyle
from .svg import render_svg

__all__ = [
    "Diagram", "Shape", "Connector", "ShapeKind", "StrokeStyle",
    "layered_layout", "side_by_side",
    "render_svg", "render_ascii",
    "xmlgl_rule_diagram", "wglog_rule_diagram",
    "diagram_to_xmlgl", "diagram_to_wglog",
    "save_diagram", "load_diagram",
    "XmlglEditor", "WglogEditor",
]
