"""Diagram → AST: reading a drawing back as a query.

The inverse of :mod:`repro.visual.render_query`: given a diagram whose
shapes carry the editor-level ``meta`` facts, reconstruct the XML-GL
:class:`~repro.xmlgl.rule.Rule` or WG-Log
:class:`~repro.wglog.ast.RuleGraph`.  Together the two directions make the
diagram a faithful concrete syntax — the round trip is property-tested.
"""

from __future__ import annotations

from ..errors import DiagramError
from ..xmlgl.ast import (
    AttributePattern,
    ContainmentEdge,
    ElementPattern,
    OrGroup,
    QueryGraph,
    TextPattern,
)
from ..xmlgl.construct import (
    Aggregate,
    Collect,
    ConstructNode,
    Copy,
    GroupBy,
    NewAttribute,
    NewElement,
    TextFrom,
    TextLiteral,
)
from ..xmlgl.rule import Rule
from ..wglog.ast import Color, RuleEdge, RuleGraph, RuleNode
from .diagram import Diagram
from .shapes import Shape

__all__ = ["diagram_to_xmlgl", "diagram_to_wglog"]


# ---------------------------------------------------------------------------
# XML-GL
# ---------------------------------------------------------------------------

def diagram_to_xmlgl(diagram: Diagram) -> Rule:
    """Reconstruct an XML-GL rule from its diagram."""
    graphs: dict[int, QueryGraph] = {}

    def graph_for(index: int) -> QueryGraph:
        if index not in graphs:
            graphs[index] = QueryGraph()
        return graphs[index]

    # shapes -> query nodes / conditions / sources
    for shape in diagram.shapes():
        role = shape.meta.get("role")
        if role == "element":
            graph_for(shape.meta["graph"]).add_node(
                ElementPattern(
                    shape.meta["node"],
                    shape.meta.get("tag"),
                    anchored=shape.meta.get("anchored", False),
                )
            )
        elif role == "text":
            graph_for(shape.meta["graph"]).add_node(
                TextPattern(
                    shape.meta["node"],
                    value=shape.meta.get("value"),
                    regex=shape.meta.get("regex"),
                )
            )
        elif role == "attribute":
            graph_for(shape.meta["graph"]).add_node(
                AttributePattern(
                    shape.meta["node"],
                    shape.meta["name"],
                    value=shape.meta.get("value"),
                    regex=shape.meta.get("regex"),
                )
            )

    # connectors -> containment edges (plain and or-grouped)
    or_branches: dict[int, dict[tuple[int, int], list[ContainmentEdge]]] = {}
    for connector in diagram.connectors():
        if connector.meta.get("role") != "containment":
            continue
        graph_index = connector.meta["graph"]
        edge = ContainmentEdge(
            parent=diagram.shape(connector.source).meta["node"],
            child=diagram.shape(connector.target).meta["node"],
            deep=connector.meta.get("deep", False),
            ordered=connector.meta.get("ordered", False),
            negated=connector.meta.get("negated", False),
            position=connector.meta.get("position", 0),
        )
        if "or_group" in connector.meta:
            key = (connector.meta["or_group"], connector.meta["or_branch"])
            or_branches.setdefault(graph_index, {}).setdefault(key, []).append(edge)
        else:
            graph_for(graph_index).add_edge(edge)
    for graph_index, branches in or_branches.items():
        groups: dict[int, dict[int, list[ContainmentEdge]]] = {}
        for (group_index, branch_index), edges in branches.items():
            groups.setdefault(group_index, {})[branch_index] = edges
        for group_index in sorted(groups):
            alternatives = tuple(
                tuple(groups[group_index][branch_index])
                for branch_index in sorted(groups[group_index])
            )
            graph_for(graph_index).add_or_group(OrGroup(alternatives))

    rule_conditions = []
    for shape in diagram.shapes():
        role = shape.meta.get("role")
        if role == "condition":
            graph_for(shape.meta["graph"]).add_condition(shape.meta["condition"])
        elif role == "rule_condition":
            rule_conditions.append(shape.meta["condition"])
        elif role == "source":
            graph_for(shape.meta["graph"]).source = shape.meta["source"]

    construct = _parse_construct(diagram)
    if not graphs:
        raise DiagramError("diagram has no query part")
    ordered_graphs = [graphs[i] for i in sorted(graphs)]
    title = diagram.title if diagram.title not in ("", "xml-gl rule") else None
    return Rule(ordered_graphs, construct, conditions=rule_conditions, name=title)


def _parse_construct(diagram: Diagram) -> NewElement:
    roots = [
        s
        for s in diagram.shapes()
        if s.meta.get("role") == "new_element"
        and not any(
            c.meta.get("role") == "construct_child"
            for c in diagram.connectors_to(s.id)
        )
    ]
    if len(roots) != 1:
        raise DiagramError(
            f"expected exactly one construct root, found {len(roots)}"
        )
    node = _parse_construct_node(diagram, roots[0])
    assert isinstance(node, NewElement)
    return node


def _parse_construct_node(diagram: Diagram, shape: Shape) -> ConstructNode:
    role = shape.meta.get("role")
    if role == "new_element":
        children = _construct_children(diagram, shape)
        return NewElement(
            shape.meta["tag"],
            for_each=list(shape.meta.get("for_each", [])),
            attributes=[
                NewAttribute(name, value=value, from_variable=from_variable)
                for name, value, from_variable in shape.meta.get("attributes", [])
            ],
            children=children,
            sort_by=shape.meta.get("sort_by"),
            tag_from=shape.meta.get("tag_from"),
        )
    if role == "copy":
        return Copy(shape.meta["variable"], deep=shape.meta.get("deep", True))
    if role == "collect":
        return Collect(shape.meta["variable"], deep=shape.meta.get("deep", True))
    if role == "group":
        return GroupBy(
            list(shape.meta["group_on"]), _construct_children(diagram, shape)
        )
    if role == "text_literal":
        return TextLiteral(shape.meta["text"])
    if role == "text_from":
        return TextFrom(shape.meta["variable"])
    if role == "aggregate":
        return Aggregate(shape.meta["function"], shape.meta["variable"])
    raise DiagramError(f"shape {shape.id!r} is not a construct node")


def _construct_children(diagram: Diagram, shape: Shape) -> list[ConstructNode]:
    child_connectors = sorted(
        (
            c
            for c in diagram.connectors_from(shape.id)
            if c.meta.get("role") == "construct_child"
        ),
        key=lambda c: c.meta.get("position", 0),
    )
    return [
        _parse_construct_node(diagram, diagram.shape(c.target))
        for c in child_connectors
    ]


# ---------------------------------------------------------------------------
# WG-Log
# ---------------------------------------------------------------------------

def diagram_to_wglog(diagram: Diagram) -> RuleGraph:
    """Reconstruct a WG-Log rule from its diagram."""
    title = diagram.title if diagram.title not in ("", "wg-log rule") else None
    rule = RuleGraph(name=title)
    found = False
    for shape in diagram.shapes():
        if shape.meta.get("role") != "wg_node":
            continue
        found = True
        rule.add_node(
            RuleNode(
                shape.meta["node"],
                shape.meta.get("label"),
                Color(shape.meta.get("color", "red")),
                collector=shape.meta.get("collector", False),
            )
        )
    if not found:
        raise DiagramError("diagram has no WG-Log nodes")
    for connector in diagram.connectors():
        if connector.meta.get("role") != "wg_edge":
            continue
        rule.add_edge(
            RuleEdge(
                diagram.shape(connector.source).meta["node"],
                diagram.shape(connector.target).meta["node"],
                connector.meta.get("label", ""),
                Color(connector.meta.get("color", "red")),
                crossed=connector.meta.get("crossed", False),
                path=connector.meta.get("path", False),
            )
        )
    for shape in diagram.shapes():
        role = shape.meta.get("role")
        if role == "wg_slot":
            rule.assert_slot(
                shape.meta["node"],
                shape.meta["name"],
                value=shape.meta.get("value"),
                from_node=shape.meta.get("from_node"),
                from_slot=shape.meta.get("from_slot"),
            )
        elif role == "wg_condition":
            rule.add_condition(shape.meta["condition"])
    return rule
